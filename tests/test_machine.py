"""Tests for the machine performance model (the scaling substitution)."""

import numpy as np
import pytest

from repro.machine import (
    RoundCostModel,
    WorkloadSpec,
    crusher_mi250x,
    strong_scaling,
    summit_v100,
    throughput_table,
    weak_scaling,
)


@pytest.fixture
def workload():
    return WorkloadSpec()


@pytest.fixture
def small_workload():
    return WorkloadSpec(n_sites=128, hidden=(64, 32), latent_dim=8, marginal_samples=8)


class TestSpecs:
    def test_factories(self):
        s = summit_v100()
        c = crusher_mi250x()
        assert s.gpus_per_node == 6
        assert c.gpus_per_node == 8
        assert c.device.fp32_tflops > s.device.fp32_tflops

    def test_ptp_time_monotone_in_bytes(self):
        m = summit_v100()
        assert m.ptp_time(1e6) > m.ptp_time(1e3) > 0

    def test_allreduce_zero_for_single_rank(self):
        assert summit_v100().allreduce_time(1e6, 1) == 0.0

    def test_allreduce_grows_with_ranks(self):
        m = summit_v100()
        assert m.allreduce_time(1e6, 16) > m.allreduce_time(1e6, 2)


class TestWorkloadOpCounts:
    def test_flops_per_local_step_matches_instrumented_kernel(self, hea_small):
        """The formula's operation count matches what the real ΔE kernel
        does: per shell, 2 gathers of z species + 2z adds per swapped site."""
        w = WorkloadSpec(n_sites=hea_small.n_sites, coordination=14)
        # The ΔE closed form touches 2 sites × z₁+z₂ = 14 neighbors, with a
        # multiply-add pair each (table lookup + accumulate) → 4·2·z ops.
        assert w.flops_per_local_step == pytest.approx(4 * 2 * 14 + 20)

    def test_nn_forward_flops_formula(self):
        w = WorkloadSpec(n_sites=10, n_species=4, latent_dim=2, hidden=(8,))
        dims_enc = [40, 8, 4]
        enc = sum(2 * a * b for a, b in zip(dims_enc[:-1], dims_enc[1:]))
        dims_dec = [2, 8, 40]
        dec = sum(2 * a * b for a, b in zip(dims_dec[:-1], dims_dec[1:]))
        assert w.flops_nn_forward == pytest.approx(0.5 * (enc + dec))

    def test_dl_step_scales_with_marginal_samples(self):
        w8 = WorkloadSpec(marginal_samples=8)
        w64 = WorkloadSpec(marginal_samples=64)
        assert w64.flops_per_dl_step > 6 * w8.flops_per_dl_step

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_sites=0)
        with pytest.raises(ValueError):
            WorkloadSpec(dl_fraction=1.5)


class TestRoundCostModel:
    def test_latency_floor_applies(self, small_workload):
        m = RoundCostModel(summit_v100(), small_workload)
        assert m.local_step_time() >= 80e-9

    def test_dl_step_much_slower_than_local(self, workload):
        m = RoundCostModel(summit_v100(), workload)
        assert m.dl_step_time() > 100 * m.local_step_time()

    def test_round_time_additive(self, workload):
        m = RoundCostModel(summit_v100(), workload)
        assert m.round_time() == pytest.approx(m.compute_time(1) + m.comm_time())

    def test_more_walkers_per_gpu_slower(self, workload):
        m = RoundCostModel(summit_v100(), workload)
        assert m.compute_time(4) == pytest.approx(4 * m.compute_time(1))

    def test_mi250x_faster_per_device(self, workload):
        v = RoundCostModel(summit_v100(), workload).steps_per_second()
        c = RoundCostModel(crusher_mi250x(), workload).steps_per_second()
        assert 1.0 < c / v < 3.0  # the paper-shaped ratio


class TestScalingShapes:
    def test_strong_scaling_monotone_time(self, workload):
        pts = strong_scaling(summit_v100(), workload, total_walkers=3000,
                             gpu_counts=[6, 24, 96, 384, 1536, 3000])
        times = [p.round_time for p in pts]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_strong_scaling_efficiency_band(self, workload):
        pts = strong_scaling(summit_v100(), workload, total_walkers=3000,
                             gpu_counts=[6, 96, 1536, 3000])
        assert pts[0].efficiency == pytest.approx(1.0)
        for p in pts[1:]:
            assert 0.5 < p.efficiency <= 1.05

    def test_strong_scaling_saturates_past_walker_count(self, workload):
        pts = strong_scaling(summit_v100(), workload, total_walkers=64,
                             gpu_counts=[64, 128])
        # Extra GPUs beyond one walker each cannot reduce the time.
        assert pts[1].round_time >= pts[0].round_time * 0.99
        assert pts[1].efficiency < 0.6

    def test_weak_scaling_efficiency_decays_slowly(self, workload):
        pts = weak_scaling(crusher_mi250x(), workload, [8, 64, 512, 3000])
        effs = [p.efficiency for p in pts]
        assert effs[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(effs, effs[1:]))
        assert effs[-1] > 0.85  # the paper's near-ideal weak scaling

    def test_gpu_count_validation(self, workload):
        with pytest.raises(ValueError):
            strong_scaling(summit_v100(), workload, 10, [0])
        with pytest.raises(ValueError):
            weak_scaling(summit_v100(), workload, [-1])


class TestThroughputTable:
    def test_rows_and_ordering(self, workload):
        rows = throughput_table([summit_v100(), crusher_mi250x()], workload)
        assert len(rows) == 2
        for row in rows:
            assert row["local_steps_per_s"] > row["mixed_steps_per_s"]
        assert rows[1]["mixed_steps_per_s"] > rows[0]["mixed_steps_per_s"]
