"""Tests for repro.obs.convergence: the ledger's diffusion/ETA bookkeeping,
its determinism contract on a real REWL run, and checkpoint round-trips."""

import json

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.obs import EventLog, MemorySink, Telemetry
from repro.obs.convergence import (
    CONVERGENCE_ENV_VAR,
    ConvergenceConfig,
    ConvergenceLedger,
    convergence_from_env,
    parse_convergence,
)
from repro.parallel import REWLConfig, REWLDriver, load_checkpoint, save_checkpoint
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid


def _driver(telemetry=None, **kwargs):
    from repro.obs import Instrumentation

    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    inst = Instrumentation(telemetry=telemetry, **{
        k: kwargs.pop(k)
        for k in ("profiler", "health", "convergence", "timeseries")
        if k in kwargs
    })
    return REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                   exchange_interval=200, ln_f_final=5e-2, seed=11),
        instrumentation=inst, **kwargs,
    )


class _FakeWalker:
    def __init__(self, histogram, ln_f=0.5):
        self.histogram = np.asarray(histogram, dtype=np.int64)
        self.visited = self.histogram > 0
        self.ln_f = ln_f
        self.n_iterations = 0


class _FakeCfg:
    ln_f_final = 5e-2
    flatness = 0.8


class _FakeDriver:
    def __init__(self, n_windows=3):
        self.rounds = 0
        self.cfg = _FakeCfg()
        self.walkers = [[_FakeWalker([5, 5, 5])] for _ in range(n_windows)]
        self.window_converged = [False] * n_windows


class TestConfigParsing:
    def test_defaults_validate(self):
        cfg = ConvergenceConfig()
        assert cfg.sample_every == 10

    @pytest.mark.parametrize("field,value", [
        ("sample_every", 0), ("max_samples", 3),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            ConvergenceConfig(**{field: value})

    def test_parse_enabled_and_keys(self):
        assert parse_convergence("1") == ConvergenceConfig()
        cfg = parse_convergence("every=3,max=8")
        assert cfg.sample_every == 3
        assert cfg.max_samples == 8

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match=CONVERGENCE_ENV_VAR):
            parse_convergence("bogus=1")

    def test_convergence_from_env(self, monkeypatch):
        monkeypatch.delenv(CONVERGENCE_ENV_VAR, raising=False)
        assert convergence_from_env() is None
        monkeypatch.setenv(CONVERGENCE_ENV_VAR, "off")
        assert convergence_from_env() is None
        monkeypatch.setenv(CONVERGENCE_ENV_VAR, "every=7")
        assert convergence_from_env().sample_every == 7

    def test_env_attaches_ledger_to_driver(self, monkeypatch):
        monkeypatch.setenv(CONVERGENCE_ENV_VAR, "1")
        assert _driver().convergence is not None
        monkeypatch.setenv(CONVERGENCE_ENV_VAR, "0")
        assert _driver().convergence is None


class TestLabelDiffusion:
    def _ledger(self, n_windows=3):
        ledger = ConvergenceLedger(ConvergenceConfig())
        ledger.attach(_FakeDriver(n_windows=n_windows))
        return ledger

    def test_attach_seeds_home_labels(self):
        ledger = self._ledger()
        assert ledger.labels == [[0], [1], [2]]
        assert ledger._last_extreme == {0: "bottom", 2: "top"}

    def test_rejected_exchange_counts_attempt_only(self):
        ledger = self._ledger()
        ledger.note_exchange(0, 0, 1, 0, accepted=False, in_overlap=True)
        assert ledger.pair_attempts == [1, 0]
        assert ledger.pair_accepts == [0, 0]
        assert ledger.labels == [[0], [1], [2]]

    def test_label_travels_ladder_and_tunnels(self):
        ledger = self._ledger()
        # Label 0 rides bottom -> middle -> top: one traversal.
        ledger.note_exchange(0, 0, 1, 0, accepted=True, in_overlap=True)
        assert ledger.labels == [[1], [0], [2]]
        assert ledger.tunnels == 0
        ledger.note_exchange(1, 0, 2, 0, accepted=True, in_overlap=True)
        assert ledger.labels == [[1], [2], [0]]
        assert ledger.tunnels == 1
        assert ledger.round_trips == 0
        # ... and back down: the round trip completes.
        ledger.note_exchange(1, 0, 2, 0, accepted=True, in_overlap=True)
        ledger.note_exchange(0, 0, 1, 0, accepted=True, in_overlap=True)
        assert ledger.labels == [[0], [1], [2]]
        assert ledger.tunnels == 2
        assert ledger.round_trips == 1

    def test_touching_same_end_twice_is_not_a_tunnel(self):
        ledger = self._ledger()
        # Label 1 visits the bottom twice without ever reaching the top.
        ledger.note_exchange(0, 0, 1, 0, accepted=True, in_overlap=True)
        ledger.note_exchange(0, 0, 1, 0, accepted=True, in_overlap=True)
        assert ledger.tunnels == 0

    def test_acceptance_matrix_is_symmetric(self):
        ledger = self._ledger()
        ledger.note_exchange(0, 0, 1, 0, accepted=True, in_overlap=True)
        ledger.note_exchange(0, 0, 1, 0, accepted=False, in_overlap=True)
        m = ledger.acceptance_matrix()
        assert m[0][1] == m[1][0] == pytest.approx(0.5)
        assert m[0][2] is None and m[0][0] is None


class TestSeriesAndEta:
    def test_decimation_keeps_first_and_last(self):
        ledger = ConvergenceLedger(ConvergenceConfig(max_samples=4))
        ledger.attach(_FakeDriver(n_windows=1))
        for i in range(9):
            ledger.note_sync(0, rounds=i, ln_f=1.0 / (i + 1), iteration=i,
                            converged=False)
        series = ledger.lnf_trajectory[0]
        assert len(series) <= 4
        assert series[0][0] == 0 and series[-1][0] == 8

    def test_eta_projection(self):
        ledger = ConvergenceLedger(ConvergenceConfig())
        fake = _FakeDriver(n_windows=1)
        fake.walkers[0][0].ln_f = 0.25
        ledger.attach(fake)
        # 10 rounds per WL iteration; flatness climbing 0.01/round from 0.6.
        ledger.lnf_trajectory[0] = [(10, 1.0, 1), (20, 0.5, 2)]
        ledger.flatness_series[0] = [(10, 0.5, 0.5), (20, 0.6, 0.6)]
        ledger.wall_samples = [(0, 0.0), (10, 5.0)]
        eta = ledger.eta(fake)
        # ceil(log2(0.25/0.05)) = 3 halvings: 20 rounds to flat now,
        # then 2 more iterations at 10 rounds each.
        assert eta["rounds"] == pytest.approx(40.0)
        assert eta["seconds"] == pytest.approx(20.0)  # 0.5 s/round observed
        assert eta["windows"][0]["halvings_left"] == 3

    def test_eta_none_without_history(self):
        ledger = ConvergenceLedger(ConvergenceConfig())
        fake = _FakeDriver(n_windows=1)
        ledger.attach(fake)
        assert ledger.eta(fake) is None

    def test_eta_zero_when_all_converged(self):
        ledger = ConvergenceLedger(ConvergenceConfig())
        fake = _FakeDriver(n_windows=1)
        fake.window_converged = [True]
        ledger.attach(fake)
        assert ledger.eta(fake) == {"rounds": 0, "seconds": 0.0, "windows": []}


class TestLedgerOnRewl:
    def test_ledger_run_is_bit_identical(self):
        """Acceptance: the ledger leaves the DoS, the histograms, and every
        walker RNG stream bit-for-bit unchanged."""
        plain = _driver()
        plain_res = plain.run(max_rounds=60)

        inst = _driver(convergence=ConvergenceLedger(
            ConvergenceConfig(sample_every=3)))
        inst_res = inst.run(max_rounds=60)

        assert inst_res.rounds == plain_res.rounds
        assert inst_res.total_steps == plain_res.total_steps
        for a, b in zip(inst_res.window_ln_g, plain_res.window_ln_g):
            assert np.array_equal(a, b)
        for team_a, team_b in zip(inst.walkers, plain.walkers):
            for wa, wb in zip(team_a, team_b):
                assert np.array_equal(wa.histogram, wb.histogram)
                assert np.array_equal(wa.ln_g, wb.ln_g)
                assert (wa.rng.generator.bit_generator.state
                        == wb.rng.generator.bit_generator.state)
        # And the ledger actually measured something.
        summ = inst_res.telemetry["convergence"]
        assert summ["samples"] > 0
        assert sum(summ["pair_attempts"]) == int(inst.exchange_attempts.sum())

    def test_ledger_on_batched_teams(self):
        """K-slot batched window teams: the ledger reads slot arrays and
        counts slot-level exchanges, and stays bit-identical."""
        ham = IsingHamiltonian(square_lattice(4))
        grid = EnergyGrid.from_levels(ham.energy_levels())

        def build(**kwargs):
            return REWLDriver(
                hamiltonian=ham, proposal_factory=lambda: FlipProposal(),
                grid=grid, initial_config=np.zeros(16, dtype=np.int8),
                config=REWLConfig(n_windows=2, walkers_per_window=2,
                           overlap=0.6, exchange_interval=200,
                           ln_f_final=5e-2, seed=11, batched_walkers=True),
                **kwargs,
            )

        plain = build()
        plain_res = plain.run(max_rounds=40)
        inst = build(convergence=ConvergenceLedger(
            ConvergenceConfig(sample_every=3)))
        inst_res = inst.run(max_rounds=40)

        assert inst_res.total_steps == plain_res.total_steps
        for a, b in zip(inst_res.window_ln_g, plain_res.window_ln_g):
            assert np.array_equal(a, b)
        summ = inst_res.telemetry["convergence"]
        assert summ["walkers_per_window"] == 2
        assert summ["samples"] > 0
        assert sum(summ["pair_attempts"]) == int(inst.exchange_attempts.sum())

    def test_summary_rides_result_and_trace(self):
        sink = MemorySink()
        tel = Telemetry(events=EventLog(run_id="t", sinks=[sink]))
        driver = _driver(telemetry=tel, convergence=ConvergenceLedger(
            ConvergenceConfig(sample_every=2)))
        res = driver.run(max_rounds=30)
        summ = res.telemetry["convergence"]
        json.dumps(summ)  # JSON-ready, numpy-free
        assert summ["n_windows"] == 2
        assert summ["walkers_per_window"] == 2
        assert len(summ["windows"]) == 2
        assert summ["windows"][0]["flatness"]
        events = [r for r in sink.records if r["kind"] == "convergence"]
        assert events and events[-1]["samples"] == summ["samples"]

    def test_heartbeat_carries_eta(self):
        from repro.obs.health import HEARTBEAT_KIND, HealthConfig

        sink = MemorySink()
        tel = Telemetry(events=EventLog(run_id="t", sinks=[sink]))
        driver = _driver(telemetry=tel,
                         health=HealthConfig(heartbeat_rounds=2),
                         convergence=ConvergenceLedger(
                             ConvergenceConfig(sample_every=2)))
        driver.run(max_rounds=30)
        beats = [r for r in sink.records if r["kind"] == HEARTBEAT_KIND]
        assert beats and "eta" in beats[-1]


class TestLedgerCheckpoint:
    def _ckpt_driver(self):
        ham = IsingHamiltonian(square_lattice(4))
        grid = EnergyGrid.from_levels(ham.energy_levels())
        return REWLDriver(
            hamiltonian=ham, proposal_factory=lambda: FlipProposal(),
            grid=grid, initial_config=np.zeros(16, dtype=np.int8),
            config=REWLConfig(n_windows=2, walkers_per_window=2,
                       exchange_interval=300, ln_f_final=1e-6, seed=3),
            convergence=ConvergenceLedger(ConvergenceConfig(sample_every=2)),
        )

    def test_ledger_round_trips_through_checkpoint(self, tmp_path):
        first = self._ckpt_driver()
        first.run(max_rounds=4)
        ckpt = save_checkpoint(first, tmp_path / "rewl.ckpt")

        resumed = self._ckpt_driver()
        load_checkpoint(resumed, ckpt)
        a, b = first.convergence, resumed.convergence
        assert b.labels == a.labels
        assert b._traversals == a._traversals
        assert b.samples == a.samples
        assert b.pair_attempts == a.pair_attempts
        assert b.lnf_trajectory == a.lnf_trajectory
        assert b.flatness_series == a.flatness_series

    def test_resumed_ledger_matches_straight_run(self, tmp_path):
        straight = self._ckpt_driver()
        straight.run(max_rounds=8)
        ref = straight.convergence.summary()

        first = self._ckpt_driver()
        first.run(max_rounds=4)
        ckpt = save_checkpoint(first, tmp_path / "rewl.ckpt")
        resumed = self._ckpt_driver()
        load_checkpoint(resumed, ckpt)
        resumed.run(max_rounds=8)
        assert resumed.convergence.summary() == ref

    def test_old_checkpoint_without_ledger_state_loads(self, tmp_path):
        bare = self._ckpt_driver()
        bare.convergence = None  # the saving side predates the ledger
        bare.run(max_rounds=2)
        ckpt = save_checkpoint(bare, tmp_path / "old.ckpt")
        fresh = self._ckpt_driver()
        load_checkpoint(fresh, ckpt)  # must not raise
        assert fresh.rounds == 2
