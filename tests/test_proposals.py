"""Tests for the local proposal kernels and the mixture."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lattice import composition_counts, random_configuration
from repro.proposals import (
    FlipProposal,
    MixtureProposal,
    MultiSwapProposal,
    NeighborSwapProposal,
    SwapProposal,
)
from repro.proposals.base import Move

SUPPRESS = [HealthCheck.function_scoped_fixture]


@pytest.fixture(params=["swap", "nbr", "flip", "multi"])
def proposal(request):
    return {
        "swap": SwapProposal(),
        "nbr": NeighborSwapProposal(),
        "flip": FlipProposal(),
        "multi": MultiSwapProposal(k=3),
    }[request.param]


class TestMoveContract:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None, suppress_health_check=SUPPRESS)
    def test_delta_energy_matches_hamiltonian(self, proposal, hea_small, seed):
        rng = np.random.default_rng(seed)
        cfg = random_configuration(hea_small.n_sites, [14, 14, 13, 13], rng=rng)
        e0 = hea_small.energy(cfg)
        move = proposal.propose(cfg, hea_small, rng, current_energy=e0)
        assert move is not None
        after = cfg.copy()
        move.apply(after)
        assert hea_small.energy(after) == pytest.approx(e0 + move.delta_energy, abs=1e-8)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None, suppress_health_check=SUPPRESS)
    def test_local_kernels_are_symmetric(self, proposal, hea_small, seed):
        rng = np.random.default_rng(seed)
        cfg = random_configuration(hea_small.n_sites, [14, 14, 13, 13], rng=rng)
        move = proposal.propose(cfg, hea_small, rng)
        assert move.log_q_ratio == 0.0

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None, suppress_health_check=SUPPRESS)
    def test_composition_preserved(self, proposal, hea_small, seed):
        if not proposal.preserves_composition:
            pytest.skip("non-conserving kernel")
        rng = np.random.default_rng(seed)
        cfg = random_configuration(hea_small.n_sites, [14, 14, 13, 13], rng=rng)
        before = composition_counts(cfg, 4)
        move = proposal.propose(cfg, hea_small, rng)
        move.apply(cfg)
        assert np.array_equal(composition_counts(cfg, 4), before)

    def test_proposal_does_not_mutate_input(self, proposal, hea_small):
        rng = np.random.default_rng(0)
        cfg = random_configuration(hea_small.n_sites, [14, 14, 13, 13], rng=rng)
        snapshot = cfg.copy()
        proposal.propose(cfg, hea_small, rng)
        assert np.array_equal(cfg, snapshot)


class TestSwapProposal:
    def test_require_distinct_avoids_identity(self, hea_small):
        rng = np.random.default_rng(0)
        cfg = random_configuration(hea_small.n_sites, [14, 14, 13, 13], rng=rng)
        for _ in range(50):
            move = SwapProposal(require_distinct=True).propose(cfg, hea_small, rng)
            assert cfg[move.sites[0]] != cfg[move.sites[1]]

    def test_flags(self):
        p = SwapProposal()
        assert p.preserves_composition and not p.is_global


class TestNeighborSwap:
    def test_swaps_are_neighbors(self, hea_small):
        rng = np.random.default_rng(1)
        cfg = random_configuration(hea_small.n_sites, [14, 14, 13, 13], rng=rng)
        table = hea_small.lattice.neighbor_shells(1)[0].table
        p = NeighborSwapProposal()
        for _ in range(30):
            move = p.propose(cfg, hea_small, rng)
            i, j = move.sites
            assert j in table[i]

    def test_second_shell(self, hea_small):
        rng = np.random.default_rng(2)
        cfg = random_configuration(hea_small.n_sites, [14, 14, 13, 13], rng=rng)
        table = hea_small.lattice.neighbor_shells(2)[1].table
        p = NeighborSwapProposal(shell=1)
        move = p.propose(cfg, hea_small, rng)
        i, j = move.sites
        assert j in table[i]


class TestFlipProposal:
    def test_always_changes_species(self, ising_4x4):
        rng = np.random.default_rng(3)
        cfg = rng.integers(0, 2, 16).astype(np.int8)
        p = FlipProposal()
        for _ in range(30):
            move = p.propose(cfg, ising_4x4, rng)
            assert move.new_values[0] != cfg[move.sites[0]]

    def test_not_composition_preserving(self):
        assert not FlipProposal().preserves_composition


class TestMultiSwap:
    def test_changes_at_most_2k_sites(self, hea_small):
        rng = np.random.default_rng(4)
        cfg = random_configuration(hea_small.n_sites, [14, 14, 13, 13], rng=rng)
        move = MultiSwapProposal(k=4).propose(cfg, hea_small, rng)
        assert move.n_sites_changed <= 8

    def test_k_validation(self):
        with pytest.raises(ValueError):
            MultiSwapProposal(k=0)


class TestMixture:
    def test_empirical_fractions_match_weights(self, hea_small):
        rng = np.random.default_rng(5)
        cfg = random_configuration(hea_small.n_sites, [14, 14, 13, 13], rng=rng)
        mix = MixtureProposal([(SwapProposal(), 0.8), (MultiSwapProposal(2), 0.2)])
        for _ in range(2000):
            mix.propose(cfg, hea_small, rng)
        fractions = mix.component_fractions()
        assert fractions[0] == pytest.approx(0.8, abs=0.05)

    def test_flags_combine(self):
        mix = MixtureProposal([(SwapProposal(), 1.0), (FlipProposal(), 1.0)])
        assert not mix.preserves_composition
        mix2 = MixtureProposal([(SwapProposal(), 1.0), (MultiSwapProposal(2), 1.0)])
        assert mix2.preserves_composition

    def test_validation(self):
        with pytest.raises(ValueError):
            MixtureProposal([])
        with pytest.raises(ValueError):
            MixtureProposal([(SwapProposal(), 0.0)])

    def test_move_is_valid(self, hea_small):
        rng = np.random.default_rng(6)
        cfg = random_configuration(hea_small.n_sites, [14, 14, 13, 13], rng=rng)
        mix = MixtureProposal([(SwapProposal(), 0.5), (NeighborSwapProposal(), 0.5)])
        e0 = hea_small.energy(cfg)
        move = mix.propose(cfg, hea_small, rng, current_energy=e0)
        after = cfg.copy()
        move.apply(after)
        assert hea_small.energy(after) == pytest.approx(e0 + move.delta_energy, abs=1e-9)


class TestMoveObject:
    def test_apply_writes_sites(self):
        cfg = np.zeros(5, dtype=np.int8)
        move = Move(sites=np.array([1, 3]), new_values=np.array([2, 1], dtype=np.int8),
                    delta_energy=0.0)
        move.apply(cfg)
        assert cfg.tolist() == [0, 2, 0, 1, 0]
