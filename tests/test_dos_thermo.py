"""Tests for thermodynamics-from-DoS and exact Ising references."""

import numpy as np
import pytest

from repro.dos import (
    exact_ising_dos_bruteforce,
    exact_ising_internal_energy,
    exact_ising_specific_heat,
    kaufman_log_partition,
    normalize_ln_g,
    onsager_critical_temperature,
    reweight_observable,
    thermodynamics,
)
from repro.dos.thermo import log_multinomial, log_total_states
from repro.util import logsumexp


@pytest.fixture(scope="module")
def ising_dos():
    return exact_ising_dos_bruteforce(4)


class TestThermodynamics:
    def test_two_level_system(self):
        """Analytic check: DoS {g0=1 at E=0, g1=2 at E=1}."""
        energies = np.array([0.0, 1.0])
        ln_g = np.log(np.array([1.0, 2.0]))
        t = 1.0
        tab = thermodynamics(energies, ln_g, [t])
        z = 1.0 + 2.0 * np.exp(-1.0)
        assert tab.log_z[0] == pytest.approx(np.log(z))
        u = 2.0 * np.exp(-1.0) / z
        assert tab.internal_energy[0] == pytest.approx(u)
        c = (2.0 * np.exp(-1.0) / z) - u**2
        assert tab.specific_heat[0] == pytest.approx(c)
        assert tab.free_energy[0] == pytest.approx(-np.log(z))
        assert tab.entropy[0] == pytest.approx(u + np.log(z))

    def test_matches_kaufman_across_temperatures(self, ising_dos):
        levels, degens = ising_dos
        temps = np.linspace(1.0, 5.0, 9)
        tab = thermodynamics(levels, np.log(degens), temps)
        for t, lz, u in zip(temps, tab.log_z, tab.internal_energy):
            assert lz == pytest.approx(kaufman_log_partition(4, 4, 1.0 / t), abs=1e-9)
            assert u == pytest.approx(exact_ising_internal_energy(4, 4, t), abs=1e-4)

    def test_specific_heat_matches_kaufman(self, ising_dos):
        levels, degens = ising_dos
        tab = thermodynamics(levels, np.log(degens), [2.0, 2.5, 3.0])
        for t, c in zip(tab.temperatures, tab.specific_heat):
            assert c == pytest.approx(exact_ising_specific_heat(4, 4, t), abs=1e-3)

    def test_shift_invariance_of_u_and_c(self, ising_dos):
        levels, degens = ising_dos
        tab1 = thermodynamics(levels, np.log(degens), [2.0])
        tab2 = thermodynamics(levels, np.log(degens) + 123.4, [2.0])
        assert tab1.internal_energy[0] == pytest.approx(tab2.internal_energy[0])
        assert tab1.specific_heat[0] == pytest.approx(tab2.specific_heat[0])

    def test_minus_inf_bins_dropped(self):
        energies = np.array([0.0, 1.0, 2.0])
        ln_g = np.array([0.0, -np.inf, 0.0])
        tab = thermodynamics(energies, ln_g, [1.0])
        z = 1.0 + np.exp(-2.0)
        assert tab.log_z[0] == pytest.approx(np.log(z))

    def test_kb_units(self, ising_dos):
        """With kb != 1, T in new units must reproduce the same physics."""
        levels, degens = ising_dos
        kb = 8.617e-5
        tab_red = thermodynamics(levels, np.log(degens), [2.0], kb=1.0)
        tab_ev = thermodynamics(levels, np.log(degens), [2.0 / kb], kb=kb)
        assert tab_red.internal_energy[0] == pytest.approx(tab_ev.internal_energy[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            thermodynamics([0.0], [0.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            thermodynamics([0.0, 1.0], [0.0, 0.0], [-1.0])
        with pytest.raises(ValueError):
            thermodynamics([0.0, 1.0], [-np.inf, -np.inf], [1.0])

    def test_per_site(self, ising_dos):
        levels, degens = ising_dos
        tab = thermodynamics(levels, np.log(degens), [2.0]).per_site(16)
        assert tab.internal_energy[0] == pytest.approx(
            exact_ising_internal_energy(4, 4, 2.0) / 16
        )

    def test_peak_temperature(self, ising_dos):
        levels, degens = ising_dos
        temps = np.linspace(1.5, 4.0, 60)
        tab = thermodynamics(levels, np.log(degens), temps)
        # Finite 4x4 lattice peaks near (slightly above) the Onsager Tc.
        assert 2.0 < tab.peak_temperature < 3.0


class TestNormalization:
    def test_normalize_total_states(self, ising_dos):
        levels, degens = ising_dos
        relative = np.log(degens) - np.log(degens).min() + 7.0
        normed = normalize_ln_g(relative, log_total_states(16, 2))
        assert logsumexp(normed) == pytest.approx(16 * np.log(2.0))
        # Normalization must recover the absolute values exactly here.
        assert np.allclose(normed, np.log(degens), atol=1e-9)

    def test_log_multinomial(self):
        assert log_multinomial([2, 2]) == pytest.approx(np.log(6.0))
        assert log_multinomial([1, 1, 1]) == pytest.approx(np.log(6.0))

    def test_minus_inf_preserved(self):
        out = normalize_ln_g(np.array([0.0, -np.inf]), 0.0)
        assert out[1] == -np.inf
        assert out[0] == pytest.approx(0.0)

    def test_all_inf_raises(self):
        with pytest.raises(ValueError):
            normalize_ln_g(np.array([-np.inf]), 0.0)


class TestReweighting:
    def test_constant_observable(self, ising_dos):
        levels, degens = ising_dos
        out = reweight_observable(levels, np.log(degens), np.full(levels.shape, 3.0), [1.0, 2.0])
        assert np.allclose(out, 3.0)

    def test_energy_observable_matches_internal_energy(self, ising_dos):
        levels, degens = ising_dos
        temps = [1.5, 2.5]
        out = reweight_observable(levels, np.log(degens), levels, temps)
        tab = thermodynamics(levels, np.log(degens), temps)
        assert np.allclose(out, tab.internal_energy)

    def test_nan_bins_excluded(self):
        energies = np.array([0.0, 1.0])
        ln_g = np.zeros(2)
        micro = np.array([2.0, np.nan])
        out = reweight_observable(energies, ln_g, micro, [1.0])
        assert out[0] == pytest.approx(2.0)

    def test_all_nan_raises(self):
        with pytest.raises(ValueError):
            reweight_observable([0.0], [0.0], [np.nan], [1.0])


class TestKaufman:
    def test_matches_bruteforce_3x5(self):
        levels, degens = exact_ising_dos_bruteforce(3, 5)
        for t in [1.2, 2.3, 4.0]:
            lz = logsumexp(np.log(degens) - levels / t)
            assert lz == pytest.approx(kaufman_log_partition(3, 5, 1.0 / t), abs=1e-9)

    def test_nonsquare_transpose_symmetric(self):
        assert kaufman_log_partition(3, 5, 0.4) == pytest.approx(
            kaufman_log_partition(5, 3, 0.4), abs=1e-9
        )

    def test_large_lattice_finite(self):
        lz = kaufman_log_partition(32, 32, 1.0 / 2.269)
        assert np.isfinite(lz)
        assert lz > 0

    def test_specific_heat_peak_near_onsager(self):
        """At 16x16 the C peak sits close to the infinite-lattice Tc."""
        temps = np.linspace(2.0, 2.6, 25)
        c = [exact_ising_specific_heat(16, 16, t) for t in temps]
        t_peak = temps[int(np.argmax(c))]
        assert abs(t_peak - onsager_critical_temperature()) < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            kaufman_log_partition(0, 4, 1.0)
        with pytest.raises(ValueError):
            kaufman_log_partition(4, 4, -1.0)

    def test_low_temperature_ground_state_limit(self):
        """As T→0, ln Z → −β·E₀ + ln 2 (two ground states)."""
        beta = 8.0
        lz = kaufman_log_partition(4, 4, beta)
        assert lz == pytest.approx(beta * 32.0 + np.log(2.0), rel=1e-6)
