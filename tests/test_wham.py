"""Tests for WHAM multi-histogram reweighting."""

import numpy as np
import pytest

from repro.dos import exact_ising_dos_bruteforce, thermodynamics, wham
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid, MetropolisSampler


def synthetic_histograms(levels, degens, betas, n_samples, seed=0):
    """Exact multinomial draws from the canonical distributions."""
    rng = np.random.default_rng(seed)
    ln_g = np.log(degens.astype(np.float64))
    hists = []
    for beta in betas:
        w = ln_g - beta * levels
        w -= w.max()
        p = np.exp(w)
        p /= p.sum()
        hists.append(rng.multinomial(n_samples, p))
    return np.asarray(hists)


class TestWhamExactInputs:
    def test_recovers_ising_dos(self):
        levels, degens = exact_ising_dos_bruteforce(4)
        betas = np.array([0.1, 0.25, 0.4, 0.6])
        hists = synthetic_histograms(levels, degens, betas, 300_000)
        result = wham(levels, hists, betas)
        assert result.converged
        exact_rel = np.log(degens) - np.log(degens).min()
        est = result.ln_g[result.supported]
        # Compare on well-sampled bins only (tails carry shot noise).
        good = result.supported & (hists.sum(axis=0) > 500)
        err = np.abs(
            (result.ln_g[good] - result.ln_g[good][0])
            - (exact_rel[good] - exact_rel[good][0])
        )
        assert err.max() < 0.1

    def test_thermodynamics_from_wham_match(self):
        levels, degens = exact_ising_dos_bruteforce(4)
        betas = np.array([0.2, 0.35, 0.5])
        hists = synthetic_histograms(levels, degens, betas, 400_000, seed=1)
        result = wham(levels, hists, betas)
        good = result.supported
        tab_est = thermodynamics(levels[good], result.ln_g[good], [2.5, 3.5])
        tab_ref = thermodynamics(levels, np.log(degens), [2.5, 3.5])
        assert np.allclose(tab_est.internal_energy, tab_ref.internal_energy, atol=0.2)

    def test_single_run_reduces_to_boltzmann_inversion(self):
        """K = 1: ln g(E) = ln H(E) + beta·E up to a constant."""
        levels, degens = exact_ising_dos_bruteforce(4)
        beta = 0.3
        hists = synthetic_histograms(levels, degens, [beta], 500_000, seed=2)
        result = wham(levels, hists, [beta])
        good = result.supported & (hists[0] > 1_000)
        expected = np.log(hists[0, good]) + beta * levels[good]
        expected -= expected.min()
        est = result.ln_g[good] - result.ln_g[good].min()
        assert np.allclose(est, expected, atol=0.02)

    def test_unvisited_bins_minus_inf(self):
        energies = np.array([0.0, 1.0, 2.0])
        hists = np.array([[10, 0, 5]])
        result = wham(energies, hists, [1.0])
        assert result.ln_g[1] == -np.inf
        assert result.supported.tolist() == [True, False, True]


class TestWhamFromRealChains:
    def test_wham_agrees_with_enumeration_from_mc_runs(self):
        """End-to-end: Metropolis runs -> histograms -> WHAM -> exact DoS."""
        ham = IsingHamiltonian(square_lattice(4))
        levels, degens = exact_ising_dos_bruteforce(4)
        grid = EnergyGrid.from_levels(levels)
        betas = [0.15, 0.3, 0.5]
        hists = np.zeros((len(betas), grid.n_bins), dtype=np.int64)
        for k, beta in enumerate(betas):
            sampler = MetropolisSampler(
                ham, FlipProposal(), beta, np.zeros(16, dtype=np.int8), rng=k
            )
            sampler.run(3_000)
            for _ in range(60_000):
                sampler.step()
                hists[k, grid.index(sampler.energy)] += 1
        result = wham(grid.centers, hists, betas)
        assert result.converged
        good = result.supported & (hists.sum(axis=0) > 300)
        exact_rel = np.log(degens)
        err = np.abs(
            (result.ln_g[good] - result.ln_g[good][0])
            - (exact_rel[good] - exact_rel[good][0])
        )
        assert err.max() < 0.25


class TestWhamValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            wham([0.0, 1.0], np.zeros((2, 3)), [0.1, 0.2])

    def test_negative_counts(self):
        with pytest.raises(ValueError):
            wham([0.0, 1.0], np.array([[-1, 2]]), [0.1])

    def test_empty_run(self):
        with pytest.raises(ValueError):
            wham([0.0, 1.0], np.array([[0, 0]]), [0.1])

    def test_not_1d_energies(self):
        with pytest.raises(ValueError):
            wham(np.zeros((2, 2)), np.zeros((1, 4)), [0.1])

    def test_nonconvergence_reported(self):
        levels, degens = exact_ising_dos_bruteforce(4)
        hists = synthetic_histograms(levels, degens, [0.1, 0.5], 10_000, seed=3)
        result = wham(levels, hists, [0.1, 0.5], max_iterations=2)
        assert not result.converged
        assert result.n_iterations == 2
