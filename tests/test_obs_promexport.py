"""Tests for repro.obs.promexport: OpenMetrics exposition validity."""

import re

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import (
    CONTENT_TYPE,
    render_openmetrics,
    sanitize_metric_name,
)


def _sample_lines(text: str) -> list[str]:
    return [l for l in text.splitlines() if l and not l.startswith("#")]


class TestNameSanitization:
    def test_dotted_names_fold_to_underscores(self):
        assert sanitize_metric_name("rewl.window.ln_f") == "rewl_window_ln_f"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_already_valid_untouched(self):
        assert sanitize_metric_name("task_retries_total") == "task_retries_total"


class TestExposition:
    def test_counter_gets_total_suffix_and_type_line(self):
        reg = MetricsRegistry()
        reg.inc("rewl.steps", 42)
        text = render_openmetrics(reg.as_dict())
        assert "# TYPE rewl_steps counter" in text
        assert "rewl_steps_total 42" in text

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.set("rewl.eta_rounds", 12.5)
        text = render_openmetrics(reg.as_dict())
        assert "# TYPE rewl_eta_rounds gauge" in text
        assert "rewl_eta_rounds 12.5" in text

    def test_histogram_cumulative_buckets_count_sum(self):
        reg = MetricsRegistry()
        for v in (0.05, 0.5, 5.0):
            reg.observe("span.s", v, buckets=(0.1, 1.0))
        text = render_openmetrics(reg.as_dict())
        assert "# TYPE span_s histogram" in text
        assert 'span_s_bucket{le="0.1"} 1' in text
        assert 'span_s_bucket{le="1"} 2' in text
        assert 'span_s_bucket{le="+Inf"} 3' in text
        assert "span_s_count 3" in text
        assert "span_s_sum 5.55" in text

    def test_labels_rendered_and_escaped(self):
        reg = MetricsRegistry()
        reg.set("g", 1.0, labels={"path": 'a\\b"c\nd'})
        text = render_openmetrics(reg.as_dict())
        assert 'g{path="a\\\\b\\"c\\nd"} 1' in text

    def test_one_type_line_per_family_series_contiguous(self):
        reg = MetricsRegistry()
        for w in range(3):
            reg.set("window.ln_f", 1.0 / (w + 1), labels={"window": w})
        text = render_openmetrics(reg.as_dict())
        assert text.count("# TYPE window_ln_f gauge") == 1
        # The three series lines follow the TYPE line with nothing between.
        lines = text.splitlines()
        i = lines.index("# TYPE window_ln_f gauge")
        family = lines[i + 1:i + 4]
        assert all(l.startswith("window_ln_f{window=") for l in family)

    def test_ends_with_eof(self):
        assert render_openmetrics({}).rstrip().endswith("# EOF")

    def test_every_sample_line_is_well_formed(self):
        reg = MetricsRegistry()
        reg.inc("a.b", 1)
        reg.set("c.d", -2.5, labels={"k": "v"})
        reg.observe("e.f", 0.2, buckets=(1.0,))
        pattern = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"'
            r'(,[a-zA-Z0-9_]+="[^"]*")*\})? \S+$'
        )
        for line in _sample_lines(render_openmetrics(reg.as_dict())):
            assert pattern.match(line), line

    def test_counter_monotonic_across_snapshots(self):
        reg = MetricsRegistry()
        reg.inc("steps", 10)
        first = render_openmetrics(reg.as_dict())
        reg.inc("steps", 5)
        second = render_openmetrics(reg.as_dict())

        def value(text):
            for line in _sample_lines(text):
                if line.startswith("steps_total"):
                    return float(line.split()[-1])
            raise AssertionError("steps_total missing")

        assert value(second) >= value(first)
        assert value(second) == 15

    def test_nan_and_inf_values(self):
        text = render_openmetrics({
            "g": {"kind": "gauge", "value": float("nan")},
            "h": {"kind": "gauge", "value": float("inf")},
        })
        assert "g NaN" in text
        assert "h +Inf" in text

    def test_prefix(self):
        reg = MetricsRegistry()
        reg.inc("steps")
        text = render_openmetrics(reg.as_dict(), prefix="repro.")
        assert "repro_steps_total 1" in text

    def test_content_type_is_prometheus_text(self):
        assert CONTENT_TYPE.startswith("text/plain")

    def test_pure_function_no_registry_mutation(self):
        reg = MetricsRegistry()
        reg.inc("a", 2, labels={"w": 0})
        before = reg.as_dict()
        render_openmetrics(before)
        assert reg.as_dict() == before
