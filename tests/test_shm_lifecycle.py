"""Shared-memory lifecycle tests: segment creation, zero-copy attach,
unlink-on-close, and the no-leak contract under worker death and injected
faults.

Run directly (``python -m pytest tests/test_shm_lifecycle.py``) and as the
shm leg of the CI chaos matrix (``REPRO_FAULTS`` set in the environment).
"""

import numpy as np
import pytest

from repro.faults import FAULTS_ENV_VAR
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.parallel import (
    REWLConfig,
    REWLDriver,
    SharedMemoryCommunicator,
    ShmWorld,
)
from repro.proposals import FlipProposal
from repro.resilience import GuardPolicy, ResilienceConfig
from repro.sampling import EnergyGrid


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    from repro.parallel.comm import _attach_segment

    try:
        seg = _attach_segment(name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


def _shm_driver(*, shm_ranks=1, resilience=None, seed=11):
    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    return REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                          exchange_interval=200, ln_f_final=5e-2, seed=seed,
                          backend="shm", shm_ranks=shm_ranks),
        resilience=resilience,
    )


class TestShmWorld:
    def test_alloc_attach_write_read_unlink(self):
        world = ShmWorld(2)
        host_view = world.alloc_array("table", (4, 3), np.float64)
        names = world.segment_names
        assert len(names) == 2  # mailbox + the array
        assert all(_segment_exists(n) for n in names)

        # A communicator on the handle maps the same bytes, zero-copy.
        comm = SharedMemoryCommunicator(world=world.handle(), rank=0)
        rank_view = comm.shared_array("table")
        host_view[2, 1] = 7.5
        assert rank_view[2, 1] == 7.5
        rank_view[0, 0] = -1.0
        assert host_view[0, 0] == -1.0
        comm.close()  # detaches only — segments stay linked
        assert all(_segment_exists(n) for n in names)

        world.close()
        assert not any(_segment_exists(n) for n in names)
        assert world.segment_names == []

    def test_close_is_idempotent(self):
        world = ShmWorld(1)
        world.close()
        world.close()

    def test_duplicate_array_name_rejected(self):
        world = ShmWorld(1)
        try:
            world.alloc_array("x", (2,), np.int64)
            with pytest.raises(ValueError, match="already allocated"):
                world.alloc_array("x", (2,), np.int64)
        finally:
            world.close()

    def test_unknown_array_name_rejected(self):
        world = ShmWorld(1)
        try:
            comm = SharedMemoryCommunicator(world=world.handle(), rank=0)
            with pytest.raises(KeyError, match="unknown shared array"):
                comm.shared_array("nope")
        finally:
            world.close()


class TestDriverLifecycle:
    def test_run_then_close_unlinks_every_segment(self):
        drv = _shm_driver(shm_ranks=2)
        names = drv._engine.world.segment_names
        assert names and all(_segment_exists(n) for n in names)
        drv.run(max_rounds=3)
        procs = list(drv._engine._proc.values())
        assert procs and all(p.is_alive() for p in procs)
        drv.close()
        assert not any(p.is_alive() for p in procs)
        assert not any(_segment_exists(n) for n in names)

    def test_close_without_run_unlinks(self):
        drv = _shm_driver()
        names = drv._engine.world.segment_names
        drv.close()
        assert not any(_segment_exists(n) for n in names)

    def test_worker_kill_is_healed_and_segments_unlink(self):
        """A killed worker rank is respawned (its windows handed to the
        supervisor), the campaign finishes, and close() still unlinks."""
        drv = _shm_driver(
            shm_ranks=1,
            resilience=ResilienceConfig(
                guards=GuardPolicy(mode="quarantine", max_rollbacks=1)
            ),
        )
        engine = drv._engine
        names = engine.world.segment_names
        try:
            engine.start()
            victim = engine._proc[1]
            victim.kill()
            victim.join(timeout=5.0)
            assert not victim.is_alive()
            drv.run(max_rounds=5)
            # The rank was respawned and later rounds kept stepping.
            assert engine._proc[1] is not victim
            assert drv.supervisor.summary()["task_failures"] >= 1
        finally:
            drv.close()
        assert not any(_segment_exists(n) for n in names)

    def test_no_leak_under_injected_faults(self, monkeypatch):
        """Crash/hang chaos inside the worker ranks (absorbed by rank-side
        retries) must leave no /dev/shm entry behind."""
        monkeypatch.setenv(FAULTS_ENV_VAR,
                           "crash=0.2,hang=0.05,hang_s=0.01,seed=4")
        drv = _shm_driver(
            shm_ranks=2,
            resilience=ResilienceConfig(
                guards=GuardPolicy(mode="quarantine", max_rollbacks=1)
            ),
        )
        names = drv._engine.world.segment_names
        try:
            drv.run(max_rounds=5)
        finally:
            drv.close()
        assert not any(_segment_exists(n) for n in names)

    def test_faulted_run_matches_clean_run(self, monkeypatch):
        """Retries restart a faulted advance from the same shared state, so
        a chaos run that survives is bit-identical to the clean run."""
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        drv = _shm_driver(shm_ranks=1)
        try:
            clean = drv.run(max_rounds=20)
        finally:
            drv.close()

        monkeypatch.setenv(FAULTS_ENV_VAR, "crash=0.2,seed=7")
        drv = _shm_driver(shm_ranks=1)
        try:
            chaotic = drv.run(max_rounds=20)
        finally:
            drv.close()
        assert chaotic.rounds == clean.rounds
        assert chaotic.total_steps == clean.total_steps
        for a, b in zip(chaotic.window_ln_g, clean.window_ln_g):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(chaotic.exchange_attempts,
                                      clean.exchange_attempts)
        np.testing.assert_array_equal(chaotic.exchange_accepts,
                                      clean.exchange_accepts)
