"""Tests for SRO, transition detection, autocorrelation, and flatness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    autocorrelation_function,
    count_round_trips,
    effective_sample_size,
    histogram_flatness,
    integrated_autocorrelation_time,
    pair_counts,
    peak_full_width_half_max,
    sro_matrix_table,
    transition_temperature,
    warren_cowley,
)
from repro.lattice import NBMOTAW, bcc, equiatomic_counts, random_configuration, square_lattice


class TestWarrenCowley:
    def test_random_alloy_near_zero(self):
        """SRO of a large random configuration is ~0 for every pair."""
        lat = bcc(6)
        rng = np.random.default_rng(0)
        alphas = []
        for seed in range(12):
            cfg = random_configuration(lat.n_sites, equiatomic_counts(lat.n_sites, 4), rng=seed)
            alphas.append(warren_cowley(lat, cfg, 4))
        mean_alpha = np.mean(alphas, axis=0)
        # Statistical tolerance: per-config α fluctuates ~1/√(N·z·c) ≈ 0.06;
        # averaging 12 seeds brings the expected spread well under 0.05.
        assert np.abs(mean_alpha).max() < 0.05

    def test_b2_order_signs(self):
        """Perfect B2 (A on one sublattice, B on the other): α_AB = −1 on
        shell 1 (all neighbors unlike) and α_AA = +1."""
        lat = bcc(4)
        grid = lat.site_grid()
        cfg = grid[:, 3].astype(np.int8)  # species = basis slot
        alpha = warren_cowley(lat, cfg, 2, shell=0)
        assert alpha[0, 1] == pytest.approx(-1.0)
        assert alpha[0, 0] == pytest.approx(1.0)

    def test_b2_second_shell_like_neighbors(self):
        lat = bcc(4)
        cfg = lat.site_grid()[:, 3].astype(np.int8)
        alpha = warren_cowley(lat, cfg, 2, shell=1)
        # Second shell connects same sublattice: all like pairs.
        assert alpha[0, 0] == pytest.approx(-1.0)
        assert alpha[0, 1] == pytest.approx(1.0)

    def test_sum_rule(self):
        """Σ_j c_j (1 − α_ij) = 1 exactly for every i."""
        lat = bcc(3)
        cfg = random_configuration(lat.n_sites, equiatomic_counts(lat.n_sites, 4), rng=1)
        conc = np.bincount(cfg.astype(np.int64), minlength=4) / lat.n_sites
        alpha = warren_cowley(lat, cfg, 4)
        for i in range(4):
            total = np.nansum(conc * (1.0 - alpha[i]))
            assert total == pytest.approx(1.0, abs=1e-12)

    def test_pair_counts_symmetric_and_total(self):
        lat = square_lattice(4)
        cfg = random_configuration(16, [8, 8], rng=2)
        table = lat.neighbor_shells(1)[0].table
        counts = pair_counts(cfg, table, 2)
        assert np.array_equal(counts, counts.T)
        assert counts.sum() == 16 * 4  # all directed pairs

    def test_absent_species_nan(self):
        lat = square_lattice(4)
        cfg = np.zeros(16, dtype=np.int8)
        alpha = warren_cowley(lat, cfg, 2)
        assert np.isnan(alpha[1, 0])
        assert alpha[0, 0] == pytest.approx(0.0)

    def test_table_rendering(self):
        alpha = np.zeros((4, 4))
        out = sro_matrix_table(alpha, NBMOTAW.names)
        assert "Nb" in out and "+0.0000" in out

    def test_table_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            sro_matrix_table(np.zeros((2, 2)), NBMOTAW.names)


class TestTransition:
    def test_parabola_vertex_recovered(self):
        t = np.linspace(1.0, 3.0, 21)
        c = 5.0 - (t - 2.13) ** 2
        tc, cmax = transition_temperature(t, c)
        assert tc == pytest.approx(2.13, abs=1e-6)
        assert cmax == pytest.approx(5.0, abs=1e-6)

    def test_boundary_peak_fallback(self):
        t = np.array([1.0, 2.0, 3.0])
        c = np.array([3.0, 2.0, 1.0])
        tc, cmax = transition_temperature(t, c)
        assert tc == 1.0 and cmax == 3.0

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            transition_temperature([1.0, 2.0], [1.0, 2.0])

    def test_fwhm_gaussian(self):
        t = np.linspace(-5, 5, 400)
        sigma = 0.7
        c = np.exp(-(t**2) / (2 * sigma**2))
        fwhm = peak_full_width_half_max(t, c)
        assert fwhm == pytest.approx(2.3548 * sigma, rel=0.02)

    def test_fwhm_nan_when_no_crossing(self):
        t = np.linspace(0, 1, 10)
        c = np.ones(10)
        assert np.isnan(peak_full_width_half_max(t, c))


class TestAutocorrelation:
    def test_white_noise_tau_half(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=20_000)
        tau = integrated_autocorrelation_time(x)
        assert tau == pytest.approx(0.5, abs=0.1)

    def test_ar1_known_tau(self):
        """AR(1) with coefficient ρ has τ_int = 1/2 + ρ/(1−ρ)... exactly
        τ_int = (1+ρ)/(2(1−ρ))."""
        rho = 0.8
        rng = np.random.default_rng(1)
        n = 200_000
        x = np.empty(n)
        x[0] = 0.0
        noise = rng.normal(size=n)
        for k in range(1, n):
            x[k] = rho * x[k - 1] + noise[k]
        tau = integrated_autocorrelation_time(x)
        expected = (1 + rho) / (2 * (1 - rho))
        assert tau == pytest.approx(expected, rel=0.15)

    def test_rho_zero_lag_is_one(self):
        x = np.random.default_rng(2).normal(size=500)
        rho = autocorrelation_function(x, max_lag=10)
        assert rho[0] == pytest.approx(1.0)

    def test_ess_white_noise(self):
        x = np.random.default_rng(3).normal(size=10_000)
        assert effective_sample_size(x) == pytest.approx(10_000, rel=0.2)

    def test_short_series_raises(self):
        with pytest.raises(ValueError):
            autocorrelation_function([1.0])

    def test_constant_series_handled(self):
        rho = autocorrelation_function(np.ones(100))
        assert rho[0] == pytest.approx(1.0)
        assert np.allclose(rho[1:], 0.0)


class TestFlatness:
    def test_perfectly_flat(self):
        assert histogram_flatness(np.full(10, 7)) == pytest.approx(1.0)

    def test_empty_bin_gives_zero(self):
        assert histogram_flatness(np.array([5, 0, 5])) == 0.0

    def test_mask_restricts(self):
        h = np.array([10, 0, 10])
        mask = np.array([True, False, True])
        assert histogram_flatness(h, mask) == pytest.approx(1.0)

    def test_empty_after_mask(self):
        assert histogram_flatness(np.array([1.0]), np.array([False])) == 0.0


class TestRoundTrips:
    def test_simple_round_trip(self):
        trace = [0, 5, 9, 5, 0, 5, 9, 0]
        assert count_round_trips(trace, n_bins=10) == 2

    def test_no_trip_without_reaching_high(self):
        assert count_round_trips([0, 3, 0, 3, 0], n_bins=10) == 0

    def test_empty_trace(self):
        assert count_round_trips([], n_bins=10) == 0

    def test_edge_fraction_validation(self):
        with pytest.raises(ValueError):
            count_round_trips([0, 1], n_bins=10, edge_fraction=0.6)

    @given(st.lists(st.integers(0, 19), min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_never_negative_and_bounded(self, trace):
        trips = count_round_trips(trace, n_bins=20)
        assert 0 <= trips <= len(trace) // 2 + 1
