"""Tests for repro.util rng / tables / validation."""

import time

import numpy as np
import pytest

from repro.obs.tracing import Timer, TimerRegistry
from repro.util.rng import BufferedDraws, RngFactory, as_generator, spawn_generators
from repro.util.tables import format_series, format_table
from repro.util.validation import (
    check_array_shape,
    check_in_range,
    check_integer,
    check_positive,
    check_probability,
)


class TestRng:
    def test_as_generator_from_int(self):
        g1 = as_generator(7)
        g2 = as_generator(7)
        assert g1.random() == g2.random()

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_spawn_independent(self):
        gens = spawn_generators(0, 3)
        draws = [g.random(4) for g in gens]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_factory_deterministic(self):
        a = RngFactory(42).make("walker", 3).random(5)
        b = RngFactory(42).make("walker", 3).random(5)
        assert np.allclose(a, b)

    def test_factory_component_independence(self):
        f = RngFactory(42)
        a = f.make("walker", 0).random(5)
        b = f.make("driver", 0).random(5)
        assert not np.allclose(a, b)

    def test_factory_index_independence(self):
        f = RngFactory(42)
        assert f.make("w", 0).random() != f.make("w", 1).random()

    def test_factory_order_independence(self):
        f1 = RngFactory(9)
        x1 = f1.make("a", 0).random()
        _ = f1.make("b", 0).random()
        f2 = RngFactory(9)
        _ = f2.make("b", 0).random()
        x2 = f2.make("a", 0).random()
        assert x1 == x2

    def test_seed_for_is_stable(self):
        assert RngFactory(1).seed_for("x", 2) == RngFactory(1).seed_for("x", 2)


class TestBufferedDraws:
    def test_uniform_in_range(self):
        draws = BufferedDraws(np.random.default_rng(0), block=16)
        for _ in range(100):  # force several refills
            assert 0.0 <= draws.random() < 1.0

    def test_integers_in_range_and_uniformish(self):
        draws = BufferedDraws(np.random.default_rng(1))
        vals = [draws.integers(5) for _ in range(5_000)]
        assert min(vals) == 0 and max(vals) == 4
        counts = np.bincount(vals, minlength=5)
        assert counts.min() > 800  # roughly uniform

    def test_non_scalar_calls_delegate(self):
        draws = BufferedDraws(np.random.default_rng(2))
        arr = draws.random(size=7)
        assert arr.shape == (7,)
        ints = draws.integers(0, 10, size=4)
        assert ints.shape == (4,)

    def test_attribute_delegation(self):
        draws = BufferedDraws(np.random.default_rng(3))
        assert draws.standard_normal(3).shape == (3,)
        draws.shuffle(np.arange(5))  # must not raise

    def test_deterministic_per_seed(self):
        a = BufferedDraws(np.random.default_rng(4))
        b = BufferedDraws(np.random.default_rng(4))
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_pickle_round_trip_continues_stream(self):
        import pickle

        draws = BufferedDraws(np.random.default_rng(5), block=8)
        before = [draws.random() for _ in range(5)]
        clone = pickle.loads(pickle.dumps(draws))
        assert [draws.random() for _ in range(10)] == [clone.random() for _ in range(10)]

    def test_as_generator_passthrough(self):
        draws = BufferedDraws(np.random.default_rng(6))
        assert as_generator(draws) is draws

    def test_wrapping_buffered_unwraps(self):
        gen = np.random.default_rng(7)
        double = BufferedDraws(BufferedDraws(gen))
        assert double.generator is gen


class TestTimers:
    def test_context_manager_accumulates(self):
        t = Timer("t")
        with t:
            time.sleep(0.005)
        with t:
            time.sleep(0.005)
        assert t.count == 2
        assert t.total >= 0.008

    def test_double_start_raises(self):
        t = Timer("t")
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer("t").stop()

    def test_mean_empty_is_zero(self):
        assert Timer("t").mean == 0.0

    def test_registry_creates_and_reports(self):
        reg = TimerRegistry()
        with reg["phase.a"]:
            pass
        assert "phase.a" in reg
        assert "phase.a" in reg.report()
        assert reg.as_dict()["phase.a"]["count"] == 1


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "b"], [[1, 2.5], [3, None]])
        assert "a" in out and "2.5" in out and "-" in out

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_series_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1])

    def test_series_contains_labels(self):
        out = format_series("s", [1], [2], xlabel="T", ylabel="C")
        assert "T" in out and "C" in out


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_range(self):
        assert check_in_range("x", 1, 0, 2) == 1
        with pytest.raises(ValueError):
            check_in_range("x", 0, 0, 2, inclusive=False)

    def test_check_integer_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_integer("n", True)
        with pytest.raises(TypeError):
            check_integer("n", 1.5)
        with pytest.raises(ValueError):
            check_integer("n", 0, minimum=1)

    def test_check_array_shape_wildcard(self):
        a = np.zeros((3, 4))
        check_array_shape("a", a, (3, None))
        with pytest.raises(ValueError):
            check_array_shape("a", a, (4, None))
