"""Batched multi-walker Wang-Landau: correctness and bit-identity.

Three contracts from the kernels redesign:

1. ``batch_size=1`` changes nothing — :func:`make_wang_landau` returns the
   plain scalar sampler, so single-walker trajectories stay bit-identical
   to the pre-kernel implementation (same RNG draw sequence and all).
2. ``batch_size=K>1`` is a *different but correct* sampler: K walkers
   sharing one ln g recover the exact 4x4 Ising density of states within
   the same tolerance the scalar E1 validation uses.
3. The REWL driver's ``batched_walkers`` mode converges, exchanges between
   slots, stitches windows within tolerance, and round-trips through
   checkpoints bit-identically.
"""

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian, enumerate_density_of_states
from repro.lattice import square_lattice
from repro.parallel import REWLConfig, REWLDriver
from repro.parallel.checkpoint import load_checkpoint, save_checkpoint
from repro.proposals import FlipProposal
from repro.sampling import (
    BatchedWangLandauSampler,
    EnergyGrid,
    WangLandauSampler,
    WLConfig,
    make_wang_landau,
)


@pytest.fixture(scope="module")
def ising():
    return IsingHamiltonian(square_lattice(4))


@pytest.fixture(scope="module")
def grid(ising):
    return EnergyGrid.from_levels(ising.energy_levels())


def exact_table(ising):
    levels, degens = enumerate_density_of_states(ising)
    return {float(e): float(np.log(d)) for e, d in zip(levels, degens)}


def max_rel_error(result, exact):
    centers = result.grid.centers
    mg = result.masked_ln_g()
    est, ex = [], []
    for k in np.nonzero(result.visited)[0]:
        e = float(centers[k])
        if e in exact:
            est.append(mg[k])
            ex.append(exact[e])
    est = np.array(est) - est[0]
    ex = np.array(ex) - ex[0]
    return np.abs(est - ex).max()


class TestBatchSizeOneIsScalar:
    def test_factory_returns_scalar_sampler(self, ising, grid):
        wl = make_wang_landau(
            hamiltonian=ising, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8), rng=0,
            config=WLConfig(batch_size=1),
        )
        assert type(wl) is WangLandauSampler

    def test_single_row_2d_initial_is_squeezed(self, ising, grid):
        wl = make_wang_landau(
            hamiltonian=ising, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros((1, 16), dtype=np.int8), rng=0,
        )
        assert type(wl) is WangLandauSampler
        assert wl.config.shape == (16,)

    def test_multirow_initial_with_batch_one_raises(self, ising, grid):
        with pytest.raises(ValueError, match="rows"):
            make_wang_landau(
                hamiltonian=ising, proposal=FlipProposal(), grid=grid,
                initial_config=np.zeros((3, 16), dtype=np.int8), rng=0,
                config=WLConfig(batch_size=1),
            )

    def test_trajectory_bit_identical_to_direct_scalar(self, ising, grid):
        """Same seed through the factory and the class: identical runs."""
        a = make_wang_landau(
            hamiltonian=ising, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8), rng=7,
            config=WLConfig(ln_f_final=1e-2),
        )
        b = WangLandauSampler(
            hamiltonian=ising, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8), rng=7,
            config=WLConfig(ln_f_final=1e-2),
        )
        res_a = a.run(max_steps=30_000)
        res_b = b.run(max_steps=30_000)
        assert res_a.n_steps == res_b.n_steps
        assert np.array_equal(res_a.ln_g, res_b.ln_g)
        assert np.array_equal(res_a.histogram, res_b.histogram)
        assert np.array_equal(a.config, b.config)


class TestBatchedSampler:
    def test_factory_returns_batched_for_k_gt_1(self, ising, grid):
        wl = make_wang_landau(
            hamiltonian=ising, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8), rng=0,
            config=WLConfig(batch_size=4),
        )
        assert type(wl) is BatchedWangLandauSampler
        assert wl.n_slots == 4

    def test_2d_initial_fixes_batch_size(self, ising, grid):
        configs = np.zeros((3, 16), dtype=np.int8)
        wl = BatchedWangLandauSampler(
            hamiltonian=ising, proposal=FlipProposal(), grid=grid,
            initial_config=configs, rng=0, config=WLConfig(batch_size=8),
        )
        assert wl.n_slots == 3
        assert wl.cfg.batch_size == 3

    def test_out_of_grid_initial_raises(self, ising):
        narrow = EnergyGrid.uniform(-32.0, -20.0, 8)
        with pytest.raises(ValueError, match="outside the grid"):
            BatchedWangLandauSampler(
                hamiltonian=ising, proposal=FlipProposal(), grid=narrow,
                initial_config=np.eye(4, dtype=np.int8)[0].repeat(4),
                rng=0, config=WLConfig(batch_size=4),
            )

    def test_step_batch_counts_walker_steps(self, ising, grid):
        wl = BatchedWangLandauSampler(
            hamiltonian=ising, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8), rng=0,
            config=WLConfig(batch_size=5),
        )
        wl.step_batch()
        assert wl.n_steps == 5
        assert wl.histogram.sum() == 5  # one deposit per walker
        wl.steps(3)
        assert wl.n_steps == 20
        assert np.array_equal(wl.slot_steps, np.full(5, 4))

    def test_flatness_and_fill_fractions(self, ising, grid):
        wl = BatchedWangLandauSampler(
            hamiltonian=ising, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8), rng=0,
            config=WLConfig(batch_size=4),
        )
        assert wl.flatness_fraction() == 0.0
        assert wl.fill_fraction() == 0.0
        wl.steps(100)
        counts = wl.histogram[wl.visited]
        assert wl.flatness_fraction() == pytest.approx(
            counts.min() / counts.mean())
        assert wl.fill_fraction() == pytest.approx(
            np.count_nonzero(wl.visited) / wl.visited.shape[0])

    def test_slot_accessors_roundtrip(self, ising, grid):
        wl = BatchedWangLandauSampler(
            hamiltonian=ising, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8), rng=0,
            config=WLConfig(batch_size=2),
        )
        cfg = np.ones(16, dtype=np.int8)
        e = ising.energy(cfg)
        wl.set_slot(1, cfg, e, grid.index(e))
        assert wl.slot_energy(1) == e
        assert wl.slot_bin(1) == grid.index(e)
        assert np.array_equal(wl.slot_config(1), cfg)
        # slot 0 untouched
        assert wl.slot_energy(0) == ising.energy(np.zeros(16, dtype=np.int8))

    def test_k4_recovers_exact_dos(self, ising, grid):
        """E1 validation at batch_size=4: same tolerance as the scalar test."""
        wl = make_wang_landau(
            hamiltonian=ising, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8), rng=0,
            config=WLConfig(batch_size=4, ln_f_final=1e-5),
        )
        res = wl.run(max_steps=5_000_000)
        assert res.converged
        assert max_rel_error(res, exact_table(ising)) < 0.4


class TestBatchedREWL:
    @pytest.fixture(scope="class")
    def batched_result(self):
        ham = IsingHamiltonian(square_lattice(4))
        grid = EnergyGrid.from_levels(ham.energy_levels())
        driver = REWLDriver(
            hamiltonian=ham, proposal_factory=lambda: FlipProposal(),
            grid=grid, initial_config=np.zeros(16, dtype=np.int8),
            config=REWLConfig(n_windows=3, walkers_per_window=2, overlap=0.6,
                              exchange_interval=1500, ln_f_final=3e-4, seed=1,
                              batched_walkers=True),
        )
        return driver.run()

    def test_converges(self, batched_result):
        assert batched_result.converged
        assert all(it >= 10 for it in batched_result.window_iterations)

    def test_stitched_matches_exact(self, batched_result):
        ising = IsingHamiltonian(square_lattice(4))
        exact = exact_table(ising)
        stitched = batched_result.stitched()
        pairs = [
            (v, exact[float(e)])
            for e, v in zip(stitched.energies(), stitched.values())
            if float(e) in exact
        ]
        est = np.array([p[0] for p in pairs])
        ex = np.array([p[1] for p in pairs])
        err = np.abs((est - est[0]) - (ex - ex[0]))
        assert err.max() < 0.5

    def test_one_snapshot_per_slot(self, batched_result):
        # 3 windows x 2 slots
        assert len(batched_result.walkers) == 6
        for snap in batched_result.walkers:
            assert snap.n_steps > 0

    def test_checkpoint_roundtrip_bit_identical(self, tmp_path):
        """run(A+B) == run(A) -> checkpoint -> restore -> run(B), batched."""
        ham = IsingHamiltonian(square_lattice(4))
        grid = EnergyGrid.from_levels(ham.energy_levels())

        def make_driver():
            return REWLDriver(
                hamiltonian=ham, proposal_factory=lambda: FlipProposal(),
                grid=grid, initial_config=np.zeros(16, dtype=np.int8),
                config=REWLConfig(n_windows=2, walkers_per_window=2,
                                  overlap=0.6, exchange_interval=300,
                                  ln_f_final=1e-6, seed=5,
                                  batched_walkers=True),
            )

        straight = make_driver()
        straight.run(max_rounds=6)
        ref = straight.result()

        first = make_driver()
        first.run(max_rounds=3)
        ckpt = save_checkpoint(first, tmp_path / "batched.ckpt")

        resumed = make_driver()
        load_checkpoint(resumed, ckpt)
        resumed.run(max_rounds=6)
        res = resumed.result()

        assert res.rounds == ref.rounds
        for a, b in zip(ref.window_ln_g, res.window_ln_g):
            assert np.array_equal(a, b)
        assert np.array_equal(ref.exchange_accepts, res.exchange_accepts)
