"""Tests for the conditional MADE model and its proposal.

The key correctness property is the state-dependent-conditioning MH
correction: with a conditioner that depends on the current configuration,
the chain must still converge to the exact Boltzmann distribution.
"""

import itertools

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian, enumerate_density_of_states
from repro.lattice import one_hot, square_lattice
from repro.nn import Adam, ConditionalMADE, ConditionalMADEConfig
from repro.proposals import ConditionalMADEProposal
from repro.sampling import MetropolisSampler


def all_one_hot(n_sites, n_species):
    xs = np.array(list(itertools.product(range(n_species), repeat=n_sites)), dtype=np.int8)
    return xs, np.stack([one_hot(x, n_species) for x in xs])


@pytest.fixture(scope="module")
def tiny_ising():
    return IsingHamiltonian(square_lattice(3))


@pytest.fixture(scope="module")
def trained_cmade(tiny_ising):
    """Conditional MADE trained on (config, beta) pairs from two chains."""
    from repro.proposals import FlipProposal

    model = ConditionalMADE(
        ConditionalMADEConfig(n_sites=9, n_species=2, cond_dim=1, hidden=(64,)), rng=0
    )
    opt = Adam(model.parameters(), lr=5e-3)
    data, conds = [], []
    for beta in (0.15, 0.45):
        chain = MetropolisSampler(
            tiny_ising, FlipProposal(), beta, np.zeros(9, dtype=np.int8),
            rng=int(beta * 1000),
        )
        chain.run(2_000)

        def collect(s, _k, beta=beta):
            data.append(one_hot(s.config, 2))
            conds.append([beta])

        chain.run(4_000, callback=collect, callback_every=20)
    data = np.stack(data)
    conds = np.asarray(conds)
    rng = np.random.default_rng(1)
    for _ in range(300):
        idx = rng.integers(0, len(data), 64)
        model.train_step(data[idx], conds[idx], opt)
    return model


class TestConditionalMADEModel:
    def test_normalized_for_every_condition(self, trained_cmade):
        _, oh = all_one_hot(9, 2)
        for beta in (0.1, 0.3, 0.6):
            lp = trained_cmade.log_prob(oh, np.array([beta]))
            assert np.exp(lp).sum() == pytest.approx(1.0, abs=1e-8)

    def test_condition_shifts_distribution(self, trained_cmade):
        """The model must have learned that colder chains sit lower in
        energy: mean sampled energy at beta=0.45 < at beta=0.15."""
        ham = IsingHamiltonian(square_lattice(3))
        rng = np.random.default_rng(2)
        hot = trained_cmade.sample(256, np.array([0.15]), rng)
        cold = trained_cmade.sample(256, np.array([0.45]), rng)
        e_hot = np.mean([ham.energy(c) for c in hot])
        e_cold = np.mean([ham.energy(c) for c in cold])
        assert e_cold < e_hot

    def test_autoregressive_in_x_not_in_cond(self, trained_cmade):
        """Site logits ignore later sites but may all see the condition."""
        base = one_hot(np.array([0, 1, 0, 1, 0, 1, 0, 1, 0], dtype=np.int8), 2)
        cond = np.array([0.3])
        l0 = trained_cmade.logits(base[None], cond)[0]
        # perturbing the last site leaves all other logits unchanged
        pert = base.copy()
        pert[8] = pert[8][::-1]
        l1 = trained_cmade.logits(pert[None], cond)[0]
        assert np.allclose(l0[:8], l1[:8])
        # perturbing the condition changes (at least) the first-site logits
        l2 = trained_cmade.logits(base[None], np.array([0.9]))[0]
        assert not np.allclose(l0, l2)

    def test_sample_log_prob_consistency(self, trained_cmade):
        rng = np.random.default_rng(3)
        cond = np.array([0.3])
        configs, lps = trained_cmade.sample(16, cond, rng, return_log_prob=True)
        oh = np.stack([one_hot(c, 2) for c in configs])
        assert np.allclose(trained_cmade.log_prob(oh, cond), lps, atol=1e-10)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ConditionalMADEConfig(n_sites=4, n_species=2, cond_dim=0)
        with pytest.raises(ValueError):
            ConditionalMADEConfig(n_sites=0, n_species=2, cond_dim=1)

    def test_cond_shape_validation(self, trained_cmade):
        _, oh = all_one_hot(3, 2)
        with pytest.raises(ValueError):
            trained_cmade.log_prob(oh[:2].reshape(2, 3, 2), np.zeros((3, 1)))


class TestConditionalProposal:
    def test_fixed_condition_chain_matches_boltzmann(self, tiny_ising, trained_cmade):
        """State-independent conditioning: exact independence sampler."""
        beta = 0.3
        levels, degens = enumerate_density_of_states(tiny_ising)
        w = np.log(degens) - beta * levels
        w -= w.max()
        p = np.exp(w) / np.exp(w).sum()
        exact_e = float(np.dot(p, levels))
        prop = ConditionalMADEProposal(
            trained_cmade, lambda cfg, e: np.array([beta]), composition="free"
        )
        sampler = MetropolisSampler(tiny_ising, prop, beta,
                                    np.zeros(9, dtype=np.int8), rng=4)
        sampler.run(800)
        stats = sampler.run(8_000, record_energy_every=2)
        assert stats.energies.mean() == pytest.approx(exact_e, abs=0.45)

    def test_state_dependent_condition_still_exact(self, tiny_ising, trained_cmade):
        """The hard case: conditioning on the *current* energy.  The reverse
        density must be conditioned on the proposed state; if the
        implementation used cond(x) for both directions this test fails."""
        beta = 0.3
        levels, degens = enumerate_density_of_states(tiny_ising)
        w = np.log(degens) - beta * levels
        w -= w.max()
        p = np.exp(w) / np.exp(w).sum()
        exact_e = float(np.dot(p, levels))

        def conditioner(cfg, energy):
            # Aggressively state-dependent: pretend-beta grows with energy.
            return np.array([0.15 + 0.02 * (energy + 18.0) / 36.0 * 30.0])

        prop = ConditionalMADEProposal(trained_cmade, conditioner, composition="free")
        sampler = MetropolisSampler(tiny_ising, prop, beta,
                                    np.zeros(9, dtype=np.int8), rng=5)
        sampler.run(800)
        stats = sampler.run(8_000, record_energy_every=2)
        assert stats.energies.mean() == pytest.approx(exact_e, abs=0.5)

    def test_composition_reject_mode(self, tiny_ising, trained_cmade):
        rng = np.random.default_rng(6)
        cfg = np.array([0, 0, 0, 0, 1, 1, 1, 1, 1], dtype=np.int8)
        prop = ConditionalMADEProposal(
            trained_cmade, lambda c, e: np.array([0.3]),
            composition="reject", max_reject_tries=64,
        )
        for _ in range(5):
            move = prop.propose(cfg, tiny_ising, rng)
            if move is None:
                continue
            after = cfg.copy()
            move.apply(after)
            assert np.bincount(after, minlength=2).tolist() == [4, 5]

    def test_bad_composition_mode(self, trained_cmade):
        with pytest.raises(ValueError):
            ConditionalMADEProposal(trained_cmade, lambda c, e: [0.1],
                                    composition="magic")
