"""Smoke/integration tests for the experiment harness.

Only the cheap experiments run here (model-only E7/E8/E9/E12 plus the shared
infrastructure); the sampling-heavy ones are exercised by
``python -m repro.experiments.run_all`` and the benchmarks.
"""

import json

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, ExperimentResult
from repro.experiments.common import (
    estimate_energy_range,
    hea_system,
    results_dir,
)
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice


class TestExperimentResult:
    def test_save_round_trip(self, tmp_path):
        result = ExperimentResult(
            experiment_id="EX",
            title="test",
            paper_claim="claim",
            measured="measured",
            tables={"t": "a | b"},
            data={"arr": np.arange(3), "nested": {"x": np.float64(1.5)}},
        )
        path = result.save(tmp_path)
        payload = json.loads(path.read_text())
        assert payload["data"]["arr"] == [0, 1, 2]
        assert payload["data"]["nested"]["x"] == 1.5

    def test_print_does_not_crash(self, capsys):
        ExperimentResult("EX", "t", "c", "m", tables={"a": "row"}).print()
        out = capsys.readouterr().out
        assert "EX" in out and "row" in out

    def test_registry_complete(self):
        assert list(EXPERIMENTS)[:12] == [f"E{k}" for k in range(1, 13)]
        assert "E13" in EXPERIMENTS  # extension experiment

    def test_results_dir_next_to_pyproject(self):
        d = results_dir()
        assert (d.parent / "pyproject.toml").exists()


class TestCommonHelpers:
    def test_hea_system(self):
        ham, counts = hea_system(3)
        assert ham.n_sites == 54
        assert counts.sum() == 54

    def test_estimate_energy_range_brackets_samples(self):
        """The annealed range must bracket typical random-config energies
        and stay inside the rigorous bounds."""
        ham = IsingHamiltonian(square_lattice(4))
        e_lo, e_hi = estimate_energy_range(ham, [8, 8], rng=0)
        lo_bound, hi_bound = ham.energy_bounds()
        assert lo_bound <= e_lo < e_hi <= hi_bound
        rng = np.random.default_rng(1)
        typical = [
            ham.energy(rng.permutation(np.repeat([0, 1], 8)).astype(np.int8))
            for _ in range(10)
        ]
        assert e_lo < np.mean(typical) < e_hi


@pytest.mark.parametrize("module_name", [
    "repro.experiments.e07_strong_scaling",
    "repro.experiments.e08_weak_scaling",
    "repro.experiments.e09_throughput",
    "repro.experiments.e12_systems_table",
])
def test_fast_experiments_run(module_name, tmp_path):
    import importlib

    module = importlib.import_module(module_name)
    result = module.run(quick=True, seed=0)
    assert result.tables
    assert result.measured
    assert result.elapsed_s >= 0.0
    result.save(tmp_path)


def test_e7_curve_shape():
    from repro.experiments.e07_strong_scaling import run

    data = run(quick=True).data
    for machine, points in data.items():
        times = [p["time"] for p in points]
        assert all(a > b for a, b in zip(times, times[1:])), machine


def test_e12_matches_combinatorics():
    from repro.experiments.e12_systems_table import run

    data = run(quick=True).data
    assert data["16"]["n_sites"] == 8192
    assert data["16"]["ln_total_states"] == pytest.approx(8192 * np.log(4.0))
