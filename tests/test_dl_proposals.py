"""Exactness tests for the deep-learning proposals.

The decisive check: a Metropolis chain driven *only* by the learned global
proposal must converge to the exact Boltzmann distribution on a system small
enough to enumerate — that validates the log_q_ratio bookkeeping end to end.
"""

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import composition_counts, one_hot, square_lattice
from repro.nn import MADE, Adam, CategoricalVAE, MADEConfig, VAEConfig
from repro.proposals import FlipProposal, MADEProposal, SwapProposal, VAEProposal
from repro.proposals.composition import matches_composition, repair_composition
from repro.sampling import MetropolisSampler


@pytest.fixture(scope="module")
def tiny_ising():
    """3x3 Ising — 512 states, exactly enumerable."""
    return IsingHamiltonian(square_lattice(3))


@pytest.fixture(scope="module")
def trained_made(tiny_ising):
    """MADE trained on samples from the target temperature (beta = 0.3).

    An independence sampler mixes well exactly when its q covers the
    target; training on on-temperature data is what the DeepThermo loop
    does, and it makes the statistical chain test sharp.
    """
    rng = np.random.default_rng(0)
    beta = 0.3
    chain = MetropolisSampler(
        tiny_ising, FlipProposal(), beta, np.zeros(9, dtype=np.int8), rng=10
    )
    chain.run(2_000)
    harvested = []

    def collect(s, _k):
        harvested.append(one_hot(s.config, 2))

    chain.run(5_120, callback=collect, callback_every=20)
    data = np.stack(harvested)
    model = MADE(MADEConfig(n_sites=9, n_species=2, hidden=(64,)), rng=1)
    opt = Adam(model.parameters(), lr=5e-3)
    for _ in range(250):
        idx = rng.integers(0, len(data), 64)
        model.train_step(data[idx], opt)
    return model


@pytest.fixture(scope="module")
def trained_vae():
    rng = np.random.default_rng(2)
    model = CategoricalVAE(VAEConfig(n_sites=9, n_species=2, latent_dim=3, hidden=(32,)), rng=3)
    opt = Adam(model.parameters(), lr=5e-3)
    data = np.stack([one_hot(rng.integers(0, 2, 9).astype(np.int8), 2) for _ in range(256)])
    for _ in range(150):
        idx = rng.integers(0, 256, 64)
        model.train_step(data[idx], opt, rng)
    return model


def exact_boltzmann_energy(ham, beta):
    from repro.hamiltonians import enumerate_density_of_states

    levels, degens = enumerate_density_of_states(ham)
    w = np.log(degens) - beta * levels
    w -= w.max()
    p = np.exp(w) / np.exp(w).sum()
    return float(np.dot(p, levels)), levels, p


class TestMADEProposalExactness:
    def test_made_chain_matches_boltzmann(self, tiny_ising, trained_made):
        """Pure MADE-proposal Metropolis reproduces <E> at beta=0.3."""
        beta = 0.3
        exact_e, _, _ = exact_boltzmann_energy(tiny_ising, beta)
        prop = MADEProposal(trained_made, composition="free")
        sampler = MetropolisSampler(
            tiny_ising, prop, beta, np.zeros(9, dtype=np.int8), rng=4
        )
        sampler.run(500)
        stats = sampler.run(6000, record_energy_every=2)
        assert stats.energies.mean() == pytest.approx(exact_e, abs=0.35)
        assert sampler.acceptance_rate > 0.05

    def test_reject_mode_keeps_composition(self, tiny_ising, trained_made):
        rng = np.random.default_rng(5)
        cfg = np.array([0, 0, 0, 0, 1, 1, 1, 1, 1], dtype=np.int8)
        prop = MADEProposal(trained_made, composition="reject", max_reject_tries=128)
        for _ in range(10):
            move = prop.propose(cfg, tiny_ising, rng)
            if move is None:
                continue
            after = cfg.copy()
            move.apply(after)
            assert np.array_equal(composition_counts(after, 2), [4, 5])

    def test_delta_energy_correct(self, tiny_ising, trained_made):
        rng = np.random.default_rng(6)
        cfg = rng.integers(0, 2, 9).astype(np.int8)
        e0 = tiny_ising.energy(cfg)
        move = MADEProposal(trained_made, composition="free").propose(
            cfg, tiny_ising, rng, current_energy=e0
        )
        after = cfg.copy()
        move.apply(after)
        assert tiny_ising.energy(after) == pytest.approx(e0 + move.delta_energy)

    def test_log_q_ratio_exact(self, tiny_ising, trained_made):
        """MADE's reported ratio equals directly evaluated log probs."""
        rng = np.random.default_rng(7)
        cfg = rng.integers(0, 2, 9).astype(np.int8)
        move = MADEProposal(trained_made, composition="free").propose(
            cfg, tiny_ising, rng, current_energy=0.0
        )
        after = cfg.copy()
        move.apply(after)
        lq_old = trained_made.log_prob(one_hot(cfg, 2)[None])[0]
        lq_new = trained_made.log_prob(one_hot(after, 2)[None])[0]
        assert move.log_q_ratio == pytest.approx(lq_old - lq_new, abs=1e-10)


class TestVAEProposal:
    def test_vae_chain_matches_boltzmann(self, tiny_ising, trained_vae):
        beta = 0.25
        exact_e, _, _ = exact_boltzmann_energy(tiny_ising, beta)
        prop = VAEProposal(trained_vae, n_marginal_samples=64, composition="free")
        sampler = MetropolisSampler(
            tiny_ising, prop, beta, np.zeros(9, dtype=np.int8), rng=8
        )
        sampler.run(300)
        stats = sampler.run(3000, record_energy_every=2)
        # IWAE estimator noise allows a slightly looser band than MADE.
        assert stats.energies.mean() == pytest.approx(exact_e, abs=0.6)

    def test_repair_mode_keeps_composition(self, tiny_ising, trained_vae):
        rng = np.random.default_rng(9)
        cfg = np.array([0, 0, 0, 0, 1, 1, 1, 1, 1], dtype=np.int8)
        prop = VAEProposal(trained_vae, composition="repair")
        for _ in range(10):
            move = prop.propose(cfg, tiny_ising, rng)
            after = cfg.copy()
            move.apply(after)
            assert np.array_equal(composition_counts(after, 2), [4, 5])

    def test_cache_invalidate(self, trained_vae):
        prop = VAEProposal(trained_vae, composition="free")
        prop._logq_cache[b"x"] = 1.0
        prop.invalidate_cache()
        assert not prop._logq_cache

    def test_bad_composition_mode_raises(self, trained_vae):
        with pytest.raises(ValueError):
            VAEProposal(trained_vae, composition="fix-it")


class TestCompositionHelpers:
    def test_matches(self):
        assert matches_composition(np.array([0, 1, 1]), np.array([1, 2]))
        assert not matches_composition(np.array([0, 0, 1]), np.array([1, 2]))

    def test_repair_reaches_target(self):
        rng = np.random.default_rng(0)
        for seed in range(20):
            r = np.random.default_rng(seed)
            cfg = r.integers(0, 3, 12).astype(np.int8)
            target = np.array([4, 4, 4])
            fixed = repair_composition(cfg, target, rng)
            assert np.array_equal(composition_counts(fixed, 3), target)

    def test_repair_is_minimal_when_already_valid(self):
        rng = np.random.default_rng(1)
        cfg = np.array([0, 1, 2, 0, 1, 2], dtype=np.int8)
        fixed = repair_composition(cfg, np.array([2, 2, 2]), rng)
        assert np.array_equal(fixed, cfg)

    def test_repair_wrong_total_raises(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            repair_composition(np.array([0, 1]), np.array([2, 2]), rng)

    def test_repair_does_not_mutate_input(self):
        rng = np.random.default_rng(3)
        cfg = np.array([0, 0, 0, 1], dtype=np.int8)
        snap = cfg.copy()
        repair_composition(cfg, np.array([2, 2]), rng)
        assert np.array_equal(cfg, snap)
