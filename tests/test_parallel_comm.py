"""Tests for the MPI-like communicator substrate."""

import numpy as np
import pytest

from repro.parallel import (
    COMMUNICATORS,
    SerialCommunicator,
    SharedMemoryCommunicator,
    get_communicator,
    register_communicator,
    run_spmd,
)


def _rank_allgather(comm):
    """Module-level so the shm backend can pickle it into spawned ranks."""
    return comm.allgather(comm.rank)


def _ring_pass(comm):
    comm.send(comm.rank * 10, dest=(comm.rank + 1) % comm.size, tag=3)
    return comm.recv(source=(comm.rank - 1) % comm.size, tag=3)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(COMMUNICATORS) >= {"serial", "thread", "shm"}
        assert get_communicator("shm") is SharedMemoryCommunicator
        assert SharedMemoryCommunicator.backend_name == "shm"

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(KeyError, match="serial"):
            get_communicator("smoke-signals")

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_communicator("serial")(SharedMemoryCommunicator)

    def test_reregistering_same_class_is_a_noop(self):
        assert register_communicator("serial")(SerialCommunicator) \
            is SerialCommunicator


class TestShmSpmd:
    def test_allgather_across_processes(self):
        results = run_spmd(_rank_allgather, 2, backend="shm", timeout=60.0)
        assert results == [[0, 1], [0, 1]]

    def test_point_to_point_ring(self):
        assert run_spmd(_ring_pass, 2, backend="shm", timeout=60.0) == [10, 0]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_spmd(_rank_allgather, 2, backend="carrier-pigeon")


class TestSerialCommunicator:
    def test_identity_collectives(self):
        comm = SerialCommunicator()
        assert comm.bcast(42) == 42
        assert comm.gather("x") == ["x"]
        assert comm.allgather(1) == [1]
        assert comm.allreduce(3) == 3
        assert comm.scatter([7]) == 7
        comm.barrier()

    def test_point_to_point_invalid(self):
        comm = SerialCommunicator()
        with pytest.raises(RuntimeError):
            comm.send(1, dest=0)
        with pytest.raises(RuntimeError):
            comm.recv(source=0)
        with pytest.raises(RuntimeError):
            comm.sendrecv(1, partner=0)

    def test_bad_reduce_op(self):
        with pytest.raises(ValueError):
            SerialCommunicator().allreduce(1, op="mean")


class TestThreadedWorld:
    def test_allgather(self):
        results = run_spmd(lambda c: c.allgather(c.rank), 4)
        for r in results:
            assert r == [0, 1, 2, 3]

    def test_bcast_from_nonzero_root(self):
        def prog(c):
            value = f"hello-{c.rank}" if c.rank == 2 else None
            return c.bcast(value, root=2)

        assert run_spmd(prog, 4) == ["hello-2"] * 4

    def test_gather_only_at_root(self):
        def prog(c):
            return c.gather(c.rank * 10, root=1)

        results = run_spmd(prog, 3)
        assert results[1] == [0, 10, 20]
        assert results[0] is None and results[2] is None

    def test_scatter(self):
        def prog(c):
            objs = [100, 200, 300] if c.rank == 0 else None
            return c.scatter(objs, root=0)

        assert run_spmd(prog, 3) == [100, 200, 300]

    def test_allreduce_sum_max_min(self):
        assert run_spmd(lambda c: c.allreduce(c.rank + 1, op="sum"), 4) == [10] * 4
        assert run_spmd(lambda c: c.allreduce(c.rank, op="max"), 4) == [3] * 4
        assert run_spmd(lambda c: c.allreduce(c.rank, op="min"), 4) == [0] * 4

    def test_reduce_at_root(self):
        results = run_spmd(lambda c: c.reduce(c.rank, op="sum", root=0), 3)
        assert results[0] == 3
        assert results[1] is None

    def test_allreduce_numpy_arrays(self):
        def prog(c):
            return c.allreduce(np.full(3, float(c.rank)))

        for r in run_spmd(prog, 3):
            assert np.allclose(r, 3.0)

    def test_send_recv_ring(self):
        def prog(c):
            right = (c.rank + 1) % c.size
            left = (c.rank - 1) % c.size
            c.send(c.rank, dest=right, tag=7)
            return c.recv(source=left, tag=7)

        assert run_spmd(prog, 4) == [3, 0, 1, 2]

    def test_sendrecv_pairs(self):
        def prog(c):
            partner = c.rank ^ 1
            return c.sendrecv(c.rank * 11, partner)

        assert run_spmd(prog, 4) == [11, 0, 33, 22]

    def test_tag_mismatch_detected(self):
        def prog(c):
            if c.rank == 0:
                c.send("x", dest=1, tag=1)
                c.recv(source=1, tag=1)
            else:
                c.send("y", dest=0, tag=1)
                c.recv(source=0, tag=2)  # wrong tag

        with pytest.raises(RuntimeError):
            run_spmd(prog, 2, timeout=5.0)

    def test_self_send_rejected(self):
        def prog(c):
            if c.size > 1:
                c.send(1, dest=c.rank)

        with pytest.raises(RuntimeError):
            run_spmd(prog, 2, timeout=5.0)

    def test_exception_propagates(self):
        def prog(c):
            if c.rank == 1:
                raise ValueError("boom")
            c.barrier()

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(prog, 2, timeout=5.0)

    def test_single_rank_uses_serial(self):
        results = run_spmd(lambda c: type(c).__name__, 1)
        assert results == ["SerialCommunicator"]

    def test_n_ranks_validation(self):
        with pytest.raises(ValueError):
            run_spmd(lambda c: None, 0)

    def test_barrier_synchronizes_phases(self):
        """Values written before the barrier are visible after it."""
        box = [None] * 3

        def prog(c):
            box[c.rank] = c.rank
            c.barrier()
            return sorted(x for x in box if x is not None)

        for r in run_spmd(prog, 3):
            assert r == [0, 1, 2]
