"""Tests for the replay buffer, trainer, and online loop."""

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import random_configuration, square_lattice
from repro.nn import MADE, CategoricalVAE, MADEConfig, VAEConfig
from repro.proposals import MADEProposal, SwapProposal, VAEProposal
from repro.training import OnlineLoop, ProposalTrainer, ReplayBuffer, pretrain_from_chain


class TestReplayBuffer:
    def test_add_and_len(self):
        buf = ReplayBuffer(4, 3, 2)
        buf.add(np.array([0, 1, 0], dtype=np.int8))
        assert len(buf) == 1
        assert not buf.is_full

    def test_ring_overwrite(self):
        buf = ReplayBuffer(2, 1, 3)
        for v in range(5):
            buf.add(np.array([v % 3], dtype=np.int8))
        assert len(buf) == 2
        assert buf.is_full
        stored = set(buf.contents().reshape(-1).tolist())
        assert stored <= {0, 1, 2}

    def test_sample_shapes(self):
        buf = ReplayBuffer(8, 4, 3)
        for _ in range(8):
            buf.add(random_configuration(4, [2, 1, 1], rng=0))
        batch = buf.sample(5, rng=0)
        assert batch.shape == (5, 4)
        oh = buf.sample_one_hot(5, rng=0)
        assert oh.shape == (5, 4, 3)
        assert np.allclose(oh.sum(axis=2), 1.0)

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            ReplayBuffer(4, 2, 2).sample(1)

    def test_wrong_shape_raises(self):
        buf = ReplayBuffer(4, 3, 2)
        with pytest.raises(ValueError):
            buf.add(np.zeros(4, dtype=np.int8))

    def test_add_batch(self):
        buf = ReplayBuffer(10, 2, 2)
        buf.add_batch(np.zeros((3, 2), dtype=np.int8))
        assert len(buf) == 3


class TestProposalTrainer:
    def _filled_buffer(self, n_sites=6, n_species=2, n=64):
        buf = ReplayBuffer(n, n_sites, n_species)
        rng = np.random.default_rng(0)
        for _ in range(n):
            buf.add(rng.integers(0, n_species, n_sites).astype(np.int8))
        return buf

    def test_vae_training_reduces_loss(self):
        buf = self._filled_buffer()
        model = CategoricalVAE(VAEConfig(6, 2, latent_dim=2, hidden=(16,)), rng=1)
        trainer = ProposalTrainer(model, buf, lr=5e-3, batch_size=16, rng=2)
        first = trainer.train_steps(5)["mean_loss"]
        for _ in range(10):
            last = trainer.train_steps(20)["mean_loss"]
        assert last < first
        assert trainer.steps_trained == 205

    def test_made_training(self):
        buf = self._filled_buffer()
        model = MADE(MADEConfig(6, 2, hidden=(32,)), rng=3)
        trainer = ProposalTrainer(model, buf, lr=5e-3, batch_size=16, rng=4)
        metrics = trainer.train_steps(50)
        assert metrics["mean_loss"] > 0
        assert len(trainer.loss_history) == 50

    def test_empty_buffer_raises(self):
        buf = ReplayBuffer(4, 6, 2)
        model = MADE(MADEConfig(6, 2, hidden=(8,)), rng=0)
        trainer = ProposalTrainer(model, buf)
        with pytest.raises(ValueError):
            trainer.train_steps(1)

    def test_wrong_model_type_raises(self):
        buf = self._filled_buffer()
        with pytest.raises(TypeError):
            ProposalTrainer(object(), buf)

    def test_train_until_reaches_or_stops(self):
        buf = self._filled_buffer()
        model = MADE(MADEConfig(6, 2, hidden=(32,)), rng=5)
        trainer = ProposalTrainer(model, buf, lr=1e-2, batch_size=32, rng=6)
        out = trainer.train_until(target_loss=1e9, max_steps=100)
        assert out["reached"] and out["steps"] <= 100
        out2 = trainer.train_until(target_loss=-1.0, max_steps=60)
        assert not out2["reached"] and out2["steps"] == 60


class TestPretrainPipeline:
    def test_pretrain_from_chain(self):
        ham = IsingHamiltonian(square_lattice(3))
        buf = ReplayBuffer(128, 9, 2)
        model = MADE(MADEConfig(9, 2, hidden=(32,)), rng=0)
        trainer = ProposalTrainer(model, buf, lr=5e-3, batch_size=32, rng=1)
        out = pretrain_from_chain(
            ham, SwapProposal(), beta=0.3,
            initial_config=random_configuration(9, [5, 4], rng=2),
            trainer=trainer, n_burn_in=500, n_harvest=100,
            harvest_interval=10, train_steps=100,
        )
        assert out["n_harvested"] == 100
        assert 0.0 < out["chain_acceptance"] <= 1.0
        assert out["mean_loss"] > 0


class TestOnlineLoop:
    def test_online_loop_runs_and_tracks(self):
        ham = IsingHamiltonian(square_lattice(3))
        buf = ReplayBuffer(256, 9, 2)
        model = MADE(MADEConfig(9, 2, hidden=(32,)), rng=1)
        trainer = ProposalTrainer(model, buf, lr=5e-3, batch_size=32, rng=2)
        cfg = random_configuration(9, [5, 4], rng=3)
        # Seed the buffer so round 0 can train.
        for _ in range(32):
            buf.add(cfg)
        loop = OnlineLoop(
            ham, beta=0.3, initial_config=cfg,
            local_proposal=SwapProposal(),
            dl_proposal=MADEProposal(model, composition="reject", max_reject_tries=32),
            trainer=trainer, dl_fraction=0.3, refresh_train_steps=20, seed=4,
        )
        result = loop.run(n_rounds=3, steps_per_round=200, harvest_interval=10)
        assert len(result.dl_acceptance_history) == 3
        assert len(result.loss_history) == 3
        assert all(np.isfinite(result.energies))
        # DL kernel was actually exercised.
        assert loop.mixture.counts[1] > 0

    def test_dl_fraction_validation(self):
        ham = IsingHamiltonian(square_lattice(3))
        buf = ReplayBuffer(16, 9, 2)
        model = MADE(MADEConfig(9, 2, hidden=(8,)), rng=0)
        trainer = ProposalTrainer(model, buf)
        with pytest.raises(ValueError):
            OnlineLoop(ham, 0.3, np.zeros(9, dtype=np.int8), SwapProposal(),
                       MADEProposal(model), trainer, dl_fraction=1.5)

    def test_vae_cache_invalidated_on_refresh(self):
        ham = IsingHamiltonian(square_lattice(3))
        buf = ReplayBuffer(64, 9, 2)
        model = CategoricalVAE(VAEConfig(9, 2, latent_dim=2, hidden=(16,)), rng=0)
        trainer = ProposalTrainer(model, buf, rng=1)
        cfg = random_configuration(9, [5, 4], rng=2)
        for _ in range(16):
            buf.add(cfg)
        dl = VAEProposal(model, n_marginal_samples=4, composition="repair")
        loop = OnlineLoop(ham, 0.3, cfg, SwapProposal(), dl, trainer,
                          dl_fraction=0.2, refresh_train_steps=5, seed=3)
        loop.run(n_rounds=1, steps_per_round=50)
        assert not dl._logq_cache  # invalidated after refresh
