"""Campaign resume tests for the run_all harness.

Fake experiment modules stand in for the real runners so the tests cover
only the orchestration contract: the campaign manifest, --resume skipping,
failure bookkeeping, and atomic manifest writes.
"""

import json
import sys
import types

import pytest

import repro.experiments.common as common
import repro.experiments.run_all as run_all
from repro.experiments.common import ExperimentResult


def _fake_module(name, exp_id, counter, fail_flag=None, degrade_flag=None):
    """A module whose run() bumps a call counter and optionally fails or
    reports a degraded (partial-harvest) result."""

    def run(quick=True, seed=0):
        counter.write_text(str(int(counter.read_text() or 0) + 1)
                           if counter.exists() else "1")
        if fail_flag is not None and fail_flag.exists():
            raise RuntimeError(f"{exp_id} exploded")
        return ExperimentResult(
            experiment_id=exp_id, title=f"fake {exp_id}",
            paper_claim="n/a", measured="ok",
            degraded=degrade_flag is not None and degrade_flag.exists(),
        )

    mod = types.ModuleType(name)
    mod.run = run
    return mod


@pytest.fixture
def campaign_env(tmp_path, monkeypatch):
    """Two fake experiments (E1 always passes, E2 fails while the flag file
    exists) wired into run_all, with results redirected to tmp_path."""
    counts = {"E1": tmp_path / "e1.calls", "E2": tmp_path / "e2.calls"}
    flag = tmp_path / "e2.fail"
    degrade = tmp_path / "e1.degrade"
    monkeypatch.setitem(sys.modules, "fake_exp_e1",
                        _fake_module("fake_exp_e1", "E1", counts["E1"],
                                     degrade_flag=degrade))
    monkeypatch.setitem(sys.modules, "fake_exp_e2",
                        _fake_module("fake_exp_e2", "E2", counts["E2"], flag))
    registry = {"E1": "fake_exp_e1", "E2": "fake_exp_e2"}
    monkeypatch.setattr(run_all, "EXPERIMENTS", registry)
    monkeypatch.setattr(common, "EXPERIMENTS", registry)
    results = tmp_path / "results"
    monkeypatch.setattr(run_all, "results_dir", lambda: results)
    monkeypatch.setattr(common, "results_dir", lambda: results)

    def calls(exp_id):
        path = counts[exp_id]
        return int(path.read_text()) if path.exists() else 0

    return types.SimpleNamespace(results=results, flag=flag, degrade=degrade,
                                 calls=calls)


class TestCampaignManifest:
    def test_failure_recorded_and_rc_nonzero(self, campaign_env, capsys):
        campaign_env.flag.touch()
        assert run_all.main([]) == 1
        campaign = json.loads((campaign_env.results / "campaign.json").read_text())
        assert campaign["completed"] == ["E1"]
        assert campaign["failed"] == ["E2"]
        assert campaign["mode"] == "quick" and campaign["seed"] == 0

    def test_clean_run_completes_everything(self, campaign_env, capsys):
        assert run_all.main([]) == 0
        campaign = json.loads((campaign_env.results / "campaign.json").read_text())
        assert campaign["completed"] == ["E1", "E2"]
        assert campaign["failed"] == []

    def test_manifest_writes_are_atomic(self, campaign_env, capsys):
        run_all.main([])
        assert not list(campaign_env.results.glob("*.tmp"))


class TestResume:
    def test_resume_skips_completed_and_retries_failed(self, campaign_env, capsys):
        campaign_env.flag.touch()
        assert run_all.main([]) == 1
        assert campaign_env.calls("E1") == 1

        campaign_env.flag.unlink()  # "fix" E2
        assert run_all.main(["--resume"]) == 0
        # E1 was skipped (still one call), E2 ran again and moved to completed.
        assert campaign_env.calls("E1") == 1
        assert campaign_env.calls("E2") == 2
        campaign = json.loads((campaign_env.results / "campaign.json").read_text())
        assert sorted(campaign["completed"]) == ["E1", "E2"]
        assert campaign["failed"] == []
        out = capsys.readouterr().out
        assert "experiment_skipped" in out

    def test_resume_requires_matching_seed(self, campaign_env, capsys):
        assert run_all.main([]) == 0
        assert campaign_env.calls("E1") == 1
        # A different seed is a different campaign: nothing is skipped.
        assert run_all.main(["--resume", "--seed", "1"]) == 0
        assert campaign_env.calls("E1") == 2

    def test_without_resume_everything_reruns(self, campaign_env, capsys):
        assert run_all.main([]) == 0
        assert run_all.main([]) == 0
        assert campaign_env.calls("E1") == 2

    def test_resume_reruns_when_results_file_missing(self, campaign_env, capsys):
        """A completed entry whose results JSON vanished is not trusted."""
        assert run_all.main([]) == 0
        (campaign_env.results / "e1.json").unlink()
        assert run_all.main(["--resume"]) == 0
        assert campaign_env.calls("E1") == 2


class TestDegradedCampaigns:
    """Degraded (partial-harvest) results: manifest flag + exit code 3."""

    def test_degraded_recorded_and_rc_3(self, campaign_env, capsys):
        campaign_env.degrade.touch()
        assert run_all.main([]) == 3
        campaign = json.loads((campaign_env.results / "campaign.json").read_text())
        assert campaign["completed"] == ["E1", "E2"]
        assert campaign["failed"] == []
        assert campaign["degraded"] == ["E1"]
        saved = json.loads((campaign_env.results / "e1.json").read_text())
        assert saved["degraded"] is True
        assert "[DEGRADED]" in capsys.readouterr().out

    def test_clean_rerun_clears_the_flag(self, campaign_env, capsys):
        campaign_env.degrade.touch()
        assert run_all.main([]) == 3
        campaign_env.degrade.unlink()  # "fix" E1
        assert run_all.main(["--resume"]) == 0
        campaign = json.loads((campaign_env.results / "campaign.json").read_text())
        assert campaign["degraded"] == []

    def test_failures_trump_degraded_in_the_exit_code(self, campaign_env, capsys):
        campaign_env.degrade.touch()
        campaign_env.flag.touch()
        assert run_all.main([]) == 1
        campaign = json.loads((campaign_env.results / "campaign.json").read_text())
        assert campaign["degraded"] == ["E1"] and campaign["failed"] == ["E2"]

    def test_resilience_flag_sets_the_env_knob(self, campaign_env, capsys,
                                               monkeypatch):
        import os

        from repro.resilience import RESILIENCE_ENV_VAR

        monkeypatch.setenv(RESILIENCE_ENV_VAR, "")  # restore at teardown
        assert run_all.main(["--resilience", "mode=quarantine,rounds=5"]) == 0
        assert os.environ[RESILIENCE_ENV_VAR] == "mode=quarantine,rounds=5"

    def test_bad_resilience_spec_is_a_usage_error(self, campaign_env, capsys):
        with pytest.raises(SystemExit):
            run_all.main(["--resilience", "mode=panic"])
