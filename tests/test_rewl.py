"""Integration tests for the REWL driver (the paper's parallel framework)."""

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian, enumerate_density_of_states
from repro.lattice import square_lattice
from repro.parallel import REWLConfig, REWLDriver, SerialExecutor, ThreadExecutor
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid


@pytest.fixture(scope="module")
def ising():
    return IsingHamiltonian(square_lattice(4))


@pytest.fixture(scope="module")
def grid(ising):
    return EnergyGrid.from_levels(ising.energy_levels())


def run_driver(ising, grid, executor=None, seed=11, **cfg_kwargs):
    defaults = dict(
        n_windows=3, walkers_per_window=2, overlap=0.6,
        exchange_interval=1500, ln_f_final=3e-4, seed=seed,
    )
    defaults.update(cfg_kwargs)
    driver = REWLDriver(
        hamiltonian=ising, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(**defaults), executor=executor,
    )
    return driver.run()


class TestREWLCorrectness:
    @pytest.fixture(scope="class")
    def result(self, ising, grid):
        return run_driver(ising, grid)

    def test_converges(self, result):
        assert result.converged
        assert all(it >= 10 for it in result.window_iterations)

    def test_exchanges_happen(self, result):
        assert result.exchange_attempts.sum() > 0
        rates = result.exchange_rates
        assert np.nanmax(rates) > 0.0

    def test_stitched_matches_exact(self, result, ising):
        stitched = result.stitched()
        levels, degens = enumerate_density_of_states(ising)
        exact = {float(e): float(np.log(d)) for e, d in zip(levels, degens)}
        es, vs = stitched.energies(), stitched.values()
        pairs = [(v, exact[float(e)]) for e, v in zip(es, vs) if float(e) in exact]
        est = np.array([p[0] for p in pairs])
        ex = np.array([p[1] for p in pairs])
        err = np.abs((est - est[0]) - (ex - ex[0]))
        assert err.max() < 0.5

    def test_stitch_residuals_small(self, result):
        assert np.all(result.stitched().joint_residuals < 0.3)

    def test_walker_snapshots(self, result):
        assert len(result.walkers) == 6
        for snap in result.walkers:
            assert snap.n_steps > 0
            assert 0.0 < snap.acceptance_rate <= 1.0


class TestREWLDeterminism:
    def test_serial_and_thread_executor_identical(self, ising, grid):
        """Walker RNG state travels with the walker, so the executor choice
        cannot change the trajectory."""
        res_a = run_driver(ising, grid, executor=SerialExecutor(), seed=21,
                           ln_f_final=5e-3)
        with ThreadExecutor(n_workers=3) as pool:
            res_b = run_driver(ising, grid, executor=pool, seed=21, ln_f_final=5e-3)
        assert res_a.rounds == res_b.rounds
        for ga, gb in zip(res_a.window_ln_g, res_b.window_ln_g):
            assert np.array_equal(ga, gb)
        assert np.array_equal(res_a.exchange_accepts, res_b.exchange_accepts)

    def test_same_seed_reproducible(self, ising, grid):
        res_a = run_driver(ising, grid, seed=33, ln_f_final=5e-3)
        res_b = run_driver(ising, grid, seed=33, ln_f_final=5e-3)
        for ga, gb in zip(res_a.window_ln_g, res_b.window_ln_g):
            assert np.array_equal(ga, gb)

    def test_different_seeds_differ(self, ising, grid):
        res_a = run_driver(ising, grid, seed=1, ln_f_final=5e-3)
        res_b = run_driver(ising, grid, seed=2, ln_f_final=5e-3)
        assert any(
            not np.array_equal(ga, gb)
            for ga, gb in zip(res_a.window_ln_g, res_b.window_ln_g)
        )


class TestREWLConfigValidation:
    """Bad knobs fail at construction, not deep inside make_windows/drive."""

    def test_overlap_out_of_range(self):
        with pytest.raises(ValueError, match="overlap"):
            REWLConfig(overlap=0.05)
        with pytest.raises(ValueError, match="overlap"):
            REWLConfig(overlap=0.95)

    def test_max_rounds_positive_integer(self):
        with pytest.raises(ValueError, match="max_rounds"):
            REWLConfig(max_rounds=0)
        with pytest.raises(TypeError, match="max_rounds"):
            REWLConfig(max_rounds=2.5)

    def test_drive_max_steps_positive_integer(self):
        with pytest.raises(ValueError, match="drive_max_steps"):
            REWLConfig(drive_max_steps=0)

    def test_checkpoint_interval_non_negative(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            REWLConfig(checkpoint_interval=-1)
        assert REWLConfig(checkpoint_interval=0).checkpoint_interval == 0


class TestREWLMechanics:
    def test_single_window_single_walker(self, ising, grid):
        res = run_driver(ising, grid, n_windows=1, walkers_per_window=1,
                         ln_f_final=5e-3)
        assert res.converged
        assert res.exchange_attempts.sum() == 0

    def test_single_window_has_no_phantom_exchange_pair(self, ising, grid):
        """Exchange statistics are sized per adjacent *pair*: one window
        means zero pairs, not a bogus pair with a NaN rate."""
        res = run_driver(ising, grid, n_windows=1, walkers_per_window=1,
                         ln_f_final=5e-3)
        assert res.exchange_attempts.shape == (0,)
        assert res.exchange_accepts.shape == (0,)
        assert res.exchange_rates.shape == (0,)
        assert not np.isnan(res.exchange_rates).any()

    def test_multi_window_pair_count(self, ising, grid):
        res = run_driver(ising, grid, ln_f_final=5e-3)
        assert res.exchange_attempts.shape == (2,)  # 3 windows -> 2 pairs

    def test_max_rounds_cutoff(self, ising, grid):
        driver = REWLDriver(
            hamiltonian=ising, proposal_factory=lambda: FlipProposal(),
            grid=grid, initial_config=np.zeros(16, dtype=np.int8),
            config=REWLConfig(n_windows=2, walkers_per_window=1,
                              exchange_interval=100, ln_f_final=1e-12, seed=0),
        )
        res = driver.run(max_rounds=3)
        assert not res.converged
        assert res.rounds == 3

    def test_merge_window_averages_relative_shapes(self, ising, grid):
        """Merging averages the *relative* ln g of each walker (offsets are
        arbitrary WL constants and must not leak into the mean)."""
        driver = REWLDriver(
            hamiltonian=ising, proposal_factory=lambda: FlipProposal(),
            grid=grid, initial_config=np.zeros(16, dtype=np.int8),
            config=REWLConfig(n_windows=1, walkers_per_window=2,
                              exchange_interval=100, seed=0),
        )
        team = driver.walkers[0]
        n = team[0].ln_g.shape[0]
        ramp = np.arange(n, dtype=np.float64)
        team[0].ln_g[:] = ramp  # relative shape: ramp
        team[1].ln_g[:] = 2.0 * ramp + 10.0  # same shape x2, shifted offset
        team[0].visited[:] = True
        team[1].visited[:] = True
        merged, union = driver._merge_window(team)
        assert union.all()
        assert np.allclose(merged, 1.5 * ramp)
        # Pure function: walker state untouched.
        assert np.allclose(team[0].ln_g, ramp)

    def test_merge_respects_visited(self, ising, grid):
        driver = REWLDriver(
            hamiltonian=ising, proposal_factory=lambda: FlipProposal(),
            grid=grid, initial_config=np.zeros(16, dtype=np.int8),
            config=REWLConfig(n_windows=1, walkers_per_window=2,
                              exchange_interval=100, seed=0),
        )
        team = driver.walkers[0]
        team[0].ln_g[:] = 4.0
        team[0].visited[:] = False
        team[0].visited[0] = True
        team[1].ln_g[:] = 8.0
        team[1].visited[:] = False
        team[1].visited[1] = True
        merged, union = driver._merge_window(team)
        assert union[0] and union[1]
        assert not union[2:].any()
        assert merged[0] == 0.0 and merged[1] == 0.0  # each shifted to 0
