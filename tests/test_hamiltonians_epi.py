"""Tests for the HEA effective-pair-interaction model."""

import numpy as np
import pytest

from repro.hamiltonians import (
    KB_EV_PER_K,
    NBMOTAW_EPI_SHELL1,
    NBMOTAW_EPI_SHELL2,
    EPIHamiltonian,
    NbMoTaWHamiltonian,
)
from repro.lattice import NBMOTAW, bcc, equiatomic_counts, random_configuration, simple_cubic


class TestEPIMatrices:
    def test_symmetric(self):
        assert np.allclose(NBMOTAW_EPI_SHELL1, NBMOTAW_EPI_SHELL1.T)
        assert np.allclose(NBMOTAW_EPI_SHELL2, NBMOTAW_EPI_SHELL2.T)

    def test_mo_ta_is_dominant_ordering_pair(self):
        """The headline NbMoTaW physics: Mo-Ta is the strongest (most
        negative) first-shell EPI."""
        mo, ta = NBMOTAW.index("Mo"), NBMOTAW.index("Ta")
        off_diag = NBMOTAW_EPI_SHELL1[~np.eye(4, dtype=bool)]
        assert NBMOTAW_EPI_SHELL1[mo, ta] == off_diag.min()
        assert NBMOTAW_EPI_SHELL1[mo, ta] < -0.05

    def test_second_shell_weaker(self):
        assert np.abs(NBMOTAW_EPI_SHELL2).max() < np.abs(NBMOTAW_EPI_SHELL1).max()


class TestNbMoTaW:
    def test_default_lattice(self):
        ham = NbMoTaWHamiltonian()
        assert ham.n_sites == 128
        assert ham.n_species == 4
        assert ham.species is NBMOTAW

    def test_rejects_non_bcc(self):
        with pytest.raises(ValueError):
            NbMoTaWHamiltonian(simple_cubic(4))

    def test_rejects_bad_shell_count(self):
        with pytest.raises(ValueError):
            NbMoTaWHamiltonian(bcc(3), n_shells=3)

    def test_scale_multiplies_energy(self):
        cfg = random_configuration(54, equiatomic_counts(54, 4), rng=0)
        e1 = NbMoTaWHamiltonian(bcc(3), scale=1.0).energy(cfg)
        e2 = NbMoTaWHamiltonian(bcc(3), scale=2.0).energy(cfg)
        assert e2 == pytest.approx(2.0 * e1)

    def test_b2_mo_ta_order_is_low_energy(self):
        """A Mo/Ta B2 arrangement (Mo on one sublattice, Ta on the other,
        Nb/W likewise paired) must lie well below the random alloy."""
        lat = bcc(3)
        ham = NbMoTaWHamiltonian(lat)
        grid = lat.site_grid()
        basis = grid[:, 3]
        cells = grid[:, :3]
        parity = cells.sum(axis=1) % 2
        cfg = np.empty(lat.n_sites, dtype=np.int8)
        # Sublattice 0: alternate Mo/W by cell parity; sublattice 1: Ta/Nb.
        cfg[(basis == 0) & (parity == 0)] = NBMOTAW.index("Mo")
        cfg[(basis == 0) & (parity == 1)] = NBMOTAW.index("W")
        cfg[(basis == 1) & (parity == 0)] = NBMOTAW.index("Ta")
        cfg[(basis == 1) & (parity == 1)] = NBMOTAW.index("Nb")
        rng = np.random.default_rng(0)
        random_energies = []
        for _ in range(20):
            rnd = cfg.copy()
            rng.shuffle(rnd)
            random_energies.append(ham.energy(rnd))
        assert ham.energy(cfg) < min(random_energies) - 1.0

    def test_temperature_conversions(self):
        ham = NbMoTaWHamiltonian(bcc(3))
        beta = ham.beta_from_kelvin(1000.0)
        assert beta == pytest.approx(1.0 / (KB_EV_PER_K * 1000.0))
        assert ham.kelvin_from_beta(beta) == pytest.approx(1000.0)

    def test_temperature_validation(self):
        ham = NbMoTaWHamiltonian(bcc(3))
        with pytest.raises(ValueError):
            ham.beta_from_kelvin(-1.0)
        with pytest.raises(ValueError):
            ham.kelvin_from_beta(0.0)


class TestEPIGeneric:
    def test_species_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            EPIHamiltonian(bcc(3), NBMOTAW, [np.zeros((3, 3))])

    def test_point_energies_shift_absolute_only(self):
        """On-site terms change E but not fixed-composition differences."""
        lat = bcc(3)
        base = EPIHamiltonian(lat, NBMOTAW, [NBMOTAW_EPI_SHELL1])
        shifted = EPIHamiltonian(
            lat, NBMOTAW, [NBMOTAW_EPI_SHELL1], point_energies=[0.1, 0.2, 0.3, 0.4]
        )
        counts = equiatomic_counts(lat.n_sites, 4)
        a = random_configuration(lat.n_sites, counts, rng=1)
        b = random_configuration(lat.n_sites, counts, rng=2)
        diff_base = base.energy(a) - base.energy(b)
        diff_shift = shifted.energy(a) - shifted.energy(b)
        assert diff_base == pytest.approx(diff_shift, abs=1e-9)
