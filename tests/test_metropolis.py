"""Statistical correctness tests for the Metropolis sampler."""

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian, enumerate_density_of_states, enumerate_energies
from repro.lattice import random_configuration, square_lattice
from repro.proposals import FlipProposal, MultiSwapProposal, SwapProposal
from repro.sampling import MetropolisSampler


def exact_mean_energy(levels, degens, beta):
    w = np.log(degens) - beta * levels
    w -= w.max()
    p = np.exp(w) / np.exp(w).sum()
    return float(np.dot(p, levels))


class TestCanonicalMeans:
    @pytest.mark.parametrize("beta", [0.2, 0.4])
    def test_flip_chain_mean_energy(self, ising_4x4, beta):
        levels, degens = enumerate_density_of_states(ising_4x4)
        exact = exact_mean_energy(levels, degens, beta)
        sampler = MetropolisSampler(
            ising_4x4, FlipProposal(), beta, np.zeros(16, dtype=np.int8), rng=0
        )
        sampler.run(5_000)
        stats = sampler.run(120_000, record_energy_every=10)
        sem = stats.energies.std() / np.sqrt(len(stats.energies) / 20)
        assert stats.energies.mean() == pytest.approx(exact, abs=max(5 * sem, 0.3))

    def test_swap_chain_fixed_composition_mean(self, ising_4x4):
        """Canonical (fixed-M) sampling matches fixed-composition enumeration."""
        beta = 0.3
        counts = [8, 8]
        energies = enumerate_energies(ising_4x4, counts=counts)
        w = -beta * energies
        w -= w.max()
        p = np.exp(w) / np.exp(w).sum()
        exact = float(np.dot(p, energies))
        cfg = random_configuration(16, counts, rng=1)
        sampler = MetropolisSampler(ising_4x4, SwapProposal(), beta, cfg, rng=2)
        sampler.run(5_000)
        stats = sampler.run(120_000, record_energy_every=10)
        assert stats.energies.mean() == pytest.approx(exact, abs=0.4)

    def test_multiswap_agrees_with_swap(self, ising_4x4):
        beta = 0.25
        counts = [8, 8]
        cfg = random_configuration(16, counts, rng=3)
        means = []
        for prop in [SwapProposal(), MultiSwapProposal(k=2)]:
            s = MetropolisSampler(ising_4x4, prop, beta, cfg, rng=4)
            s.run(5_000)
            st = s.run(80_000, record_energy_every=10)
            means.append(st.energies.mean())
        assert means[0] == pytest.approx(means[1], abs=0.5)


class TestMechanics:
    def test_energy_tracking_no_drift(self, hea_small, hea_config):
        sampler = MetropolisSampler(hea_small, SwapProposal(), 5.0, hea_config, rng=0)
        sampler.run(20_000)
        assert sampler.resync_energy() < 1e-7

    def test_zero_beta_accepts_everything_distinct(self, hea_small, hea_config):
        sampler = MetropolisSampler(hea_small, SwapProposal(), 0.0, hea_config, rng=1)
        stats = sampler.run(500)
        assert stats.acceptance_rate == 1.0

    def test_huge_beta_reaches_low_energy(self, ising_4x4):
        sampler = MetropolisSampler(
            ising_4x4, FlipProposal(), 10.0, np.zeros(16, dtype=np.int8), rng=2
        )
        sampler.run(20_000)
        assert sampler.energy == pytest.approx(-32.0)

    def test_callback_invoked(self, ising_4x4):
        sampler = MetropolisSampler(
            ising_4x4, FlipProposal(), 1.0, np.zeros(16, dtype=np.int8), rng=3
        )
        seen = []
        sampler.run(10, callback=lambda s, k: seen.append(k), callback_every=2)
        assert seen == [1, 3, 5, 7, 9]

    def test_record_energy_trace_length(self, ising_4x4):
        sampler = MetropolisSampler(
            ising_4x4, FlipProposal(), 1.0, np.zeros(16, dtype=np.int8), rng=4
        )
        stats = sampler.run(100, record_energy_every=10)
        assert stats.energies.shape == (10,)

    def test_run_sweeps(self, ising_4x4):
        sampler = MetropolisSampler(
            ising_4x4, FlipProposal(), 1.0, np.zeros(16, dtype=np.int8), rng=5
        )
        stats = sampler.run_sweeps(3)
        assert stats.n_steps == 48

    def test_negative_beta_rejected(self, ising_4x4):
        with pytest.raises(ValueError):
            MetropolisSampler(ising_4x4, FlipProposal(), -1.0, np.zeros(16, dtype=np.int8))

    def test_require_canonical_rejects_flip(self, hea_small, hea_config):
        with pytest.raises(ValueError):
            MetropolisSampler(
                hea_small, FlipProposal(), 1.0, hea_config, require_canonical=True
            )

    def test_initial_config_copied(self, ising_4x4):
        cfg = np.zeros(16, dtype=np.int8)
        sampler = MetropolisSampler(ising_4x4, FlipProposal(), 0.1, cfg, rng=6)
        sampler.run(100)
        assert np.all(cfg == 0)

    def test_detailed_balance_two_state(self):
        """Explicit detailed-balance check on a 1D two-site Ising chain:
        empirical visit ratio of (energy) macrostates matches Boltzmann."""
        lat = square_lattice(3, 3)
        ham = IsingHamiltonian(lat)
        beta = 0.35
        sampler = MetropolisSampler(ham, FlipProposal(), beta, np.zeros(9, dtype=np.int8), rng=7)
        sampler.run(2_000)
        visits: dict[float, int] = {}
        for _ in range(60_000):
            sampler.step()
            visits[sampler.energy] = visits.get(sampler.energy, 0) + 1
        levels, degens = enumerate_density_of_states(ham)
        probs = {}
        w = np.log(degens) - beta * levels
        w -= w.max()
        z = np.exp(w).sum()
        for e, wi in zip(levels, np.exp(w) / z):
            probs[float(e)] = wi
        for e, count in visits.items():
            if probs.get(e, 0) > 0.05:
                assert count / 60_000 == pytest.approx(probs[e], rel=0.2)
