"""Tests for optimizers, gradient clipping, and parameter serialization."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Dense, Sequential, Tanh, clip_gradients, load_params, save_params
from repro.nn.layers import Parameter
from repro.nn.serialization import params_from_bytes, params_to_bytes


def quadratic_params():
    """A single parameter minimizing f(w) = 0.5*||w - target||²."""
    p = Parameter("w", np.array([5.0, -3.0]))
    target = np.array([1.0, 2.0])
    return p, target


class TestSGD:
    def test_converges_on_quadratic(self):
        p, target = quadratic_params()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.zero_grad()
            p.grad += p.value - target
            opt.step()
        assert np.allclose(p.value, target, atol=1e-4)

    def test_momentum_accelerates(self):
        p1, target = quadratic_params()
        p2 = Parameter("w", p1.value.copy())
        plain = SGD([p1], lr=0.01)
        momo = SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(50):
            for p, opt in [(p1, plain), (p2, momo)]:
                p.zero_grad()
                p.grad += p.value - target
                opt.step()
        assert np.linalg.norm(p2.value - target) < np.linalg.norm(p1.value - target)

    def test_validation(self):
        p, _ = quadratic_params()
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p, target = quadratic_params()
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.zero_grad()
            p.grad += p.value - target
            opt.step()
        assert np.allclose(p.value, target, atol=1e-3)

    def test_first_step_size_is_lr(self):
        """With bias correction the first Adam step has magnitude ≈ lr."""
        p = Parameter("w", np.array([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad += np.array([123.0])
        opt.step()
        assert abs(p.value[0]) == pytest.approx(0.01, rel=1e-3)

    def test_validation(self):
        p, _ = quadratic_params()
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, beta1=1.0)
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, beta2=-0.1)

    def test_zero_grad_clears(self):
        p, _ = quadratic_params()
        opt = Adam([p], lr=0.1)
        p.grad += 1.0
        opt.zero_grad()
        assert np.all(p.grad == 0.0)


class TestClipGradients:
    def test_clip_reduces_norm(self):
        p = Parameter("w", np.zeros(4))
        p.grad += np.array([3.0, 4.0, 0.0, 0.0])
        pre = clip_gradients([p], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_no_clip_below_threshold(self):
        p = Parameter("w", np.zeros(2))
        p.grad += np.array([0.3, 0.4])
        clip_gradients([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_invalid_norm_raises(self):
        with pytest.raises(ValueError):
            clip_gradients([], max_norm=0.0)


class TestSerialization:
    def _make_net(self, seed):
        rng = np.random.default_rng(seed)
        return Sequential(Dense(3, 4, rng, name="l0"), Tanh(), Dense(4, 2, rng, name="l1"))

    def test_save_load_round_trip(self, tmp_path):
        net1 = self._make_net(0)
        net2 = self._make_net(1)
        path = tmp_path / "ckpt.npz"
        save_params(net1.parameters(), path)
        load_params(net2.parameters(), path)
        for a, b in zip(net1.parameters(), net2.parameters()):
            assert np.allclose(a.value, b.value)

    def test_bytes_round_trip(self):
        net1 = self._make_net(0)
        net2 = self._make_net(1)
        blob = params_to_bytes(net1.parameters())
        params_from_bytes(net2.parameters(), blob)
        x = np.random.default_rng(2).normal(size=(3, 3))
        assert np.allclose(net1.forward(x), net2.forward(x))

    def test_mismatched_count_raises(self, tmp_path):
        net = self._make_net(0)
        path = tmp_path / "ckpt.npz"
        save_params(net.parameters(), path)
        small = Sequential(Dense(3, 4, np.random.default_rng(0), name="l0"))
        with pytest.raises(ValueError):
            load_params(small.parameters(), path)

    def test_mismatched_name_raises(self, tmp_path):
        net = self._make_net(0)
        path = tmp_path / "ckpt.npz"
        save_params(net.parameters(), path)
        other = Sequential(Dense(3, 4, np.random.default_rng(0), name="x0"),
                           Tanh(), Dense(4, 2, np.random.default_rng(0), name="x1"))
        with pytest.raises(ValueError):
            load_params(other.parameters(), path)

    def test_mismatched_shape_raises(self, tmp_path):
        net = self._make_net(0)
        path = tmp_path / "ckpt.npz"
        save_params(net.parameters(), path)
        other = Sequential(Dense(3, 5, np.random.default_rng(0), name="l0"),
                           Tanh(), Dense(5, 2, np.random.default_rng(0), name="l1"))
        with pytest.raises(ValueError):
            load_params(other.parameters(), path)
