"""Tests for repro.obs.tracing: spans, nesting, and the Timer compat shim."""

import pytest

from repro.obs.events import EventLog, MemorySink
from repro.obs.tracing import Span, Timer, TimerRegistry, Tracer


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer("t")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.total >= 0.0
        assert t.mean == t.total / 2

    def test_stop_without_start_raises(self):
        t = Timer("t")
        with pytest.raises(RuntimeError, match="not running"):
            t.stop()

    def test_double_start_raises(self):
        t = Timer("t")
        t.start()
        with pytest.raises(RuntimeError, match="already running"):
            t.start()

    def test_mean_zero_when_unused(self):
        assert Timer("t").mean == 0.0


class TestTimerRegistry:
    def test_autocreates_and_reports(self):
        reg = TimerRegistry()
        with reg["alpha"]:
            pass
        assert "alpha" in reg
        assert reg.names() == ["alpha"]
        assert reg.as_dict()["alpha"]["count"] == 1

    def test_report_columns_align_for_long_names(self):
        reg = TimerRegistry()
        long = "rewl.round.advance.window.walker.sweep_accumulator"
        assert len(long) > 28
        with reg[long]:
            pass
        with reg["short"]:
            pass
        lines = reg.report().splitlines()
        header = lines[0]
        # The name column widens to fit the longest name, so "calls" starts
        # past it and every row's call count ends at the same column.
        calls_end = header.index("calls") + len("calls")
        assert calls_end > len(long)
        for line in lines[1:]:
            assert line[calls_end - 1] == "1"

    def test_compat_shim_removed(self):
        # The deprecated re-export module is gone; the canonical home is
        # repro.obs.tracing (lint-api enforces no in-repo references).
        import importlib
        import sys

        sys.modules.pop("repro.util.timers", None)  # lint-api: allow
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.util.timers")  # lint-api: allow


class TestSpans:
    def test_nesting_builds_dotted_paths(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            assert tr.current_path == "outer"
            with tr.span("inner") as inner:
                assert tr.current_path == "outer.inner"
            assert tr.current_path == "outer"
        assert tr.current_path is None
        assert outer.path == "outer"
        assert inner.path == "outer.inner"
        assert tr.timers["outer"].count == 1
        assert tr.timers["outer.inner"].count == 1

    def test_exception_unwinds_stack_and_records(self):
        sink = MemorySink()
        tr = Tracer(events=EventLog(run_id="t", sinks=[sink]))
        with pytest.raises(ValueError):
            with tr.span("risky"):
                raise ValueError("boom")
        assert tr.current_path is None  # stack unwound
        assert tr.timers["risky"].count == 1  # interval still recorded
        (record,) = sink.records
        assert record["kind"] == "span"
        assert record["error"] == "ValueError"
        # a later span is unaffected by the earlier failure
        with tr.span("after"):
            assert tr.current_path == "after"

    def test_span_emits_fields_and_duration(self):
        sink = MemorySink()
        tr = Tracer(events=EventLog(run_id="t", sinks=[sink]))
        with tr.span("advance", round=3, walkers=4):
            pass
        (record,) = sink.records
        assert record["path"] == "advance"
        assert record["round"] == 3 and record["walkers"] == 4
        assert record["dur_s"] >= 0.0
        assert "error" not in record

    def test_spans_without_events_aggregate_only(self):
        tr = Tracer()  # no event log attached
        with tr.span("a"):
            with tr.span("b"):
                pass
        assert set(tr.as_dict()) == {"a", "a.b"}
        assert "a.b" in tr.report()

    def test_sibling_spans_share_parent_prefix(self):
        tr = Tracer()
        with tr.span("round"):
            with tr.span("advance"):
                pass
            with tr.span("exchange"):
                pass
        assert set(tr.as_dict()) == {"round", "round.advance", "round.exchange"}

    def test_reentered_name_aggregates(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("sweep"):
                pass
        assert tr.timers["sweep"].count == 3
