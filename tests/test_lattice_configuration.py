"""Tests for repro.lattice.configuration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice import (
    NBMOTAW,
    SpeciesSet,
    composition_counts,
    composition_fractions,
    equiatomic_counts,
    from_one_hot,
    one_hot,
    random_configuration,
    swap_sites,
    validate_configuration,
)


class TestSpeciesSet:
    def test_nbmotaw_order(self):
        assert NBMOTAW.names == ("Nb", "Mo", "Ta", "W")
        assert NBMOTAW.index("W") == 3
        assert len(NBMOTAW) == 4

    def test_unknown_species_raises(self):
        with pytest.raises(KeyError):
            NBMOTAW.index("Fe")

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError):
            SpeciesSet(("A", "A"))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SpeciesSet(())

    def test_iterable(self):
        assert list(NBMOTAW) == ["Nb", "Mo", "Ta", "W"]


class TestEquiatomic:
    def test_divisible(self):
        assert np.array_equal(equiatomic_counts(128, 4), [32, 32, 32, 32])

    def test_remainder_goes_to_low_indices(self):
        assert np.array_equal(equiatomic_counts(10, 4), [3, 3, 2, 2])

    @given(st.integers(1, 500), st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_sums_to_n_sites(self, n, s):
        counts = equiatomic_counts(n, s)
        assert counts.sum() == n
        assert counts.max() - counts.min() <= 1


class TestRandomConfiguration:
    def test_exact_composition(self):
        cfg = random_configuration(20, [5, 5, 5, 5], rng=0)
        assert np.array_equal(composition_counts(cfg, 4), [5, 5, 5, 5])

    def test_deterministic_with_seed(self):
        a = random_configuration(30, [10, 10, 10], rng=7)
        b = random_configuration(30, [10, 10, 10], rng=7)
        assert np.array_equal(a, b)

    def test_bad_counts_sum_raises(self):
        with pytest.raises(ValueError):
            random_configuration(10, [5, 6])

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            random_configuration(0, [-1, 1])

    def test_dtype_is_int8(self):
        assert random_configuration(8, [4, 4], rng=0).dtype == np.int8

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_composition_always_exact(self, seed):
        counts = [7, 3, 5]
        cfg = random_configuration(15, counts, rng=seed)
        assert np.array_equal(composition_counts(cfg, 3), counts)


class TestEncodings:
    def test_one_hot_round_trip(self):
        cfg = random_configuration(40, [10, 10, 10, 10], rng=1)
        assert np.array_equal(from_one_hot(one_hot(cfg, 4)), cfg)

    def test_one_hot_rows_sum_to_one(self):
        cfg = random_configuration(12, [6, 6], rng=2)
        assert np.allclose(one_hot(cfg, 2).sum(axis=1), 1.0)

    def test_one_hot_out_of_range_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 5]), 3)

    def test_from_one_hot_bad_ndim_raises(self):
        with pytest.raises(ValueError):
            from_one_hot(np.zeros(5))

    def test_fractions_sum_to_one(self):
        cfg = random_configuration(16, [4, 4, 4, 4], rng=3)
        assert composition_fractions(cfg, 4).sum() == pytest.approx(1.0)


class TestValidateAndSwap:
    def test_validate_accepts_good(self):
        cfg = random_configuration(10, [5, 5], rng=0)
        out = validate_configuration(cfg, 10, 2)
        assert out.dtype == np.int8

    def test_validate_rejects_shape(self):
        with pytest.raises(ValueError):
            validate_configuration(np.zeros(9, dtype=np.int8), 10, 2)

    def test_validate_rejects_range(self):
        with pytest.raises(ValueError):
            validate_configuration(np.full(10, 3, dtype=np.int8), 10, 2)

    def test_swap_sites_in_place(self):
        cfg = np.array([0, 1, 2], dtype=np.int8)
        swap_sites(cfg, 0, 2)
        assert cfg.tolist() == [2, 1, 0]
