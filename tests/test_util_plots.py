"""Tests for the text plotting helpers."""

import numpy as np
import pytest

from repro.util import ascii_plot, sparkline


class TestSparkline:
    def test_monotone_series(self):
        out = sparkline([1, 2, 3, 4])
        assert len(out) == 4
        assert out[0] == "▁" and out[-1] == "█"

    def test_constant_series_mid_level(self):
        out = sparkline([5, 5, 5])
        assert len(set(out)) == 1

    def test_nan_becomes_blank(self):
        out = sparkline([1.0, np.nan, 3.0])
        assert out[1] == " "

    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_nan(self):
        assert sparkline([np.nan, np.nan]) == "  "


class TestAsciiPlot:
    def test_single_series_contains_markers(self):
        xs = np.linspace(0, 1, 20)
        out = ascii_plot(xs, xs**2, title="parabola")
        assert "parabola" in out
        assert "*" in out

    def test_multi_series_legend(self):
        xs = np.linspace(0, 1, 10)
        out = ascii_plot(xs, {"a": xs, "b": 1 - xs})
        assert "*=a" in out and "o=b" in out

    def test_axis_labels(self):
        xs = np.linspace(0, 2, 5)
        out = ascii_plot(xs, xs, xlabel="T", ylabel="C")
        assert "T →" in out and "C ↑" in out

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_plot([0, 1], {"a": [1, 2, 3]})

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            ascii_plot([0], [1])

    def test_flat_series_handled(self):
        out = ascii_plot([0, 1, 2], [3, 3, 3])
        assert "*" in out

    def test_nan_values_skipped(self):
        out = ascii_plot([0, 1, 2], [1.0, np.nan, 2.0])
        assert "*" in out
