"""Property tests for the REWL energy-window decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import make_windows
from repro.sampling import EnergyGrid


class TestMakeWindows:
    def test_single_window_is_whole_grid(self):
        grid = EnergyGrid.uniform(0, 10, 20)
        windows = make_windows(grid, 1)
        assert len(windows) == 1
        assert windows[0].lo_bin == 0 and windows[0].hi_bin == 19

    def test_two_windows_cover_and_overlap(self):
        grid = EnergyGrid.uniform(0, 10, 20)
        w = make_windows(grid, 2, overlap=0.5)
        assert w[0].lo_bin == 0
        assert w[1].hi_bin == 19
        ov = w[0].overlap_bins(w[1])
        assert ov is not None and ov[1] >= ov[0]

    @given(
        n_bins=st.integers(10, 200),
        n_windows=st.integers(1, 8),
        overlap=st.floats(0.1, 0.9),
    )
    @settings(max_examples=120, deadline=None)
    def test_invariants(self, n_bins, n_windows, overlap):
        if n_bins < 2 * n_windows:
            return  # construction legitimately refuses
        grid = EnergyGrid.uniform(0.0, 1.0, n_bins)
        windows = make_windows(grid, n_windows, overlap)
        assert len(windows) == n_windows
        covered = np.zeros(n_bins, dtype=bool)
        for w in windows:
            assert w.n_bins >= 2
            covered[w.lo_bin : w.hi_bin + 1] = True
            # Window grid aligns with global bins.
            assert np.allclose(w.grid.centers, grid.centers[w.lo_bin : w.hi_bin + 1])
        assert covered.all()
        for a, b in zip(windows, windows[1:]):
            assert a.overlap_bins(b) is not None
            assert b.lo_bin > a.lo_bin and b.hi_bin > a.hi_bin

    def test_overlap_fraction_roughly_respected(self):
        grid = EnergyGrid.uniform(0.0, 1.0, 120)
        windows = make_windows(grid, 4, overlap=0.5)
        for a, b in zip(windows, windows[1:]):
            lo, hi = a.overlap_bins(b)
            frac = (hi - lo + 1) / a.n_bins
            assert 0.3 < frac < 0.7

    def test_too_many_windows_raises(self):
        grid = EnergyGrid.uniform(0, 1, 6)
        with pytest.raises(ValueError):
            make_windows(grid, 4)

    def test_bad_overlap_raises(self):
        grid = EnergyGrid.uniform(0, 1, 20)
        with pytest.raises(ValueError):
            make_windows(grid, 2, overlap=0.95)

    def test_levels_grid_windows(self):
        grid = EnergyGrid.from_levels(np.arange(20.0))
        windows = make_windows(grid, 3, overlap=0.4)
        assert windows[0].lo_bin == 0
        assert windows[-1].hi_bin == 19

    def test_no_overlap_between_distant_windows(self):
        grid = EnergyGrid.uniform(0.0, 1.0, 100)
        windows = make_windows(grid, 5, overlap=0.3)
        assert windows[0].overlap_bins(windows[4]) is None
