"""Tests for repro.obs.chrometrace: deterministic cross-process merging,
Chrome trace-event JSON shape, and the export-trace CLI end to end."""

import json

import numpy as np
import pytest

import repro.obs.events as events_mod
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.obs import EventLog, Instrumentation, JsonlSink, Telemetry
from repro.obs.chrometrace import main_export, merge_traces, to_chrome
from repro.obs.events import TRACE_DIR_ENV_VAR, worker_log
from repro.parallel import REWLConfig, REWLDriver
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid


def _record(ts, pid, seq, kind="tick", run="r", **fields):
    return {"v": 1, "run": run, "seq": seq, "ts": ts, "pid": pid,
            "kind": kind, **fields}


def _write_jsonl(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records),
                    encoding="utf-8")


@pytest.fixture
def fresh_worker_log(monkeypatch):
    """Force worker_log() to re-read REPRO_TRACE_DIR inside this test."""
    monkeypatch.setattr(events_mod, "_worker_log", None)
    monkeypatch.setattr(events_mod, "_worker_log_pid", None)
    yield
    log = events_mod._worker_log
    if log is not None:
        log.close()
    # monkeypatch restores the previous singleton on teardown.


class TestMergeDeterminism:
    def _records(self):
        return [
            _record(3.0, 20, 1), _record(1.0, 10, 1), _record(1.0, 10, 2),
            _record(2.0, 30, 5), _record(1.0, 20, 1), _record(2.5, 10, 3),
        ]

    @pytest.mark.parametrize("split", [1, 2, 3])
    def test_order_independent_of_file_layout(self, tmp_path, split):
        records = self._records()
        d = tmp_path / f"workers{split}"
        d.mkdir()
        # Round-robin the records over `split` files, simulating different
        # worker counts interleaving the same campaign's events.
        buckets = [records[i::split] for i in range(split)]
        for i, bucket in enumerate(buckets):
            _write_jsonl(d / f"worker-{i}.jsonl", bucket)
        merged = merge_traces([d])
        expected = sorted(records,
                          key=lambda r: (r["ts"], r["pid"], r["run"], r["seq"]))
        assert merged == expected

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"bad json\n' + json.dumps(_record(1.0, 1, 1)) + "\n")
        assert len(merge_traces([path])) == 1

    def test_run_filter(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_jsonl(path, [_record(1.0, 1, 1, run="a"),
                            _record(2.0, 1, 2, run="b")])
        assert [r["run"] for r in merge_traces([path], run="b")] == ["b"]


class TestToChrome:
    def test_span_becomes_complete_event(self):
        trace = to_chrome([_record(10.0, 7, 1, kind="span", name="advance",
                                   dur_s=2.0)])
        (x,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert x["name"] == "advance"
        assert x["ts"] == pytest.approx(8.0e6)  # start = end - duration
        assert x["dur"] == pytest.approx(2.0e6)
        assert x["pid"] == 7

    def test_worker_span_gets_walker_lane(self):
        trace = to_chrome([_record(5.0, 7, 1, kind="worker_span",
                                   name="advance", dur_s=1.0, window=1,
                                   walker=2)])
        (x,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert x["tid"] == 1102  # 1000 + window*100 + slot
        names = [e for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert any(e["args"]["name"] == "window 1 walker 2" for e in names)

    def test_other_kinds_become_instants_with_process_metadata(self):
        trace = to_chrome([_record(1.0, 3, 1, kind="sync", window=0)])
        (i,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert i["name"] == "sync" and i["ts"] == pytest.approx(1.0e6)
        procs = [e for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert procs and "pid 3" in procs[0]["args"]["name"]

    def test_nested_fields_reach_args(self):
        trace = to_chrome([_record(1.0, 3, 1, kind="span", dur_s=0.5,
                                   fields={"steps": 40, "name": "x"})])
        (x,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert x["args"]["steps"] == 40
        assert x["name"] == "x"  # name resolved through the nested payload


class TestExportCli:
    def test_export_merges_driver_and_worker_traces(self, tmp_path, capsys):
        d = tmp_path / "traces"
        d.mkdir()
        _write_jsonl(d / "worker-111.jsonl",
                     [_record(1.0, 111, 1, kind="worker_span", name="advance",
                              dur_s=0.5, window=0, walker=0)])
        _write_jsonl(d / "worker-222.jsonl",
                     [_record(1.2, 222, 1, kind="worker_span", name="advance",
                              dur_s=0.4, window=1, walker=0)])
        out = tmp_path / "trace.chrome.json"
        assert main_export([str(d), "-o", str(out)]) == 0
        trace = json.loads(out.read_text())
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {111, 222}  # timeline spans worker processes
        assert "2 process(es)" in capsys.readouterr().out

    def test_export_fails_cleanly_on_missing_input(self, tmp_path):
        assert main_export([str(tmp_path / "nope.jsonl")]) == 1


class TestWorkerTracesFromRewl:
    def _run_driver(self, telemetry=None):
        ham = IsingHamiltonian(square_lattice(4))
        grid = EnergyGrid.from_levels(ham.energy_levels())
        driver = REWLDriver(
            hamiltonian=ham, proposal_factory=lambda: FlipProposal(),
            grid=grid, initial_config=np.zeros(16, dtype=np.int8),
            config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                       exchange_interval=200, ln_f_final=5e-2, seed=11),
            instrumentation=Instrumentation(telemetry=telemetry),
        )
        driver.run(max_rounds=10)
        return driver

    def test_trace_dir_collects_worker_spans(self, tmp_path, monkeypatch,
                                             fresh_worker_log):
        monkeypatch.setenv(TRACE_DIR_ENV_VAR, str(tmp_path))
        self._run_driver()
        worker_log().close()
        files = sorted(tmp_path.glob("worker-*.jsonl"))
        assert files
        records = merge_traces(files)
        spans = [r for r in records if r["kind"] == "worker_span"]
        assert spans
        assert {s["window"] for s in spans} == {0, 1}
        assert all(s["dur_s"] >= 0 for s in spans)

    def test_export_on_real_campaign_trace(self, tmp_path, monkeypatch,
                                           fresh_worker_log):
        workers = tmp_path / "workers"
        workers.mkdir()
        monkeypatch.setenv(TRACE_DIR_ENV_VAR, str(workers))
        trace_path = tmp_path / "driver.jsonl"
        tel = Telemetry(events=EventLog(
            run_id="E2", sinks=[JsonlSink(trace_path)]))
        self._run_driver(telemetry=tel)
        tel.close()
        worker_log().close()

        out = tmp_path / "campaign.chrome.json"
        assert main_export([str(trace_path), str(workers),
                            "-o", str(out)]) == 0
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        # Valid Chrome trace-event stream: every event has the mandatory
        # keys, X events carry durations, and both sources are present.
        for e in events:
            assert {"name", "ph", "pid"} <= set(e)
            if e["ph"] == "X":
                assert e["dur"] >= 0
        assert any(e["ph"] == "X" and e.get("cat") == "worker_span"
                   for e in events)
        assert any(e["ph"] == "i" for e in events)

    def test_worker_log_disabled_without_env(self, monkeypatch,
                                             fresh_worker_log):
        monkeypatch.delenv(TRACE_DIR_ENV_VAR, raising=False)
        assert not worker_log().enabled
