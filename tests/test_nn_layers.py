"""Gradient checks and unit tests for the NN substrate layers.

Every backward pass is verified against central finite differences — the
one test family that makes a hand-rolled backprop framework trustworthy.
"""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    LeakyReLU,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
    glorot_uniform,
    he_normal,
    normal_init,
    zeros_init,
)

EPS = 1e-6


def numeric_grad(f, x, eps=EPS):
    """Central-difference gradient of scalar f at array x."""
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for k in range(flat.size):
        old = flat[k]
        flat[k] = old + eps
        up = f()
        flat[k] = old - eps
        down = f()
        flat[k] = old
        gflat[k] = (up - down) / (2 * eps)
    return g


def check_layer_gradients(layer, x, atol=1e-6):
    """Verify input and parameter gradients of `layer` at input `x`
    against finite differences of the scalar loss sum(forward(x)²)/2."""
    def loss():
        return 0.5 * float(np.sum(layer.forward(x) ** 2))

    # Analytic gradients.
    layer.zero_grad()
    out = layer.forward(x)
    grad_in = layer.backward(out.copy())
    # Input gradient.
    expected_in = numeric_grad(loss, x)
    assert np.allclose(grad_in, expected_in, atol=atol), "input gradient mismatch"
    # Parameter gradients.
    for p in layer.parameters():
        expected = numeric_grad(loss, p.value)
        # Recompute analytic grad (numeric_grad perturbed the values).
        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out.copy())
        assert np.allclose(p.grad, expected, atol=atol), f"grad mismatch for {p.name}"


class TestDense:
    def test_forward_affine(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.value + layer.bias.value
        assert np.allclose(layer.forward(x), expected)

    def test_gradcheck(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng)
        check_layer_gradients(layer, rng.normal(size=(5, 4)))

    def test_gradcheck_no_bias(self):
        rng = np.random.default_rng(2)
        layer = Dense(4, 3, rng, bias=False)
        assert len(layer.parameters()) == 1
        check_layer_gradients(layer, rng.normal(size=(5, 4)))

    def test_masked_dense_respects_mask(self):
        rng = np.random.default_rng(3)
        mask = np.zeros((3, 2))
        mask[0, 0] = 1.0
        layer = Dense(3, 2, rng, mask=mask)
        x = rng.normal(size=(4, 3))
        out = layer.forward(x)
        # Output column 1 connects to nothing -> bias only.
        assert np.allclose(out[:, 1], layer.bias.value[1])

    def test_masked_dense_gradient_gated(self):
        rng = np.random.default_rng(4)
        mask = np.zeros((3, 2))
        mask[1, 0] = 1.0
        layer = Dense(3, 2, rng, mask=mask)
        x = rng.normal(size=(4, 3))
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        assert np.all(layer.weight.grad[mask == 0] == 0.0)

    def test_bad_mask_shape_raises(self):
        with pytest.raises(ValueError):
            Dense(3, 2, np.random.default_rng(0), mask=np.ones((2, 3)))

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_grad_accumulates(self):
        rng = np.random.default_rng(5)
        layer = Dense(2, 2, rng)
        x = rng.normal(size=(3, 2))
        layer.forward(x)
        layer.backward(np.ones((3, 2)))
        g1 = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((3, 2)))
        assert np.allclose(layer.weight.grad, 2 * g1)


@pytest.mark.parametrize(
    "activation", [ReLU(), Tanh(), Sigmoid(), Softplus(), LeakyReLU(0.1)]
)
class TestActivations:
    def test_gradcheck(self, activation):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(4, 5)) * 2.0
        # Nudge points away from ReLU kinks for finite differences.
        x[np.abs(x) < 1e-3] = 0.1
        check_layer_gradients(activation, x)

    def test_no_parameters(self, activation):
        assert activation.parameters() == []


class TestActivationValues:
    def test_relu(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        assert np.allclose(out, [0.0, 0.0, 2.0])

    def test_leaky_relu(self):
        out = LeakyReLU(0.1).forward(np.array([-10.0, 10.0]))
        assert np.allclose(out, [-1.0, 10.0])

    def test_sigmoid_stable_at_extremes(self):
        out = Sigmoid().forward(np.array([-800.0, 800.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-300)
        assert out[1] == pytest.approx(1.0)

    def test_softplus_stable_at_extremes(self):
        out = Softplus().forward(np.array([-800.0, 800.0]))
        assert np.all(np.isfinite(out))
        assert out[1] == pytest.approx(800.0)


class TestSequential:
    def test_compose_and_gradcheck(self):
        rng = np.random.default_rng(8)
        net = Sequential(Dense(4, 8, rng), Tanh(), Dense(8, 3, rng))
        check_layer_gradients(net, rng.normal(size=(6, 4)), atol=1e-5)

    def test_parameters_collected(self):
        rng = np.random.default_rng(9)
        net = Sequential(Dense(2, 3, rng), ReLU(), Dense(3, 1, rng))
        assert len(net.parameters()) == 4

    def test_len_and_iter(self):
        rng = np.random.default_rng(10)
        net = Sequential(Dense(2, 2, rng), ReLU())
        assert len(net) == 2
        assert len(list(net)) == 2


class TestInitializers:
    def test_glorot_bounds(self):
        rng = np.random.default_rng(0)
        w = glorot_uniform(rng, 100, 50)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.all(np.abs(w) <= limit)

    def test_he_scale(self):
        rng = np.random.default_rng(0)
        w = he_normal(rng, 10_000, 4)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 10_000), rel=0.1)

    def test_normal_init(self):
        w = normal_init(np.random.default_rng(0), 1000, 4, std=0.05)
        assert w.std() == pytest.approx(0.05, rel=0.2)

    def test_zeros(self):
        assert np.all(zeros_init(np.random.default_rng(0), 3, 3) == 0.0)
