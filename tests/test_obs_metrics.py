"""Tests for repro.obs.metrics: counters, gauges, histograms, merging."""

import pickle

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)
from repro.parallel import ProcessExecutor, SerialExecutor, run_spmd
from repro.obs import Telemetry


def _fill_registry(i, scale=1):
    """Module-level task so process executors can pickle it."""
    reg = MetricsRegistry()
    reg.inc("walker.steps", (i + 1) * 100 * scale)
    reg.inc("walker.accepted", (i + 1) * 10 * scale)
    reg.set("walker.ln_f", 1.0 / (i + 1))
    for k in range(i + 1):
        # Dyadic values sum exactly, so merge order cannot perturb the
        # histogram float accumulators and associativity is bit-exact.
        reg.observe("walker.sweep_seconds", 0.25 * (k + 1))
    return reg


class TestCounter:
    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set(self):
        g = Gauge("g")
        assert not g.updated
        g.set(2.5)
        assert g.value == 2.5 and g.updated

    def test_merge_right_bias(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0)
        a.merge(b)  # b never set: a keeps its value
        assert a.value == 1.0
        b.set(9.0)
        a.merge(b)
        assert a.value == 9.0


class TestHistogram:
    def test_observe_buckets_and_stats(self):
        h = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.min == 0.05 and h.max == 50.0
        assert h.mean == pytest.approx(55.55 / 4)

    def test_bucket_mismatch_merge_rejected(self):
        a = Histogram("h", buckets=(1.0,))
        b = Histogram("h", buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))


class TestMetricsRegistry:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_picklable(self):
        reg = _fill_registry(2)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.as_dict() == reg.as_dict()

    def test_dict_round_trip(self):
        reg = _fill_registry(3)
        reg2 = MetricsRegistry.from_dict(reg.as_dict())
        assert reg2.as_dict() == reg.as_dict()

    def test_merge_associative(self):
        regs = [_fill_registry(i, scale=s) for i, s in [(0, 1), (1, 3), (2, 7)]]

        def ab_c():
            left = merge_registries(regs[:2])
            return left.merge(pickle.loads(pickle.dumps(regs[2])))

        def a_bc():
            right = merge_registries(regs[1:])
            out = merge_registries([regs[0]])
            return out.merge(right)

        # Re-pickle inputs so in-place merging cannot cross-contaminate.
        snapshot = pickle.dumps(regs)
        assert ab_c().as_dict() == a_bc().as_dict()
        assert pickle.dumps(regs) == snapshot

    def test_merge_into_empty_is_identity(self):
        reg = _fill_registry(1)
        merged = MetricsRegistry().merge(reg)
        assert merged.as_dict() == reg.as_dict()


class TestLabels:
    """Labeled series: one family, many label sets, guarded cardinality."""

    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.set("window.ln_f", 0.5, labels={"window": 0})
        reg.set("window.ln_f", 0.25, labels={"window": 1})
        assert reg.gauge("window.ln_f", labels={"window": 0}).value == 0.5
        assert reg.gauge("window.ln_f", labels={"window": 1}).value == 0.25
        assert len(reg) == 2

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("m", labels={"a": 1, "b": 2})
        reg.inc("m", labels={"b": 2, "a": 1})
        assert reg.counter("m", labels={"a": 1, "b": 2}).value == 2

    def test_labeled_round_trip_and_pickle(self):
        reg = MetricsRegistry()
        reg.inc("m", 3, labels={"w": 1})
        reg.set("g", 0.5, labels={"w": 2})
        reg.observe("h", 0.25, buckets=(1.0,), labels={"w": 3})
        clone = MetricsRegistry.from_dict(reg.as_dict())
        assert clone.as_dict() == reg.as_dict()
        assert pickle.loads(pickle.dumps(reg)).as_dict() == reg.as_dict()

    def test_cardinality_guard_warns_once_and_folds_to_other(self):
        reg = MetricsRegistry(max_label_sets=2)
        reg.inc("m", labels={"w": 0})
        reg.inc("m", labels={"w": 1})
        with pytest.warns(RuntimeWarning, match="label sets"):
            reg.inc("m", labels={"w": 2})
            reg.inc("m", labels={"w": 3})  # second overflow: no new warning
        assert reg.counter("m", labels={"w": "other"}).value == 2
        # Existing label sets keep working past the cap.
        reg.inc("m", labels={"w": 0})
        assert reg.counter("m", labels={"w": 0}).value == 2

    def test_merge_routes_through_guard(self):
        left = MetricsRegistry(max_label_sets=1)
        right = MetricsRegistry()
        right.inc("m", 5, labels={"w": 0})
        right.inc("m", 7, labels={"w": 1})
        with pytest.warns(RuntimeWarning):
            left.merge(right)
        assert left.counter("m", labels={"w": 0}).value == 5
        assert left.counter("m", labels={"w": "other"}).value == 7

    def test_merge_labeled_series(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("m", 1, labels={"w": 0})
        b.inc("m", 2, labels={"w": 0})
        b.inc("m", 4, labels={"w": 1})
        a.merge(b)
        assert a.counter("m", labels={"w": 0}).value == 3
        assert a.counter("m", labels={"w": 1}).value == 4


class TestExecutorReduction:
    """Per-walker registries survive executor round trips and reduce equal."""

    def test_serial_vs_process_merge_identical(self):
        serial = SerialExecutor().map(_fill_registry, [0, 1, 2, 3])
        with ProcessExecutor(n_workers=2) as ex:
            process = ex.map(_fill_registry, [0, 1, 2, 3])
        merged_serial = merge_registries(serial)
        merged_process = merge_registries(process)
        assert merged_serial.as_dict() == merged_process.as_dict()
        assert merged_serial.counter("walker.steps").value == 1000


class TestCommMetrics:
    def test_spmd_merges_rank_comm_metrics(self):
        def program(comm):
            comm.barrier()
            return comm.allreduce(comm.rank)

        tel = Telemetry()
        results = run_spmd(program, 3, telemetry=tel)
        assert results == [3, 3, 3]
        # 3 explicit barriers + the barriers inside allgather-backed allreduce.
        assert tel.metrics.counter("comm.barrier.calls").value >= 3
        assert tel.metrics.counter("comm.allreduce.calls").value == 3
        hist = tel.metrics["comm.allreduce.seconds"]
        assert hist.count == 3

    def test_single_rank_serial_comm_metrics(self):
        def program(comm):
            return comm.bcast("x")

        tel = Telemetry()
        assert run_spmd(program, 1, telemetry=tel) == ["x"]
        assert tel.metrics.counter("comm.bcast.calls").value == 1
