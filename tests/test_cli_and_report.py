"""Tests for the CLI entry point and the EXPERIMENTS.md report generator."""

import json

import pytest

from repro.__main__ import main as cli_main
from repro.experiments.common import EXPERIMENTS
from repro.experiments.report import render
from repro.obs import MetricsRegistry, merge_registries
from repro.obs.report import main as obs_report_main
from repro.obs.report import render_report


class TestCli:
    def test_help(self, capsys):
        assert cli_main([]) == 0
        assert "experiments" in capsys.readouterr().out

    def test_info(self, capsys):
        assert cli_main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "sampling" in out

    def test_unknown_command(self, capsys):
        assert cli_main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_experiments_rejects_unknown_id(self):
        with pytest.raises(SystemExit):
            cli_main(["experiments", "--only", "E99"])

    def test_obs_usage_and_unknown_subcommand(self, capsys):
        assert cli_main(["obs"]) == 0
        assert "bench-compare" in capsys.readouterr().out
        assert cli_main(["obs", "frobnicate"]) == 2
        assert "unknown obs subcommand" in capsys.readouterr().err

    def test_obs_report_dispatch(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        trace.write_text(json.dumps({
            "v": 1, "run": "r", "seq": 0, "ts": 1.0, "kind": "span",
            "path": "advance", "dur_s": 0.5,
        }) + "\n")
        assert cli_main(["obs", "report", str(trace)]) == 0
        assert "advance" in capsys.readouterr().out

    def test_obs_dash_dispatch(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        trace.write_text(json.dumps({
            "v": 1, "run": "r", "seq": 0, "ts": 1.0, "kind": "heartbeat",
            "round": 1, "windows": [], "pairs": [],
        }) + "\n")
        assert cli_main(["obs", "dash", str(trace)]) == 0
        assert "heartbeat" in capsys.readouterr().out


class TestObsReportEdgeCases:
    """Satellite coverage: empty traces, zero-fault digests, metric merges."""

    def test_empty_run_no_events(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert obs_report_main([str(trace)]) == 1
        assert "no telemetry records" in capsys.readouterr().err

    def test_missing_trace_file(self, tmp_path, capsys):
        assert obs_report_main([str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace" in capsys.readouterr().err

    def test_zero_fault_digest_is_omitted(self):
        records = [{"v": 1, "run": "r", "seq": 0, "ts": 1.0, "kind": "span",
                    "path": "advance", "dur_s": 0.5}]
        report = render_report(records)
        assert "fault tolerance:" not in report
        assert "run health:" not in report

    def test_fault_digest_present_with_retries(self):
        records = [
            {"run": "r", "ts": 1.0, "kind": "task_retry", "reason": "hang"},
            {"run": "r", "ts": 2.0, "kind": "checkpoint_saved"},
        ]
        report = render_report(records)
        assert "1 task retries (hang=1)" in report
        assert "1 saved" in report

    def test_metrics_merge_disjoint_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("adv.time", 0.01, buckets=(0.1, 1.0))
        b.observe("sync.time", 5.0, buckets=(0.1, 1.0))
        merged = merge_registries([a, b])
        assert merged.names() == ["adv.time", "sync.time"]
        assert merged["adv.time"].count == 1
        assert merged["sync.time"].count == 1

    def test_metrics_merge_mismatched_buckets_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("t", 0.01, buckets=(0.1, 1.0))
        b.observe("t", 0.01, buckets=(0.5, 2.0))
        with pytest.raises(ValueError, match="mismatched buckets"):
            a.merge(b)

    def test_profile_events_render_sections_table(self):
        records = [{
            "run": "r", "ts": 1.0, "kind": "profile",
            "sections": {
                "proposal.flip": {"calls": 100, "timed": 10,
                                  "est_total_s": 0.5},
            },
        }]
        report = render_report(records)
        assert "profiled sections" in report
        assert "proposal.flip" in report


class TestReportRender:
    def test_render_with_entries(self, tmp_path):
        summary = {
            "E1": {
                "title": "t1", "paper_claim": "c1", "measured": "m1",
                "elapsed_s": 1.0,
            }
        }
        detail = {"tables": {"a": "row1 | row2"}}
        (tmp_path / "e1.json").write_text(json.dumps(detail))
        out = render(summary, tmp_path)
        assert "## E1: t1" in out
        assert "c1" in out and "m1" in out
        assert "row1 | row2" in out

    def test_render_marks_pending(self, tmp_path):
        out = render({}, tmp_path)
        for exp_id in EXPERIMENTS:
            assert f"## {exp_id}" in out
        assert "Pending" in out


class TestObsReportResilience:
    """The PR-7 Resilience section: disposition table and degradation banner."""

    _SUMMARY = {
        "run": "r", "ts": 5.0, "kind": "resilience", "mode": "quarantine",
        "degraded": True, "guard_trips": 3, "task_failures": 2, "rollbacks": 2,
        "quarantined": [1],
        "budget": {"exhausted": False, "trigger": None},
        "windows": [
            {"window": 0, "disposition": "healthy", "guard_trips": 0,
             "rollbacks": 0, "task_failures": 0, "reason": ""},
            {"window": 1, "disposition": "quarantined", "guard_trips": 3,
             "rollbacks": 2, "task_failures": 2,
             "reason": "guard: non-finite ln_g (first at bin 7)"},
        ],
    }

    def test_disposition_table_and_banner(self):
        report = render_report([self._SUMMARY])
        assert "Resilience (run r, mode quarantine)" in report
        assert "quarantined" in report and "non-finite ln_g" in report
        assert "campaign DEGRADED: 3 guard trip(s), 2 rollback(s), " \
               "1 quarantine(s); budget ok" in report

    def test_budget_exhaustion_in_banner(self):
        summary = dict(self._SUMMARY, degraded=True, quarantined=[],
                       budget={"exhausted": True,
                               "trigger": "rounds (5 >= 5)"})
        report = render_report([summary])
        assert "budget exhausted (rounds (5 >= 5))" in report

    def test_incremental_events_without_summary(self):
        """An aborted campaign leaves only the incremental events."""
        records = [
            {"run": "r", "ts": 1.0, "kind": "guard_trip", "window": 1},
            {"run": "r", "ts": 2.0, "kind": "window_rollback", "window": 1},
            {"run": "r", "ts": 3.0, "kind": "budget_exhausted",
             "trigger": "wall clock (10.0s >= 10.0s)"},
        ]
        report = render_report(records)
        assert "1 guard trip(s); 1 rollback(s); " \
               "budget exhausted (wall clock (10.0s >= 10.0s))" in report
        assert "campaign aborted?" in report

    def test_clean_trace_has_no_resilience_section(self):
        records = [{"run": "r", "ts": 1.0, "kind": "span",
                    "path": "advance", "dur_s": 0.5}]
        assert "Resilience" not in render_report(records)
