"""Tests for the CLI entry point and the EXPERIMENTS.md report generator."""

import json

import pytest

from repro.__main__ import main as cli_main
from repro.experiments.common import EXPERIMENTS
from repro.experiments.report import render


class TestCli:
    def test_help(self, capsys):
        assert cli_main([]) == 0
        assert "experiments" in capsys.readouterr().out

    def test_info(self, capsys):
        assert cli_main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "sampling" in out

    def test_unknown_command(self, capsys):
        assert cli_main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_experiments_rejects_unknown_id(self):
        with pytest.raises(SystemExit):
            cli_main(["experiments", "--only", "E99"])


class TestReportRender:
    def test_render_with_entries(self, tmp_path):
        summary = {
            "E1": {
                "title": "t1", "paper_claim": "c1", "measured": "m1",
                "elapsed_s": 1.0,
            }
        }
        detail = {"tables": {"a": "row1 | row2"}}
        (tmp_path / "e1.json").write_text(json.dumps(detail))
        out = render(summary, tmp_path)
        assert "## E1: t1" in out
        assert "c1" in out and "m1" in out
        assert "row1 | row2" in out

    def test_render_marks_pending(self, tmp_path):
        out = render({}, tmp_path)
        for exp_id in EXPERIMENTS:
            assert f"## {exp_id}" in out
        assert "Pending" in out
