"""Tests for repro.lattice.structures: neighbor tables are the foundation
every Hamiltonian and observable rests on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice import bcc, fcc, simple_cubic, square_lattice
from repro.lattice.structures import Lattice


class TestBuilders:
    @pytest.mark.parametrize(
        "builder,arg,n_sites,z1,d1",
        [
            (square_lattice, 5, 25, 4, 1.0),
            (simple_cubic, 4, 64, 6, 1.0),
            (bcc, 4, 128, 8, np.sqrt(3) / 2),
            (fcc, 3, 108, 12, 1 / np.sqrt(2)),
        ],
    )
    def test_counts_and_first_shell(self, builder, arg, n_sites, z1, d1):
        lat = builder(arg)
        assert lat.n_sites == n_sites
        shell = lat.neighbor_shells(1)[0]
        assert shell.coordination == z1
        assert shell.distance == pytest.approx(d1, abs=1e-9)

    def test_bcc_second_shell(self):
        shells = bcc(4).neighbor_shells(2)
        assert shells[1].coordination == 6
        assert shells[1].distance == pytest.approx(1.0)

    def test_sc_second_shell(self):
        shells = simple_cubic(4).neighbor_shells(2)
        assert shells[1].coordination == 12
        assert shells[1].distance == pytest.approx(np.sqrt(2.0))

    def test_rectangular_square_lattice(self):
        lat = square_lattice(4, 6)
        assert lat.n_sites == 24
        assert lat.neighbor_shells(1)[0].coordination == 4


class TestNeighborInvariants:
    @pytest.mark.parametrize("lat", [square_lattice(5), simple_cubic(3), bcc(3), fcc(3)])
    def test_symmetry(self, lat):
        """j in N(i) implies i in N(j) (undirected bonds)."""
        for shell in lat.neighbor_shells(1):
            table = shell.table
            for i in range(lat.n_sites):
                for j in table[i]:
                    assert i in table[j]

    @pytest.mark.parametrize("lat", [square_lattice(5), bcc(3)])
    def test_no_self_neighbors(self, lat):
        for shell in lat.neighbor_shells(2):
            for i in range(lat.n_sites):
                assert i not in shell.table[i]

    @pytest.mark.parametrize("lat", [square_lattice(5), bcc(3)])
    def test_no_duplicate_neighbors(self, lat):
        for shell in lat.neighbor_shells(2):
            for i in range(lat.n_sites):
                assert len(set(shell.table[i].tolist())) == shell.coordination

    @pytest.mark.parametrize("lat", [square_lattice(5), simple_cubic(3), bcc(3)])
    def test_matches_bruteforce(self, lat):
        fast = lat.neighbor_shells(2)
        slow = lat.neighbor_shells_bruteforce(2)
        for a, b in zip(fast, slow):
            assert a.distance == pytest.approx(b.distance, abs=1e-8)
            assert np.array_equal(np.sort(a.table, axis=1), b.table)

    def test_pairs_each_bond_once(self):
        lat = square_lattice(4)
        shell = lat.neighbor_shells(1)[0]
        pairs = shell.pairs()
        # 2D square torus: 2N bonds.
        assert pairs.shape == (2 * lat.n_sites, 2)
        assert np.all(pairs[:, 0] < pairs[:, 1])
        assert len({tuple(p) for p in pairs.tolist()}) == len(pairs)

    def test_pairs_count_bcc(self):
        lat = bcc(3)
        shells = lat.neighbor_shells(2)
        assert shells[0].pairs().shape[0] == lat.n_sites * 8 // 2
        assert shells[1].pairs().shape[0] == lat.n_sites * 6 // 2

    @given(st.integers(3, 6))
    @settings(max_examples=4, deadline=None)
    def test_translation_invariance_square(self, length):
        """Shifting all sites by one lattice vector permutes neighbor rows
        consistently: the neighbor of the shifted site is the shifted
        neighbor."""
        lat = square_lattice(length)
        table = lat.neighbor_shells(1)[0].table

        def shift(site):
            row, col = divmod(site, length)
            return ((row + 1) % length) * length + col

        for i in range(lat.n_sites):
            shifted = sorted(shift(j) for j in table[i])
            assert shifted == sorted(table[shift(i)].tolist())


class TestLatticeValidation:
    def test_too_small_supercell_raises(self):
        with pytest.raises(ValueError):
            square_lattice(2).neighbor_shells(1)

    def test_bad_primitive_shape(self):
        with pytest.raises(ValueError):
            Lattice(np.zeros((2, 3)), (4, 4), [[0, 0]])

    def test_bad_size_length(self):
        with pytest.raises(ValueError):
            Lattice(np.eye(2), (4,), [[0, 0]])

    def test_bad_basis_columns(self):
        with pytest.raises(ValueError):
            Lattice(np.eye(2), (4, 4), [[0, 0, 0]])

    def test_positions_shape(self):
        lat = bcc(3)
        pos = lat.positions()
        assert pos.shape == (lat.n_sites, 3)

    def test_site_index_wraps(self):
        lat = square_lattice(4)
        assert lat.site_index((4, 0)) == lat.site_index((0, 0))
        assert lat.site_index((-1, 0)) == lat.site_index((3, 0))

    def test_repr_mentions_name(self):
        assert "bcc" in repr(bcc(3))

    def test_shell_cache_returns_same(self):
        lat = square_lattice(4)
        assert lat.neighbor_shells(1) is lat.neighbor_shells(1)


class TestStreamingBlocks:
    """The ultra-large-scale tier: block construction must reproduce the
    materialized tables row-for-row, and shell metadata must come without
    O(N) work."""

    @pytest.mark.parametrize("builder,arg", [
        (square_lattice, 5), (simple_cubic, 4), (bcc, 4), (fcc, 3),
    ])
    def test_neighbor_block_equals_table_slices(self, builder, arg):
        lat = builder(arg)
        shells = lat.neighbor_shells(2)
        for start, stop in [(0, lat.n_sites), (0, 1), (7, 23),
                            (lat.n_sites - 3, lat.n_sites)]:
            blocks = lat.neighbor_block(2, start, stop)
            for s, shell in enumerate(shells):
                np.testing.assert_array_equal(blocks[s], shell.table[start:stop])

    def test_neighbor_block_dtype_is_int32(self):
        lat = bcc(3)
        for tab in lat.neighbor_block(2, 0, 5):
            assert tab.dtype == np.int32

    def test_table_dtype_is_int32(self):
        lat = bcc(3)
        for shell in lat.neighbor_shells(2):
            assert shell.table.dtype == np.int32

    def test_neighbor_block_out_of_range(self):
        lat = bcc(3)
        with pytest.raises(ValueError):
            lat.neighbor_block(1, -1, 4)
        with pytest.raises(ValueError):
            lat.neighbor_block(1, 0, lat.n_sites + 1)

    def test_empty_block(self):
        lat = bcc(3)
        blocks = lat.neighbor_block(2, 4, 4)
        assert all(tab.shape[0] == 0 for tab in blocks)

    def test_shell_info_matches_tables(self):
        lat = bcc(4)
        info = lat.shell_info(2)
        shells = lat.neighbor_shells(2)
        assert len(info) == 2
        for (dist, z), shell in zip(info, shells):
            assert dist == pytest.approx(shell.distance)
            assert z == shell.coordination

    def test_shell_info_small_supercell_raises(self):
        with pytest.raises(ValueError):
            square_lattice(2).shell_info(1)


class TestBruteforceGuard:
    def test_large_lattice_raises_without_force(self):
        lat = bcc(13)  # 4394 sites > guard
        with pytest.raises(ValueError, match="neighbor_shells"):
            lat.neighbor_shells_bruteforce(1)

    def test_small_lattice_still_works(self):
        lat = square_lattice(4)
        shells = lat.neighbor_shells_bruteforce(1)
        # Column order differs between the builders; rows hold the same sets.
        np.testing.assert_array_equal(
            np.sort(shells[0].table, axis=1),
            np.sort(lat.neighbor_shells(1)[0].table, axis=1))
