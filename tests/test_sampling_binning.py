"""Tests for EnergyGrid (uniform and level-based binning)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import EnergyGrid


class TestUniformGrid:
    def test_basic_mapping(self):
        g = EnergyGrid.uniform(0.0, 10.0, 5)
        assert g.n_bins == 5
        assert g.index(0.0) == 0
        assert g.index(1.999) == 0
        assert g.index(2.0) == 1
        assert g.index(9.999) == 4

    def test_right_edge_inclusive(self):
        g = EnergyGrid.uniform(0.0, 10.0, 5)
        assert g.index(10.0) == 4

    def test_outside_returns_minus_one(self):
        g = EnergyGrid.uniform(0.0, 10.0, 5)
        assert g.index(-0.001) == -1
        assert g.index(10.001) == -1
        assert not g.contains(11.0)

    def test_centers_and_widths(self):
        g = EnergyGrid.uniform(0.0, 10.0, 5)
        assert np.allclose(g.centers, [1, 3, 5, 7, 9])
        assert np.allclose(g.widths, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyGrid.uniform(1.0, 1.0, 5)
        with pytest.raises(ValueError):
            EnergyGrid.uniform(0.0, 1.0, 0)

    @given(st.floats(-100, 100))
    @settings(max_examples=60, deadline=None)
    def test_index_array_matches_scalar(self, e):
        g = EnergyGrid.uniform(-50.0, 50.0, 17)
        assert g.index_array(np.array([e]))[0] == g.index(e)


class TestLevelsGrid:
    def test_exact_levels(self):
        g = EnergyGrid.from_levels([-4.0, 0.0, 4.0])
        assert g.n_bins == 3
        assert g.index(-4.0) == 0
        assert g.index(0.0) == 1
        assert g.index(4.0) == 2

    def test_tolerance(self):
        g = EnergyGrid.from_levels([-4.0, 0.0, 4.0], tol=1e-6)
        assert g.index(-4.0 + 1e-7) == 0
        assert g.index(-3.9) == -1

    def test_duplicate_levels_deduplicated(self):
        g = EnergyGrid.from_levels([0.0, 0.0, 1.0])
        assert g.n_bins == 2

    def test_too_close_levels_raise(self):
        with pytest.raises(ValueError):
            EnergyGrid.from_levels([0.0, 1e-8], tol=1e-6)

    def test_index_array_levels(self):
        g = EnergyGrid.from_levels([-2.0, 0.0, 2.0])
        out = g.index_array(np.array([-2.0, -1.0, 0.0, 2.0, 3.0]))
        assert out.tolist() == [0, -1, 1, 2, -1]

    def test_empty_levels_raise(self):
        with pytest.raises(ValueError):
            EnergyGrid.from_levels([])


class TestSubgrid:
    def test_uniform_subgrid_alignment(self):
        g = EnergyGrid.uniform(0.0, 10.0, 10)
        sub = g.subgrid(2, 5)
        assert sub.n_bins == 4
        assert np.allclose(sub.centers, g.centers[2:6])

    def test_levels_subgrid_alignment(self):
        g = EnergyGrid.from_levels([0.0, 1.0, 2.0, 3.0])
        sub = g.subgrid(1, 2)
        assert np.allclose(sub.centers, [1.0, 2.0])

    def test_invalid_range_raises(self):
        g = EnergyGrid.uniform(0.0, 1.0, 4)
        with pytest.raises(ValueError):
            g.subgrid(2, 1)
        with pytest.raises(ValueError):
            g.subgrid(0, 4)

    def test_exactly_one_mode_enforced(self):
        with pytest.raises(ValueError):
            EnergyGrid(None, None, 0.0)

    def test_repr(self):
        assert "uniform" in repr(EnergyGrid.uniform(0, 1, 2))
        assert "levels" in repr(EnergyGrid.from_levels([0.0, 1.0]))
