"""Property tests for repro.kernels: batched kernels == scalar kernels.

The vectorized ``*_alternatives`` / ``*_many`` shapes must agree with the
scalar ΔE/energy paths on every Hamiltonian — any divergence silently
corrupts batched Wang-Landau sampling, so the agreement is property-tested
over random configurations and move sets.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hamiltonians import IsingHamiltonian, PairHamiltonian, PottsHamiltonian
from repro.hamiltonians.base import Hamiltonian
from repro.kernels import PairTables, ops
from repro.lattice import square_lattice


def random_cfg(ham, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, ham.n_species, ham.n_sites).astype(np.int8)


@pytest.fixture
def pair_2shell_field():
    """Generic 2-shell pair model with an on-site field (3 species)."""
    rng = np.random.default_rng(7)
    mats = []
    for _ in range(2):
        m = rng.normal(size=(3, 3))
        mats.append((m + m.T) / 2.0)
    return PairHamiltonian(
        square_lattice(4), mats, field=rng.normal(size=3), name="generic"
    )


@pytest.fixture(params=["ising", "potts", "hea", "generic"])
def any_ham(request, ising_4x4, potts3_4x4, hea_small, pair_2shell_field):
    return {
        "ising": ising_4x4,
        "potts": potts3_4x4,
        "hea": hea_small,
        "generic": pair_2shell_field,
    }[request.param]


class TestPairTables:
    def test_table_shapes(self, pair_2shell_field):
        ham = pair_2shell_field
        t = ham.tables
        assert t.n_species == 3
        assert t.n_shells == 2
        assert t.cat_table.shape == (ham.n_sites, t.n_neighbor_cols)
        assert t.diff_rows.shape == (3, 3, 3 * 2)  # (S, S, S * n_shells)
        assert t.corr_by_col.shape == (t.n_neighbor_cols, 3, 3)
        assert t.shell_offsets.shape == (t.n_neighbor_cols,)
        assert t.shell_of_col.shape == (t.n_neighbor_cols,)

    def test_diff_rows_are_matrix_differences(self, pair_2shell_field):
        t = pair_2shell_field.tables
        S = t.n_species
        for a in range(S):
            for b in range(S):
                for s, V in enumerate(t.shell_matrices):
                    for c in range(S):
                        assert t.diff_rows[a, b, c + s * S] == pytest.approx(
                            V[b, c] - V[a, c]
                        )

    def test_bond_corr_identity(self, pair_2shell_field):
        t = pair_2shell_field.tables
        for s, V in enumerate(t.shell_matrices):
            expected = (
                np.diag(V)[:, None] + np.diag(V)[None, :] - 2.0 * V
            )
            np.testing.assert_allclose(t.bond_corr[s], expected)
        for col in range(t.n_neighbor_cols):
            np.testing.assert_array_equal(
                t.corr_by_col[col], t.bond_corr[t.shell_of_col[col]]
            )


class TestEnergies:
    def test_energies_matches_scalar(self, any_ham):
        cfgs = np.stack([random_cfg(any_ham, s) for s in range(8)])
        batch = any_ham.energies(cfgs)
        assert batch.shape == (8,)
        for k in range(8):
            assert batch[k] == pytest.approx(any_ham.energy(cfgs[k]))

    def test_energies_accepts_single_config(self, any_ham):
        cfg = random_cfg(any_ham, 0)
        batch = any_ham.energies(cfg)
        assert batch.shape == (1,)
        assert batch[0] == pytest.approx(any_ham.energy(cfg))


class TestAlternativesKernels:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_swap_alternatives_matches_scalar(self, any_ham, seed):
        ham = any_ham
        rng = np.random.default_rng(seed)
        cfg = random_cfg(ham, seed)
        ii = rng.integers(0, ham.n_sites, 25)
        jj = rng.integers(0, ham.n_sites, 25)
        batch = ham.delta_energy_swap_batch(cfg, ii, jj)
        for k in range(25):
            assert batch[k] == pytest.approx(
                ham.delta_energy_swap(cfg, int(ii[k]), int(jj[k])), abs=1e-9
            )

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_flip_alternatives_matches_scalar(self, any_ham, seed):
        ham = any_ham
        rng = np.random.default_rng(seed)
        cfg = random_cfg(ham, seed)
        sites = rng.integers(0, ham.n_sites, 25)
        news = rng.integers(0, ham.n_species, 25)
        batch = ham.delta_energy_flip_batch(cfg, sites, news)
        for k in range(25):
            assert batch[k] == pytest.approx(
                ham.delta_energy_flip(cfg, int(sites[k]), int(news[k])), abs=1e-9
            )


class TestManyKernels:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_swap_many_matches_scalar(self, any_ham, seed):
        ham = any_ham
        rng = np.random.default_rng(seed)
        B = 12
        cfgs = np.stack([random_cfg(ham, seed + k) for k in range(B)])
        ii = rng.integers(0, ham.n_sites, B)
        jj = rng.integers(0, ham.n_sites, B)
        batch = ham.delta_energy_swap_many(cfgs, ii, jj)
        assert batch.shape == (B,)
        for b in range(B):
            assert batch[b] == pytest.approx(
                ham.delta_energy_swap(cfgs[b], int(ii[b]), int(jj[b])), abs=1e-9
            )

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_flip_many_matches_scalar(self, any_ham, seed):
        ham = any_ham
        rng = np.random.default_rng(seed)
        B = 12
        cfgs = np.stack([random_cfg(ham, seed + k) for k in range(B)])
        sites = rng.integers(0, ham.n_sites, B)
        news = rng.integers(0, ham.n_species, B)
        batch = ham.delta_energy_flip_many(cfgs, sites, news)
        assert batch.shape == (B,)
        for b in range(B):
            assert batch[b] == pytest.approx(
                ham.delta_energy_flip(cfgs[b], int(sites[b]), int(news[b])), abs=1e-9
            )

    def test_many_consistent_with_full_recompute(self, any_ham):
        """Applying each row's move changes energies(configs) by ΔE_many."""
        ham = any_ham
        rng = np.random.default_rng(11)
        B = 6
        cfgs = np.stack([random_cfg(ham, 100 + k) for k in range(B)])
        before = ham.energies(cfgs)
        ii = rng.integers(0, ham.n_sites, B)
        jj = rng.integers(0, ham.n_sites, B)
        deltas = ham.delta_energy_swap_many(cfgs, ii, jj)
        after_cfgs = cfgs.copy()
        for b in range(B):
            after_cfgs[b, ii[b]], after_cfgs[b, jj[b]] = (
                after_cfgs[b, jj[b]], after_cfgs[b, ii[b]],
            )
        np.testing.assert_allclose(
            ham.energies(after_cfgs), before + deltas, atol=1e-8
        )


class TestBaseClassDefaults:
    """The Hamiltonian base-class loops must agree with the fast overrides."""

    def test_default_many_loops_match_overrides(self, any_ham):
        ham = any_ham
        rng = np.random.default_rng(5)
        B = 8
        cfgs = np.stack([random_cfg(ham, 200 + k) for k in range(B)])
        ii = rng.integers(0, ham.n_sites, B)
        jj = rng.integers(0, ham.n_sites, B)
        sites = rng.integers(0, ham.n_sites, B)
        news = rng.integers(0, ham.n_species, B)
        np.testing.assert_allclose(
            Hamiltonian.delta_energy_swap_many(ham, cfgs, ii, jj),
            ham.delta_energy_swap_many(cfgs, ii, jj), atol=1e-9,
        )
        np.testing.assert_allclose(
            Hamiltonian.delta_energy_flip_many(ham, cfgs, sites, news),
            ham.delta_energy_flip_many(cfgs, sites, news), atol=1e-9,
        )
        np.testing.assert_allclose(
            Hamiltonian.energies(ham, cfgs), ham.energies(cfgs), atol=1e-9,
        )


class TestRemovedAlias:
    def test_energy_batch_is_gone(self, ising_4x4):
        # The deprecated pre-kernel-layer alias completed its cycle.
        assert not hasattr(ising_4x4, "energy_batch")


class TestDtypeDiscipline:
    """DESIGN.md §17: configs stay int8, tables int32, no silent up-casts."""

    def test_tables_are_int32(self, any_ham):
        t = any_ham.tables
        for tab in t.tables:
            assert tab.dtype == np.int32
        assert t.cat_table.dtype == np.int32
        for pi, pj in zip(t.pair_i, t.pair_j):
            assert pi.dtype == np.int32 and pj.dtype == np.int32
        assert t.shell_offsets.dtype == np.int16
        assert t.shell_of_col.dtype == np.int16

    def test_int8_configs_match_int64_configs(self, any_ham):
        """The lean int8 path prices moves identically to an int64 copy of
        the same configs (the old hot path up-cast everything to int64)."""
        rng = np.random.default_rng(21)
        ham = any_ham
        t = ham.tables
        B = 6
        cfgs8 = np.stack([random_cfg(ham, 100 + b) for b in range(B)])
        cfgs64 = cfgs8.astype(np.int64)
        ii = rng.integers(0, ham.n_sites, B)
        jj = rng.integers(0, ham.n_sites, B)
        sites = rng.integers(0, ham.n_sites, B)
        news = rng.integers(0, ham.n_species, B)
        np.testing.assert_array_equal(
            ops.delta_swap_many(t, cfgs8, ii, jj),
            ops.delta_swap_many(t, cfgs64, ii, jj))
        np.testing.assert_array_equal(
            ops.delta_flip_many(t, cfgs8, sites, news),
            ops.delta_flip_many(t, cfgs64, sites, news))
        np.testing.assert_array_equal(
            ops.energies(t, cfgs8), ops.energies(t, cfgs64))
        assert ops.energy(t, cfgs8[0]) == ops.energy(t, cfgs64[0])

    def test_no_upcast_copy_on_many_path(self, hea_small):
        """`_as_int_configs` must pass int8 batches through untouched —
        the whole point of the memory-lean tier is killing the 8x copy."""
        cfgs = np.stack([random_cfg(hea_small, b) for b in range(4)])
        out = ops._as_int_configs(cfgs)
        assert out is cfgs  # same object: no copy, no up-cast

    def test_float_configs_raise(self, hea_small):
        t = hea_small.tables
        cfg = random_cfg(hea_small, 0).astype(np.float64)
        with pytest.raises(TypeError):
            ops.energy(t, cfg)
        with pytest.raises(TypeError):
            ops.delta_swap_many(t, cfg[None], [0], [1])

    def test_lazy_tables_not_built_on_scalar_path(self, hea_small):
        """A scalar-only workload must not materialize the batched
        structures (corr_by_col is the big one)."""
        from repro.kernels.tables import PairTables
        t = PairTables(hea_small.lattice.neighbor_shells(2),
                       hea_small.shell_matrices, hea_small.field)
        before = t.table_nbytes()
        cfg = random_cfg(hea_small, 3)
        i = 0
        j = int(np.nonzero(cfg != cfg[i])[0][0])  # distinct species: no early-out
        ops.delta_swap(t, cfg, i, j)
        ops.delta_flip(t, cfg, i, int(cfg[j]))
        assert "corr_by_col" not in t._cache
        assert "pair_arrays" not in t._cache
        # The scalar path does build the fused cat_table + diff_rows.
        assert t.table_nbytes() > before

    def test_pickle_roundtrip_preserves_lazy_cache(self, hea_small):
        import pickle
        from repro.kernels.tables import PairTables
        t = PairTables(hea_small.lattice.neighbor_shells(2),
                       hea_small.shell_matrices, hea_small.field)
        _ = t.cat_table
        clone = pickle.loads(pickle.dumps(t))
        np.testing.assert_array_equal(clone.cat_table, t.cat_table)
        cfg = random_cfg(hea_small, 5)
        assert ops.energy(clone, cfg) == ops.energy(t, cfg)
