"""Wang–Landau correctness tests against exact enumeration."""

import numpy as np
import pytest

from repro.hamiltonians import enumerate_density_of_states, enumerate_energies
from repro.lattice import random_configuration
from repro.proposals import FlipProposal, SwapProposal
from repro.sampling import (
    EnergyGrid,
    MulticanonicalSampler,
    WangLandauSampler,
    drive_into_range,
)


def compare_to_exact(result, levels, degens, atol):
    """RMS and max error of relative ln g on commonly visited levels."""
    exact = {float(e): float(np.log(d)) for e, d in zip(levels, degens)}
    centers = result.grid.centers
    mg = result.masked_ln_g()
    est, ex = [], []
    for k in np.nonzero(result.visited)[0]:
        e = float(centers[k])
        if e in exact:
            est.append(mg[k])
            ex.append(exact[e])
    est = np.array(est) - est[0]
    ex = np.array(ex) - ex[0]
    err = np.abs(est - ex)
    assert err.max() < atol, f"max ln g error {err.max():.3f} exceeds {atol}"
    return err


class TestWangLandauIsing:
    @pytest.fixture(scope="class")
    def wl_result(self):
        from repro.hamiltonians import IsingHamiltonian
        from repro.lattice import square_lattice

        ham = IsingHamiltonian(square_lattice(4))
        grid = EnergyGrid.from_levels(ham.energy_levels())
        wl = WangLandauSampler(
            hamiltonian=ham, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8),
            rng=0, ln_f_final=1e-5,
        )
        return ham, wl.run(max_steps=5_000_000)

    def test_converged(self, wl_result):
        _, res = wl_result
        assert res.converged
        assert res.final_ln_f <= 1e-5

    def test_ln_g_matches_enumeration(self, wl_result):
        ham, res = wl_result
        levels, degens = enumerate_density_of_states(ham)
        compare_to_exact(res, levels, degens, atol=0.35)

    def test_visits_full_spectrum(self, wl_result):
        ham, res = wl_result
        centers = res.grid.centers[res.visited]
        assert centers.min() == pytest.approx(-32.0)
        assert centers.max() == pytest.approx(32.0)
        assert res.visited.sum() == 15  # exact number of Ising levels at L=4

    def test_iteration_counting(self, wl_result):
        _, res = wl_result
        # ln f halves from 1.0 to <=1e-5: ceil(log2(1e5)) = 17 iterations.
        assert res.n_iterations == 17
        assert len(res.iteration_steps) == 17


class TestWangLandauCanonical:
    def test_fixed_composition_dos(self, ising_4x4):
        """WL with swap moves reproduces the fixed-magnetization DoS."""
        counts = [8, 8]
        energies = enumerate_energies(ising_4x4, counts=counts)
        levels, degen_counts = np.unique(np.round(energies, 9), return_counts=True)
        grid = EnergyGrid.from_levels(levels)
        cfg = random_configuration(16, counts, rng=1)
        wl = WangLandauSampler(hamiltonian=ising_4x4, proposal=SwapProposal(),
                               grid=grid, initial_config=cfg, rng=2,
                               ln_f_final=1e-5)
        res = wl.run(max_steps=5_000_000)
        assert res.converged
        compare_to_exact(res, levels, degen_counts, atol=0.4)


class TestWangLandauMechanics:
    def make_wl(self, ising_4x4, **kwargs):
        grid = EnergyGrid.from_levels(ising_4x4.energy_levels())
        defaults = dict(rng=0, ln_f_final=1e-3)
        defaults.update(kwargs)
        return WangLandauSampler(
            hamiltonian=ising_4x4, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8), **defaults
        )

    def test_out_of_range_initial_raises(self, ising_4x4):
        grid = EnergyGrid.uniform(-32.0, -20.0, 8)
        with pytest.raises(ValueError):
            WangLandauSampler(
                hamiltonian=ising_4x4, proposal=FlipProposal(), grid=grid,
                initial_config=np.eye(4, dtype=np.int8)[0].repeat(4), rng=0
            )

    def test_invalid_schedule_raises(self, ising_4x4):
        with pytest.raises(ValueError):
            self.make_wl(ising_4x4, schedule="linear")

    def test_invalid_flatness_raises(self, ising_4x4):
        with pytest.raises(ValueError):
            self.make_wl(ising_4x4, flatness=1.5)

    def test_invalid_ln_f_raises(self, ising_4x4):
        with pytest.raises(ValueError):
            self.make_wl(ising_4x4, ln_f_final=2.0)

    def test_histogram_updates_every_step(self, ising_4x4):
        wl = self.make_wl(ising_4x4)
        for _ in range(100):
            wl.step()
        assert wl.histogram.sum() == 100

    def test_flatness_false_with_unvisited_previous(self, ising_4x4):
        wl = self.make_wl(ising_4x4)
        wl.visited[0] = True
        wl.visited[5] = True
        wl.histogram[0] = 100
        wl.histogram[5] = 0  # previously visited but empty this iteration
        assert not wl.is_flat()

    def test_one_over_t_floor(self, ising_4x4):
        wl = self.make_wl(ising_4x4, schedule="one_over_t")
        wl.n_steps = 16_000  # 1000 sweeps of 16 sites
        wl.ln_f = 2e-3
        wl.advance_modification_factor()
        # halving would give 1e-3 which equals 1/t=1e-3 -> stays on floor
        assert wl.ln_f == pytest.approx(1e-3)

    def test_one_over_t_converges(self, ising_4x4):
        grid = EnergyGrid.from_levels(ising_4x4.energy_levels())
        wl = WangLandauSampler(
            hamiltonian=ising_4x4, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8),
            rng=3, ln_f_final=5e-4, schedule="one_over_t",
        )
        res = wl.run(max_steps=2_000_000)
        assert res.converged

    def test_flatness_and_fill_fractions_are_pure_reads(self, ising_4x4):
        wl = self.make_wl(ising_4x4)
        assert wl.flatness_fraction() == 0.0
        assert wl.fill_fraction() == 0.0
        wl.run(max_steps=500)
        hist_before = wl.histogram.copy()
        steps_before = wl.n_steps
        frac = wl.flatness_fraction()
        fill = wl.fill_fraction()
        assert 0.0 < frac <= 1.0
        assert 0.0 < fill <= 1.0
        counts = wl.histogram[wl.visited]
        assert frac == pytest.approx(counts.min() / counts.mean())
        assert fill == pytest.approx(np.count_nonzero(wl.visited)
                                     / wl.visited.shape[0])
        assert np.array_equal(wl.histogram, hist_before)
        assert wl.n_steps == steps_before

    def test_max_steps_cuts_off(self, ising_4x4):
        wl = self.make_wl(ising_4x4, ln_f_final=1e-12)
        res = wl.run(max_steps=5_000)
        assert not res.converged
        assert res.n_steps == 5_000


class TestDriveIntoRange:
    def test_drives_to_low_window(self, ising_4x4):
        grid = EnergyGrid.uniform(-32.0, -24.0, 5)
        rng = np.random.default_rng(0)
        cfg = rng.integers(0, 2, 16).astype(np.int8)
        driven = drive_into_range(ising_4x4, FlipProposal(), grid, cfg, rng=rng)
        assert grid.contains(ising_4x4.energy(driven))

    def test_drives_to_high_window(self, ising_4x4):
        grid = EnergyGrid.uniform(24.0, 32.0, 5)
        rng = np.random.default_rng(1)
        cfg = rng.integers(0, 2, 16).astype(np.int8)
        driven = drive_into_range(ising_4x4, FlipProposal(), grid, cfg, rng=rng)
        assert grid.contains(ising_4x4.energy(driven))

    def test_already_inside_returns_copy(self, ising_4x4):
        grid = EnergyGrid.uniform(-33.0, 33.0, 10)
        cfg = np.zeros(16, dtype=np.int8)
        driven = drive_into_range(ising_4x4, FlipProposal(), grid, cfg, rng=0)
        assert grid.contains(ising_4x4.energy(driven))
        assert driven is not cfg

    def test_unreachable_raises(self, ising_4x4):
        grid = EnergyGrid.uniform(-100.0, -90.0, 4)  # below the ground state
        with pytest.raises(RuntimeError):
            drive_into_range(
                ising_4x4, FlipProposal(), grid, np.zeros(16, dtype=np.int8),
                rng=0, max_steps=5_000,
            )


class TestMulticanonical:
    def test_flat_walk_and_refinement(self, ising_4x4):
        """With the exact ln g, the production histogram is flat and the
        refined DoS stays within tolerance of exact."""
        levels, degens = enumerate_density_of_states(ising_4x4)
        grid = EnergyGrid.from_levels(levels)
        ln_g = np.log(degens.astype(np.float64))
        sampler = MulticanonicalSampler(
            ising_4x4, FlipProposal(), grid, ln_g, np.zeros(16, dtype=np.int8), rng=0
        )
        res = sampler.run(150_000)
        h = res.histogram[res.histogram > 0]
        assert h.min() / h.mean() > 0.4  # roughly flat visitation
        refined = res.refined_ln_g()
        rel = refined[np.isfinite(refined)]
        exact_rel = ln_g - ln_g.min()
        assert np.abs((rel - rel[0]) - (exact_rel - exact_rel[0])).max() < 0.5

    def test_observable_accumulation(self, ising_4x4):
        levels, degens = enumerate_density_of_states(ising_4x4)
        grid = EnergyGrid.from_levels(levels)
        ln_g = np.log(degens.astype(np.float64))
        sampler = MulticanonicalSampler(
            ising_4x4, FlipProposal(), grid, ln_g, np.zeros(16, dtype=np.int8), rng=1,
            observables={"abs_m": lambda c, e: abs(ising_4x4.magnetization(c))},
        )
        res = sampler.run(50_000)
        m = res.observable_means["abs_m"]
        visited = res.histogram > 0
        # |M| at the ground-state bin is exactly 16 (all up or all down).
        assert m[0] == pytest.approx(16.0)
        assert np.all(np.isfinite(m[visited]))

    def test_bad_ln_g_shape_raises(self, ising_4x4):
        grid = EnergyGrid.uniform(-32, 32, 10)
        with pytest.raises(ValueError):
            MulticanonicalSampler(
                ising_4x4, FlipProposal(), grid, np.zeros(5), np.zeros(16, dtype=np.int8)
            )

    def test_initial_energy_must_be_in_grid(self, ising_4x4):
        grid = EnergyGrid.uniform(0.0, 32.0, 10)
        with pytest.raises(ValueError):
            MulticanonicalSampler(
                ising_4x4, FlipProposal(), grid, np.zeros(10),
                np.zeros(16, dtype=np.int8),
            )
