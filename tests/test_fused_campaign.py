"""Tests for the fused SPMD campaign super-step (``repro.parallel.fused``).

The acceptance contract: ``backend="fused"`` (in-process) and
``backend="shm"`` (multiprocess, zero-copy shared memory) reproduce the
per-window batched campaign **bit for bit** on a seeded run — same rounds,
same steps, same exchange statistics, same ln g arrays — because the
draw/price split consumes each window's RNG streams in the per-window
order and the ``*_many`` kernels reduce row-wise.
"""

import pickle

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.machine.autotune import CampaignPlan, plan_campaign
from repro.obs import Instrumentation
from repro.obs.profile import SectionProfiler
from repro.parallel import REWLConfig, REWLDriver, SerialExecutor
from repro.parallel.fused import FusedCampaignState, FusedTeam
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid


def _driver(backend="serial", *, seed=11, instrumentation=None, **over):
    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    cfg = dict(n_windows=2, walkers_per_window=2, overlap=0.6,
               exchange_interval=200, ln_f_final=5e-2, seed=seed,
               batched_walkers=True, backend=backend)
    cfg.update(over)
    return REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(**cfg), instrumentation=instrumentation,
    )


def _assert_bit_identical(a, b):
    assert a.converged == b.converged
    assert a.rounds == b.rounds
    assert a.total_steps == b.total_steps
    np.testing.assert_array_equal(a.exchange_attempts, b.exchange_attempts)
    np.testing.assert_array_equal(a.exchange_accepts, b.exchange_accepts)
    for x, y in zip(a.window_ln_g, b.window_ln_g):
        np.testing.assert_array_equal(x, y)
    for x, y in zip(a.window_visited, b.window_visited):
        np.testing.assert_array_equal(x, y)
    assert [s.final_energy for s in a.walkers] \
        == [s.final_energy for s in b.walkers]
    assert [s.n_steps for s in a.walkers] == [s.n_steps for s in b.walkers]


class TestFusedBitIdentity:
    def test_fused_matches_batched_serial(self):
        baseline = _driver("serial").run(max_rounds=60)
        fused = _driver("fused").run(max_rounds=60)
        _assert_bit_identical(fused, baseline)

    def test_fused_backend_forces_batched_teams(self):
        drv = _driver("fused", batched_walkers=False)
        assert drv.cfg.batched_walkers is True
        assert len(drv.walkers[0]) == 1  # one team object per window

    def test_explicit_executor_rejected(self):
        ham = IsingHamiltonian(square_lattice(4))
        grid = EnergyGrid.from_levels(ham.energy_levels())
        with pytest.raises(TypeError, match="manages its own stepping"):
            REWLDriver(
                hamiltonian=ham, proposal_factory=lambda: FlipProposal(),
                grid=grid, initial_config=np.zeros(16, dtype=np.int8),
                config=REWLConfig(n_windows=2, walkers_per_window=2,
                                  overlap=0.6, backend="fused"),
                executor=SerialExecutor(),
            )

    def test_fused_gather_is_profiled_and_attributed(self):
        prof = SectionProfiler(sample_every=1)
        drv = _driver("fused", instrumentation=Instrumentation(profiler=prof))
        result = drv.run(max_rounds=60)
        profile = result.telemetry["profile"]
        assert "rewl.fused_gather" in profile
        assert profile["rewl.fused_gather"]["calls"] > 0
        cost = result.telemetry["cost"]
        assert "fused_gather" in cost["phases"]
        assert cost["phases"]["fused_gather"]["seconds"] > 0


class TestShmBitIdentity:
    def test_shm_matches_batched_serial(self):
        baseline = _driver("serial").run(max_rounds=60)
        drv = _driver("shm", shm_ranks=2)
        try:
            shm = drv.run(max_rounds=60)
        finally:
            drv.close()
        _assert_bit_identical(shm, baseline)

    def test_close_is_idempotent_and_result_survives(self):
        drv = _driver("shm", shm_ranks=1)
        drv.run(max_rounds=5)
        drv.close()
        drv.close()  # second close is a no-op
        result = drv.result()  # teams were detached onto private arrays
        assert 1 <= result.rounds <= 5
        assert all(np.isfinite(g).all() for g in result.window_ln_g)


class TestMaskedRows:
    """Converged/quarantined windows are masked out of the super-step —
    their campaign-array rows must not move."""

    def _frozen_rows_unchanged(self, flag_list):
        drv = _driver("fused")
        drv.run(max_rounds=3)
        state = drv._engine.state
        flag_list(drv)[0] = True
        frozen = np.array(state.configs[state.rows(0)], copy=True)
        frozen_steps = np.array(state.slot_steps[0], copy=True)
        live_steps = np.array(state.slot_steps[1], copy=True)
        drv._advance_phase()
        np.testing.assert_array_equal(state.configs[state.rows(0)], frozen)
        np.testing.assert_array_equal(state.slot_steps[0], frozen_steps)
        assert (state.slot_steps[1] > live_steps).all()

    def test_converged_window_rows_frozen(self):
        self._frozen_rows_unchanged(lambda d: d.window_converged)

    def test_quarantined_window_rows_frozen(self):
        self._frozen_rows_unchanged(lambda d: d.window_quarantined)


class TestCampaignState:
    def test_rows_and_specs_shapes(self):
        specs = FusedCampaignState.specs(3, 2, n_sites=16, width=5,
                                         config_dtype=np.int8)
        assert specs["configs"][0] == (6, 16)
        assert specs["ln_g"][0] == (3, 5)
        assert specs["counts"][0] == (3, 3)
        state = FusedCampaignState.allocate(
            n_windows=3, walkers_per_window=2, n_sites=16, width=5,
            config_dtype=np.int8,
        )
        assert state.rows(1) == slice(2, 4)

    def test_team_views_alias_campaign_arrays(self):
        drv = _driver("fused")
        state = drv._engine.state
        team = drv.walkers[1][0]
        assert np.shares_memory(team.configs, state.configs)
        assert np.shares_memory(team.ln_g, state.ln_g)
        team.ln_f = 0.125
        assert state.ln_f[1] == 0.125

    def test_pickled_team_owns_its_arrays(self):
        drv = _driver("fused")
        team = drv.walkers[0][0]
        clone = pickle.loads(pickle.dumps(team))
        assert isinstance(clone, FusedTeam)
        assert "_fused" not in clone.__dict__
        assert not np.shares_memory(clone.configs, team.configs)
        np.testing.assert_array_equal(clone.ln_g, team.ln_g)
        assert clone.ln_f == team.ln_f


class TestAutotune:
    def test_plan_campaign_fills_the_shape(self):
        plan = plan_campaign(n_bins=64, n_sites=256)
        assert isinstance(plan, CampaignPlan)
        assert plan.n_windows >= 1
        assert plan.walkers_per_window >= 1
        assert 0.1 <= plan.overlap <= 0.9

    def test_none_config_fields_resolved_at_construction(self):
        drv = _driver("fused", n_windows=None, walkers_per_window=None,
                      overlap=None)
        assert drv.cfg.n_windows >= 1
        assert drv.cfg.walkers_per_window >= 1
        assert drv.cfg.overlap is not None
        assert len(drv.windows) == drv.cfg.n_windows

    def test_explicit_fields_win_over_the_plan(self):
        drv = _driver("serial", n_windows=2, walkers_per_window=None,
                      overlap=0.6)
        assert drv.cfg.n_windows == 2
        assert drv.cfg.overlap == 0.6
        assert drv.cfg.walkers_per_window >= 1
