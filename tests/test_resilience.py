"""Tests for campaign self-healing (``repro.resilience``): numerical
guards, rollback/quarantine escalation, budgets, and the end-to-end chaos
acceptance — a permanently failing window degrades the campaign gracefully
and bit-identically reproducibly."""

import types

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultInjector
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.parallel import REWLConfig, REWLDriver, SerialExecutor
from repro.proposals import FlipProposal
from repro.resilience import (
    RESILIENCE_ENV_VAR,
    BudgetPolicy,
    CampaignSupervisor,
    GuardPolicy,
    GuardViolation,
    ResilienceConfig,
    check_team,
    check_walker,
    parse_resilience,
    resilience_from_env,
)
from repro.sampling import EnergyGrid

N_BINS = 8


class FakeWalker:
    """Minimal walker-shaped object the guards accept (picklable)."""

    def __init__(self, n_bins=N_BINS):
        self.grid = types.SimpleNamespace(n_bins=n_bins)
        self.ln_g = np.zeros(n_bins)
        self.histogram = np.zeros(n_bins, dtype=np.int64)
        self.visited = np.zeros(n_bins, dtype=bool)
        self.ln_f = 1.0
        self.energy = 0.0
        self.current_bin = 0
        self.obs_tag = (0, None)


def fake_driver(n_windows=2):
    """Just enough driver surface for the supervisor: windows, walkers,
    quarantine flags, a round counter, and the retag hook."""
    return types.SimpleNamespace(
        windows=[None] * n_windows,
        walkers=[[FakeWalker()] for _ in range(n_windows)],
        window_quarantined=[False] * n_windows,
        rounds=0,
        _retag_window=lambda w: None,
        total_steps=lambda: 0,
    )


class TestGuards:
    def test_healthy_walker_passes(self):
        assert check_walker(FakeWalker()) == []

    def test_nan_ln_g_reports_first_bad_bin(self):
        w = FakeWalker()
        w.ln_g[3] = np.nan
        (violation,) = check_walker(w)
        assert "ln_g" in violation and "bin 3" in violation

    def test_inf_ln_g_detected(self):
        w = FakeWalker()
        w.ln_g[0] = np.inf
        assert any("ln_g" in v for v in check_walker(w))

    def test_ln_g_shape_mismatch(self):
        w = FakeWalker()
        w.ln_g = np.zeros(N_BINS + 1)
        assert any("shape" in v for v in check_walker(w))

    def test_negative_histogram(self):
        w = FakeWalker()
        w.histogram[2] = -1
        assert any("negative histogram" in v for v in check_walker(w))

    def test_histogram_overflow(self):
        w = FakeWalker()
        w.histogram[0] = np.int64(2) ** 62
        assert any("overflow" in v for v in check_walker(w))

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_ln_f(self, bad):
        w = FakeWalker()
        w.ln_f = bad
        assert any("ln_f" in v for v in check_walker(w))

    def test_ln_f_monotone_check(self):
        w = FakeWalker()
        w.ln_f = 0.5
        assert check_walker(w, last_ln_f=0.5) == []  # equal is fine
        assert check_walker(w, last_ln_f=1.0) == []  # shrank: fine
        w.ln_f = 1.0
        assert any("grew" in v for v in check_walker(w, last_ln_f=0.5))

    def test_non_finite_energy(self):
        w = FakeWalker()
        w.energy = float("inf")
        assert any("energy" in v for v in check_walker(w))

    def test_bin_out_of_range(self):
        w = FakeWalker()
        w.current_bin = N_BINS
        assert any("bin" in v for v in check_walker(w))

    def test_batched_team_arrays_accepted(self):
        w = FakeWalker()
        w.energies = np.zeros(3)
        w.bins = np.array([0, 1, N_BINS - 1])
        del w.energy, w.current_bin
        assert check_walker(w) == []
        w.energies[1] = np.nan
        assert any("energy" in v for v in check_walker(w))

    def test_check_team_tags_walkers(self):
        a, b = FakeWalker(), FakeWalker()
        b.ln_g[0] = np.nan
        violations = check_team([a, b])
        assert len(violations) == 1 and violations[0].startswith("walker 1:")
        # Single-member teams stay untagged.
        assert not check_team([b])[0].startswith("walker")

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="mode"):
            GuardPolicy(mode="explode")
        with pytest.raises(ValueError, match="max_rollbacks"):
            GuardPolicy(max_rollbacks=-1)
        with pytest.raises(ValueError, match="snapshot_interval"):
            GuardPolicy(snapshot_interval=0)


class TestParsing:
    def test_on_gives_defaults(self):
        cfg = parse_resilience("1")
        assert cfg == ResilienceConfig()
        assert cfg.guards.mode == "quarantine" and cfg.budget.unlimited

    def test_key_value_spec(self):
        cfg = parse_resilience("mode=rollback,rollbacks=3,wall=60,steps=5e8")
        assert cfg.guards.mode == "rollback"
        assert cfg.guards.max_rollbacks == 3
        assert cfg.budget.wall_s == 60.0
        assert cfg.budget.steps == 500_000_000

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="explode"):
            parse_resilience("explode=1")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            parse_resilience("mode=panic")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="rounds"):
            parse_resilience("rounds=lots")

    @pytest.mark.parametrize("value", ["", "0", "off", "false"])
    def test_env_disabled(self, monkeypatch, value):
        monkeypatch.setenv(RESILIENCE_ENV_VAR, value)
        assert resilience_from_env() is None

    def test_env_enabled(self, monkeypatch):
        monkeypatch.setenv(RESILIENCE_ENV_VAR, "mode=strict,rounds=7")
        cfg = resilience_from_env()
        assert cfg.guards.mode == "strict" and cfg.budget.rounds == 7

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="wall_s"):
            BudgetPolicy(wall_s=-1.0)
        with pytest.raises(ValueError, match="rounds"):
            BudgetPolicy(rounds=-1)


class TestSupervisorEscalation:
    def _supervisor(self, driver, mode="quarantine", max_rollbacks=2, **budget):
        sup = CampaignSupervisor(ResilienceConfig(
            guards=GuardPolicy(mode=mode, max_rollbacks=max_rollbacks),
            budget=BudgetPolicy(**budget),
        ))
        sup.bind(driver)
        sup.snapshot(driver)  # round-0 baseline
        return sup

    def test_rollback_restores_snapshot(self):
        driver = fake_driver()
        sup = self._supervisor(driver)
        driver.walkers[0][0].ln_g[4] = np.nan
        sup.guard_round(driver)
        assert np.isfinite(driver.walkers[0][0].ln_g).all()  # restored
        state = sup.windows[0]
        assert state.disposition == "rolled-back"
        assert state.rollbacks == 1 and state.guard_trips == 1
        assert not sup.degraded

    def test_clean_round_forgives_the_streak(self):
        driver = fake_driver()
        sup = self._supervisor(driver)
        driver.walkers[0][0].ln_g[4] = np.nan
        sup.guard_round(driver)  # trip -> rollback (streak 1)
        sup.guard_round(driver)  # clean round
        state = sup.windows[0]
        assert state.rollback_streak == 0
        assert state.disposition == "healthy"
        assert state.rollbacks == 1  # lifetime total sticks

    def test_persistent_corruption_quarantines(self):
        driver = fake_driver()
        sup = self._supervisor(driver, max_rollbacks=2)
        for _ in range(3):  # corrupt anew after every restore
            driver.walkers[0][0].ln_g[4] = np.nan
            sup.guard_round(driver)
        state = sup.windows[0]
        assert state.disposition == "quarantined"
        assert driver.window_quarantined == [True, False]
        assert sup.quarantined == [0] and sup.degraded
        # Quarantine froze the window at its last good snapshot.
        assert np.isfinite(driver.walkers[0][0].ln_g).all()

    def test_task_failure_does_not_count_as_clean(self):
        """A rolled-back window passes the guards, but the rollback streak
        must survive the same round's guard pass — else a permanently
        failing window never escalates."""
        driver = fake_driver()
        sup = self._supervisor(driver, max_rollbacks=1)
        sup.on_window_failure(driver, 0, RuntimeError("boom"))
        sup.guard_round(driver)  # restored state is guard-clean
        assert sup.windows[0].rollback_streak == 1
        sup.on_window_failure(driver, 0, RuntimeError("boom"))
        assert sup.windows[0].disposition == "quarantined"
        assert sup.windows[0].task_failures == 2

    def test_strict_mode_raises(self):
        driver = fake_driver()
        sup = self._supervisor(driver, mode="strict")
        driver.walkers[0][0].ln_g[4] = np.nan
        with pytest.raises(GuardViolation, match="strict"):
            sup.guard_round(driver)

    def test_rollback_mode_exhaustion_raises(self):
        driver = fake_driver()
        sup = self._supervisor(driver, mode="rollback", max_rollbacks=1)
        driver.walkers[0][0].ln_g[4] = np.nan
        sup.guard_round(driver)
        driver.walkers[0][0].ln_g[4] = np.nan
        with pytest.raises(GuardViolation, match="rollback budget"):
            sup.guard_round(driver)

    def test_rounds_budget(self):
        driver = fake_driver()
        sup = self._supervisor(driver, rounds=3)
        driver.rounds = 2
        assert not sup.budget_exceeded(driver)
        driver.rounds = 3
        assert sup.budget_exceeded(driver)
        assert sup.budget_status["exhausted"]
        assert "rounds" in sup.budget_status["trigger"]
        assert sup.degraded

    def test_steps_budget(self):
        driver = fake_driver()
        driver.total_steps = lambda: 1_000
        sup = self._supervisor(driver, steps=500)
        assert sup.budget_exceeded(driver)
        assert "steps" in sup.budget_status["trigger"]

    def test_budget_is_sticky(self):
        driver = fake_driver()
        sup = self._supervisor(driver, rounds=1)
        driver.rounds = 1
        assert sup.budget_exceeded(driver)
        driver.rounds = 0  # even if the trigger condition goes away
        assert sup.budget_exceeded(driver)

    def test_unlimited_budget_never_triggers(self):
        driver = fake_driver()
        sup = self._supervisor(driver)
        driver.rounds = 10 ** 9
        assert not sup.budget_exceeded(driver)

    def test_summary_and_dispositions(self):
        driver = fake_driver()
        sup = self._supervisor(driver, max_rollbacks=0)
        driver.walkers[1][0].histogram[0] = -5
        sup.guard_round(driver)
        summary = sup.summary()
        assert summary["degraded"] and summary["quarantined"] == [1]
        assert summary["guard_trips"] == 1
        rows = {row["window"]: row for row in summary["windows"]}
        assert rows[0]["disposition"] == "healthy"
        assert rows[1]["disposition"] == "quarantined"
        assert "histogram" in rows[1]["reason"]
        assert all("last_ln_f" not in row for row in summary["windows"])

    def test_state_dict_round_trip(self):
        driver = fake_driver()
        sup = self._supervisor(driver, max_rollbacks=0, rounds=5)
        driver.walkers[0][0].ln_g[1] = np.nan
        sup.guard_round(driver)
        driver.rounds = 5
        sup.budget_exceeded(driver)

        clone = CampaignSupervisor(sup.cfg)
        clone.load_state_dict(sup.state_dict())
        assert clone.quarantined == [0]
        assert clone.budget_status == sup.budget_status
        assert clone.windows[0].as_dict() == sup.windows[0].as_dict()


# --------------------------------------------------------------- end-to-end


@pytest.fixture(scope="module")
def ising():
    return IsingHamiltonian(square_lattice(4))


@pytest.fixture(scope="module")
def grid(ising):
    return EnergyGrid.from_levels(ising.energy_levels())


def chaos_run(ising, grid, faults=None, resilience=None, executor=None,
              seed=21, n_windows=4, overlap=0.4, max_rounds=300, **cfg_kwargs):
    if executor is None:
        injector = FaultInjector(faults) if faults is not None else None
        executor = SerialExecutor(
            faults=injector, max_retries=1, retry_backoff=0.0
        )
    defaults = dict(
        n_windows=n_windows, walkers_per_window=1, overlap=overlap,
        exchange_interval=400, ln_f_final=5e-3, seed=seed,
    )
    defaults.update(cfg_kwargs)
    driver = REWLDriver(
        hamiltonian=ising, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(**defaults), executor=executor,
        resilience=resilience,
    )
    return driver.run(max_rounds=max_rounds)


class TestREWLGracefulDegradation:
    """The acceptance criterion: one permanently failing window, and the
    campaign still completes — degraded, explicit, and reproducible."""

    @pytest.fixture(scope="class")
    def dead_window(self, ising, grid):
        # Window 1's advance tasks crash on every attempt, forever.
        return chaos_run(
            ising, grid,
            faults=FaultConfig(crash=1.0, window=1, seed=0),
            resilience=ResilienceConfig(
                guards=GuardPolicy(mode="quarantine", max_rollbacks=1)
            ),
        )

    def test_campaign_completes_degraded(self, dead_window):
        res = dead_window
        assert res.degraded
        assert res.quarantined == [1]
        assert not res.converged  # window 1 never converged
        rows = {row["window"]: row for row in res.window_dispositions}
        assert rows[1]["disposition"] == "quarantined"
        assert rows[1]["task_failures"] > 0
        assert "task failure" in rows[1]["reason"]
        # The survivors actually converged.
        healthy = [w for w in range(len(res.windows)) if w != 1]
        assert all(rows[w]["disposition"] == "healthy" for w in healthy)

    def test_partial_stitch_records_the_hole(self, dead_window):
        stitched = dead_window.stitched()
        assert stitched.skipped == [1]
        assert not stitched.complete
        # Windows 0 and 2 don't overlap at this geometry: a real coverage
        # gap between window 0's hi bin and window 2's lo bin.
        lo = dead_window.windows[0].hi_bin + 1
        hi = dead_window.windows[2].lo_bin - 1
        assert (lo, hi) in stitched.coverage_gaps
        assert len(stitched.segments) == 2
        # Survivor data is still there on both sides of the hole.
        assert stitched.visited[: lo].any() and stitched.visited[hi + 1:].any()
        assert not stitched.visited[lo: hi + 1].any()

    def test_degraded_run_is_bit_identical(self, ising, grid, dead_window):
        rerun = chaos_run(
            ising, grid,
            faults=FaultConfig(crash=1.0, window=1, seed=0),
            resilience=ResilienceConfig(
                guards=GuardPolicy(mode="quarantine", max_rollbacks=1)
            ),
        )
        assert rerun.rounds == dead_window.rounds
        assert rerun.quarantined == dead_window.quarantined
        for a, b in zip(dead_window.window_ln_g, rerun.window_ln_g):
            assert np.array_equal(a, b)
        assert np.array_equal(
            dead_window.stitched().ln_g, rerun.stitched().ln_g
        )

    def test_telemetry_carries_resilience_summary(self, dead_window):
        summary = dead_window.telemetry["resilience"]
        assert summary["degraded"] and summary["quarantined"] == [1]
        assert summary["mode"] == "quarantine"

    def test_nan_poison_caught_and_quarantined(self, ising, grid):
        """Silent ln g corruption (nothing raises) is caught by the guards
        and escalates to quarantine; survivors re-pair around the hole."""
        res = chaos_run(
            ising, grid,
            faults=FaultConfig(nan=1.0, window=1, seed=0),
            resilience=ResilienceConfig(
                guards=GuardPolicy(mode="quarantine", max_rollbacks=1)
            ),
            n_windows=3, overlap=0.6,
        )
        assert res.degraded and res.quarantined == [1]
        rows = {row["window"]: row for row in res.window_dispositions}
        assert rows[1]["guard_trips"] > 0
        assert "guard" in rows[1]["reason"]
        # At overlap 0.6 windows 0 and 2 still overlap: the re-paired
        # topology keeps exchanging and the partial stitch is one segment.
        stitched = res.stitched()
        assert stitched.skipped == [1]
        assert len(stitched.segments) == 1 and not stitched.coverage_gaps
        assert not stitched.complete  # skipped windows always mark it

    def test_strict_mode_aborts_on_poison(self, ising, grid):
        with pytest.raises(GuardViolation, match="strict"):
            chaos_run(
                ising, grid,
                faults=FaultConfig(nan=1.0, window=0, seed=0),
                resilience=ResilienceConfig(guards=GuardPolicy(mode="strict")),
                n_windows=2, overlap=0.5, max_rounds=10,
            )

    def test_guarded_clean_run_is_bit_identical_to_unguarded(self, ising, grid):
        """Guards that never trip must not change a single bit."""
        plain = chaos_run(ising, grid, n_windows=2, overlap=0.5, seed=33,
                          max_rounds=50)
        guarded = chaos_run(
            ising, grid, n_windows=2, overlap=0.5, seed=33, max_rounds=50,
            resilience=ResilienceConfig(guards=GuardPolicy(mode="quarantine")),
        )
        assert not guarded.degraded
        assert guarded.rounds == plain.rounds
        for a, b in zip(plain.window_ln_g, guarded.window_ln_g):
            assert np.array_equal(a, b)
        assert np.array_equal(plain.exchange_accepts, guarded.exchange_accepts)

    def test_rounds_budget_terminates_and_harvests(self, ising, grid):
        res = chaos_run(
            ising, grid, n_windows=2, overlap=0.5,
            resilience=ResilienceConfig(budget=BudgetPolicy(rounds=3)),
            ln_f_final=1e-12,  # would run forever without the budget
        )
        assert res.rounds == 3
        assert res.degraded and not res.converged
        budget = res.telemetry["resilience"]["budget"]
        assert budget["exhausted"] and "rounds" in budget["trigger"]
        # The harvest still carries the partial ln g data.
        assert any(v.any() for v in res.window_visited)

    def test_steps_budget_terminates(self, ising, grid):
        res = chaos_run(
            ising, grid, n_windows=2, overlap=0.5,
            resilience=ResilienceConfig(budget=BudgetPolicy(steps=100)),
            ln_f_final=1e-12,
        )
        assert res.rounds == 1  # first loop-top check after round 1 trips
        assert "steps" in res.telemetry["resilience"]["budget"]["trigger"]

    def test_env_knob_activates_supervisor(self, ising, grid, monkeypatch):
        monkeypatch.setenv(RESILIENCE_ENV_VAR, "rounds=2")
        res = chaos_run(ising, grid, n_windows=2, overlap=0.5,
                        ln_f_final=1e-12)
        assert res.rounds == 2 and res.degraded
