"""Tests for walker executors and the experiment DoS cache format."""

import numpy as np
import pytest

from repro.parallel import ProcessExecutor, SerialExecutor, ThreadExecutor


def _square(x, k=2):
    return x**k


class TestSerialExecutor:
    def test_map(self):
        out = SerialExecutor().map(_square, [1, 2, 3])
        assert out == [1, 4, 9]

    def test_extra_args(self):
        out = SerialExecutor().map(_square, [2, 3], 3)
        assert out == [8, 27]

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map(_square, [4]) == [16]


class TestThreadExecutor:
    def test_map_order_preserved(self):
        with ThreadExecutor(n_workers=3) as ex:
            out = ex.map(_square, list(range(10)))
        assert out == [x**2 for x in range(10)]

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ThreadExecutor(n_workers=0)


class TestProcessExecutor:
    def test_map_ships_state_and_returns(self):
        """Spawned workers receive pickled args and return results in order
        (the REWL advance-phase contract)."""
        with ProcessExecutor(n_workers=2) as ex:
            out = ex.map(_square, [1, 2, 3, 4])
        assert out == [1, 4, 9, 16]

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ProcessExecutor(n_workers=0)


class TestHeaDosCache:
    def test_cache_round_trip(self, tmp_path, monkeypatch):
        """The on-disk DoS cache format loads back into an identical HeaDos."""
        import repro.experiments.e02_hea_dos as e02

        monkeypatch.setattr(e02, "results_dir", lambda: tmp_path)
        path = e02._cache_path(3, seed=7)
        path.parent.mkdir(parents=True, exist_ok=True)
        n_bins = 10
        ln_g = np.linspace(0.0, 20.0, n_bins)
        visited = np.ones(n_bins, dtype=bool)
        visited[0] = False
        np.savez(
            path, e_lo=-5.0, e_hi=5.0, n_bins=n_bins, ln_g=ln_g,
            visited=visited, span=20.0, steps=1234, rounds=7, residual=0.05,
            n_sites=54, converged=True,
        )
        dos = e02.load_or_run_hea_dos(3, seed=7)
        assert dos.grid.n_bins == n_bins
        assert dos.grid.e_min == -5.0 and dos.grid.e_max == 5.0
        assert np.allclose(dos.ln_g, ln_g)
        assert dos.visited.tolist() == visited.tolist()
        assert dos.steps == 1234 and dos.rounds == 7
        assert dos.converged
        # Convenience views exclude the unvisited bin.
        assert dos.energies.shape == (n_bins - 1,)
        assert np.allclose(dos.values, ln_g[1:])
