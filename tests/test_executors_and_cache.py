"""Tests for walker executors and the experiment DoS cache format."""

import os
import time

import numpy as np
import pytest

from repro.obs import EventLog, MemorySink, Telemetry
from repro.parallel import ProcessExecutor, SerialExecutor, ThreadExecutor


def _square(x, k=2):
    return x**k


class _FlakyTask:
    """Fail (or sleep) until a marker file says enough attempts happened.

    Attempt state lives on disk so the task is picklable and works across
    process-pool workers; each call appends one byte to the marker.
    """

    def __init__(self, marker, fail_times=1, mode="raise", sleep_s=1.0):
        self.marker = os.fspath(marker)
        self.fail_times = fail_times
        self.mode = mode
        self.sleep_s = sleep_s

    def _attempt(self) -> int:
        with open(self.marker, "ab") as f:
            f.write(b".")
            f.flush()
        return os.path.getsize(self.marker)

    def __call__(self, x):
        if self._attempt() <= self.fail_times:
            if self.mode == "raise":
                raise RuntimeError(f"flaky failure for {x}")
            if self.mode == "kill":
                os._exit(13)
            time.sleep(self.sleep_s)  # mode == "sleep": trip the timeout
        return x**2


class TestSerialExecutor:
    def test_map(self):
        out = SerialExecutor().map(_square, [1, 2, 3])
        assert out == [1, 4, 9]

    def test_extra_args(self):
        out = SerialExecutor().map(_square, [2, 3], 3)
        assert out == [8, 27]

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map(_square, [4]) == [16]


class TestThreadExecutor:
    def test_map_order_preserved(self):
        with ThreadExecutor(n_workers=3) as ex:
            out = ex.map(_square, list(range(10)))
        assert out == [x**2 for x in range(10)]

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ThreadExecutor(n_workers=0)


class TestProcessExecutor:
    def test_map_ships_state_and_returns(self):
        """Spawned workers receive pickled args and return results in order
        (the REWL advance-phase contract)."""
        with ProcessExecutor(n_workers=2) as ex:
            out = ex.map(_square, [1, 2, 3, 4])
        assert out == [1, 4, 9, 16]

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ProcessExecutor(n_workers=0)


class TestSupervision:
    """Per-task retry/timeout plus broken-pool recovery."""

    @pytest.mark.parametrize("executor_cls", [SerialExecutor, ThreadExecutor])
    def test_retry_recovers_flaky_task(self, tmp_path, executor_cls):
        task = _FlakyTask(tmp_path / "m", fail_times=2)
        kwargs = {} if executor_cls is SerialExecutor else {"n_workers": 2}
        with executor_cls(max_retries=3, retry_backoff=0.0, **kwargs) as ex:
            assert ex.map(task, [5]) == [25]

    def test_retries_exhausted_reraises_original_error(self, tmp_path):
        task = _FlakyTask(tmp_path / "m", fail_times=100)
        with pytest.raises(RuntimeError, match="flaky failure"):
            SerialExecutor(max_retries=2, retry_backoff=0.0).map(task, [5])

    def test_default_is_no_retry(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        task = _FlakyTask(tmp_path / "m", fail_times=1)
        with pytest.raises(RuntimeError, match="flaky failure"):
            SerialExecutor().map(task, [5])

    def test_thread_timeout_retries_hung_task(self, tmp_path):
        task = _FlakyTask(tmp_path / "m", fail_times=1, mode="sleep", sleep_s=1.0)
        with ThreadExecutor(n_workers=2, timeout=0.2, max_retries=2,
                            retry_backoff=0.0) as ex:
            assert ex.map(task, [6]) == [36]

    def test_thread_timeout_exhausted_raises(self, tmp_path):
        task = _FlakyTask(tmp_path / "m", fail_times=100, mode="sleep", sleep_s=0.4)
        ex = ThreadExecutor(n_workers=2, timeout=0.05, max_retries=1,
                            retry_backoff=0.0)
        with pytest.raises(TimeoutError, match="timed out"):
            ex.map(task, [6])

    def test_process_pool_rebuilds_after_worker_death(self, tmp_path):
        """A worker hard-exit poisons the pool; map must rebuild and finish."""
        sink = MemorySink()
        tel = Telemetry(events=EventLog(run_id="t", sinks=[sink]))
        task = _FlakyTask(tmp_path / "m", fail_times=1, mode="kill")
        with ProcessExecutor(n_workers=2, max_retries=3, retry_backoff=0.0,
                             telemetry=tel) as ex:
            out = ex.map(task, [1, 2, 3, 4])
        assert out == [1, 4, 9, 16]
        assert tel.metrics.as_dict()["executor.pool_rebuilds"]["value"] >= 1
        assert any(r["kind"] == "pool_rebuild" for r in sink.records)

    def test_retry_telemetry(self, tmp_path):
        tel = Telemetry()
        task = _FlakyTask(tmp_path / "m", fail_times=2)
        SerialExecutor(max_retries=3, retry_backoff=0.0, telemetry=tel).map(task, [5])
        assert tel.metrics.as_dict()["task.retries"]["value"] == 2

    def test_invalid_supervision_args(self):
        with pytest.raises(ValueError, match="timeout"):
            SerialExecutor(timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            SerialExecutor(max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            SerialExecutor(retry_backoff=-0.1)


class TestLifecycle:
    """close() is idempotent and pools are released even on task failure."""

    @pytest.mark.parametrize("executor_cls", [SerialExecutor, ThreadExecutor,
                                              ProcessExecutor])
    def test_close_is_idempotent(self, executor_cls):
        ex = executor_cls()
        ex.close()
        ex.close()  # second close must be a no-op, not an error

    @pytest.mark.parametrize("executor_cls", [ThreadExecutor, ProcessExecutor])
    def test_map_after_close_raises(self, executor_cls):
        ex = executor_cls()
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.map(_square, [1])

    @pytest.mark.parametrize("executor_cls", [ThreadExecutor, ProcessExecutor])
    def test_context_exit_releases_pool_when_task_raises(self, executor_cls,
                                                         tmp_path):
        task = _FlakyTask(tmp_path / "m", fail_times=100)
        with pytest.raises(RuntimeError, match="flaky failure"):
            with executor_cls(n_workers=2) as ex:
                ex.map(task, [1])
        assert ex._pool is None  # the pool was shut down on the error path

    def test_bind_telemetry_does_not_clobber_explicit_handle(self):
        tel = Telemetry()
        ex = SerialExecutor(telemetry=tel)
        ex.bind_telemetry(Telemetry())
        assert ex.obs is tel

    def test_bind_telemetry_adopts_driver_handle(self):
        ex = SerialExecutor()
        tel = Telemetry()
        ex.bind_telemetry(tel)
        assert ex.obs is tel


class TestHeaDosCache:
    def test_cache_round_trip(self, tmp_path, monkeypatch):
        """The on-disk DoS cache format loads back into an identical HeaDos."""
        import repro.experiments.e02_hea_dos as e02

        monkeypatch.setattr(e02, "results_dir", lambda: tmp_path)
        path = e02._cache_path(3, seed=7)
        path.parent.mkdir(parents=True, exist_ok=True)
        n_bins = 10
        ln_g = np.linspace(0.0, 20.0, n_bins)
        visited = np.ones(n_bins, dtype=bool)
        visited[0] = False
        np.savez(
            path, e_lo=-5.0, e_hi=5.0, n_bins=n_bins, ln_g=ln_g,
            visited=visited, span=20.0, steps=1234, rounds=7, residual=0.05,
            n_sites=54, converged=True,
        )
        dos = e02.load_or_run_hea_dos(3, seed=7)
        assert dos.grid.n_bins == n_bins
        assert dos.grid.e_min == -5.0 and dos.grid.e_max == 5.0
        assert np.allclose(dos.ln_g, ln_g)
        assert dos.visited.tolist() == visited.tolist()
        assert dos.steps == 1234 and dos.rounds == 7
        assert dos.converged
        # Convenience views exclude the unvisited bin.
        assert dos.energies.shape == (n_bins - 1,)
        assert np.allclose(dos.values, ln_g[1:])
