"""Tests for repro.obs.profile: sampling semantics, merging, hot-path views."""

import pickle

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.obs import MetricsRegistry
from repro.obs.profile import (
    DEFAULT_SAMPLE_EVERY,
    ProfiledHamiltonian,
    ProfiledProposal,
    SectionProfiler,
    SectionStat,
    contribute_profile,
    global_collector,
    parse_profile_spec,
    profile_from_env,
    reset_global_collector,
)
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid, WangLandauSampler


def _ising():
    return IsingHamiltonian(square_lattice(4))


def _wl(seed=0, **kwargs):
    ham = _ising()
    grid = EnergyGrid.from_levels(ham.energy_levels())
    return WangLandauSampler(
        hamiltonian=ham, proposal=FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        rng=seed, **kwargs,
    )


class TestSectionStat:
    def test_estimate_reconstructs_total_from_sampled_mean(self):
        stat = SectionStat(calls=100, timed=10, total_s=0.5)
        assert stat.mean_s == pytest.approx(0.05)
        assert stat.est_total_s == pytest.approx(5.0)

    def test_merge_adds_counts_and_combines_extrema(self):
        a = SectionStat(calls=10, timed=2, total_s=0.2, min_s=0.05, max_s=0.15)
        b = SectionStat(calls=4, timed=1, total_s=0.3, min_s=0.3, max_s=0.3)
        a.merge(b)
        assert (a.calls, a.timed) == (14, 3)
        assert a.total_s == pytest.approx(0.5)
        assert a.min_s == pytest.approx(0.05)
        assert a.max_s == pytest.approx(0.3)

    def test_as_dict_untimed_has_null_extrema(self):
        d = SectionStat(calls=3).as_dict()
        assert d["min_s"] is None and d["max_s"] is None
        assert d["est_total_s"] == 0.0


class TestSectionProfiler:
    def test_counts_every_call_times_every_nth(self):
        prof = SectionProfiler(sample_every=4)
        for _ in range(10):
            tok = prof.start("s")
            prof.stop("s", tok)
        stat = prof["s"]
        assert stat.calls == 10
        assert stat.timed == 3  # calls 1, 5, 9

    def test_stride_one_times_everything(self):
        prof = SectionProfiler(sample_every=1)
        for _ in range(5):
            with prof.section("s"):
                pass
        assert prof["s"].timed == prof["s"].calls == 5

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError, match="sample_every"):
            SectionProfiler(sample_every=0)

    def test_merge_and_roundtrip(self):
        a = SectionProfiler(sample_every=1)
        b = SectionProfiler(sample_every=1)
        for prof, n in ((a, 3), (b, 2)):
            for _ in range(n):
                with prof.section("x"):
                    pass
        with b.section("only_b"):
            pass
        a.merge(b)
        assert a["x"].calls == 5
        assert "only_b" in a
        back = SectionProfiler.from_dict(a.as_dict())
        assert back.as_dict() == a.as_dict()

    def test_delta_since_isolates_new_work(self):
        prof = SectionProfiler(sample_every=1)
        with prof.section("s"):
            pass
        before = prof.as_dict()
        for _ in range(4):
            with prof.section("s"):
                pass
        delta = prof.delta_since(before)
        assert delta["s"].calls == 4
        # A fresh snapshot yields an empty delta.
        assert len(prof.delta_since(prof.as_dict())) == 0

    def test_publish_writes_idempotent_gauges(self):
        prof = SectionProfiler(sample_every=1)
        with prof.section("s"):
            pass
        metrics = MetricsRegistry()
        prof.publish(metrics)
        prof.publish(metrics)  # re-publishing must not double-count
        assert metrics["profile.s.calls"].value == 1.0
        assert "profile.s.est_total_s" in metrics


class TestEnvActivation:
    @pytest.mark.parametrize("spec,expected", [
        ("", None), ("0", None), ("off", None), ("false", None),
        ("1", DEFAULT_SAMPLE_EVERY), ("on", DEFAULT_SAMPLE_EVERY),
        ("every=16", 16), ("128", 128),
    ])
    def test_parse_profile_spec(self, spec, expected):
        assert parse_profile_spec(spec) == expected

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="REPRO_PROFILE"):
            parse_profile_spec("banana")

    def test_profile_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "every=7")
        prof = profile_from_env()
        assert prof is not None and prof.sample_every == 7
        monkeypatch.delenv("REPRO_PROFILE")
        assert profile_from_env() is None

    def test_global_collector_aggregates_contributions(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        reset_global_collector()
        try:
            run = SectionProfiler(sample_every=1)
            with run.section("s"):
                pass
            contribute_profile(run)
            contribute_profile(run)
            collector = global_collector()
            assert collector["s"].calls == 2
        finally:
            reset_global_collector()

    def test_collector_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        reset_global_collector()
        assert global_collector() is None
        contribute_profile(SectionProfiler())  # must be a no-op, not an error


class TestProfiledViews:
    def test_hamiltonian_view_delegates_and_counts(self):
        ham = _ising()
        prof = SectionProfiler(sample_every=1)
        view = ham.profiled(prof)
        assert isinstance(view, ProfiledHamiltonian)
        cfg = np.zeros(16, dtype=np.int8)
        assert view.energy(cfg) == ham.energy(cfg)
        assert view.n_sites == ham.n_sites  # attribute passthrough
        assert prof["hamiltonian.energy"].calls == 1

    def test_proposal_view_names_section_after_kernel(self):
        prop = FlipProposal()
        prof = SectionProfiler(sample_every=1)
        view = prop.profiled(prof)
        assert isinstance(view, ProfiledProposal)
        ham = _ising()
        rng = np.random.default_rng(0)
        cfg = np.zeros(16, dtype=np.int8)
        move = view.propose(cfg, ham, rng, current_energy=ham.energy(cfg))
        assert move is not None
        assert prof[f"proposal.{prop.name}"].calls == 1

    def test_views_pickle_roundtrip(self):
        prof = SectionProfiler(sample_every=1)
        hview = _ising().profiled(prof)
        pview = FlipProposal().profiled(prof)
        hback = pickle.loads(pickle.dumps(hview))
        pback = pickle.loads(pickle.dumps(pview))
        assert hback.n_sites == hview.n_sites
        assert pback._section == pview._section


class TestSamplerIntegration:
    def test_enable_profiling_wraps_hot_paths(self):
        wl = _wl()
        prof = SectionProfiler(sample_every=1)
        wl.enable_profiling(prof)
        for _ in range(50):
            wl.step()
        for section in ("hamiltonian.delta_flip", "proposal.flip",
                        "wl.histogram_update"):
            assert prof[section].calls >= 50

    def test_enable_profiling_twice_rejected(self):
        wl = _wl()
        wl.enable_profiling(SectionProfiler())
        with pytest.raises(RuntimeError, match="already"):
            wl.enable_profiling(SectionProfiler())

    def test_profiled_wl_is_bit_identical(self):
        bare, profiled = _wl(seed=3), _wl(seed=3)
        profiled.enable_profiling(SectionProfiler(sample_every=2))
        for _ in range(500):
            bare.step()
            profiled.step()
        assert np.array_equal(bare.ln_g, profiled.ln_g)
        assert np.array_equal(bare.histogram, profiled.histogram)
        assert np.array_equal(bare.config, profiled.config)
        assert (bare.rng.generator.bit_generator.state
                == profiled.rng.generator.bit_generator.state)
