"""Tests for DoS window stitching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dos import join_pair, stitch_windows
from repro.parallel import make_windows
from repro.sampling import EnergyGrid


def synthetic_pieces(n_bins, n_windows, overlap, shifts=None, noise=0.0, seed=0):
    """Cut a smooth ln g into window pieces with arbitrary offsets."""
    rng = np.random.default_rng(seed)
    grid = EnergyGrid.uniform(0.0, 1.0, n_bins)
    x = grid.centers
    truth = 500.0 * x * (1.0 - x) * 4.0  # parabola, like a real DoS
    windows = make_windows(grid, n_windows, overlap)
    pieces, visited = [], []
    for k, w in enumerate(windows):
        piece = truth[w.lo_bin : w.hi_bin + 1].copy()
        piece += shifts[k] if shifts is not None else rng.uniform(-100, 100)
        if noise:
            piece += rng.normal(0, noise, piece.shape)
        pieces.append(piece)
        visited.append(np.ones(w.n_bins, dtype=bool))
    return grid, windows, pieces, visited, truth


class TestJoinPair:
    def test_shift_recovered(self):
        left = np.array([0.0, 1.0, 2.0, 3.0])
        right = np.array([0.0, 0.0, -3.0, -2.0])
        lv = np.array([True, True, True, True])
        rv = np.array([False, False, True, True])
        shift, residual = join_pair(left, lv, right, rv, 2, 3)
        assert shift == pytest.approx(5.0)
        assert residual == pytest.approx(0.0)

    def test_no_common_bins_raises(self):
        left = np.zeros(4)
        right = np.zeros(4)
        lv = np.array([True, True, False, False])
        rv = np.array([False, False, True, True])
        with pytest.raises(ValueError):
            join_pair(left, lv, right, rv, 1, 2)

    def test_residual_measures_disagreement(self):
        left = np.array([0.0, 1.0])
        right = np.array([0.0, 2.0])
        v = np.array([True, True])
        _, residual = join_pair(left, v, right, v, 0, 1)
        assert residual > 0.4


class TestStitchWindows:
    @given(
        n_windows=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovers_truth_up_to_constant(self, n_windows, seed):
        grid, windows, pieces, visited, truth = synthetic_pieces(
            120, n_windows, 0.5, seed=seed
        )
        stitched = stitch_windows(grid, windows, pieces, visited)
        assert stitched.visited.all()
        rel_est = stitched.ln_g - stitched.ln_g[0]
        rel_truth = truth - truth[0]
        assert np.abs(rel_est - rel_truth).max() < 1e-9

    def test_noise_gives_small_residuals(self):
        grid, windows, pieces, visited, truth = synthetic_pieces(
            100, 4, 0.5, noise=0.05, seed=3
        )
        stitched = stitch_windows(grid, windows, pieces, visited)
        assert np.all(stitched.joint_residuals < 0.2)
        rel_est = stitched.ln_g - stitched.ln_g[0]
        rel_truth = truth - truth[0]
        assert np.abs(rel_est - rel_truth).max() < 0.5

    def test_span_property(self):
        grid, windows, pieces, visited, truth = synthetic_pieces(80, 3, 0.5, seed=1)
        stitched = stitch_windows(grid, windows, pieces, visited)
        assert stitched.span == pytest.approx(truth.max() - truth.min(), abs=1e-6)

    def test_min_is_zero(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(80, 3, 0.5, seed=2)
        stitched = stitch_windows(grid, windows, pieces, visited)
        assert stitched.values().min() == pytest.approx(0.0)

    def test_unvisited_bins_stay_minus_inf(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(60, 2, 0.5, seed=4)
        visited[0][0] = False  # ground-state bin never reached
        stitched = stitch_windows(grid, windows, pieces, visited)
        assert stitched.ln_g[0] == -np.inf
        assert not stitched.visited[0]

    def test_length_mismatch_raises(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(60, 2, 0.5)
        with pytest.raises(ValueError):
            stitch_windows(grid, windows, pieces[:1], visited)

    def test_piece_shape_mismatch_raises(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(60, 2, 0.5)
        pieces[0] = pieces[0][:-1]
        with pytest.raises(ValueError):
            stitch_windows(grid, windows, pieces, visited)

    def test_disconnected_windows_raise(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(60, 2, 0.5)
        # Kill every overlap bin of the right window.
        lo, hi = windows[0].overlap_bins(windows[1])
        for b in range(lo, hi + 1):
            visited[1][b - windows[1].lo_bin] = False
        with pytest.raises(ValueError):
            stitch_windows(grid, windows, pieces, visited)


class TestPartialStitching:
    """Best-effort stitching around skipped (quarantined) windows."""

    def test_complete_stitch_reports_complete(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(80, 3, 0.5, seed=1)
        stitched = stitch_windows(grid, windows, pieces, visited)
        assert stitched.complete
        assert stitched.segments == [[0, 1, 2]]
        assert stitched.coverage_gaps == [] and stitched.skipped == []

    def test_skip_connected_neighbors_stays_one_segment(self):
        """At overlap 0.6 windows 0 and 2 still share bins: skipping the
        middle keeps the stitch connected, but never complete."""
        grid, windows, pieces, visited, truth = synthetic_pieces(
            100, 3, 0.6, seed=2
        )
        assert windows[0].overlap_bins(windows[2]) is not None
        stitched = stitch_windows(grid, windows, pieces, visited, skip=(1,),
                                  allow_gaps=True)
        assert stitched.skipped == [1]
        assert stitched.segments == [[0, 2]]
        assert stitched.coverage_gaps == []
        assert not stitched.complete
        rel_est = stitched.ln_g - stitched.ln_g[0]
        rel_truth = truth - truth[0]
        assert np.abs(rel_est - rel_truth).max() < 1e-9

    def test_skip_with_hole_starts_new_segment(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(100, 4, 0.3, seed=3)
        assert windows[0].overlap_bins(windows[2]) is None
        stitched = stitch_windows(grid, windows, pieces, visited, skip=(1,),
                                  allow_gaps=True)
        assert stitched.segments == [[0], [2, 3]]
        lo, hi = windows[0].hi_bin + 1, windows[2].lo_bin - 1
        assert stitched.coverage_gaps == [(lo, hi)]
        assert not stitched.visited[lo : hi + 1].any()
        assert stitched.visited[: lo].any() and stitched.visited[hi + 1 :].any()

    def test_hole_without_allow_gaps_raises(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(100, 4, 0.3, seed=3)
        with pytest.raises(ValueError, match="do not overlap"):
            stitch_windows(grid, windows, pieces, visited, skip=(1,))

    def test_skipped_piece_may_be_none(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(100, 3, 0.6, seed=4)
        pieces[1] = None
        visited[1] = None
        stitched = stitch_windows(grid, windows, pieces, visited, skip=(1,),
                                  allow_gaps=True)
        assert stitched.segments == [[0, 2]]

    def test_missing_piece_not_skipped_raises(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(100, 3, 0.6, seed=4)
        pieces[1] = None
        with pytest.raises(ValueError, match="missing but not skipped"):
            stitch_windows(grid, windows, pieces, visited, allow_gaps=True)

    def test_all_windows_skipped(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(60, 2, 0.5)
        stitched = stitch_windows(grid, windows, pieces, visited, skip=(0, 1),
                                  allow_gaps=True)
        assert not stitched.visited.any()
        assert stitched.segments == []
        assert stitched.coverage_gaps == [(0, 59)]
        assert stitched.span == 0.0
        with pytest.raises(ValueError, match="all windows skipped"):
            stitch_windows(grid, windows, pieces, visited, skip=(0, 1))

    def test_skip_index_out_of_range(self):
        grid, windows, pieces, visited, _ = synthetic_pieces(60, 2, 0.5)
        with pytest.raises(ValueError, match="out of range"):
            stitch_windows(grid, windows, pieces, visited, skip=(5,),
                           allow_gaps=True)

    def test_disconnected_overlap_with_allow_gaps_degrades(self):
        """An overlap with no commonly visited bins raises strictly, but
        degrades to a new segment when gaps are allowed."""
        grid, windows, pieces, visited, _ = synthetic_pieces(60, 2, 0.5)
        lo, hi = windows[0].overlap_bins(windows[1])
        for b in range(lo, hi + 1):
            visited[1][b - windows[1].lo_bin] = False
        stitched = stitch_windows(grid, windows, pieces, visited,
                                  allow_gaps=True)
        assert stitched.segments == [[0], [1]]
        assert not stitched.complete
