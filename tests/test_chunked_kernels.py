"""Property tests for the streaming (chunked) pair-model evaluator.

The ultra-large-scale tier claim is that chunked evaluation changes peak
memory, never results: ``ChunkedPairTables`` must be **bit-identical**
across every chunk size (chunk = 1, chunk > N, anything between) and must
agree with the materialized :mod:`repro.kernels.ops` path and the SRO
pair-count reference to float/integer exactness respectively.
"""

import numpy as np
import pytest

from repro.analysis.sro import pair_counts
from repro.kernels import ChunkedPairTables, PairTables, ops
from repro.lattice import bcc, fcc, square_lattice
from repro.machine.memory import MIN_CHUNK_SITES, plan_chunk_sites

CHUNKS = [1, 3, 17, 100, 10**9, None]  # None -> planner default


def _system(kind):
    rng = np.random.default_rng(11)
    lat = {"square": square_lattice(6), "bcc": bcc(3), "fcc": fcc(3)}[kind]
    S = 4
    mats = []
    for _ in range(2):
        m = rng.normal(size=(S, S))
        mats.append((m + m.T) / 2.0)
    field = rng.normal(size=S)
    config = rng.integers(0, S, lat.n_sites).astype(np.int8)
    return lat, mats, field, config


@pytest.fixture(params=["square", "bcc", "fcc"])
def system(request):
    return _system(request.param)


class TestChunkInvariance:
    def test_energy_bit_identical_across_chunk_sizes(self, system):
        lat, mats, field, config = system
        energies = {
            cs: ChunkedPairTables(lat, mats, field, chunk_sites=cs).energy(config)
            for cs in CHUNKS
        }
        values = set(energies.values())
        assert len(values) == 1, energies

    def test_pair_counts_bit_identical_across_chunk_sizes(self, system):
        lat, mats, field, config = system
        ref = ChunkedPairTables(lat, mats, chunk_sites=10**9).pair_counts(config)
        for cs in CHUNKS:
            got = ChunkedPairTables(lat, mats, chunk_sites=cs).pair_counts(config)
            assert np.array_equal(got, ref), cs

    def test_energies_batch_bit_identical_across_chunk_sizes(self, system):
        lat, mats, field, config = system
        rng = np.random.default_rng(5)
        configs = rng.integers(0, 4, (4, lat.n_sites)).astype(np.int8)
        ref = ChunkedPairTables(lat, mats, field, chunk_sites=10**9).energies(configs)
        for cs in CHUNKS:
            got = ChunkedPairTables(lat, mats, field, chunk_sites=cs).energies(configs)
            assert np.array_equal(got, ref), cs


class TestAgainstMaterialized:
    def test_energy_matches_ops(self, system):
        lat, mats, field, config = system
        t = PairTables(lat.neighbor_shells(2), mats, field)
        e_ref = ops.energy(t, config)
        e_chunked = ChunkedPairTables(lat, mats, field, chunk_sites=7).energy(config)
        assert e_chunked == pytest.approx(e_ref, rel=1e-12, abs=1e-9)

    def test_energies_match_ops(self, system):
        lat, mats, field, config = system
        rng = np.random.default_rng(5)
        configs = rng.integers(0, 4, (5, lat.n_sites)).astype(np.int8)
        t = PairTables(lat.neighbor_shells(2), mats, field)
        ref = ops.energies(t, configs)
        got = ChunkedPairTables(lat, mats, field, chunk_sites=13).energies(configs)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-9)

    def test_pair_counts_match_sro_reference(self, system):
        lat, mats, field, config = system
        shells = lat.neighbor_shells(2)
        got = ChunkedPairTables(lat, mats, chunk_sites=9).pair_counts(config)
        for s, shell in enumerate(shells):
            ref = pair_counts(config, shell.table, 4)
            assert np.array_equal(got[s], ref), s


class TestValidation:
    def test_float_config_raises(self, system):
        lat, mats, field, config = system
        ct = ChunkedPairTables(lat, mats)
        with pytest.raises(TypeError):
            ct.energy(config.astype(np.float64))

    def test_wrong_shape_raises(self, system):
        lat, mats, field, config = system
        ct = ChunkedPairTables(lat, mats)
        with pytest.raises(ValueError):
            ct.pair_counts(config[:-1])

    def test_bad_chunk_sites_raises(self, system):
        lat, mats, field, config = system
        with pytest.raises(ValueError):
            ChunkedPairTables(lat, mats, chunk_sites=0)


class TestChunkPlanner:
    def test_chunk_clamped_to_n_sites(self):
        plan = plan_chunk_sites(100, [8, 6], 4)
        assert plan.chunk_sites == 100
        assert plan.n_chunks == 1

    def test_budget_bounds_block_bytes(self):
        budget = 64 * 1024 * 1024
        plan = plan_chunk_sites(10**8, [8, 6], 4, budget_bytes=budget)
        assert plan.est_block_bytes <= budget
        assert plan.chunk_sites >= MIN_CHUNK_SITES
        assert plan.n_chunks == -(-10**8 // plan.chunk_sites)

    def test_min_chunk_floor(self):
        plan = plan_chunk_sites(10**8, [8, 6], 4, budget_bytes=1)
        assert plan.chunk_sites == MIN_CHUNK_SITES

    def test_batch_shrinks_chunk(self):
        lone = plan_chunk_sites(10**8, [8, 6], 4)
        wide = plan_chunk_sites(10**8, [8, 6], 4, batch=32)
        assert wide.chunk_sites < lone.chunk_sites

    def test_invalid_n_sites(self):
        with pytest.raises(ValueError):
            plan_chunk_sites(0, [8], 4)
