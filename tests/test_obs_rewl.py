"""Telemetry integration: bit-identity, walker counters, report CLI, trainer."""

import json

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.obs import Instrumentation, JsonlSink, MemorySink, Telemetry
from repro.obs.events import EventLog
from repro.obs.report import main as report_main
from repro.parallel import REWLConfig, REWLDriver
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid, WangLandauSampler
from repro.training import ProposalTrainer, ReplayBuffer
from repro.nn.models.made import MADE, MADEConfig


def _rewl_driver(telemetry=None, seed=3):
    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    return REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                   exchange_interval=500, ln_f_final=1e-2, seed=seed),
        instrumentation=Instrumentation(telemetry=telemetry),
    )


class TestBitIdentity:
    def test_rewl_identical_with_and_without_telemetry(self, tmp_path):
        """The paper-facing determinism contract: telemetry changes nothing."""
        plain = _rewl_driver().run(max_rounds=400)

        trace = tmp_path / "trace.jsonl"
        tel = Telemetry(events=EventLog(run_id="bitid", sinks=[JsonlSink(trace)]))
        traced = _rewl_driver(telemetry=tel).run(max_rounds=400)
        tel.close()

        assert traced.rounds == plain.rounds
        assert traced.total_steps == plain.total_steps
        assert np.array_equal(traced.exchange_attempts, plain.exchange_attempts)
        assert np.array_equal(traced.exchange_accepts, plain.exchange_accepts)
        for a, b in zip(traced.window_ln_g, plain.window_ln_g):
            assert np.array_equal(a, b)  # bit-identical, not just close
        for a, b in zip(traced.window_visited, plain.window_visited):
            assert np.array_equal(a, b)
        assert trace.exists() and trace.stat().st_size > 0


class TestWalkerCounters:
    def test_wl_result_counters(self):
        ham = IsingHamiltonian(square_lattice(4))
        grid = EnergyGrid.from_levels(ham.energy_levels())
        wl = WangLandauSampler(hamiltonian=ham, proposal=FlipProposal(),
                               grid=grid,
                               initial_config=np.zeros(16, dtype=np.int8),
                               rng=0, ln_f_final=0.25)
        result = wl.run(max_steps=50_000)
        c = result.counters
        assert c.proposals + c.null_proposals == result.n_steps
        assert c.accepted <= c.proposals
        assert c.accepted == wl.n_accepted
        assert c.flat_checks_passed + c.flat_checks_failed > 0
        assert set(c.as_dict()) >= {"proposals", "accepted", "out_of_grid",
                                    "flat_checks_passed", "flat_checks_failed",
                                    "exchange_attempts", "exchange_accepts"}

    def test_rewl_snapshots_carry_counters(self):
        res = _rewl_driver().run(max_rounds=400)
        assert res.walkers, "expected per-walker snapshots"
        total_attempts = sum(s.counters.exchange_attempts for s in res.walkers)
        # each pair attempt touches two walkers
        assert total_attempts == 2 * int(res.exchange_attempts.sum())
        total_accepts = sum(s.counters.exchange_accepts for s in res.walkers)
        assert total_accepts == 2 * int(res.exchange_accepts.sum())
        for snap in res.walkers:
            assert snap.counters.proposals + snap.counters.null_proposals \
                == snap.n_steps

    def test_result_telemetry_block(self):
        tel = Telemetry()
        res = _rewl_driver(telemetry=tel).run(max_rounds=400)
        metrics = res.telemetry["metrics"]
        assert metrics["rewl.rounds"]["value"] == res.rounds
        assert metrics["rewl.steps"]["value"] == res.total_steps
        assert metrics["rewl.exchange.attempts"]["value"] \
            == int(res.exchange_attempts.sum())
        spans = res.telemetry["spans"]
        assert {"rewl", "rewl.advance", "rewl.exchange",
                "rewl.synchronize"} <= set(spans)
        assert json.dumps(res.telemetry)  # JSON-clean for results/*.json


class TestReportCli:
    def test_report_renders_phase_and_exchange_tables(self, tmp_path, capsys):
        trace = tmp_path / "rewl.jsonl"
        tel = Telemetry(events=EventLog(run_id="report-smoke",
                                        sinks=[JsonlSink(trace)]))
        _rewl_driver(telemetry=tel).run(max_rounds=400)
        tel.close()

        assert report_main([str(trace)]) == 0
        out = capsys.readouterr().out
        for phase in ("rewl.advance", "rewl.exchange", "rewl.synchronize"):
            assert phase in out
        assert "replica exchanges" in out
        assert "0-1" in out  # the single adjacent window pair
        assert "ln f trajectory" in out
        assert "steps/s" in out

    def test_report_missing_file(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "absent.jsonl")]) == 1
        assert "no such trace" in capsys.readouterr().err

    def test_report_run_filter(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        with EventLog(run_id="a", sinks=[JsonlSink(trace)]) as log:
            log.emit("span", name="x", path="x", dur_s=1.0)
        assert report_main([str(trace), "--run", "nope"]) == 1
        capsys.readouterr()
        assert report_main([str(trace), "--run", "a"]) == 0


class TestTrainerTelemetry:
    def _trainer(self, telemetry):
        buf = ReplayBuffer(64, 6, 2)
        rng = np.random.default_rng(0)
        for _ in range(64):
            buf.add(rng.integers(0, 2, 6).astype(np.int8))
        model = MADE(MADEConfig(6, 2, hidden=(8,)), rng=1)
        return ProposalTrainer(model, buf, batch_size=16, rng=2,
                               telemetry=telemetry)

    def test_train_steps_record_metrics_and_events(self):
        sink = MemorySink()
        tel = Telemetry(events=EventLog(run_id="train", sinks=[sink]))
        trainer = self._trainer(tel)
        trainer.train_steps(5)
        assert tel.metrics.counter("train.steps").value == 5
        assert tel.metrics["train.batch_seconds"].count == 5
        assert tel.metrics.gauge("train.loss").value \
            == pytest.approx(trainer.loss_history[-1])
        steps = [r for r in sink.records if r["kind"] == "train_step"]
        assert [r["step"] for r in steps] == [1, 2, 3, 4, 5]
        spans = [r for r in sink.records if r["kind"] == "span"]
        assert spans and spans[-1]["name"] == "train"

    def test_telemetry_does_not_change_training(self):
        plain = self._trainer(None)
        traced = self._trainer(Telemetry())
        a = plain.train_steps(10)
        b = traced.train_steps(10)
        assert a == b  # identical losses: telemetry draws nothing from rng
