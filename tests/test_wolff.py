"""Tests for the Wolff cluster sampler."""

import numpy as np
import pytest

from repro.analysis import integrated_autocorrelation_time
from repro.dos import exact_ising_internal_energy
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.proposals import FlipProposal
from repro.sampling import MetropolisSampler, WolffSampler


class TestWolffCorrectness:
    @pytest.mark.parametrize("temperature", [2.0, 2.269, 3.5])
    def test_mean_energy_matches_kaufman(self, temperature):
        ham = IsingHamiltonian(square_lattice(6))
        exact = exact_ising_internal_energy(6, 6, temperature)
        sampler = WolffSampler(ham, 1.0 / temperature,
                               np.zeros(36, dtype=np.int8), rng=0)
        sampler.run(400)  # burn-in
        stats = sampler.run(4_000, record_energy_every=2)
        sem = stats.energies.std() / np.sqrt(len(stats.energies) / 10)
        assert stats.energies.mean() == pytest.approx(exact, abs=max(5 * sem, 1.0))

    def test_energy_tracking_no_drift(self):
        ham = IsingHamiltonian(square_lattice(5))
        sampler = WolffSampler(ham, 0.5, np.zeros(25, dtype=np.int8), rng=1)
        sampler.run(2_000)
        assert sampler.resync_energy() < 1e-8

    def test_cluster_sizes_grow_at_low_temperature(self):
        ham = IsingHamiltonian(square_lattice(6))
        rng_cfg = np.random.default_rng(2).integers(0, 2, 36).astype(np.int8)
        hot = WolffSampler(ham, 0.1, rng_cfg, rng=3)
        cold = WolffSampler(ham, 1.0, rng_cfg, rng=4)
        hot_stats = hot.run(500)
        cold_stats = cold.run(500)
        assert cold_stats.mean_cluster_size > 3 * hot_stats.mean_cluster_size

    def test_decorrelates_faster_than_metropolis_near_tc(self):
        """The headline property: near criticality Wolff's tau (per update)
        is far below single-flip Metropolis's tau (per sweep)."""
        ham = IsingHamiltonian(square_lattice(8))
        beta = 1.0 / 2.3
        wolff = WolffSampler(ham, beta, np.zeros(64, dtype=np.int8), rng=5)
        wolff.run(300)
        w_stats = wolff.run(3_000, record_energy_every=1)
        tau_wolff = integrated_autocorrelation_time(w_stats.energies)

        metro = MetropolisSampler(ham, FlipProposal(), beta,
                                  np.zeros(64, dtype=np.int8), rng=6)
        metro.run(64 * 300)
        m_stats = metro.run(64 * 3_000, record_energy_every=64)  # per sweep
        tau_metro = integrated_autocorrelation_time(m_stats.energies)
        assert tau_wolff < tau_metro


class TestWolffValidation:
    def test_rejects_field(self):
        ham = IsingHamiltonian(square_lattice(4), external_field=0.1)
        with pytest.raises(ValueError):
            WolffSampler(ham, 1.0, np.zeros(16, dtype=np.int8))

    def test_rejects_antiferromagnet(self):
        ham = IsingHamiltonian(square_lattice(4), coupling=-1.0)
        with pytest.raises(ValueError):
            WolffSampler(ham, 1.0, np.zeros(16, dtype=np.int8))

    def test_rejects_non_ising(self, hea_small, hea_config):
        with pytest.raises(TypeError):
            WolffSampler(hea_small, 1.0, hea_config)

    def test_rejects_negative_beta(self):
        ham = IsingHamiltonian(square_lattice(4))
        with pytest.raises(ValueError):
            WolffSampler(ham, -1.0, np.zeros(16, dtype=np.int8))

    def test_zero_beta_flips_single_sites(self):
        ham = IsingHamiltonian(square_lattice(4))
        sampler = WolffSampler(ham, 0.0, np.zeros(16, dtype=np.int8), rng=7)
        stats = sampler.run(200)
        assert stats.mean_cluster_size == pytest.approx(1.0)
