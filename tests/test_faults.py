"""Tests for the deterministic fault-injection harness (``repro.faults``)."""

import pickle

import numpy as np
import pytest

from repro.faults import (
    FAULTS_ENV_VAR,
    FaultConfig,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    faults_from_env,
    parse_faults,
)
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.obs import Instrumentation, Telemetry
from repro.parallel import REWLConfig, REWLDriver, SerialExecutor, ThreadExecutor
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid


def _double(x):
    return 2 * x


class TestFaultConfig:
    def test_defaults_inject_nothing(self):
        cfg = FaultConfig()
        assert not cfg.any_task_faults
        assert not cfg.any_checkpoint_faults

    @pytest.mark.parametrize("field", ["crash", "hang", "kill", "corrupt"])
    def test_probability_bounds(self, field):
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: 1.5})
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: -0.1})

    def test_task_probs_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError, match="crash \\+ hang \\+ kill"):
            FaultConfig(crash=0.5, hang=0.4, kill=0.3)

    def test_negative_hang_duration(self):
        with pytest.raises(ValueError, match="hang_s"):
            FaultConfig(hang_s=-1.0)


class TestParsing:
    def test_parse_all_fields(self):
        cfg = parse_faults("crash=0.1,hang=0.05,kill=0.02,corrupt=0.2,hang_s=0.5,seed=7")
        assert cfg == FaultConfig(crash=0.1, hang=0.05, kill=0.02,
                                  corrupt=0.2, hang_s=0.5, seed=7)

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="explode"):
            parse_faults("explode=1")

    def test_parse_rejects_bad_values(self):
        with pytest.raises(ValueError, match="crash"):
            parse_faults("crash=lots")

    @pytest.mark.parametrize("value", ["", "0", "off", "false"])
    def test_env_disabled(self, monkeypatch, value):
        monkeypatch.setenv(FAULTS_ENV_VAR, value)
        assert faults_from_env() is None

    def test_env_unset(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert faults_from_env() is None

    def test_env_enabled(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "crash=0.25,seed=9")
        injector = faults_from_env()
        assert injector is not None
        assert injector.cfg.crash == 0.25 and injector.cfg.seed == 9


class TestDecisions:
    def test_deterministic_replay(self):
        a = FaultInjector(FaultConfig(crash=0.3, hang=0.2, seed=4))
        b = FaultInjector(FaultConfig(crash=0.3, hang=0.2, seed=4))
        for key in range(40):
            for attempt in range(3):
                assert a.decide_task(key, attempt) == b.decide_task(key, attempt)

    def test_retry_gets_a_fresh_draw(self):
        """A crashed attempt must not doom every retry of the same task."""
        inj = FaultInjector(FaultConfig(crash=0.5, seed=0))
        for key in range(20):
            decisions = {inj.decide_task(key, attempt) for attempt in range(16)}
            assert None in decisions  # some attempt succeeds

    def test_certain_and_impossible(self):
        always = FaultInjector(FaultConfig(crash=1.0, seed=1))
        never = FaultInjector(FaultConfig(seed=1))
        assert all(always.decide_task(k, 0) == "crash" for k in range(20))
        assert all(never.decide_task(k, 0) is None for k in range(20))

    def test_rates_roughly_match_probabilities(self):
        inj = FaultInjector(FaultConfig(crash=0.2, hang=0.1, kill=0.1, seed=3))
        decisions = [inj.decide_task(k, 0) for k in range(2000)]
        rate = lambda kind: sum(d == kind for d in decisions) / len(decisions)  # noqa: E731
        assert abs(rate("crash") - 0.2) < 0.05
        assert abs(rate("hang") - 0.1) < 0.05
        assert abs(rate("kill") - 0.1) < 0.05

    def test_checkpoint_split(self):
        inj = FaultInjector(FaultConfig(corrupt=1.0, seed=2))
        decisions = {inj.decide_checkpoint(k) for k in range(40)}
        assert decisions == {"corrupt", "crash"}
        assert FaultInjector(FaultConfig(seed=2)).decide_checkpoint(0) is None


class TestWrapping:
    def test_no_faults_is_a_passthrough(self):
        inj = FaultInjector(FaultConfig(corrupt=0.5))  # checkpoint-only faults
        assert inj.wrap(_double, 0, 0) is _double

    def test_crash_fires_before_the_task_body(self):
        calls = []
        inj = FaultInjector(FaultConfig(crash=1.0, seed=0))
        with pytest.raises(InjectedCrash):
            inj.wrap(calls.append, 0, 0)("never")
        assert calls == []  # the walker/task input was never touched

    def test_hang_sleeps_then_raises(self):
        inj = FaultInjector(FaultConfig(hang=1.0, hang_s=0.0, seed=0))
        with pytest.raises(InjectedHang):
            inj.wrap(_double, 0, 0)(3)

    def test_kill_degrades_in_process(self):
        """In the origin process a kill must not take the test suite down."""
        inj = FaultInjector(FaultConfig(kill=1.0, seed=0))
        with pytest.raises(InjectedCrash):
            inj.wrap(_double, 0, 0)(3)

    def test_wrapper_is_picklable(self):
        inj = FaultInjector(FaultConfig(crash=0.5, seed=0))
        wrapped = pickle.loads(pickle.dumps(inj.wrap(_double, 3, 1)))
        assert wrapped.key == 3 and wrapped.attempt == 1

    def test_clean_attempt_runs_the_task(self):
        inj = FaultInjector(FaultConfig(crash=0.5, seed=0))
        key = next(k for k in range(50) if inj.decide_task(k, 0) is None)
        assert inj.wrap(_double, key, 0)(21) == 42


class TestExecutorIntegration:
    def test_serial_map_survives_faults_bit_identically(self):
        inj = FaultInjector(FaultConfig(crash=0.3, hang=0.05, hang_s=0.0, seed=8))
        clean = SerialExecutor().map(_double, list(range(50)))
        chaotic = SerialExecutor(faults=inj, retry_backoff=0.0).map(
            _double, list(range(50))
        )
        assert chaotic == clean

    def test_thread_map_survives_faults(self):
        inj = FaultInjector(FaultConfig(crash=0.3, hang_s=0.0, seed=8))
        with ThreadExecutor(2, faults=inj, retry_backoff=0.0) as ex:
            assert ex.map(_double, list(range(30))) == [2 * x for x in range(30)]

    def test_fault_metrics_and_events_recorded(self):
        from repro.obs import EventLog, MemorySink

        sink = MemorySink()
        tel = Telemetry(events=EventLog(run_id="t", sinks=[sink]))
        inj = FaultInjector(FaultConfig(crash=0.4, seed=8))
        SerialExecutor(faults=inj, retry_backoff=0.0, telemetry=tel).map(
            _double, list(range(50))
        )
        metrics = tel.metrics.as_dict()
        assert metrics["task.retries"]["value"] > 0
        assert metrics["fault.injected"]["value"] > 0
        retries = [r for r in sink.records if r["kind"] == "task_retry"]
        assert retries and all("InjectedCrash" in r["error"] for r in retries)

    def test_retries_exhausted_raises_the_fault(self):
        inj = FaultInjector(FaultConfig(crash=1.0, seed=0))
        with pytest.raises(InjectedFault):
            SerialExecutor(faults=inj, max_retries=2, retry_backoff=0.0).map(
                _double, [1]
            )

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "crash=1.0,seed=0")
        ex = SerialExecutor(max_retries=1, retry_backoff=0.0)
        assert ex.faults is not None
        with pytest.raises(InjectedCrash):
            ex.map(_double, [1])

    def test_env_default_retry_budget(self, monkeypatch):
        """Chaos from the environment implies a usable retry budget."""
        monkeypatch.setenv(FAULTS_ENV_VAR, "crash=0.3,seed=8")
        ex = SerialExecutor(retry_backoff=0.0)
        assert ex.max_retries > 0
        assert ex.map(_double, list(range(30))) == [2 * x for x in range(30)]


class TestREWLUnderChaos:
    """The acceptance criterion: injected worker crashes/hangs must not
    change a single bit of the stitched result."""

    @pytest.fixture(scope="class")
    def ising(self):
        return IsingHamiltonian(square_lattice(4))

    @pytest.fixture(scope="class")
    def grid(self, ising):
        return EnergyGrid.from_levels(ising.energy_levels())

    def _run(self, ising, grid, executor=None):
        driver = REWLDriver(
            hamiltonian=ising, proposal_factory=lambda: FlipProposal(),
            grid=grid, initial_config=np.zeros(16, dtype=np.int8),
            config=REWLConfig(n_windows=3, walkers_per_window=2, overlap=0.6,
                              exchange_interval=800, ln_f_final=5e-3, seed=21),
            executor=executor,
        )
        return driver.run()

    @pytest.fixture(scope="class")
    def clean(self, ising, grid):
        return self._run(ising, grid)

    def test_serial_chaos_bit_identical(self, ising, grid, clean):
        inj = FaultInjector(FaultConfig(crash=0.15, hang=0.05, hang_s=0.001, seed=5))
        chaotic = self._run(
            ising, grid, executor=SerialExecutor(faults=inj, retry_backoff=0.0)
        )
        assert chaotic.rounds == clean.rounds
        for a, b in zip(clean.window_ln_g, chaotic.window_ln_g):
            assert np.array_equal(a, b)
        assert np.array_equal(clean.exchange_accepts, chaotic.exchange_accepts)
        assert np.array_equal(
            clean.stitched().ln_g, chaotic.stitched().ln_g
        )

    def test_thread_chaos_bit_identical(self, ising, grid, clean):
        inj = FaultInjector(FaultConfig(crash=0.15, hang_s=0.0, seed=6))
        with ThreadExecutor(2, faults=inj, retry_backoff=0.0) as pool:
            chaotic = self._run(ising, grid, executor=pool)
        for a, b in zip(clean.window_ln_g, chaotic.window_ln_g):
            assert np.array_equal(a, b)

    def test_driver_telemetry_reaches_executor(self, ising, grid):
        """Retry metrics land in the driver's telemetry via bind_telemetry."""
        tel = Telemetry()
        inj = FaultInjector(FaultConfig(crash=0.3, seed=1))
        driver = REWLDriver(
            hamiltonian=ising, proposal_factory=lambda: FlipProposal(),
            grid=grid, initial_config=np.zeros(16, dtype=np.int8),
            config=REWLConfig(n_windows=2, walkers_per_window=1,
                              exchange_interval=200, ln_f_final=5e-3, seed=3),
            executor=SerialExecutor(faults=inj, retry_backoff=0.0),
            instrumentation=Instrumentation(telemetry=tel),
        )
        driver.run(max_rounds=5)
        assert tel.metrics.as_dict()["task.retries"]["value"] > 0


class _PoisonTarget:
    """Walker-shaped object for nan-poisoning tests."""

    def __init__(self):
        self.ln_g = np.zeros(8)
        self.energy = 0.0
        self.obs_tag = (0, None)


def _identity(walker):
    return walker


class TestSilentAndSlowFaults:
    """The PR-7 fault kinds: nan (silent corruption) and slow (delay)."""

    def test_parse_new_fields(self):
        cfg = parse_faults("nan=0.2,slow=0.1,slow_s=0.5,window=1")
        assert cfg.nan == 0.2 and cfg.slow == 0.1
        assert cfg.slow_s == 0.5 and cfg.window == 1

    def test_sum_includes_new_kinds(self):
        with pytest.raises(ValueError, match="nan \\+ slow"):
            FaultConfig(crash=0.5, nan=0.4, slow=0.3)

    def test_validation(self):
        with pytest.raises(ValueError, match="slow_s"):
            FaultConfig(slow_s=-1.0)
        with pytest.raises(ValueError, match="window"):
            FaultConfig(window=-2)

    def test_decisions(self):
        assert all(
            FaultInjector(FaultConfig(nan=1.0)).decide_task(k, 0) == "nan"
            for k in range(10)
        )
        assert all(
            FaultInjector(FaultConfig(slow=1.0)).decide_task(k, 0) == "slow"
            for k in range(10)
        )

    def test_slow_task_still_succeeds(self):
        inj = FaultInjector(FaultConfig(slow=1.0, slow_s=0.0, seed=0))
        target = _PoisonTarget()
        assert inj.wrap(_identity, 0, 0)(target) is target
        assert np.isfinite(target.ln_g).all() and target.energy == 0.0

    def test_nan_poisons_after_the_body_runs(self):
        """The task succeeds and returns — the corruption is silent."""
        inj = FaultInjector(FaultConfig(nan=1.0, seed=0))
        poisoned = [inj.wrap(_identity, key, 0)(_PoisonTarget())
                    for key in range(20)]
        assert all(
            not np.isfinite(w.ln_g).all() or not np.isfinite(w.energy)
            for w in poisoned
        )
        # The secondary mode draw exercises both corruption shapes.
        assert any(not np.isfinite(w.ln_g).all() for w in poisoned)
        assert any(not np.isfinite(w.energy) for w in poisoned)

    def test_nan_poison_is_deterministic(self):
        for key in range(10):
            a = FaultInjector(FaultConfig(nan=1.0, seed=3)).wrap(
                _identity, key, 0)(_PoisonTarget())
            b = FaultInjector(FaultConfig(nan=1.0, seed=3)).wrap(
                _identity, key, 0)(_PoisonTarget())
            assert np.array_equal(a.ln_g, b.ln_g, equal_nan=True)
            assert a.energy == b.energy or (
                np.isnan(a.energy) and np.isnan(b.energy)
            )

    def test_window_targeting(self):
        """Faults gated to window 1 leave other windows' walkers clean."""
        inj = FaultInjector(FaultConfig(crash=1.0, window=1, seed=0))
        safe = _PoisonTarget()  # obs_tag window 0
        assert inj.wrap(_identity, 0, 0)(safe) is safe
        hit = _PoisonTarget()
        hit.obs_tag = (1, None)
        with pytest.raises(InjectedCrash):
            inj.wrap(_identity, 0, 0)(hit)

    def test_window_targeting_untagged_is_safe(self):
        inj = FaultInjector(FaultConfig(crash=1.0, window=2, seed=0))
        assert inj.wrap(_double, 0, 0)(21) == 42  # no obs_tag -> no fault
