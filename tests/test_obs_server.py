"""Tests for repro.obs.server: board, endpoints, and the determinism
contract of a served campaign (serving changes no sampled number)."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.obs import Instrumentation, Telemetry
from repro.obs.promexport import CONTENT_TYPE
from repro.obs.server import (
    OBS_PORT_ENV_VAR,
    StatusBoard,
    get_board,
    server_from_env,
    start_server,
    stop_server,
)
from repro.obs.timeseries import TimeSeriesConfig, TimeSeriesRecorder
from repro.parallel import REWLConfig, REWLDriver
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid


def _driver(**kwargs):
    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    return REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                          exchange_interval=200, ln_f_final=5e-2, seed=11),
        instrumentation=Instrumentation(**kwargs),
    )


@pytest.fixture(autouse=True)
def _clean_singletons():
    """Every test starts and ends with no server and an empty board."""
    stop_server()
    get_board().clear()
    yield
    stop_server()
    get_board().clear()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, dict(resp.headers), resp.read().decode("utf-8")


def _get_code(url):
    try:
        return _get(url)[0]
    except urllib.error.HTTPError as err:
        return err.code


class TestStatusBoard:
    def test_idle_board(self):
        board = StatusBoard()
        code, payload = board.health()
        assert code == 200 and payload["status"] == "idle"
        assert "# EOF" in board.metrics_text()
        assert board.campaign_view() == {"campaign": None}
        assert board.events_tail() == []

    def test_recorder_drives_health_and_metrics(self):
        board = StatusBoard()
        recorder = TimeSeriesRecorder(TimeSeriesConfig(sample_every=1))
        driver = _driver(telemetry=Telemetry(), timeseries=recorder)
        driver.run(max_rounds=60)
        board.publish_recorder(recorder)
        code, payload = board.health()
        assert code == 200 and payload["status"] == "ok"
        assert payload["converged"] is True
        text = board.metrics_text()
        assert "rewl_window_ln_f" in text
        assert board.campaign_view()["live"]["round"] == driver.rounds

    def test_degraded_recorder_is_503(self):
        board = StatusBoard()
        recorder = TimeSeriesRecorder()
        recorder.latest = {"round": 9, "degraded": True, "quarantined": [1]}
        board.publish_recorder(recorder)
        code, payload = board.health()
        assert code == 503
        assert payload["status"] == "degraded"
        assert payload["quarantined_windows"] == [1]

    def test_exhausted_budget_is_503(self):
        board = StatusBoard()
        recorder = TimeSeriesRecorder()
        recorder.latest = {
            "round": 5,
            "budget": {"exhausted": True, "trigger": "rounds (5 >= 5)"},
        }
        board.publish_recorder(recorder)
        code, payload = board.health()
        assert code == 503
        assert payload["status"] == "budget_exhausted"
        assert "rounds" in payload["trigger"]

    def test_campaign_manifest_snapshot_detached(self):
        board = StatusBoard()
        manifest = {"completed": ["E1"]}
        board.publish_campaign(manifest)
        manifest["completed"].append("E2")  # later mutation must not leak
        assert board.campaign_view()["campaign"] == {"completed": ["E1"]}

    def test_events_tail(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        lines = [json.dumps({"kind": "x", "seq": i}) for i in range(5)]
        trace.write_text("".join(l + "\n" for l in lines))
        board = StatusBoard()
        board.publish_trace(trace)
        assert board.events_tail(2) == lines[-2:]
        assert board.events_tail(0) == lines


class TestServerEndpoints:
    def test_endpoints_serve_a_finished_run(self, tmp_path):
        recorder = TimeSeriesRecorder(TimeSeriesConfig(sample_every=1))
        driver = _driver(telemetry=Telemetry(), timeseries=recorder)
        driver.run(max_rounds=60)
        trace = tmp_path / "t.jsonl"
        trace.write_text(json.dumps({"kind": "heartbeat", "round": 1}) + "\n")
        board = get_board()
        board.publish_recorder(recorder)
        board.publish_campaign({"mode": "quick", "completed": []})
        board.publish_trace(trace)
        server = start_server(port=0)

        code, headers, text = _get(server.url + "/metrics")
        assert code == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        assert "# TYPE rewl_window_ln_f gauge" in text
        assert 'rewl_window_ln_f{window="0"}' in text
        assert text.rstrip().endswith("# EOF")

        code, _, body = _get(server.url + "/healthz")
        assert code == 200 and json.loads(body)["status"] == "ok"

        code, _, body = _get(server.url + "/campaign")
        view = json.loads(body)
        assert code == 200
        assert view["campaign"]["mode"] == "quick"
        assert view["live"]["converged"] is True
        assert "rewl.steps_total" in view["live"]["series"]

        code, _, body = _get(server.url + "/events?n=10")
        assert code == 200 and '"heartbeat"' in body

        code, _, body = _get(server.url + "/")
        assert "/metrics" in json.loads(body)["endpoints"]

    def test_degraded_run_is_503(self):
        recorder = TimeSeriesRecorder()
        recorder.latest = {"round": 3, "degraded": True, "quarantined": [0]}
        get_board().publish_recorder(recorder)
        server = start_server(port=0)
        assert _get_code(server.url + "/healthz") == 503

    def test_unknown_endpoint_404(self):
        server = start_server(port=0)
        assert _get_code(server.url + "/nope") == 404

    def test_start_server_is_idempotent(self):
        first = start_server(port=0)
        assert start_server(port=0) is first

    def test_server_from_env(self, monkeypatch):
        monkeypatch.delenv(OBS_PORT_ENV_VAR, raising=False)
        assert server_from_env() is None
        monkeypatch.setenv(OBS_PORT_ENV_VAR, "not-a-port")
        with pytest.raises(ValueError, match=OBS_PORT_ENV_VAR):
            server_from_env()
        monkeypatch.setenv(OBS_PORT_ENV_VAR, "0")
        server = server_from_env()
        assert server is not None
        assert _get_code(server.url + "/healthz") == 200


class TestServedRunBitIdentity:
    """The ISSUE acceptance criterion: the same seeded campaign run with and
    without serving produces bit-identical sampler output."""

    def test_serving_changes_no_sampled_number(self, monkeypatch):
        monkeypatch.delenv(OBS_PORT_ENV_VAR, raising=False)
        bare = _driver().run(max_rounds=60)

        monkeypatch.setenv(OBS_PORT_ENV_VAR, "0")
        driver = _driver(telemetry=Telemetry())
        # Serving implied a recorder and started the singleton server.
        assert driver.timeseries is not None
        from repro.obs import server as server_mod

        live = server_mod._server
        assert live is not None
        served = driver.run(max_rounds=60)
        # Scrape mid-teardown-free: the served view renders fine afterwards.
        assert _get_code(live.url + "/metrics") == 200

        assert served.converged == bare.converged
        assert served.rounds == bare.rounds
        assert served.total_steps == bare.total_steps
        for a, b in zip(bare.window_ln_g, served.window_ln_g):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(bare.window_visited, served.window_visited):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(bare.exchange_attempts,
                                      served.exchange_attempts)
        np.testing.assert_array_equal(bare.exchange_accepts,
                                      served.exchange_accepts)
