"""Tests for serial parallel tempering and its distributed twin."""

import numpy as np
import pytest

from repro.hamiltonians import enumerate_density_of_states
from repro.lattice import random_configuration
from repro.parallel import distributed_parallel_tempering
from repro.proposals import FlipProposal, SwapProposal
from repro.sampling import ParallelTempering


def make_pt(ising_4x4, betas, seed=0):
    configs = np.stack([
        random_configuration(16, [8, 8], rng=100 + k) for k in range(len(betas))
    ])
    return ParallelTempering(
        ising_4x4, lambda k: FlipProposal(), betas, configs, seed=seed
    ), configs


class TestSerialPT:
    def test_runs_and_records(self, ising_4x4):
        pt, _ = make_pt(ising_4x4, [0.1, 0.2, 0.4])
        res = pt.run(n_rounds=20, steps_per_round=50)
        assert res.energies.shape == (20, 3)
        assert res.exchange_attempts.sum() > 0

    def test_exchange_preserves_energy_bookkeeping(self, ising_4x4):
        pt, _ = make_pt(ising_4x4, [0.1, 0.5])
        pt.run(n_rounds=30, steps_per_round=20)
        for chain in pt.chains:
            assert chain.resync_energy() < 1e-8

    def test_cold_replica_has_lower_energy(self, ising_4x4):
        pt, _ = make_pt(ising_4x4, [0.05, 1.0])
        res = pt.run(n_rounds=60, steps_per_round=100)
        late = res.energies[30:]
        assert late[:, 1].mean() < late[:, 0].mean()

    def test_identical_betas_always_exchange(self, ising_4x4):
        pt, _ = make_pt(ising_4x4, [0.3, 0.3])
        res = pt.run(n_rounds=20, steps_per_round=10)
        assert np.all(res.exchange_rates[~np.isnan(res.exchange_rates)] == 1.0)

    def test_canonical_mean_preserved_by_exchanges(self, ising_4x4):
        """The beta=0.3 replica of a PT run must still match the exact
        canonical mean at beta=0.3 (exchanges must not bias marginals)."""
        levels, degens = enumerate_density_of_states(ising_4x4)
        beta = 0.3
        w = np.log(degens) - beta * levels
        w -= w.max()
        p = np.exp(w) / np.exp(w).sum()
        exact = float(np.dot(p, levels))
        pt, _ = make_pt(ising_4x4, [0.15, 0.3, 0.6], seed=5)
        res = pt.run(n_rounds=400, steps_per_round=100)
        measured = res.energies[100:, 1].mean()
        assert measured == pytest.approx(exact, abs=0.8)

    def test_validation(self, ising_4x4):
        with pytest.raises(ValueError):
            ParallelTempering(ising_4x4, lambda k: FlipProposal(), [0.1],
                              np.zeros((1, 16), dtype=np.int8))
        with pytest.raises(ValueError):
            ParallelTempering(ising_4x4, lambda k: FlipProposal(), [0.1, 0.2],
                              np.zeros((2, 9), dtype=np.int8))


class TestDistributedPT:
    def test_bit_identical_to_serial(self, ising_4x4):
        """The communicator rank program reproduces the serial reference
        trace exactly (same seeds, same exchange decisions)."""
        betas = [0.1, 0.25, 0.5, 1.0]
        configs = np.stack([
            random_configuration(16, [8, 8], rng=200 + k) for k in range(4)
        ])
        serial = ParallelTempering(
            ising_4x4, lambda k: FlipProposal(), betas, configs, seed=9
        ).run(n_rounds=25, steps_per_round=30)
        dist = distributed_parallel_tempering(
            ising_4x4, lambda k: FlipProposal(), betas, configs,
            n_rounds=25, steps_per_round=30, seed=9,
        )
        assert np.array_equal(serial.energies, dist["energies"])
        assert np.array_equal(serial.exchange_accepts, dist["exchange_accepts"])

    def test_shape_validation(self, ising_4x4):
        with pytest.raises(ValueError):
            distributed_parallel_tempering(
                ising_4x4, lambda k: FlipProposal(), [0.1, 0.2],
                np.zeros((3, 16), dtype=np.int8), n_rounds=1, steps_per_round=1,
            )
