"""Unit + property tests for repro.util.numerics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.util.numerics import (
    log1pexp,
    log_add_exp,
    log_sub_exp,
    log_softmax,
    logmeanexp,
    logsumexp,
    softmax,
    stable_sigmoid,
    weighted_logsumexp,
)

finite_arrays = hnp.arrays(
    np.float64,
    st.integers(1, 30),
    elements=st.floats(-600, 600, allow_nan=False),
)


class TestLogSumExp:
    def test_matches_naive_small(self):
        a = np.array([0.0, 1.0, 2.0])
        assert np.isclose(logsumexp(a), np.log(np.exp(a).sum()))

    def test_no_overflow_huge_values(self):
        a = np.array([10_000.0, 10_000.0])
        assert np.isclose(logsumexp(a), 10_000.0 + np.log(2.0))

    def test_all_minus_inf(self):
        assert logsumexp(np.array([-np.inf, -np.inf])) == -np.inf

    def test_some_minus_inf_ignored(self):
        a = np.array([-np.inf, 0.0])
        assert np.isclose(logsumexp(a), 0.0)

    def test_axis_reduction(self):
        a = np.arange(6.0).reshape(2, 3)
        out = logsumexp(a, axis=1)
        for k in range(2):
            assert np.isclose(out[k], np.log(np.exp(a[k]).sum()))

    def test_keepdims(self):
        a = np.zeros((2, 3))
        assert logsumexp(a, axis=1, keepdims=True).shape == (2, 1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            logsumexp(np.array([]))

    def test_scalar_return_type(self):
        assert isinstance(logsumexp(np.array([1.0, 2.0])), float)

    @given(finite_arrays)
    @settings(max_examples=60, deadline=None)
    def test_monotone_bound(self, a):
        # max(a) <= logsumexp(a) <= max(a) + log(n)
        out = logsumexp(a)
        assert out >= a.max() - 1e-12
        assert out <= a.max() + np.log(a.size) + 1e-12

    @given(finite_arrays, st.floats(-100, 100))
    @settings(max_examples=60, deadline=None)
    def test_shift_invariance(self, a, c):
        assert np.isclose(logsumexp(a + c), logsumexp(a) + c, atol=1e-9)


class TestLogMeanWeighted:
    def test_logmeanexp_uniform(self):
        a = np.full(8, 3.0)
        assert np.isclose(logmeanexp(a), 3.0)

    def test_logmeanexp_matches_definition(self):
        a = np.array([0.0, 1.0, -2.0])
        assert np.isclose(logmeanexp(a), np.log(np.exp(a).mean()))

    def test_weighted_logsumexp(self):
        a = np.array([0.0, 1.0])
        w = np.array([np.log(2.0), np.log(3.0)])
        expected = np.log(2 * np.exp(0.0) + 3 * np.exp(1.0))
        assert np.isclose(weighted_logsumexp(a, w), expected)


class TestLogAddSub:
    def test_add(self):
        assert np.isclose(log_add_exp(0.0, 0.0), np.log(2.0))

    def test_sub_exact(self):
        out = log_sub_exp(np.log(5.0), np.log(2.0))
        assert np.isclose(out, np.log(3.0))

    def test_sub_equal_gives_minus_inf(self):
        assert log_sub_exp(1.0, 1.0) == -np.inf

    def test_sub_invalid_raises(self):
        with pytest.raises(ValueError):
            log_sub_exp(0.0, 1.0)

    @given(st.floats(-50, 50), st.floats(-50, 50))
    @settings(max_examples=50, deadline=None)
    def test_add_commutative(self, a, b):
        assert np.isclose(log_add_exp(a, b), log_add_exp(b, a))


class TestActivationHelpers:
    def test_log1pexp_large_positive(self):
        assert np.isclose(log1pexp(800.0), 800.0)

    def test_log1pexp_large_negative(self):
        assert log1pexp(-800.0) == pytest.approx(0.0, abs=1e-300)

    def test_log1pexp_zero(self):
        assert np.isclose(log1pexp(0.0), np.log(2.0))

    def test_sigmoid_extremes(self):
        assert stable_sigmoid(1000.0) == pytest.approx(1.0)
        assert stable_sigmoid(-1000.0) == pytest.approx(0.0)

    def test_sigmoid_symmetry(self):
        x = np.linspace(-20, 20, 11)
        assert np.allclose(stable_sigmoid(x) + stable_sigmoid(-x), 1.0)

    def test_softmax_normalizes(self):
        x = np.array([[1.0, 2.0, 3.0], [1000.0, 1000.0, 1000.0]])
        s = softmax(x)
        assert np.allclose(s.sum(axis=1), 1.0)

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(0).normal(size=(4, 5))
        assert np.allclose(np.exp(log_softmax(x)), softmax(x))

    @given(finite_arrays)
    @settings(max_examples=50, deadline=None)
    def test_softmax_shift_invariant(self, a):
        assert np.allclose(softmax(a), softmax(a + 17.0), atol=1e-12)
