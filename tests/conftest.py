"""Shared fixtures for the DeepThermo reproduction test suite."""

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian, NbMoTaWHamiltonian, PottsHamiltonian
from repro.lattice import bcc, equiatomic_counts, random_configuration, square_lattice


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def ising_4x4():
    return IsingHamiltonian(square_lattice(4))


@pytest.fixture
def ising_6x6():
    return IsingHamiltonian(square_lattice(6))


@pytest.fixture
def potts3_4x4():
    return PottsHamiltonian(square_lattice(4), q=3)


@pytest.fixture
def hea_small():
    """NbMoTaW on a 3³ BCC cell (54 sites) — small enough for fast tests."""
    return NbMoTaWHamiltonian(bcc(3))


@pytest.fixture
def hea_config(hea_small, rng):
    counts = equiatomic_counts(hea_small.n_sites, 4)
    return random_configuration(hea_small.n_sites, counts, rng=rng)
