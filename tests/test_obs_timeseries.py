"""Tests for repro.obs.timeseries: ring buffers, recorder, worker folds."""

import json

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.obs import Instrumentation, Telemetry
from repro.obs.timeseries import (
    TIMESERIES_ENV_VAR,
    SeriesBuffer,
    TimeSeriesConfig,
    TimeSeriesRecorder,
    aggregate_worker_series,
    parse_timeseries,
    timeseries_from_env,
)
from repro.parallel import REWLConfig, REWLDriver
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid


def _driver(**kwargs):
    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    return REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                          exchange_interval=200, ln_f_final=5e-2, seed=11),
        instrumentation=Instrumentation(**kwargs),
    )


class TestSeriesBuffer:
    def test_append_and_views(self):
        buf = SeriesBuffer(capacity=8)
        for i in range(5):
            buf.append(i, i * 10)
        assert len(buf) == 5
        assert buf.last() == (4, 40)
        assert buf.values() == [0, 10, 20, 30, 40]
        assert buf.as_list() == [[i, i * 10] for i in range(5)]

    def test_empty_last_is_none(self):
        assert SeriesBuffer().last() is None

    def test_decimation_keeps_newest_and_halves(self):
        buf = SeriesBuffer(capacity=8)
        for i in range(9):
            buf.append(i, i)
        # Overflow at the 9th append: every other old sample dropped,
        # newest kept.
        assert len(buf) < 9
        assert buf.last() == (8, 8)

    def test_decimation_is_a_function_of_append_count(self):
        """Two buffers fed the same number of appends retain the same x's —
        the determinism hook resumed runs rely on."""
        a, b = SeriesBuffer(capacity=8), SeriesBuffer(capacity=8)
        for i in range(100):
            a.append(i, i * 2.0)
            b.append(i, i * 2.0)
        assert a.as_list() == b.as_list()
        assert [x for x, _ in a.samples] == sorted(x for x, _ in a.samples)

    def test_capacity_bounded_forever(self):
        buf = SeriesBuffer(capacity=8)
        for i in range(10_000):
            buf.append(i, i)
        assert len(buf) <= 8
        assert buf.last() == (9_999, 9_999)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            SeriesBuffer(capacity=1)


class TestConfigParsing:
    def test_defaults(self):
        cfg = TimeSeriesConfig()
        assert cfg.sample_every == 5 and cfg.max_samples == 512

    @pytest.mark.parametrize("field,value", [
        ("sample_every", 0), ("max_samples", 2),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            TimeSeriesConfig(**{field: value})

    def test_parse_enabled(self):
        assert parse_timeseries("1") == TimeSeriesConfig()
        assert parse_timeseries("on") == TimeSeriesConfig()

    def test_parse_keys(self):
        cfg = parse_timeseries("every=3,max=64")
        assert cfg.sample_every == 3 and cfg.max_samples == 64

    def test_parse_bad_spec(self):
        with pytest.raises(ValueError, match=TIMESERIES_ENV_VAR):
            parse_timeseries("cadence=3")
        with pytest.raises(ValueError):
            parse_timeseries("every=fast")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(TIMESERIES_ENV_VAR, raising=False)
        assert timeseries_from_env() is None
        monkeypatch.setenv(TIMESERIES_ENV_VAR, "0")
        assert timeseries_from_env() is None
        monkeypatch.setenv(TIMESERIES_ENV_VAR, "every=2,max=32")
        assert timeseries_from_env() == TimeSeriesConfig(2, 32)


class TestRecorderOnRealDriver:
    def test_run_records_series_and_gauges(self):
        recorder = TimeSeriesRecorder(TimeSeriesConfig(sample_every=2,
                                                       max_samples=64))
        driver = _driver(telemetry=Telemetry(), timeseries=recorder)
        driver.run(max_rounds=60)
        assert recorder.samples > 0
        names = recorder.summary()["series"]
        assert "rewl.window.ln_f{window=0}" in names
        assert "rewl.window.ln_f{window=1}" in names
        assert "rewl.steps_total" in names
        # Labeled gauges landed in the driver registry.
        snap = recorder.metrics_view()
        assert any(k.startswith("rewl.window.ln_f{") for k in snap)
        # ln f is monotone non-increasing within a window's series.
        values = recorder.series_buffer(
            "rewl.window.ln_f", {"window": 0}).values()
        assert values == sorted(values, reverse=True)

    def test_status_is_json_ready_plain_data(self):
        recorder = TimeSeriesRecorder(TimeSeriesConfig(sample_every=2))
        driver = _driver(telemetry=Telemetry(), timeseries=recorder)
        driver.run(max_rounds=60)
        status = recorder.status()
        json.dumps(status)  # nothing live or unserializable leaks through
        assert status["round"] == driver.rounds
        assert status["converged"] is True
        assert len(status["windows"]) == 2
        assert status["samples"] == recorder.samples
        assert "rewl.steps_total" in status["series"]

    def test_force_sampling_off_stride(self):
        recorder = TimeSeriesRecorder(TimeSeriesConfig(sample_every=1000))
        driver = _driver(telemetry=Telemetry(), timeseries=recorder)
        driver.run(max_rounds=60)
        # The stride never fires in a short run, but the driver forces a
        # final sample at run end so /metrics is never empty.
        assert recorder.samples >= 1

    def test_result_telemetry_carries_summary_and_cost(self):
        from repro.obs.profile import SectionProfiler

        recorder = TimeSeriesRecorder(TimeSeriesConfig(sample_every=2))
        driver = _driver(telemetry=Telemetry(), timeseries=recorder,
                         profiler=SectionProfiler())
        result = driver.run(max_rounds=60)
        ts = result.telemetry["timeseries"]
        assert ts["samples"] == recorder.samples
        assert ts["points"] > 0
        assert recorder.cost is not None
        assert recorder.cost["total_s"] >= 0
        assert recorder.status()["cost"] == recorder.cost

    def test_config_kwarg_wraps_into_recorder(self):
        driver = _driver(timeseries=TimeSeriesConfig(sample_every=7))
        assert isinstance(driver.timeseries, TimeSeriesRecorder)
        assert driver.timeseries.cfg.sample_every == 7

    def test_env_knob_attaches_recorder(self, monkeypatch):
        monkeypatch.setenv(TIMESERIES_ENV_VAR, "every=9")
        driver = _driver()
        assert driver.timeseries is not None
        assert driver.timeseries.cfg.sample_every == 9
        monkeypatch.setenv(TIMESERIES_ENV_VAR, "0")
        assert _driver().timeseries is None


def _worker_record(window, walker, dur_s, steps, kind="worker_span"):
    return {"v": 1, "run": "r1", "seq": 1, "ts": 0.0, "kind": kind,
            "name": "advance", "dur_s": dur_s, "window": window,
            "walker": walker, "steps": steps}


class TestWorkerFolds:
    def _write(self, path, records):
        path.write_text("".join(json.dumps(r) + "\n" for r in records))

    def test_recorder_tails_trace_dir_incrementally(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        wf = tmp_path / "worker-1.jsonl"
        self._write(wf, [_worker_record(0, 0, 0.5, 1000)])
        recorder = TimeSeriesRecorder(TimeSeriesConfig(sample_every=1))
        driver = _driver(telemetry=Telemetry(), timeseries=recorder)
        driver.run(max_rounds=60)
        assert recorder.workers[(0, 0)]["seconds"] == pytest.approx(0.5)
        # The run itself also appended worker spans to this process's file.
        assert recorder.summary()["workers"] >= 1
        snap = recorder.metrics_view()
        assert any(k.startswith("rewl.worker.advance_s{") for k in snap)

    def test_aggregate_worker_series_from_files_and_dirs(self, tmp_path):
        a = tmp_path / "worker-1.jsonl"
        b = tmp_path / "worker-2.jsonl"
        self._write(a, [_worker_record(0, 0, 0.5, 100),
                        _worker_record(0, 0, 0.25, 50),
                        _worker_record(1, 0, 1.0, 200)])
        self._write(b, [_worker_record(0, 1, 2.0, 400),
                        {"kind": "heartbeat", "round": 1}])  # ignored
        lanes = aggregate_worker_series([tmp_path])
        assert lanes[(0, 0)] == {"seconds": 0.75, "steps": 150, "spans": 2}
        assert lanes[(1, 0)]["spans"] == 1
        assert lanes[(0, 1)]["steps"] == 400
        # A single file path works too.
        assert aggregate_worker_series([a])[(1, 0)]["seconds"] == 1.0

    def test_aggregate_skips_missing_and_bad_durations(self, tmp_path):
        f = tmp_path / "worker-1.jsonl"
        self._write(f, [_worker_record(0, 0, "oops", 10),
                        _worker_record(0, 0, 0.5, 10)])
        lanes = aggregate_worker_series([f, tmp_path / "never.jsonl"])
        assert lanes[(0, 0)]["spans"] == 1

    def test_nested_fields_records_fold(self, tmp_path):
        record = {"v": 1, "run": "r1", "seq": 1, "ts": 0.0,
                  "kind": "worker_span",
                  "fields": {"name": "advance", "dur_s": 0.5, "window": 1,
                             "walker": 2, "steps": 64}}
        f = tmp_path / "worker-1.jsonl"
        f.write_text(json.dumps(record) + "\n")
        lanes = aggregate_worker_series([f])
        assert lanes[(1, 2)] == {"seconds": 0.5, "steps": 64, "spans": 1}
