"""The unified Sampler API: WLConfig, keyword-only constructors, registry.

Covers the api_redesign migration contract:

- :class:`WLConfig` validates its fields and merges overrides;
- the retired positional and ``config=<ndarray>`` shims (one deprecation
  release has elapsed) now raise ``TypeError`` with a pointer to the
  keyword spelling;
- the driver's retired per-field observability keywords still work for one
  release behind a ``DeprecationWarning`` that routes them through
  :class:`~repro.obs.Instrumentation`;
- every sampler satisfies the structural :class:`Sampler` protocol and is
  reachable through the :data:`SAMPLERS` registry;
- the repo itself is clean of deprecated-path uses (``repro tools
  lint-api``).
"""

import warnings

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.parallel import REWLConfig, REWLDriver
from repro.proposals import FlipProposal
from repro.sampling import (
    SAMPLERS,
    BatchedWangLandauSampler,
    EnergyGrid,
    MetropolisSampler,
    MulticanonicalSampler,
    ParallelTempering,
    Sampler,
    WangLandauSampler,
    WLConfig,
    WolffSampler,
    get_sampler,
    make_sampler,
    register_sampler,
)
from repro.util.deprecation import reset_deprecation_warnings


@pytest.fixture
def ham():
    return IsingHamiltonian(square_lattice(4))


@pytest.fixture
def grid(ham):
    return EnergyGrid.from_levels(ham.energy_levels())


def wl_kwargs(ham, grid, **extra):
    base = dict(
        hamiltonian=ham, proposal=FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8), rng=0,
    )
    base.update(extra)
    return base


class TestWLConfig:
    def test_defaults(self):
        cfg = WLConfig()
        assert cfg.ln_f_init == 1.0
        assert cfg.ln_f_final == 1e-6
        assert cfg.flatness == 0.8
        assert cfg.schedule == "halving"
        assert cfg.batch_size == 1

    @pytest.mark.parametrize("bad", [
        dict(ln_f_init=0.0),
        dict(ln_f_final=0.0),
        dict(ln_f_init=1e-8, ln_f_final=1e-6),
        dict(flatness=0.0),
        dict(flatness=1.5),
        dict(schedule="linear"),
        dict(check_interval=0),
        dict(batch_size=0),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            WLConfig(**bad)

    def test_with_overrides_drops_nones(self):
        cfg = WLConfig(ln_f_final=1e-4)
        out = cfg.with_overrides(flatness=0.7, check_interval=None)
        assert out.flatness == 0.7
        assert out.ln_f_final == 1e-4
        assert out.check_interval is cfg.check_interval

    def test_frozen(self):
        with pytest.raises(AttributeError):
            WLConfig().flatness = 0.5


class TestRetiredConstruction:
    def test_positional_raises(self, ham, grid):
        with pytest.raises(TypeError, match="keyword arguments only"):
            WangLandauSampler(ham, FlipProposal(), grid,
                              np.zeros(16, dtype=np.int8), 0)

    def test_config_array_kwarg_raises(self, ham, grid):
        with pytest.raises(TypeError, match="initial_config"):
            WangLandauSampler(
                hamiltonian=ham, proposal=FlipProposal(), grid=grid,
                config=np.zeros(16, dtype=np.int8), rng=0,
            )

    def test_unknown_kwarg_raises(self, ham, grid):
        with pytest.raises(TypeError, match="unexpected"):
            WangLandauSampler(**wl_kwargs(ham, grid), wibble=3)

    def test_missing_required_raises(self, ham):
        with pytest.raises(TypeError, match="missing"):
            WangLandauSampler(hamiltonian=ham)

    def test_loose_tuning_kwargs_fold_into_config(self, ham, grid):
        wl = WangLandauSampler(**wl_kwargs(
            ham, grid, ln_f_final=1e-3, flatness=0.65, schedule="one_over_t",
        ))
        assert wl.cfg.ln_f_final == 1e-3
        assert wl.cfg.flatness == 0.65
        assert wl.cfg.schedule == "one_over_t"

    def test_rewl_positional_raises(self, ham, grid):
        cfg = REWLConfig(n_windows=2, walkers_per_window=1,
                         exchange_interval=100, seed=0)
        with pytest.raises(TypeError):
            REWLDriver(ham, lambda: FlipProposal(), grid,
                       np.zeros(16, dtype=np.int8), cfg)


class TestInstrumentationBundle:
    def test_legacy_keywords_warn_once_and_fold(self, ham, grid):
        from repro.obs import Telemetry

        reset_deprecation_warnings()
        cfg = REWLConfig(n_windows=2, walkers_per_window=1,
                         exchange_interval=100, seed=0)
        obs = Telemetry()
        with pytest.warns(DeprecationWarning, match="Instrumentation"):
            drv = REWLDriver(
                hamiltonian=ham, proposal_factory=FlipProposal, grid=grid,
                initial_config=np.zeros(16, dtype=np.int8), config=cfg,
                telemetry=obs,  # deprecated spelling under test
            )
        assert drv.obs is obs
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            REWLDriver(
                hamiltonian=ham, proposal_factory=FlipProposal, grid=grid,
                initial_config=np.zeros(16, dtype=np.int8), config=cfg,
                telemetry=obs,
            )

    def test_bundle_and_legacy_together_raise(self, ham, grid):
        from repro.obs import Instrumentation, Telemetry

        cfg = REWLConfig(n_windows=2, walkers_per_window=1,
                         exchange_interval=100, seed=0)
        with pytest.raises(TypeError, match="both"):
            REWLDriver(
                hamiltonian=ham, proposal_factory=FlipProposal, grid=grid,
                initial_config=np.zeros(16, dtype=np.int8), config=cfg,
                instrumentation=Instrumentation(telemetry=Telemetry()),
                telemetry=Telemetry(),
            )

    def test_bundle_fields_reach_driver(self, ham, grid):
        from repro.obs import Instrumentation, Telemetry
        from repro.obs.profile import SectionProfiler

        cfg = REWLConfig(n_windows=2, walkers_per_window=1,
                         exchange_interval=100, seed=0)
        obs = Telemetry()
        prof = SectionProfiler(sample_every=4)
        drv = REWLDriver(
            hamiltonian=ham, proposal_factory=FlipProposal, grid=grid,
            initial_config=np.zeros(16, dtype=np.int8), config=cfg,
            instrumentation=Instrumentation(telemetry=obs, profiler=prof),
        )
        assert drv.obs is obs
        assert drv.profiler is prof


class TestSamplerProtocol:
    def test_all_samplers_satisfy_protocol(self):
        for cls in (MetropolisSampler, WangLandauSampler,
                    BatchedWangLandauSampler, MulticanonicalSampler,
                    ParallelTempering, WolffSampler):
            assert issubclass(cls, Sampler)

    def test_instance_check(self, ham, grid):
        wl = WangLandauSampler(**wl_kwargs(ham, grid))
        assert isinstance(wl, Sampler)

    def test_non_sampler_rejected(self):
        class NotASampler:
            pass

        assert not isinstance(NotASampler(), Sampler)


class TestRegistry:
    def test_known_names(self):
        for name in ("metropolis", "wang_landau", "batched_wang_landau",
                     "multicanonical", "tempering", "wolff"):
            assert name in SAMPLERS

    def test_get_sampler(self):
        assert get_sampler("wang_landau") is WangLandauSampler

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="registered"):
            get_sampler("quantum_annealing")

    def test_make_sampler(self, ham, grid):
        wl = make_sampler("wang_landau", **wl_kwargs(ham, grid))
        assert type(wl) is WangLandauSampler

    def test_register_rejects_runless_class(self):
        with pytest.raises(TypeError, match="protocol"):
            register_sampler("bogus")(object)

    def test_register_rejects_duplicate_name(self):
        with pytest.raises(ValueError, match="already registered"):
            register_sampler("wang_landau")(MetropolisSampler)


class TestLintApi:
    def test_repo_is_clean(self):
        from pathlib import Path

        from repro.tools.lint import lint_api

        root = Path(__file__).resolve().parent.parent
        assert lint_api(root) == []

    def test_lint_flags_deprecated_use(self, tmp_path):
        from repro.tools.lint import lint_api

        src = tmp_path / "src"
        src.mkdir()
        (src / "bad.py").write_text(
            "from repro.util.timers import Timer\n"       # lint-api: allow
            "x = ham.energy_batch(cfgs)\n"                # lint-api: allow
            "y = ham.energy_batch(cfgs)  # lint-api: allow\n"
        )
        hits = lint_api(tmp_path)
        assert len(hits) == 2
        assert {h[1] for h in hits} == {1, 2}  # line 3 opted out
