"""Tests for the SRO-targeted structure generator and LAMMPS export.

The generator's whole premise is that the incremental pair-count algebra
is *exact*: every delta kernel is pinned against brute-force recounts, the
anneal must reach its α target within tolerance while preserving
composition exactly, and the exported ``.data`` file must round-trip the
configuration.
"""

import numpy as np
import pytest

from repro.analysis.sro import pair_counts, warren_cowley, warren_cowley_from_counts
from repro.kernels import PairTables, ops
from repro.lattice import (
    NBMOTAW,
    anneal_energy,
    anneal_sro,
    bcc,
    equiatomic_counts,
    random_configuration,
    square_lattice,
    write_lammps_data,
)
from repro.hamiltonians import NbMoTaWHamiltonian


def _tables(lat, n_shells=2, n_species=4):
    shells = lat.neighbor_shells(n_shells)
    return shells, PairTables(shells, [np.zeros((n_species, n_species))] * n_shells)


class TestPairCountDeltas:
    @pytest.mark.parametrize("kind", ["bcc", "square"])
    def test_scalar_matches_bruteforce_recount(self, kind):
        rng = np.random.default_rng(3)
        lat = bcc(3) if kind == "bcc" else square_lattice(5)
        S = 4
        shells, t = _tables(lat)
        config = rng.integers(0, S, lat.n_sites).astype(np.int8)
        for _ in range(50):
            i, j = rng.integers(0, lat.n_sites, 2)
            D = ops.pair_count_deltas_swap(t, config, int(i), int(j))
            after = config.copy()
            after[i], after[j] = after[j], after[i]
            for s, shell in enumerate(shells):
                delta = (pair_counts(after, shell.table, S)
                         - pair_counts(config, shell.table, S))
                assert np.array_equal(D[s], delta), (i, j, s)

    def test_batched_matches_scalar(self):
        rng = np.random.default_rng(4)
        lat = bcc(3)
        S = 4
        _, t = _tables(lat)
        config = rng.integers(0, S, lat.n_sites).astype(np.int8)
        M = 100
        ii = rng.integers(0, lat.n_sites, M)
        jj = rng.integers(0, lat.n_sites, M)
        # Ensure the degenerate rows are represented.
        ii[0] = jj[0] = 5
        D = ops.pair_count_deltas_swap_alternatives(t, config, ii, jj)
        for m in range(M):
            ref = ops.pair_count_deltas_swap(t, config, int(ii[m]), int(jj[m]))
            assert np.array_equal(D[m], ref), m

    def test_same_species_swap_is_zero(self):
        lat = square_lattice(4)
        _, t = _tables(lat)
        config = np.zeros(lat.n_sites, dtype=np.int8)
        D = ops.pair_count_deltas_swap(t, config, 0, 5)
        assert not D.any()


class TestAnnealSRO:
    def test_reaches_target_and_preserves_composition(self):
        lat = bcc(6)
        S = 4
        counts = equiatomic_counts(lat.n_sites, S)
        targets = np.full((S, S), np.nan)
        targets[1, 2] = targets[2, 1] = -0.08
        res = anneal_sro(lat, S, targets, counts=counts, rng=0,
                         batch=64, max_iters=4000, tol=0.01)
        assert res.converged
        assert res.max_abs_error <= 0.01
        assert np.bincount(res.config, minlength=S).tolist() == list(counts)
        # The reported alpha agrees with an independent full recount.
        alpha = warren_cowley(lat, res.config, S)
        assert alpha[1, 2] == pytest.approx(res.alpha[0][1, 2], abs=1e-12)
        assert abs(alpha[1, 2] - (-0.08)) <= 0.01

    def test_does_not_mutate_input_config(self):
        lat = bcc(4)
        S = 4
        config = random_configuration(lat.n_sites, equiatomic_counts(lat.n_sites, S), rng=1)
        before = config.copy()
        targets = np.full((S, S), np.nan)
        targets[0, 1] = targets[1, 0] = -0.05
        anneal_sro(lat, S, targets, config=config, rng=1, max_iters=50)
        assert np.array_equal(config, before)

    def test_two_shell_targets(self):
        lat = bcc(6)
        S = 4
        targets = np.full((2, S, S), np.nan)
        targets[0, 1, 2] = targets[0, 2, 1] = -0.06
        targets[1, 1, 2] = targets[1, 2, 1] = 0.03
        res = anneal_sro(lat, S, targets, rng=2, batch=64,
                         max_iters=6000, tol=0.015)
        assert res.max_abs_error <= 0.015
        assert res.alpha.shape == (2, S, S)

    def test_all_nan_targets_raise(self):
        with pytest.raises(ValueError):
            anneal_sro(bcc(3), 4, np.full((4, 4), np.nan), rng=0)

    def test_asymmetric_target_raises(self):
        t = np.full((4, 4), np.nan)
        t[0, 1] = -0.1
        t[1, 0] = +0.1
        with pytest.raises(ValueError):
            anneal_sro(bcc(3), 4, t, rng=0)

    def test_missing_species_raises(self):
        lat = bcc(3)
        config = np.zeros(lat.n_sites, dtype=np.int8)  # only species 0
        t = np.full((4, 4), np.nan)
        t[0, 1] = t[1, 0] = -0.1
        with pytest.raises(ValueError):
            anneal_sro(lat, 4, t, config=config, rng=0)


class TestAnnealEnergy:
    def test_lowers_energy(self):
        lat = bcc(4)
        ham = NbMoTaWHamiltonian(lat, n_shells=2)
        config = random_configuration(
            lat.n_sites, equiatomic_counts(lat.n_sites, 4), rng=0)
        e0 = ham.energy(config)
        out, accepted = anneal_energy(ham, config, n_steps=4000, rng=0)
        assert ham.energy(out) < e0
        assert 0 < accepted <= 4000
        # Composition-preserving by construction.
        assert np.array_equal(np.bincount(out, minlength=4),
                              np.bincount(config, minlength=4))


class TestWarrenCowleyFromCounts:
    def test_matches_full_path(self):
        rng = np.random.default_rng(9)
        lat = bcc(3)
        S = 4
        config = rng.integers(0, S, lat.n_sites).astype(np.int8)
        shells = lat.neighbor_shells(1)
        ref = warren_cowley(lat, config, S)
        got = warren_cowley_from_counts(
            pair_counts(config, shells[0].table, S),
            np.bincount(config, minlength=S),
        )
        np.testing.assert_array_equal(got, ref)


class TestLammpsExport:
    def test_roundtrip(self, tmp_path):
        lat = bcc(3)
        S = 4
        config = random_configuration(
            lat.n_sites, equiatomic_counts(lat.n_sites, S), rng=0)
        path = tmp_path / "cell.data"
        write_lammps_data(path, lat, config,
                          species_names=list(NBMOTAW.names),
                          masses=[92.9, 95.95, 180.9, 183.8],
                          lattice_constant=3.24, block_sites=17)
        lines = path.read_text().splitlines()
        assert f"{lat.n_sites} atoms" in lines
        assert f"{S} atom types" in lines
        atoms_at = lines.index("Atoms # atomic")
        rows = [ln.split() for ln in lines[atoms_at + 2:] if ln.strip()]
        assert len(rows) == lat.n_sites
        ids = np.array([int(r[0]) for r in rows])
        types = np.array([int(r[1]) for r in rows])
        assert np.array_equal(ids, np.arange(1, lat.n_sites + 1))
        assert np.array_equal(types - 1, config)
        # Positions stay inside the box.
        pos = np.array([[float(x) for x in r[2:5]] for r in rows])
        box = 3 * 3.24
        assert (pos >= 0).all() and (pos < box + 1e-9).all()

    def test_non_3d_raises(self, tmp_path):
        lat = square_lattice(3)
        with pytest.raises(ValueError):
            write_lammps_data(tmp_path / "x.data", lat,
                              np.zeros(lat.n_sites, dtype=np.int8))
