"""Tests for repro.obs.bench: snapshot schema, runner, and comparison."""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    QUICK_BENCHES,
    compare_snapshots,
    discover_benchmarks,
    load_snapshot,
    next_snapshot_path,
    render_compare,
    run_benchmarks,
)

_TINY_BENCH = '''\
import numpy as np

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid, WangLandauSampler


def bench_tiny_wl(benchmark):
    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    wl = WangLandauSampler(hamiltonian=ham, proposal=FlipProposal(), grid=grid,
                           initial_config=np.zeros(16, dtype=np.int8), rng=0)
    benchmark.extra_info["steps_per_round"] = 200

    def block():
        wl.run(max_steps=wl.n_steps + 200)
        return wl.n_steps

    benchmark.pedantic(block, iterations=1, rounds=2)
'''


def _snapshot(means, extra=None):
    snap = {
        "v": BENCH_SCHEMA_VERSION,
        "benchmarks": {
            name: {"mean_s": mean} for name, mean in means.items()
        },
    }
    snap.update(extra or {})
    return snap


class TestCompare:
    def test_identical_snapshots_pass(self):
        snap = _snapshot({"a": 1.0, "b": 0.01})
        diff = compare_snapshots(snap, snap)
        assert diff["regressions"] == []
        assert all(e["status"] == "ok" for e in diff["entries"])

    def test_two_x_slowdown_is_flagged(self):
        old = _snapshot({"a": 1.0})
        new = _snapshot({"a": 2.0})
        diff = compare_snapshots(old, new, threshold=0.25)
        assert diff["regressions"] == ["a"]
        assert diff["entries"][0]["ratio"] == pytest.approx(2.0)

    def test_within_threshold_is_ok(self):
        diff = compare_snapshots(
            _snapshot({"a": 1.0}), _snapshot({"a": 1.2}), threshold=0.25)
        assert diff["regressions"] == []

    def test_speedup_is_improvement_not_regression(self):
        diff = compare_snapshots(
            _snapshot({"a": 1.0}), _snapshot({"a": 0.4}), threshold=0.25)
        assert diff["entries"][0]["status"] == "improvement"
        assert diff["regressions"] == []

    def test_added_and_removed_benchmarks(self):
        diff = compare_snapshots(
            _snapshot({"gone": 1.0}), _snapshot({"fresh": 1.0}))
        statuses = {e["name"]: e["status"] for e in diff["entries"]}
        assert statuses == {"gone": "removed", "fresh": "added"}

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_snapshots(_snapshot({}), _snapshot({}), threshold=-0.1)

    def test_render_names_regressions(self):
        diff = compare_snapshots(_snapshot({"a": 1.0}), _snapshot({"a": 3.0}))
        text = render_compare(diff)
        assert "regression" in text and "a" in text


class TestGateOnlyCli:
    def _write(self, tmp_path, name, means):
        path = tmp_path / name
        path.write_text(json.dumps(_snapshot(means)))
        return str(path)

    def test_gate_only_scopes_the_exit_code(self, tmp_path, capsys):
        from repro.obs.bench import main_compare

        old = self._write(tmp_path, "old.json",
                          {"e9_steps": 1.0, "dl_propose_batched": 1.0})
        new = self._write(tmp_path, "new.json",
                          {"e9_steps": 1.0, "dl_propose_batched": 3.0})
        # The regression is outside the gated substring: reported, exit 0.
        assert main_compare([old, new, "--gate-only", "e9_steps"]) == 0
        capsys.readouterr()

    def test_gate_only_is_repeatable(self, tmp_path, capsys):
        from repro.obs.bench import main_compare

        old = self._write(tmp_path, "old.json",
                          {"e9_steps": 1.0, "dl_propose_batched": 1.0})
        new = self._write(tmp_path, "new.json",
                          {"e9_steps": 1.0, "dl_propose_batched": 3.0})
        # Repeated --gate-only gates on ANY matching substring (the CI
        # bench-smoke job gates e9 throughput + the DL proposal metric).
        code = main_compare([
            old, new, "--gate-only", "e9_steps", "--gate-only", "dl_propose",
        ])
        assert code == 1
        assert "dl_propose_batched" in capsys.readouterr().out


class TestSnapshotFiles:
    def test_next_snapshot_path_skips_taken_numbers(self, tmp_path):
        assert next_snapshot_path(tmp_path).name == "BENCH_1.json"
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_3.json").write_text("{}")
        assert next_snapshot_path(tmp_path).name == "BENCH_2.json"

    def test_load_snapshot_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "BENCH_9.json"
        path.write_text(json.dumps({"v": 999}))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(path)

    def test_quick_subset_files_exist(self):
        names = {p.name for p in discover_benchmarks("benchmarks")}
        assert set(QUICK_BENCHES) <= names


class TestRunner:
    def test_missing_bench_file_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_benchmarks(selection=["bench_nope.py"], bench_dir=tmp_path)

    def test_runner_emits_valid_snapshot(self, tmp_path):
        """End-to-end: child pytest run -> BENCH json with stats, steps/s,
        fingerprint, and the per-section profile recovered from the child."""
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_tiny.py").write_text(_TINY_BENCH)
        out = tmp_path / "BENCH_test.json"

        snapshot = run_benchmarks(bench_dir=bench_dir, out_path=out)

        assert snapshot["v"] == BENCH_SCHEMA_VERSION
        assert snapshot["pytest_exit"] == 0
        assert snapshot["selection"] == ["bench_tiny.py"]
        assert snapshot["wall_s"] > 0
        assert snapshot["fingerprint"]["python"]
        [(name, bench)] = snapshot["benchmarks"].items()
        assert "bench_tiny_wl" in name
        assert bench["mean_s"] > 0
        assert bench["steps_per_s"] > 0
        # wl.run() under REPRO_PROFILE contributes to the child's collector,
        # which the runner recovers via REPRO_PROFILE_OUT.
        assert snapshot["profile"].get("proposal.flip", {}).get("calls", 0) > 0
        # And the on-disk snapshot round-trips through load_snapshot.
        assert load_snapshot(out) == snapshot


class TestRssGating:
    """Ultra-tier rows carry a peak-RSS budget; exceeding it is a
    regression even when the timing is fine."""

    def _with_rss(self, mean, peak_kb, budget_kb):
        return {"mean_s": mean, "peak_rss_kb": peak_kb,
                "rss_budget_kb": budget_kb}

    def test_over_budget_is_a_regression(self):
        old = _snapshot({"a": 1.0})
        new = _snapshot({})
        new["benchmarks"]["a"] = self._with_rss(1.0, 3_000_000, 2_097_152)
        diff = compare_snapshots(old, new)
        assert diff["regressions"] == ["a"]
        assert diff["entries"][0]["status"] == "rss-over-budget"

    def test_within_budget_is_ok(self):
        old = _snapshot({"a": 1.0})
        new = _snapshot({})
        new["benchmarks"]["a"] = self._with_rss(1.0, 500_000, 2_097_152)
        diff = compare_snapshots(old, new)
        assert diff["regressions"] == []
        assert diff["entries"][0]["status"] == "ok"

    def test_added_row_is_budget_checked(self):
        old = _snapshot({})
        new = _snapshot({})
        new["benchmarks"]["fresh"] = self._with_rss(1.0, 3_000_000, 2_097_152)
        diff = compare_snapshots(old, new)
        assert diff["regressions"] == ["fresh"]

    def test_time_regression_takes_precedence(self):
        old = _snapshot({"a": 1.0})
        new = _snapshot({})
        new["benchmarks"]["a"] = self._with_rss(2.0, 3_000_000, 2_097_152)
        diff = compare_snapshots(old, new)
        assert diff["entries"][0]["status"] == "regression"
        assert diff["regressions"] == ["a"]

    def test_render_shows_rss_column(self):
        old = _snapshot({"a": 1.0})
        new = _snapshot({})
        new["benchmarks"]["a"] = self._with_rss(1.0, 1024 * 512, 1024 * 2048)
        text = render_compare(compare_snapshots(old, new))
        assert "512/2048MB" in text
        assert "peak_rss" in text

    def test_rows_without_rss_are_untouched(self):
        old = _snapshot({"a": 1.0})
        new = _snapshot({"a": 1.0})
        diff = compare_snapshots(old, new)
        assert diff["entries"][0]["peak_rss_kb"] is None
        assert "-" in render_compare(diff)
