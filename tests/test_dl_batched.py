"""Batched DL-proposal inference: batched==scalar properties and exactness.

The tentpole contract of the batched inference path (DESIGN.md §12): for
every DL proposal, ``propose_many`` is the *same kernel* as ``propose`` —
same candidate distribution, same (exact) proposal-density corrections,
same composition semantics — just evaluated one model forward per walker
team instead of per walker.  Three layers of checks:

1. **Bit-level**: at ``B=1`` the MADE batched path consumes the identical
   RNG draws as the scalar path (``sample(1·tries) == sample(tries)``), so
   candidates, ``log_q_ratio`` and ``delta_energy`` must match exactly;
   the workspace-bound model must be bit-identical to the unbound one.
2. **Row-level**: every batched row's ``log_q_ratio`` equals directly
   evaluated model densities (exact for MADE/cMADE, including the
   reverse-conditioning correction), ``delta_energies`` match recomputed
   Hamiltonian differences, and composition modes behave per row.
3. **Distribution-level** (E1-style): a *batched* Wang-Landau chain whose
   proposal mixture includes a MADE global kernel recovers the exactly
   enumerated 3x3 Ising density of states.
"""

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian, enumerate_density_of_states
from repro.lattice import composition_counts, one_hot, square_lattice
from repro.nn import (
    MADE,
    ConditionalMADE,
    ConditionalMADEConfig,
    MADEConfig,
    CategoricalVAE,
    VAEConfig,
    Workspace,
    encode_one_hot,
)
from repro.proposals import (
    ConditionalMADEProposal,
    FlipProposal,
    MADEProposal,
    MixtureProposal,
    Move,
    Proposal,
    VAEProposal,
)
from repro.proposals.composition import (
    composition_counts_rows,
    first_match_per_row,
)
from repro.sampling import EnergyGrid, WLConfig, make_wang_landau
from repro.training import ReplayBuffer


@pytest.fixture(scope="module")
def tiny_ising():
    return IsingHamiltonian(square_lattice(3))


@pytest.fixture(scope="module")
def made9():
    """Untrained 9-site MADE — density exactness needs no training."""
    return MADE(MADEConfig(n_sites=9, n_species=2, hidden=(32,)), rng=1)


@pytest.fixture(scope="module")
def cmade9():
    return ConditionalMADE(
        ConditionalMADEConfig(n_sites=9, n_species=2, cond_dim=1, hidden=(32,)),
        rng=2,
    )


@pytest.fixture(scope="module")
def vae9():
    return CategoricalVAE(
        VAEConfig(n_sites=9, n_species=2, latent_dim=3, hidden=(24,)), rng=3
    )


def _configs(n_rows, n_sites, seed, n_species=2):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_species, (n_rows, n_sites)).astype(np.int8)


# --------------------------------------------------------------- bit identity


class TestBatchedEqualsScalar:
    @pytest.mark.parametrize("composition", ["free", "reject"])
    def test_made_b1_identical_to_scalar(self, tiny_ising, made9, composition):
        """B=1 batched MADE draws the very same candidate as scalar.

        Free mode: ``sample(1)`` either way.  Reject mode: the batched pool
        is ``sample(1·tries)`` — the same array the scalar scan draws — and
        first-match-per-row is the same scan.
        """
        cfg = _configs(1, 9, seed=11)[0]
        e0 = float(tiny_ising.energy(cfg))

        scalar = MADEProposal(made9, composition=composition)
        batched = MADEProposal(made9, composition=composition)
        move = scalar.propose(cfg, tiny_ising, np.random.default_rng(42),
                              current_energy=e0)
        bmove = batched.propose_many(cfg[None], tiny_ising,
                                     np.random.default_rng(42),
                                     current_energies=np.array([e0]))
        assert move is not None and bmove.valid is None
        after = cfg.copy()
        move.apply(after)
        assert np.array_equal(bmove.new_values[0], after)
        assert bmove.log_q_ratios[0] == move.log_q_ratio
        assert bmove.delta_energies[0] == move.delta_energy

    def test_workspace_binding_is_bit_identical(self):
        """The same architecture with and without a bound workspace."""
        plain = MADE(MADEConfig(n_sites=9, n_species=2, hidden=(32,)), rng=5)
        pooled = MADE(MADEConfig(n_sites=9, n_species=2, hidden=(32,)), rng=5)
        ws = Workspace()
        pooled.bind_workspace(ws)

        x = one_hot(_configs(6, 9, seed=12), 2)
        assert np.array_equal(plain.log_prob(x), pooled.log_prob(x))
        a, lp_a = plain.sample(4, np.random.default_rng(6), return_log_prob=True)
        b, lp_b = pooled.sample(4, np.random.default_rng(6), return_log_prob=True)
        assert np.array_equal(a, b)
        assert np.array_equal(lp_a, lp_b)
        assert ws.n_buffers > 0
        # Repeated same-shape calls allocate nothing new.
        n = ws.n_buffers
        pooled.log_prob(x)
        assert ws.n_buffers == n


# ----------------------------------------------------------------- row level


class TestBatchedRowContracts:
    def test_made_log_q_ratio_exact_per_row(self, tiny_ising, made9):
        B = 5
        configs = _configs(B, 9, seed=13)
        prop = MADEProposal(made9, composition="free")
        bmove = prop.propose_many(configs, tiny_ising, np.random.default_rng(7))
        for b in range(B):
            lq_old = made9.log_prob(one_hot(configs[b][None], 2))[0]
            lq_new = made9.log_prob(one_hot(bmove.new_values[b][None], 2))[0]
            assert bmove.log_q_ratios[b] == pytest.approx(lq_old - lq_new, abs=1e-10)

    def test_made_delta_energies_per_row(self, tiny_ising, made9):
        B = 4
        configs = _configs(B, 9, seed=14)
        prop = MADEProposal(made9, composition="free")
        bmove = prop.propose_many(configs, tiny_ising, np.random.default_rng(8))
        for b in range(B):
            applied = configs[b].copy()
            bmove.apply_row(b, applied)
            assert tiny_ising.energy(applied) - tiny_ising.energy(configs[b]) \
                == pytest.approx(bmove.delta_energies[b])

    def test_made_reject_rows_keep_composition(self, tiny_ising, made9):
        B = 6
        configs = np.stack([
            np.array([0, 0, 0, 0, 1, 1, 1, 1, 1], dtype=np.int8)
        ] * B)
        prop = MADEProposal(made9, composition="reject", max_reject_tries=64)
        bmove = prop.propose_many(configs, tiny_ising, np.random.default_rng(9))
        valid = np.ones(B, dtype=bool) if bmove.valid is None else bmove.valid
        assert valid.any()  # ~25% hit rate per try, 64 tries per row
        for b in np.nonzero(valid)[0]:
            assert np.array_equal(
                composition_counts(bmove.new_values[b], 2), [4, 5]
            )
        # Invalid rows are explicit no-ops: zero delta and ratio.
        for b in np.nonzero(~valid)[0]:
            assert bmove.delta_energies[b] == 0.0
            assert bmove.log_q_ratios[b] == 0.0
            assert np.array_equal(bmove.new_values[b], configs[b])

    def test_made_repair_rows_on_manifold(self, tiny_ising, made9):
        B = 5
        configs = np.stack([
            np.array([0, 0, 0, 0, 1, 1, 1, 1, 1], dtype=np.int8)
        ] * B)
        # tries=1 forces the repair fallback on most rows.
        prop = MADEProposal(made9, composition="repair", max_reject_tries=1)
        bmove = prop.propose_many(configs, tiny_ising, np.random.default_rng(10))
        assert bmove.valid is None
        for b in range(B):
            assert np.array_equal(
                composition_counts(bmove.new_values[b], 2), [4, 5]
            )

    def test_cmade_reverse_conditioning_per_row(self, tiny_ising, cmade9):
        """Each row's ratio uses q(x | c(x')) / q(x' | c(x)) exactly."""
        B = 4
        configs = _configs(B, 9, seed=15)
        conditioner = lambda config, energy: np.array([energy / 10.0])
        prop = ConditionalMADEProposal(cmade9, conditioner, composition="free")
        energies = tiny_ising.energies(configs)
        bmove = prop.propose_many(configs, tiny_ising, np.random.default_rng(11),
                                  current_energies=energies)
        for b in range(B):
            cand = bmove.new_values[b]
            cond_fwd = conditioner(configs[b], float(energies[b]))
            cond_rev = conditioner(cand, float(tiny_ising.energy(cand)))
            lq_new = cmade9.log_prob(one_hot(cand[None], 2), cond_fwd)[0]
            lq_old = cmade9.log_prob(one_hot(configs[b][None], 2), cond_rev)[0]
            assert bmove.log_q_ratios[b] == pytest.approx(lq_old - lq_new, abs=1e-10)

    def test_vae_batched_structure_and_composition(self, tiny_ising, vae9):
        B = 4
        configs = np.stack([
            np.array([0, 0, 0, 0, 1, 1, 1, 1, 1], dtype=np.int8)
        ] * B)
        prop = VAEProposal(vae9, n_marginal_samples=8, composition="repair")
        bmove = prop.propose_many(configs, tiny_ising, np.random.default_rng(12))
        assert bmove.new_values.shape == (B, 9)
        assert np.isfinite(bmove.log_q_ratios).all()
        for b in range(B):
            assert np.array_equal(
                composition_counts(bmove.new_values[b], 2), [4, 5]
            )
            applied = configs[b].copy()
            bmove.apply_row(b, applied)
            assert tiny_ising.energy(applied) - tiny_ising.energy(configs[b]) \
                == pytest.approx(bmove.delta_energies[b])


# -------------------------------------------------------------------- caching


class TestCurrentLogQCaching:
    def test_rejected_steps_hit_the_cache(self, tiny_ising, made9):
        configs = _configs(3, 9, seed=16)
        prop = MADEProposal(made9, composition="free")
        rng = np.random.default_rng(13)
        prop.propose_many(configs, tiny_ising, rng)
        misses_after_first = prop._logq_cache.misses
        assert misses_after_first >= 3
        # Unchanged configurations (all-rejected super-step): pure hits.
        prop.propose_many(configs, tiny_ising, rng)
        assert prop._logq_cache.misses == misses_after_first
        assert prop._logq_cache.hits >= 3

    def test_content_keys_rescore_only_changed_rows(self, tiny_ising, made9):
        configs = _configs(3, 9, seed=17)
        prop = MADEProposal(made9, composition="free")
        rng = np.random.default_rng(14)
        prop.propose_many(configs, tiny_ising, rng)
        # An accepted move (or a replica-exchange set_slot) rewrites row 1
        # behind the proposal's back; only that row misses.
        configs[1] = (configs[1] + 1) % 2
        before = prop._logq_cache.misses
        prop.propose_many(configs, tiny_ising, rng)
        assert prop._logq_cache.misses == before + 1

    def test_invalidate_reopens_every_row(self, tiny_ising, made9):
        configs = _configs(3, 9, seed=18)
        prop = MADEProposal(made9, composition="free")
        rng = np.random.default_rng(15)
        prop.propose_many(configs, tiny_ising, rng)
        prop.invalidate_cache()
        assert len(prop._logq_cache) == 0
        assert prop._logq_cache.version == 1
        before = prop._logq_cache.misses
        prop.propose_many(configs, tiny_ising, rng)
        assert prop._logq_cache.misses == before + 3

    def test_scalar_and_batched_share_one_cache(self, tiny_ising, made9):
        cfg = _configs(1, 9, seed=19)[0]
        prop = MADEProposal(made9, composition="free")
        rng = np.random.default_rng(16)
        prop.propose(cfg, tiny_ising, rng, current_energy=0.0)
        before = prop._logq_cache.misses
        prop.propose_many(cfg[None], tiny_ising, rng,
                          current_energies=np.zeros(1))
        assert prop._logq_cache.misses == before  # batched hit the scalar's entry


# ------------------------------------------------------------------- mixture


class TestMixtureBatched:
    def test_dispatch_groups_rows_by_component(self, tiny_ising, made9):
        B = 8
        configs = _configs(B, 9, seed=20)
        mix = MixtureProposal([
            (FlipProposal(), 0.5),
            (MADEProposal(made9, composition="free"), 0.5),
        ])
        bmove = mix.propose_many(configs, tiny_ising, np.random.default_rng(0),
                                 current_energies=tiny_ising.energies(configs))
        assert mix.counts.sum() == B
        assert (mix.counts > 0).all()  # both components drawn at this seed
        assert bmove.sites.shape == (B, 9)  # widened to the global component
        for b in range(B):
            applied = configs[b].copy()
            bmove.apply_row(b, applied)
            assert tiny_ising.energy(applied) - tiny_ising.energy(configs[b]) \
                == pytest.approx(bmove.delta_energies[b])

    def test_narrow_rows_use_first_pair_padding(self, tiny_ising, made9):
        B = 8
        configs = _configs(B, 9, seed=21)
        mix = MixtureProposal([
            (FlipProposal(), 0.5),
            (MADEProposal(made9, composition="free"), 0.5),
        ])
        bmove = mix.propose_many(configs, tiny_ising, np.random.default_rng(0))
        # Flip rows touch one site; their padded tail repeats that pair, so
        # applying the padded row changes at most one site.
        changed = (bmove.new_values != configs[np.arange(B)[:, None],
                                              bmove.sites]).any(axis=1)
        n_changed_sites = np.array([
            (configs[b] != _applied(bmove, b, configs)).sum() for b in range(B)
        ])
        assert (n_changed_sites[changed] >= 1).all()
        flip_rows = np.nonzero(n_changed_sites <= 1)[0]
        for b in flip_rows:
            assert len(np.unique(bmove.sites[b])) <= 2

    def test_invalidate_cache_forwards_to_components(self, made9):
        dl = MADEProposal(made9, composition="free")
        dl._logq_cache[b"x"] = 1.0
        mix = MixtureProposal([(FlipProposal(), 0.5), (dl, 0.5)])
        mix.invalidate_cache()
        assert not dl._logq_cache


def _applied(bmove, b, configs):
    out = configs[b].copy()
    bmove.apply_row(b, out)
    return out


# -------------------------------------------------- default packing (no DL)


class _WidthToggling(Proposal):
    """Test double: widths 1, 2, and None in a fixed cycle."""

    preserves_composition = False
    name = "toggle"

    def __init__(self):
        self._i = -1

    def propose(self, config, hamiltonian, rng, current_energy=None):
        self._i += 1
        if self._i % 3 == 2:
            return None
        width = 1 + self._i % 3
        sites = np.arange(width)
        return Move(sites=sites, new_values=(config[sites] + 1) % 2,
                    delta_energy=float(self._i), log_q_ratio=float(-self._i))


class TestDefaultProposeManyPacking:
    def test_single_pass_pads_and_flags(self, tiny_ising):
        configs = _configs(6, 9, seed=22)
        bmove = _WidthToggling().propose_many(
            configs, tiny_ising, np.random.default_rng(0)
        )
        # Cycle: rows 0,3 width 1; rows 1,4 width 2; rows 2,5 None.
        assert bmove.sites.shape == (6, 2)
        assert list(bmove.valid) == [True, True, False, True, True, False]
        for b in (0, 3):  # narrow rows: grown column back-filled with pad
            assert bmove.sites[b, 1] == bmove.sites[b, 0]
            assert bmove.new_values[b, 1] == bmove.new_values[b, 0]
        for b in (1, 4):
            assert list(bmove.sites[b]) == [0, 1]
        assert bmove.delta_energies[2] == 0.0 and bmove.log_q_ratios[2] == 0.0

    def test_padded_apply_is_idempotent(self, tiny_ising):
        configs = _configs(6, 9, seed=23)
        prop = _WidthToggling()
        bmove = prop.propose_many(configs, tiny_ising, np.random.default_rng(0))
        scalar = _WidthToggling()
        for b in range(6):
            move = scalar.propose(configs[b], tiny_ising, np.random.default_rng(0))
            if move is None:
                continue
            via_batch = _applied(bmove, b, configs)
            via_scalar = configs[b].copy()
            move.apply(via_scalar)
            assert np.array_equal(via_batch, via_scalar)


# ----------------------------------------------------- encoders / workspace


class TestBatchedEncoders:
    def test_one_hot_2d_matches_stacked_rows(self):
        configs = _configs(7, 9, seed=24, n_species=3)
        batched = one_hot(configs, 3)
        stacked = np.stack([one_hot(row, 3) for row in configs])
        assert np.array_equal(batched, stacked)

    def test_one_hot_rejects_3d(self):
        with pytest.raises(ValueError, match="batch"):
            one_hot(np.zeros((2, 2, 2), dtype=np.int8), 2)

    def test_encode_one_hot_matches_one_hot(self):
        configs = _configs(5, 9, seed=25, n_species=4)
        assert np.array_equal(encode_one_hot(configs, 4), one_hot(configs, 4))

    def test_encode_one_hot_reuses_workspace_buffer(self):
        ws = Workspace()
        configs = _configs(5, 9, seed=26)
        a = encode_one_hot(configs, 2, workspace=ws)
        b = encode_one_hot(configs, 2, workspace=ws)
        assert a is b  # pooled buffer, rewritten in place
        assert ws.n_buffers == 1

    def test_sample_one_hot_matches_per_row_encoding(self):
        buf = ReplayBuffer(capacity=32, n_sites=9, n_species=3)
        fill = np.random.default_rng(27)
        for _ in range(32):
            buf.add(fill.integers(0, 3, 9).astype(np.int8))
        drawn = buf.sample(8, np.random.default_rng(28))
        encoded = buf.sample_one_hot(8, np.random.default_rng(28))
        assert np.array_equal(encoded, np.stack([one_hot(r, 3) for r in drawn]))

    def test_composition_counts_rows_matches_scalar(self):
        pool = _configs(4, 9, seed=29, n_species=3).reshape(2, 2, 9)
        counts = composition_counts_rows(pool, 3)
        assert counts.shape == (2, 2, 3)
        for i in range(2):
            for j in range(2):
                assert np.array_equal(
                    counts[i, j], composition_counts(pool[i, j], 3)
                )

    def test_first_match_per_row(self):
        pool = np.array([
            [[0, 0, 1], [0, 1, 1], [1, 1, 0]],
            [[0, 0, 0], [0, 0, 1], [0, 1, 0]],
        ], dtype=np.int8)
        targets = np.array([[1, 2], [2, 1]])
        first, has = first_match_per_row(pool, targets)
        assert list(has) == [True, True]
        assert list(first) == [1, 1]
        none_target = np.array([[0, 3], [0, 3]])
        _, has_none = first_match_per_row(pool, none_target)
        assert list(has_none) == [False, False]


# --------------------------------------------------------- E1-style chain


class TestBatchedMADEChainExactness:
    def test_batched_wl_with_made_mixture_recovers_dos(self, tiny_ising, made9):
        """Batched WL whose mixture includes MADE reproduces the exact DoS.

        End-to-end validation of the whole batched path: ``propose_many``
        dispatch through the mixture, the MADE pool/scoring/caching, and the
        batched WL commit — any log_q bookkeeping error would bias ln g
        away from the 512-state enumeration.
        """
        grid = EnergyGrid.from_levels(tiny_ising.energy_levels())
        mix = MixtureProposal([
            (FlipProposal(), 0.85),
            (MADEProposal(made9, composition="free"), 0.15),
        ])
        wl = make_wang_landau(
            hamiltonian=tiny_ising, proposal=mix, grid=grid,
            initial_config=np.zeros(9, dtype=np.int8), rng=0,
            config=WLConfig(batch_size=4, ln_f_final=3e-4),
        )
        res = wl.run(max_steps=2_000_000)
        assert res.converged

        levels, degens = enumerate_density_of_states(tiny_ising)
        exact = {float(e): float(np.log(d)) for e, d in zip(levels, degens)}
        centers, mg = res.grid.centers, res.masked_ln_g()
        est, ex = [], []
        for k in np.nonzero(res.visited)[0]:
            e = float(centers[k])
            if e in exact:
                est.append(mg[k])
                ex.append(exact[e])
        est = np.array(est) - est[0]
        ex = np.array(ex) - ex[0]
        assert np.abs(est - ex).max() < 0.5
