"""Tests for the Hamiltonian hierarchy.

The central invariant — incremental ΔE equals full recompute for every move
type on every model — is property-tested; everything downstream (samplers,
REWL) silently corrupts if it drifts.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hamiltonians import (
    IsingHamiltonian,
    PairHamiltonian,
    PottsHamiltonian,
    enumerate_density_of_states,
    enumerate_energies,
    fixed_composition_configs,
)
from repro.lattice import random_configuration, square_lattice


def random_cfg(ham, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, ham.n_species, ham.n_sites).astype(np.int8)


@pytest.fixture(params=["ising", "potts", "hea"])
def any_ham(request, ising_4x4, potts3_4x4, hea_small):
    return {"ising": ising_4x4, "potts": potts3_4x4, "hea": hea_small}[request.param]


class TestIncrementalConsistency:
    @given(seed=st.integers(0, 10**6), moves=st.integers(1, 30))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_swap_delta_matches_recompute(self, any_ham, seed, moves):
        ham = any_ham
        rng = np.random.default_rng(seed)
        cfg = random_cfg(ham, seed)
        energy = ham.energy(cfg)
        for _ in range(moves):
            i, j = rng.integers(0, ham.n_sites, 2)
            delta = ham.delta_energy_swap(cfg, int(i), int(j))
            cfg[i], cfg[j] = cfg[j], cfg[i]
            energy += delta
        assert energy == pytest.approx(ham.energy(cfg), abs=1e-8)

    @given(seed=st.integers(0, 10**6), moves=st.integers(1, 30))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_flip_delta_matches_recompute(self, any_ham, seed, moves):
        ham = any_ham
        rng = np.random.default_rng(seed)
        cfg = random_cfg(ham, seed)
        energy = ham.energy(cfg)
        for _ in range(moves):
            site = int(rng.integers(ham.n_sites))
            new = int(rng.integers(ham.n_species))
            energy += ham.delta_energy_flip(cfg, site, new)
            cfg[site] = new
        assert energy == pytest.approx(ham.energy(cfg), abs=1e-8)

    def test_identity_swap_is_zero(self, any_ham):
        cfg = random_cfg(any_ham, 0)
        assert any_ham.delta_energy_swap(cfg, 3, 3) == 0.0

    def test_same_species_swap_is_zero(self, any_ham):
        cfg = np.zeros(any_ham.n_sites, dtype=np.int8)
        assert any_ham.delta_energy_swap(cfg, 0, 5) == 0.0

    def test_identity_flip_is_zero(self, any_ham):
        cfg = random_cfg(any_ham, 1)
        assert any_ham.delta_energy_flip(cfg, 2, int(cfg[2])) == 0.0

    def test_swap_is_two_flips(self, any_ham):
        """ΔE(swap i,j) equals sequential flips i→b then j→a."""
        ham = any_ham
        cfg = random_cfg(ham, 2)
        i, j = 0, ham.n_sites // 2
        a, b = int(cfg[i]), int(cfg[j])
        d_swap = ham.delta_energy_swap(cfg, i, j)
        d1 = ham.delta_energy_flip(cfg, i, b)
        cfg2 = cfg.copy()
        cfg2[i] = b
        d2 = ham.delta_energy_flip(cfg2, j, a)
        assert d_swap == pytest.approx(d1 + d2, abs=1e-9)

    def test_batch_swap_matches_scalar(self, any_ham):
        ham = any_ham
        rng = np.random.default_rng(3)
        cfg = random_cfg(ham, 3)
        ii = rng.integers(0, ham.n_sites, 40)
        jj = rng.integers(0, ham.n_sites, 40)
        batch = ham.delta_energy_swap_batch(cfg, ii, jj)
        for k in range(40):
            assert batch[k] == pytest.approx(
                ham.delta_energy_swap(cfg, int(ii[k]), int(jj[k])), abs=1e-9
            )

    def test_energies_matches_scalar(self, any_ham):
        ham = any_ham
        cfgs = np.stack([random_cfg(ham, s) for s in range(6)])
        batch = ham.energies(cfgs)
        for k in range(6):
            assert batch[k] == pytest.approx(ham.energy(cfgs[k]))

    def test_bounds_contain_samples(self, any_ham):
        ham = any_ham
        lo, hi = ham.energy_bounds()
        for s in range(10):
            e = ham.energy(random_cfg(ham, s))
            assert lo - 1e-9 <= e <= hi + 1e-9


class TestPairHamiltonianValidation:
    def test_asymmetric_matrix_rejected(self):
        with pytest.raises(ValueError):
            PairHamiltonian(square_lattice(4), [np.array([[0.0, 1.0], [2.0, 0.0]])])

    def test_empty_shells_rejected(self):
        with pytest.raises(ValueError):
            PairHamiltonian(square_lattice(4), [])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            PairHamiltonian(square_lattice(4), [np.zeros((2, 2)), np.zeros((3, 3))])

    def test_bad_field_shape_rejected(self):
        with pytest.raises(ValueError):
            PairHamiltonian(square_lattice(4), [np.zeros((2, 2))], field=[1.0])

    def test_validate_config(self, ising_4x4):
        with pytest.raises(ValueError):
            ising_4x4.validate_config(np.zeros(7, dtype=np.int8))
        with pytest.raises(ValueError):
            ising_4x4.validate_config(np.full(16, 2, dtype=np.int8))

    def test_bond_count(self, ising_4x4):
        assert ising_4x4.bond_count(0) == 32  # 2N bonds on the square torus


class TestIsing:
    def test_ground_state_energy(self, ising_4x4):
        gs = np.ones(16, dtype=np.int8)
        assert ising_4x4.energy(gs) == pytest.approx(-32.0)
        assert ising_4x4.energy(1 - gs) == pytest.approx(-32.0)

    def test_ground_state_helper(self, ising_4x4):
        assert ising_4x4.ground_state_energy() == pytest.approx(-32.0)

    def test_field_breaks_symmetry(self):
        ham = IsingHamiltonian(square_lattice(4), external_field=0.5)
        up = np.ones(16, dtype=np.int8)
        down = np.zeros(16, dtype=np.int8)
        assert ham.energy(up) < ham.energy(down)

    def test_magnetization(self, ising_4x4):
        cfg = np.array([1] * 10 + [0] * 6, dtype=np.int8)
        assert ising_4x4.magnetization(cfg) == pytest.approx(4.0)

    def test_energy_levels_spacing(self, ising_4x4):
        levels = ising_4x4.energy_levels()
        assert levels[0] == pytest.approx(-32.0)
        assert levels[-1] == pytest.approx(32.0)
        assert np.allclose(np.diff(levels), 2.0)

    def test_energy_levels_with_field_raises(self):
        ham = IsingHamiltonian(square_lattice(4), external_field=0.1)
        with pytest.raises(NotImplementedError):
            ham.energy_levels()

    def test_exact_dos_symmetry(self, ising_4x4):
        levels, degens = enumerate_density_of_states(ising_4x4)
        assert np.allclose(levels, -levels[::-1])
        assert np.array_equal(degens, degens[::-1])
        assert degens.sum() == 2**16
        assert degens[0] == 2  # two ground states


class TestPotts:
    def test_q2_matches_ising_up_to_constants(self, ising_4x4):
        """E_potts2 = E_ising/2 − n_bonds/2 for J_ising = J_potts = 1."""
        potts = PottsHamiltonian(square_lattice(4), q=2)
        rng = np.random.default_rng(0)
        for _ in range(5):
            cfg = rng.integers(0, 2, 16).astype(np.int8)
            expected = 0.5 * ising_4x4.energy(cfg) - 16.0
            assert potts.energy(cfg) == pytest.approx(expected)

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            PottsHamiltonian(square_lattice(4), q=1)

    def test_critical_temperature_value(self):
        potts = PottsHamiltonian(square_lattice(4), q=2)
        # q=2 Potts Tc = 1/ln(1+sqrt(2)) (Ising Tc/2 with this convention)
        assert potts.critical_temperature_square() == pytest.approx(1.1346, abs=1e-3)

    def test_order_parameter_range(self):
        potts = PottsHamiltonian(square_lattice(4), q=3)
        uniform = np.zeros(16, dtype=np.int8)
        assert potts.order_parameter(uniform) == pytest.approx(1.0)
        mixed = random_configuration(16, [6, 5, 5], rng=0)
        assert 0.0 <= potts.order_parameter(mixed) < 0.5


class TestEnumeration:
    def test_energy_count(self, ising_4x4):
        energies = enumerate_energies(ising_4x4)
        assert energies.shape == (2**16,)

    def test_too_large_raises(self, hea_small):
        with pytest.raises(ValueError):
            enumerate_energies(hea_small)  # 4^54 states

    def test_fixed_composition_count(self):
        configs = fixed_composition_configs([2, 2])
        assert configs.shape == (6, 4)  # C(4,2)
        assert len({tuple(c) for c in configs.tolist()}) == 6

    def test_fixed_composition_enumeration(self, ising_4x4):
        energies = enumerate_energies(ising_4x4, counts=[8, 8])
        from math import comb

        assert energies.shape == (comb(16, 8),)
