"""Tests for repro.obs.health: heartbeats, detectors, and the determinism
contract of a profiled + monitored REWL run."""

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultInjector
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.obs import EventLog, Instrumentation, MemorySink, Telemetry
from repro.obs.health import (
    ALERT_KIND,
    HEARTBEAT_KIND,
    HealthConfig,
    HealthMonitor,
    health_from_env,
    parse_health,
    team_flatness_ratio,
)
from repro.obs.profile import SectionProfiler
from repro.obs.report import render_report
from repro.parallel import REWLConfig, REWLDriver, SerialExecutor
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid


def _driver(telemetry=None, **kwargs):
    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    inst = Instrumentation(telemetry=telemetry, **{
        k: kwargs.pop(k)
        for k in ("profiler", "health", "convergence", "timeseries")
        if k in kwargs
    })
    return REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                   exchange_interval=200, ln_f_final=5e-2, seed=11),
        instrumentation=inst, **kwargs,
    )


def _memory_telemetry():
    sink = MemorySink()
    tel = Telemetry(events=EventLog(run_id="t", sinks=[sink]))
    return tel, sink


class _FakeWalker:
    def __init__(self, histogram, ln_f=0.5, n_iterations=0, n_steps=0):
        self.histogram = np.asarray(histogram, dtype=np.int64)
        self.visited = self.histogram > 0
        self.ln_f = ln_f
        self.n_iterations = n_iterations
        self.n_steps = n_steps


class _FakeDriver:
    """Minimal driver surface the monitor reads; nothing ever progresses."""

    def __init__(self, n_windows=2, pairs=1):
        self.rounds = 0
        self.walkers = [[_FakeWalker([5, 5, 5])] for _ in range(n_windows)]
        self.window_converged = [False] * n_windows
        self.exchange_attempts = np.zeros(pairs, dtype=np.int64)
        self.exchange_accepts = np.zeros(pairs, dtype=np.int64)


class TestConfigParsing:
    def test_defaults_validate(self):
        HealthConfig()

    @pytest.mark.parametrize("field,value", [
        ("heartbeat_rounds", 0), ("stall_heartbeats", 0),
        ("min_exchange_rate", 1.5), ("retry_alert", 0),
        ("flatness_epsilon", -1.0),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            HealthConfig(**{field: value})

    def test_parse_enabled_and_keys(self):
        assert parse_health("1") == HealthConfig()
        cfg = parse_health("rounds=20,stall=5,min_rate=0.02,retries=3")
        assert cfg.heartbeat_rounds == 20
        assert cfg.stall_heartbeats == 5
        assert cfg.min_exchange_rate == pytest.approx(0.02)
        assert cfg.retry_alert == 3

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="REPRO_HEALTH"):
            parse_health("bogus=1")

    def test_health_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEALTH", raising=False)
        assert health_from_env() is None
        monkeypatch.setenv("REPRO_HEALTH", "rounds=7")
        assert health_from_env().heartbeat_rounds == 7


class TestFlatnessRatio:
    def test_unvisited_team_is_zero(self):
        assert team_flatness_ratio([_FakeWalker([0, 0])]) == 0.0

    def test_flat_histogram_is_one(self):
        assert team_flatness_ratio([_FakeWalker([4, 4, 4])]) == pytest.approx(1.0)

    def test_worst_walker_wins(self):
        team = [_FakeWalker([4, 4]), _FakeWalker([1, 7])]
        assert team_flatness_ratio(team) == pytest.approx(1 / 4)

    def test_lone_walker_object_accepted(self):
        # A bare walker (not wrapped in a list) is treated as a 1-team.
        assert team_flatness_ratio(_FakeWalker([4, 4])) == pytest.approx(1.0)

    def test_batched_team_slot_arrays(self):
        # One BatchedWangLandauSampler-style object holding K walker slots
        # as 2-D (K, n_bins) arrays: the worst slot wins.
        batched = _FakeWalker([4, 4])
        batched.histogram = np.array([[4, 4], [1, 7]], dtype=np.int64)
        batched.visited = batched.histogram > 0
        assert team_flatness_ratio([batched]) == pytest.approx(1 / 4)

    def test_batched_team_on_real_sampler(self):
        from repro.hamiltonians import IsingHamiltonian as _Ham
        from repro.sampling import BatchedWangLandauSampler, WLConfig

        ham = _Ham(square_lattice(4))
        grid = EnergyGrid.from_levels(ham.energy_levels())
        team = BatchedWangLandauSampler(
            hamiltonian=ham, proposal=FlipProposal(), grid=grid,
            initial_config=np.zeros(16, dtype=np.int8), rng=2,
            config=WLConfig(batch_size=3))
        team.run(max_steps=400)
        ratio = team_flatness_ratio([team])
        assert 0.0 <= ratio <= 1.0
        # Matches the worst equivalent per-slot scalar computation.
        per_slot = []
        for hist, vis in zip(np.atleast_2d(team.histogram),
                             np.atleast_2d(team.visited)):
            counts = hist[vis]
            per_slot.append(counts.min() / counts.mean() if counts.size else 0.0)
        assert ratio == pytest.approx(min(per_slot))


class TestDetectors:
    def test_heartbeat_cadence_and_fields(self):
        tel, sink = _memory_telemetry()
        mon = HealthMonitor(tel, HealthConfig(heartbeat_rounds=2))
        fake = _FakeDriver()
        for r in range(1, 7):
            fake.rounds = r
            mon.observe_round(fake)
        beats = [r for r in sink.records if r["kind"] == HEARTBEAT_KIND]
        assert len(beats) == 3  # rounds 2, 4, 6
        hb = beats[-1]
        assert {w["window"] for w in hb["windows"]} == {0, 1}
        assert hb["pairs"][0]["pair"] == 0
        assert mon.heartbeats == 3

    def test_stall_fires_after_n_flat_heartbeats(self):
        tel, sink = _memory_telemetry()
        mon = HealthMonitor(
            tel, HealthConfig(heartbeat_rounds=1, stall_heartbeats=3))
        fake = _FakeDriver()
        for r in range(1, 6):
            fake.rounds = r
            mon.observe_round(fake)
        stalls = [a for a in mon.alerts if a["alert"] == "stall"]
        # Baseline beat + 3 stalled beats -> first alert at heartbeat 4,
        # repeated while the stall persists.
        assert stalls and stalls[0]["round"] == 4
        assert any(r["kind"] == ALERT_KIND for r in sink.records)

    def test_progress_resets_stall_streak(self):
        tel, _ = _memory_telemetry()
        mon = HealthMonitor(
            tel, HealthConfig(heartbeat_rounds=1, stall_heartbeats=2))
        fake = _FakeDriver()
        for r in range(1, 6):
            fake.rounds = r
            fake.walkers[0][0].n_iterations = r  # advances every beat
            mon.observe_round(fake)
        assert not mon.alerts

    def test_converged_run_never_stalls(self):
        tel, _ = _memory_telemetry()
        mon = HealthMonitor(
            tel, HealthConfig(heartbeat_rounds=1, stall_heartbeats=1))
        fake = _FakeDriver()
        fake.window_converged = [True, True]
        for r in range(1, 5):
            fake.rounds = r
            mon.observe_round(fake)
        assert not mon.alerts

    def test_exchange_collapse_needs_attempts_and_persistence(self):
        tel, _ = _memory_telemetry()
        mon = HealthMonitor(tel, HealthConfig(
            heartbeat_rounds=1, stall_heartbeats=2,
            min_exchange_rate=0.05, min_exchange_attempts=4))
        fake = _FakeDriver()
        for r in range(1, 4):
            fake.rounds = r
            fake.walkers[0][0].n_iterations = r  # keep the stall detector quiet
            fake.exchange_attempts += 10        # attempts grow, accepts do not
            mon.observe_round(fake)
        collapses = [a for a in mon.alerts if a["alert"] == "exchange_collapse"]
        assert collapses and collapses[0]["pair"] == 0

    def test_retry_burst(self):
        tel, _ = _memory_telemetry()
        mon = HealthMonitor(
            tel, HealthConfig(heartbeat_rounds=1, retry_alert=2))
        fake = _FakeDriver()
        fake.rounds = 1
        tel.metrics.inc("task.retries", 3)
        mon.observe_round(fake)
        bursts = [a for a in mon.alerts if a["alert"] == "retry_burst"]
        assert bursts and bursts[0]["retries"] == 3
        # Delta resets: no new retries -> no new alert.
        fake.rounds = 2
        fake.walkers[0][0].n_iterations = 1
        mon.observe_round(fake)
        assert len([a for a in mon.alerts if a["alert"] == "retry_burst"]) == 1

    def test_heartbeat_interval_uses_monotonic_clock(self, monkeypatch):
        """Interval/throughput math reads time.monotonic, never time.time:
        a wall-clock jump between heartbeats must not distort them."""
        import time as time_mod

        mono = iter([100.0, 102.0])
        monkeypatch.setattr(time_mod, "monotonic", lambda: next(mono))
        # Wall clock jumps a day backwards between the two heartbeats (NTP
        # step); reading it would give a negative interval.
        wall = iter([1e9, 1e9 - 86400.0] + [1e9] * 50)
        monkeypatch.setattr(time_mod, "time", lambda: next(wall))
        tel, sink = _memory_telemetry()
        mon = HealthMonitor(tel, HealthConfig(heartbeat_rounds=1))
        fake = _FakeDriver()
        fake.rounds = 1
        mon.observe_round(fake)
        fake.rounds = 2
        fake.walkers[0][0].n_steps = 500
        fake.walkers[0][0].n_iterations = 1
        mon.observe_round(fake)
        beats = [r for r in sink.records if r["kind"] == HEARTBEAT_KIND]
        assert beats[0]["interval_s"] is None  # no baseline yet
        assert beats[1]["interval_s"] == pytest.approx(2.0)
        assert beats[1]["steps_per_s"] == pytest.approx(500 / 2.0)
        # The envelope ts *is* wall time (log correlation), jump and all.
        assert beats[0]["ts"] == 1e9
        assert beats[1]["ts"] == 1e9 - 86400.0

    def test_summary_is_json_ready(self):
        import json

        tel, _ = _memory_telemetry()
        mon = HealthMonitor(tel, HealthConfig(heartbeat_rounds=1))
        fake = _FakeDriver()
        fake.rounds = 1
        mon.observe_round(fake)
        json.dumps(mon.summary())


class TestMonitoredRewl:
    def test_monitored_run_records_heartbeats(self):
        tel, sink = _memory_telemetry()
        driver = _driver(telemetry=tel,
                         health=HealthConfig(heartbeat_rounds=2))
        res = driver.run(max_rounds=40)
        assert res.telemetry["health"]["heartbeats"] >= 1
        assert any(r["kind"] == HEARTBEAT_KIND for r in sink.records)

    def test_profiled_monitored_run_is_bit_identical(self):
        """Acceptance: profiling + health monitoring leave the DoS, the
        histograms, and every walker RNG stream bit-for-bit unchanged."""
        plain = _driver()
        plain_res = plain.run(max_rounds=60)

        tel, _ = _memory_telemetry()
        inst = _driver(telemetry=tel,
                       profiler=SectionProfiler(sample_every=4),
                       health=HealthConfig(heartbeat_rounds=3))
        inst_res = inst.run(max_rounds=60)

        assert inst_res.rounds == plain_res.rounds
        assert inst_res.total_steps == plain_res.total_steps
        for a, b in zip(inst_res.window_ln_g, plain_res.window_ln_g):
            assert np.array_equal(a, b)
        for team_a, team_b in zip(inst.walkers, plain.walkers):
            for wa, wb in zip(team_a, team_b):
                assert np.array_equal(wa.histogram, wb.histogram)
                assert np.array_equal(wa.ln_g, wb.ln_g)
                assert (wa.rng.generator.bit_generator.state
                        == wb.rng.generator.bit_generator.state)
        # And the instrumented run actually measured something.
        profile = inst_res.telemetry["profile"]
        assert profile["proposal.flip"]["calls"] > 0
        assert inst_res.telemetry["health"]["heartbeats"] > 0

    def test_injected_hang_raises_health_alert_in_trace_and_report(self):
        """Acceptance: a run with injected hangs from repro.faults surfaces
        a health alert, visible in the trace and the obs report digest."""
        tel, sink = _memory_telemetry()
        injector = FaultInjector(
            FaultConfig(hang=0.4, hang_s=0.0, seed=5))
        executor = SerialExecutor(faults=injector, retry_backoff=0.0)
        driver = _driver(
            telemetry=tel, executor=executor,
            health=HealthConfig(heartbeat_rounds=1, retry_alert=1))
        res = driver.run(max_rounds=30)

        alerts = res.telemetry["health"]["alerts"]
        assert any(a["alert"] == "retry_burst" for a in alerts)
        assert any(r["kind"] == ALERT_KIND for r in sink.records)

        report = render_report(sink.records)
        assert "run health:" in report
        assert "retry_burst" in report
