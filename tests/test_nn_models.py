"""Tests for the VAE and MADE proposal models."""

import itertools

import numpy as np
import pytest

from repro.lattice import one_hot
from repro.nn import (
    MADE,
    Adam,
    CategoricalVAE,
    MADEConfig,
    VAEConfig,
    categorical_cross_entropy_from_logits,
    gaussian_kl_divergence,
    mse_loss,
)


def all_one_hot(n_sites, n_species):
    xs = np.array(list(itertools.product(range(n_species), repeat=n_sites)), dtype=np.int8)
    return xs, np.stack([one_hot(x, n_species) for x in xs])


class TestLosses:
    def test_mse_value_and_grad(self):
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        loss, grad = mse_loss(pred, target)
        assert loss == pytest.approx(2.5)
        assert np.allclose(grad, [[1.0, 2.0]])

    def test_cross_entropy_uniform_logits(self):
        logits = np.zeros((2, 3, 4))
        targets = np.zeros_like(logits)
        targets[:, :, 0] = 1.0
        loss, grad = categorical_cross_entropy_from_logits(logits, targets)
        assert loss == pytest.approx(3 * np.log(4.0))
        assert grad.shape == logits.shape

    def test_cross_entropy_grad_finite_difference(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(2, 3))
        targets = np.zeros((2, 3))
        targets[0, 1] = targets[1, 2] = 1.0
        _, grad = categorical_cross_entropy_from_logits(logits, targets)
        eps = 1e-6
        for idx in np.ndindex(logits.shape):
            up = logits.copy(); up[idx] += eps
            dn = logits.copy(); dn[idx] -= eps
            lu, _ = categorical_cross_entropy_from_logits(up, targets)
            ld, _ = categorical_cross_entropy_from_logits(dn, targets)
            assert grad[idx] == pytest.approx((lu - ld) / (2 * eps), abs=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            categorical_cross_entropy_from_logits(np.zeros((1, 2)), np.zeros((1, 3)))

    def test_kl_zero_at_standard_normal(self):
        mu = np.zeros((3, 4))
        logvar = np.zeros((3, 4))
        kl, gmu, glv = gaussian_kl_divergence(mu, logvar)
        assert kl == pytest.approx(0.0)
        assert np.allclose(gmu, 0.0) and np.allclose(glv, 0.0)

    def test_kl_grad_finite_difference(self):
        rng = np.random.default_rng(1)
        mu = rng.normal(size=(2, 3))
        logvar = rng.normal(size=(2, 3)) * 0.5
        _, gmu, glv = gaussian_kl_divergence(mu, logvar)
        eps = 1e-6
        for idx in np.ndindex(mu.shape):
            up = mu.copy(); up[idx] += eps
            dn = mu.copy(); dn[idx] -= eps
            assert gmu[idx] == pytest.approx(
                (gaussian_kl_divergence(up, logvar)[0] - gaussian_kl_divergence(dn, logvar)[0]) / (2 * eps),
                abs=1e-6,
            )
            up = logvar.copy(); up[idx] += eps
            dn = logvar.copy(); dn[idx] -= eps
            assert glv[idx] == pytest.approx(
                (gaussian_kl_divergence(mu, up)[0] - gaussian_kl_divergence(mu, dn)[0]) / (2 * eps),
                abs=1e-6,
            )


class TestVAEConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            VAEConfig(n_sites=0, n_species=2)
        with pytest.raises(ValueError):
            VAEConfig(n_sites=4, n_species=1)
        with pytest.raises(ValueError):
            VAEConfig(n_sites=4, n_species=2, latent_dim=0)
        with pytest.raises(ValueError):
            VAEConfig(n_sites=4, n_species=2, hidden=())
        with pytest.raises(ValueError):
            VAEConfig(n_sites=4, n_species=2, beta=-1.0)

    def test_input_dim(self):
        assert VAEConfig(n_sites=5, n_species=3).input_dim == 15


class TestVAE:
    @pytest.fixture
    def vae(self):
        return CategoricalVAE(
            VAEConfig(n_sites=8, n_species=3, latent_dim=3, hidden=(24,)), rng=0
        )

    def test_encode_shapes(self, vae):
        x = np.zeros((5, 8, 3))
        x[:, :, 0] = 1.0
        mu, logvar = vae.encode(x)
        assert mu.shape == (5, 3) and logvar.shape == (5, 3)

    def test_decode_shapes(self, vae):
        logits = vae.decode_logits(np.zeros((4, 3)))
        assert logits.shape == (4, 8, 3)

    def test_bad_input_shape_raises(self, vae):
        with pytest.raises(ValueError):
            vae.encode(np.zeros((5, 8, 4)))

    def test_sample_shapes_and_range(self, vae):
        rng = np.random.default_rng(0)
        configs, logp = vae.sample(10, rng, return_log_conditional=True)
        assert configs.shape == (10, 8)
        assert configs.min() >= 0 and configs.max() < 3
        assert np.all(logp <= 0.0 + 1e-12)

    def test_training_reduces_loss(self, vae):
        rng = np.random.default_rng(1)
        data = np.stack([one_hot(np.array([0, 1, 2, 0, 1, 2, 0, 1], dtype=np.int8), 3)] * 32)
        opt = Adam(vae.parameters(), lr=5e-3)
        first = vae.train_step(data, opt, rng)["loss"]
        for _ in range(150):
            last = vae.train_step(data, opt, rng)["loss"]
        assert last < first * 0.3

    def test_log_conditional_is_log_prob(self, vae):
        """Σ_x p(x|z) over all configurations must equal 1."""
        _, oh = all_one_hot(3, 2)
        small = CategoricalVAE(VAEConfig(n_sites=3, n_species=2, latent_dim=2, hidden=(8,)), rng=2)
        z = np.random.default_rng(0).normal(size=(1, 2))
        logps = [small.log_conditional(x[None], z)[0] for x in oh]
        assert np.exp(logps).sum() == pytest.approx(1.0, abs=1e-10)

    def test_log_marginal_normalized_small(self):
        """IWAE estimates of log q(x) over ALL x must sum to ~1 in prob."""
        small = CategoricalVAE(VAEConfig(n_sites=3, n_species=2, latent_dim=2, hidden=(8,)), rng=3)
        _, oh = all_one_hot(3, 2)
        rng = np.random.default_rng(4)
        lm = small.log_marginal(oh, n_samples=512, rng=rng, use_encoder=False)
        assert np.exp(lm).sum() == pytest.approx(1.0, abs=0.05)

    def test_log_marginal_encoder_vs_prior(self):
        """Encoder-IS and prior-IS estimates must agree on a trained model."""
        small = CategoricalVAE(VAEConfig(n_sites=4, n_species=2, latent_dim=2, hidden=(16,)), rng=5)
        rng = np.random.default_rng(6)
        data = np.stack([one_hot(np.array([0, 1, 0, 1], dtype=np.int8), 2)] * 16)
        opt = Adam(small.parameters(), lr=5e-3)
        for _ in range(200):
            small.train_step(data, opt, rng)
        x = data[:1]
        enc = small.log_marginal(x, n_samples=2048, rng=rng, use_encoder=True)[0]
        pri = small.log_marginal(x, n_samples=8192, rng=rng, use_encoder=False)[0]
        assert enc == pytest.approx(pri, abs=0.2)


class TestMADE:
    @pytest.fixture
    def made(self):
        return MADE(MADEConfig(n_sites=4, n_species=3, hidden=(32,)), rng=0)

    def test_exact_normalization(self, made):
        _, oh = all_one_hot(4, 3)
        total = np.exp(made.log_prob(oh)).sum()
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_normalization_survives_training(self, made):
        rng = np.random.default_rng(0)
        data = np.stack([one_hot(np.array([0, 1, 2, 0], dtype=np.int8), 3)] * 16)
        opt = Adam(made.parameters(), lr=1e-2)
        for _ in range(50):
            made.train_step(data, opt)
        _, oh = all_one_hot(4, 3)
        assert np.exp(made.log_prob(oh)).sum() == pytest.approx(1.0, abs=1e-9)

    def test_autoregressive_property(self, made):
        """logits at site i must not depend on sites j >= i."""
        rng = np.random.default_rng(1)
        base = one_hot(np.array([0, 1, 2, 0], dtype=np.int8), 3)
        l0 = made.logits(base[None])[0]
        for j in range(4):
            pert = base.copy()
            pert[j] = np.roll(pert[j], 1)
            l1 = made.logits(pert[None])[0]
            for i in range(j + 1):
                assert np.allclose(l0[i], l1[i]), f"site {i} depends on site {j}"

    def test_sample_log_prob_consistency(self, made):
        rng = np.random.default_rng(2)
        configs, logp = made.sample(20, rng, return_log_prob=True)
        oh = np.stack([one_hot(c, 3) for c in configs])
        assert np.allclose(made.log_prob(oh), logp, atol=1e-10)

    def test_training_learns_peaked_distribution(self, made):
        rng = np.random.default_rng(3)
        target = np.array([2, 0, 1, 2], dtype=np.int8)
        data = np.stack([one_hot(target, 3)] * 32)
        opt = Adam(made.parameters(), lr=1e-2)
        for _ in range(300):
            made.train_step(data, opt)
        lp = made.log_prob(one_hot(target, 3)[None])[0]
        assert np.exp(lp) > 0.9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MADEConfig(n_sites=0, n_species=2)
        with pytest.raises(ValueError):
            MADEConfig(n_sites=4, n_species=2, hidden=())

    def test_single_site_model(self):
        """n_sites=1: the model is a learned marginal (pure bias)."""
        made = MADE(MADEConfig(n_sites=1, n_species=4, hidden=(8,)), rng=4)
        _, oh = all_one_hot(1, 4)
        assert np.exp(made.log_prob(oh)).sum() == pytest.approx(1.0, abs=1e-10)
