"""Tests for repro.obs.events: envelope schema, sinks, env wiring."""

import io
import json

import numpy as np
import pytest

from repro.obs.events import (
    SCHEMA_VERSION,
    TRACE_ENV_VAR,
    ConsoleSink,
    EventLog,
    JsonlSink,
    MemorySink,
    NullSink,
    from_env,
)


class TestEnvelope:
    def test_envelope_keys_and_sequence(self):
        sink = MemorySink()
        log = EventLog(run_id="r1", sinks=[sink])
        log.emit("alpha", x=1)
        log.emit("beta", y=2)
        for i, record in enumerate(sink.records):
            assert record["v"] == SCHEMA_VERSION
            assert record["run"] == "r1"
            assert record["seq"] == i
            assert isinstance(record["ts"], float)
        assert [r["kind"] for r in sink.records] == ["alpha", "beta"]
        assert sink.records[0]["x"] == 1

    def test_default_run_id_generated(self):
        log = EventLog(sinks=[MemorySink()])
        assert log.run_id.startswith("run-")


class TestNullSink:
    def test_disabled_log_skips_everything(self):
        log = EventLog(run_id="r", sinks=[NullSink()])
        assert not log.enabled
        log.emit("anything", huge_payload=object())  # never serialized
        assert log._seq == 0  # emit bailed before building the record

    def test_empty_sinks_disabled(self):
        assert not EventLog(run_id="r").enabled


class TestJsonlSink:
    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "trace" / "run.jsonl"
        with EventLog(run_id="rt", sinks=[JsonlSink(path)]) as log:
            log.emit("span", name="advance", dur_s=0.5)
            log.emit("sync", ln_f=np.float64(0.25), hist=np.array([1, 2]))
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["kind"] for r in records] == ["span", "sync"]
        assert records[0]["name"] == "advance"
        # numpy scalars/arrays serialize to plain JSON values
        assert records[1]["ln_f"] == 0.25
        assert records[1]["hist"] == [1, 2]

    def test_append_mode(self, tmp_path):
        path = tmp_path / "run.jsonl"
        for kind in ("first", "second"):
            with EventLog(run_id="a", sinks=[JsonlSink(path)]) as log:
                log.emit(kind)
        kinds = [json.loads(l)["kind"] for l in path.read_text().splitlines()]
        assert kinds == ["first", "second"]

    def test_stream_not_closed_when_unowned(self):
        buf = io.StringIO()
        log = EventLog(run_id="s", sinks=[JsonlSink(buf)])
        log.emit("x")
        log.close()
        assert not buf.closed
        assert json.loads(buf.getvalue())["kind"] == "x"

    def test_nonfinite_floats_serializable(self):
        import math

        buf = io.StringIO()
        log = EventLog(run_id="s", sinks=[JsonlSink(buf)])
        log.emit("x", rate=float("nan"))
        rate = json.loads(buf.getvalue())["rate"]
        assert rate == "nan" or (isinstance(rate, float) and math.isnan(rate))


class TestConsoleSink:
    def test_renders_kind_and_fields(self):
        buf = io.StringIO()
        log = EventLog(run_id="E7", sinks=[ConsoleSink(buf)])
        log.emit("experiment_start", mode="quick", seed=0)
        line = buf.getvalue().strip()
        assert line.startswith("[E7:experiment_start]")
        assert "mode=quick" in line and "seed=0" in line
        # envelope noise stays hidden
        assert "ts=" not in line and "seq=" not in line


class TestFromEnv:
    def test_unset_disabled(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        assert not from_env(run_id="r").enabled

    def test_stderr_console(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "stderr")
        log = from_env(run_id="r")
        assert log.enabled
        assert any(isinstance(s, ConsoleSink) for s in log.sinks)

    def test_path_jsonl(self, monkeypatch, tmp_path):
        path = tmp_path / "t.jsonl"
        monkeypatch.setenv(TRACE_ENV_VAR, str(path))
        with from_env(run_id="r") as log:
            assert log.enabled
            log.emit("hello")
        assert json.loads(path.read_text())["kind"] == "hello"

    def test_extra_sinks_survive_unset_env(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        sink = MemorySink()
        log = from_env(run_id="r", extra_sinks=[sink])
        assert log.enabled
        log.emit("kept")
        assert sink.records[0]["kind"] == "kept"
