"""Tests for repro.obs.dash: the status board and the trace tail."""

import json

from repro.obs.dash import (
    main_dash,
    main_tail,
    render_dash,
    render_record_line,
)

_HEARTBEAT = {
    "v": 1, "run": "r1", "seq": 3, "ts": 100.0, "kind": "heartbeat",
    "round": 10, "steps": 4000, "retries": 0, "converged_windows": 1,
    "windows": [
        {"window": 0, "ln_f": 0.25, "iteration": 2, "flatness": 0.91,
         "converged": True},
        {"window": 1, "ln_f": 0.5, "iteration": 1, "flatness": 0.55,
         "converged": False},
    ],
    "pairs": [{"pair": 0, "attempts": 8, "accepts": 2, "rate": 0.25}],
}

_ALERT = {
    "v": 1, "run": "r1", "seq": 4, "ts": 101.0, "kind": "health_alert",
    "alert": "stall", "round": 30, "detail": "no histogram progress",
}


def _write_trace(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


class TestRenderDash:
    def test_empty_records(self):
        assert "empty trace" in render_dash([])

    def test_board_shows_windows_pairs_and_alerts(self):
        board = render_dash([_HEARTBEAT, _ALERT], now=105.0)
        assert "run r1" in board and "4.0s ago" in board
        assert "windows (latest heartbeat)" in board
        assert "0.91" in board and "25.0%" in board
        assert "ALERTS" in board and "no histogram progress" in board

    def test_no_heartbeats_hint(self):
        board = render_dash([{"run": "r1", "ts": 1.0, "kind": "span"}])
        assert "REPRO_HEALTH" in board
        assert "no health alerts" in board

    def test_picks_newest_run_by_default(self):
        older = dict(_HEARTBEAT, run="old", ts=50.0)
        board = render_dash([older, _HEARTBEAT])
        assert "run r1" in board and "run old" not in board

    def test_monitored_run_beats_newer_wrapper_run(self):
        # A harness wrapper's summary event lands last, but the board should
        # default to the run that actually emitted heartbeats.
        wrapper = {"run": "run_all", "ts": 200.0, "kind": "summary"}
        board = render_dash([_HEARTBEAT, wrapper])
        assert "run r1" in board
        assert "windows (latest heartbeat)" in board


class TestRecordLine:
    def test_envelope_is_hidden(self):
        line = render_record_line(_ALERT)
        assert line.startswith("[r1:health_alert]")
        assert "alert=stall" in line
        assert "seq=" not in line and "ts=" not in line


class TestMainDash:
    def test_missing_file(self, tmp_path, capsys):
        assert main_dash([str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace" in capsys.readouterr().err

    def test_single_render(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, [_HEARTBEAT, _ALERT])
        assert main_dash([str(trace)]) == 0
        assert "windows (latest heartbeat)" in capsys.readouterr().out

    def test_watch_bounded_iterations(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, [_HEARTBEAT])
        assert main_dash([str(trace), "--watch", "0.01",
                          "--iterations", "2"]) == 0
        assert capsys.readouterr().out.count("run r1") == 2


class TestMainTail:
    def test_missing_file(self, tmp_path, capsys):
        assert main_tail([str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace" in capsys.readouterr().err

    def test_prints_trailing_lines_and_skips_garbage(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        trace.write_text(
            "not json at all\n"
            + json.dumps(_HEARTBEAT) + "\n"
            + json.dumps(_ALERT) + "\n"
        )
        assert main_tail([str(trace), "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "[r1:health_alert]" in out
        assert "[r1:heartbeat]" not in out  # trimmed by -n 1

    def test_follow_picks_up_appended_records(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, [_HEARTBEAT])
        with trace.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(_ALERT) + "\n")
        # One bounded poll: the pre-existing record prints first, then the
        # appended one is consumed from the follow position.
        assert main_tail([str(trace), "-n", "0", "--follow",
                          "--interval", "0.01", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "[r1:heartbeat]" in out
