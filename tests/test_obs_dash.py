"""Tests for repro.obs.dash: the status board and the trace tail."""

import json

from repro.obs.dash import (
    main_dash,
    main_tail,
    render_dash,
    render_record_line,
)
from repro.obs.events import JsonlFollower

_HEARTBEAT = {
    "v": 1, "run": "r1", "seq": 3, "ts": 100.0, "kind": "heartbeat",
    "round": 10, "steps": 4000, "retries": 0, "converged_windows": 1,
    "windows": [
        {"window": 0, "ln_f": 0.25, "iteration": 2, "flatness": 0.91,
         "converged": True},
        {"window": 1, "ln_f": 0.5, "iteration": 1, "flatness": 0.55,
         "converged": False},
    ],
    "pairs": [{"pair": 0, "attempts": 8, "accepts": 2, "rate": 0.25}],
}

_ALERT = {
    "v": 1, "run": "r1", "seq": 4, "ts": 101.0, "kind": "health_alert",
    "alert": "stall", "round": 30, "detail": "no histogram progress",
}


def _write_trace(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


class TestRenderDash:
    def test_empty_records(self):
        assert "empty trace" in render_dash([])

    def test_board_shows_windows_pairs_and_alerts(self):
        board = render_dash([_HEARTBEAT, _ALERT], now=105.0)
        assert "run r1" in board and "4.0s ago" in board
        assert "windows (latest heartbeat)" in board
        assert "0.91" in board and "25.0%" in board
        assert "ALERTS" in board and "no histogram progress" in board

    def test_no_heartbeats_hint(self):
        board = render_dash([{"run": "r1", "ts": 1.0, "kind": "span"}])
        assert "REPRO_HEALTH" in board
        assert "no health alerts" in board

    def test_picks_newest_run_by_default(self):
        older = dict(_HEARTBEAT, run="old", ts=50.0)
        board = render_dash([older, _HEARTBEAT])
        assert "run r1" in board and "run old" not in board

    def test_monitored_run_beats_newer_wrapper_run(self):
        # A harness wrapper's summary event lands last, but the board should
        # default to the run that actually emitted heartbeats.
        wrapper = {"run": "run_all", "ts": 200.0, "kind": "summary"}
        board = render_dash([_HEARTBEAT, wrapper])
        assert "run r1" in board
        assert "windows (latest heartbeat)" in board


class TestRecordLine:
    def test_envelope_is_hidden(self):
        line = render_record_line(_ALERT)
        assert line.startswith("[r1:health_alert]")
        assert "alert=stall" in line
        assert "seq=" not in line and "ts=" not in line


class TestJsonlFollower:
    """Incremental tailing: byte offsets, partial lines, truncation."""

    def test_incremental_polls_return_only_new_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path, [_HEARTBEAT])
        follower = JsonlFollower(path)
        assert [r["kind"] for r in follower.poll()] == ["heartbeat"]
        assert follower.poll() == []  # nothing new
        with path.open("a") as fh:
            fh.write(json.dumps(_ALERT) + "\n")
        assert [r["kind"] for r in follower.poll()] == ["health_alert"]

    def test_partial_trailing_line_left_for_next_poll(self, tmp_path):
        path = tmp_path / "t.jsonl"
        full = json.dumps(_HEARTBEAT) + "\n"
        partial = json.dumps(_ALERT)  # no newline: writer mid-record
        path.write_text(full + partial[:10])
        follower = JsonlFollower(path)
        assert len(follower.poll()) == 1
        with path.open("a") as fh:
            fh.write(partial[10:] + "\n")
        assert [r["kind"] for r in follower.poll()] == ["health_alert"]

    def test_truncation_detected_and_reset(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path, [_HEARTBEAT, _ALERT])
        follower = JsonlFollower(path)
        assert len(follower.poll()) == 2
        _write_trace(path, [_ALERT])  # rotated: shorter than the offset
        assert follower.truncations == 0
        records = follower.poll()
        assert follower.truncations == 1
        assert [r["kind"] for r in records] == ["health_alert"]

    def test_missing_file_yields_nothing(self, tmp_path):
        follower = JsonlFollower(tmp_path / "never.jsonl")
        assert follower.poll() == []
        assert follower.truncations == 0

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("{bad json\n" + json.dumps(_ALERT) + "\n[1,2]\n")
        records = JsonlFollower(path).poll()
        assert [r["kind"] for r in records] == ["health_alert"]


class TestCostLine:
    def test_dash_shows_cost_attribution(self):
        cost = {
            "v": 1, "run": "r1", "seq": 9, "ts": 102.0, "kind": "cost",
            "total_s": 2.0,
            "phases": {
                "propose": {"seconds": 1.5, "share": 0.75, "sections": {}},
                "sync": {"seconds": 0.5, "share": 0.25, "sections": {}},
            },
        }
        board = render_dash([_HEARTBEAT, cost])
        assert "cost attribution:" in board
        assert "propose 75%" in board


class TestMainDash:
    def test_missing_file(self, tmp_path, capsys):
        assert main_dash([str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace" in capsys.readouterr().err

    def test_single_render(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, [_HEARTBEAT, _ALERT])
        assert main_dash([str(trace)]) == 0
        assert "windows (latest heartbeat)" in capsys.readouterr().out

    def test_watch_bounded_iterations(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, [_HEARTBEAT])
        assert main_dash([str(trace), "--watch", "0.01",
                          "--iterations", "2"]) == 0
        assert capsys.readouterr().out.count("run r1") == 2


class TestMainTail:
    def test_missing_file(self, tmp_path, capsys):
        assert main_tail([str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace" in capsys.readouterr().err

    def test_prints_trailing_lines_and_skips_garbage(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        trace.write_text(
            "not json at all\n"
            + json.dumps(_HEARTBEAT) + "\n"
            + json.dumps(_ALERT) + "\n"
        )
        assert main_tail([str(trace), "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "[r1:health_alert]" in out
        assert "[r1:heartbeat]" not in out  # trimmed by -n 1

    def test_follow_picks_up_appended_records(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, [_HEARTBEAT])
        with trace.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(_ALERT) + "\n")
        # One bounded poll: the pre-existing record prints first, then the
        # appended one is consumed from the follow position.
        assert main_tail([str(trace), "-n", "0", "--follow",
                          "--interval", "0.01", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "[r1:heartbeat]" in out


def _nest(record):
    """The same record with its payload nested under a "fields" key."""
    envelope = {k: record[k] for k in ("v", "run", "seq", "ts", "kind")}
    payload = {k: v for k, v in record.items() if k not in envelope}
    return {**envelope, "fields": payload}


class TestNestedFieldsRegression:
    """Records that nest their payload under "fields" must render with real
    values, not '?' fallbacks (regression: dash/report only read flat keys)."""

    def test_dash_reads_nested_heartbeat_and_alert(self):
        board = render_dash([_nest(_HEARTBEAT), _nest(_ALERT)], now=105.0)
        assert "round 10" in board and "round ?" not in board
        assert "4,000 steps" in board
        assert "windows (latest heartbeat)" in board
        assert "[stall] round 30: no histogram progress" in board
        assert "?" not in board.replace("run r1", "")

    def test_dash_eta_line_from_heartbeat(self):
        hb = dict(_HEARTBEAT)
        hb["eta"] = {"rounds": 12.0, "seconds": 34.0, "windows": [
            {"window": 1, "ln_f": 0.5, "halvings_left": 2, "eta_rounds": 12.0},
        ]}
        board = render_dash([_nest(hb)], now=105.0)
        assert "ETA to convergence: 12.0 round(s), ~34s" in board

    def test_record_line_flattens_nested_fields(self):
        line = render_record_line(_nest(_ALERT))
        assert "alert=stall" in line
        assert "fields=" not in line

    def test_report_reads_nested_alerts(self):
        from repro.obs.report import render_report

        report = render_report([_nest(_HEARTBEAT), _nest(_ALERT)])
        assert "[stall] round 30: no histogram progress" in report
        assert "stall=1" in report

    def test_report_convergence_table(self):
        from repro.obs.report import render_report

        summary = {
            "v": 1, "run": "r1", "seq": 9, "ts": 102.0, "kind": "convergence",
            "n_windows": 2, "walkers_per_window": 2, "samples": 5,
            "tunnels": 3, "round_trips": 1,
            "pair_attempts": [8], "pair_accepts": [2],
            "acceptance_matrix": [[None, 0.25], [0.25, None]],
            "windows": [
                {"window": 0, "syncs": 2, "ln_f": [1.0, 0.5],
                 "flatness": [0.4, 0.9], "fill": 1.0, "ln_g_drift": 0.01},
                {"window": 1, "syncs": 1, "ln_f": [1.0],
                 "flatness": [0.55], "fill": 0.8, "ln_g_drift": None},
            ],
            "eta": {"rounds": 40.0, "seconds": 20.0, "windows": [
                {"window": 1, "ln_f": 1.0, "halvings_left": 3,
                 "eta_rounds": 40.0},
            ]},
        }
        report = render_report([summary])
        assert "Convergence (run r1)" in report
        assert "3 tunnel(s), 1 round trip(s)" in report
        assert "exchanges 2/8 accepted" in report
        assert "ETA 40.0 round(s) (~20s)" in report
        # Nested shape renders identically.
        assert "Convergence (run r1)" in render_report([_nest(summary)])


class TestResilienceOnTheBoard:
    """Quarantine and budget state surface on the dash heartbeat line."""

    def test_quarantined_window_and_budget_flag(self):
        hb = dict(_HEARTBEAT)
        hb["quarantined_windows"] = 1
        hb["budget"] = {"exhausted": True, "trigger": "rounds (5 >= 5)"}
        hb["windows"] = [
            dict(_HEARTBEAT["windows"][0]),
            dict(_HEARTBEAT["windows"][1], quarantined=True),
        ]
        board = render_dash([hb], now=105.0)
        assert "1 window(s) QUARANTINED" in board
        assert "budget exhausted (rounds (5 >= 5))" in board
        assert "quarantined" in board  # windows table disposition column

    def test_healthy_heartbeat_stays_clean(self):
        board = render_dash([_HEARTBEAT], now=105.0)
        assert "QUARANTINED" not in board
        assert "budget exhausted" not in board
