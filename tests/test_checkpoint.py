"""Checkpoint/restore round-trip and crash-consistency tests for REWL."""

import pickle

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultInjector, InjectedCrash
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.parallel import (
    REWLConfig,
    REWLDriver,
    load_checkpoint,
    load_latest_checkpoint,
    maybe_resume,
    previous_checkpoint_path,
    save_checkpoint,
)
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid


def make_driver(seed=3, n_windows=2, walkers=2, checkpoint_path=None,
                checkpoint_interval=0):
    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    return REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=n_windows, walkers_per_window=walkers,
                   exchange_interval=300, ln_f_final=1e-6, seed=seed,
                   checkpoint_interval=checkpoint_interval),
        checkpoint_path=checkpoint_path,
    )


def _checkpoint_fault(kind: str, rounds: int) -> FaultInjector:
    """An injector whose deterministic checkpoint decision at ``rounds``
    is exactly ``kind`` (search over seeds keeps the test explicit)."""
    for seed in range(1000):
        inj = FaultInjector(FaultConfig(corrupt=1.0, seed=seed))
        if inj.decide_checkpoint(rounds) == kind:
            return inj
    raise AssertionError(f"no seed produced a {kind!r} decision")


class TestCheckpointRoundTrip:
    def test_resume_is_bit_identical(self, tmp_path):
        """run(A+B rounds) == run(A) -> checkpoint -> restore -> run(B)."""
        straight = make_driver()
        straight.run(max_rounds=6)
        ref = straight.result()

        first = make_driver()
        first.run(max_rounds=3)
        ckpt = save_checkpoint(first, tmp_path / "rewl.ckpt")

        resumed = make_driver()  # fresh driver, same constructor args
        load_checkpoint(resumed, ckpt)
        resumed.run(max_rounds=6)  # continues from round 3 to 6
        res = resumed.result()

        assert res.rounds == ref.rounds
        for a, b in zip(ref.window_ln_g, res.window_ln_g):
            assert np.array_equal(a, b)
        assert np.array_equal(ref.exchange_accepts, res.exchange_accepts)

    def test_counters_restored(self, tmp_path):
        driver = make_driver()
        driver.run(max_rounds=2)
        ckpt = save_checkpoint(driver, tmp_path / "c.ckpt")
        fresh = make_driver()
        load_checkpoint(fresh, ckpt)
        assert fresh.rounds == 2
        assert fresh.exchange_attempts.sum() == driver.exchange_attempts.sum()


class TestCheckpointValidation:
    def test_window_count_mismatch(self, tmp_path):
        driver = make_driver()
        ckpt = save_checkpoint(driver, tmp_path / "c.ckpt")
        other = make_driver(n_windows=3)
        with pytest.raises(ValueError, match="n_windows"):
            load_checkpoint(other, ckpt)

    def test_walker_count_mismatch(self, tmp_path):
        driver = make_driver()
        ckpt = save_checkpoint(driver, tmp_path / "c.ckpt")
        other = make_driver(walkers=1)
        with pytest.raises(ValueError, match="walkers_per_window"):
            load_checkpoint(other, ckpt)

    def test_version_guard(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(pickle.dumps({"version": 999}))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(make_driver(), path)

    def test_new_format_version_guard(self, tmp_path):
        """A framed checkpoint with a future version is rejected clearly."""
        driver = make_driver()
        path = save_checkpoint(driver, tmp_path / "c.ckpt")
        raw = bytearray(path.read_bytes())
        raw[8] = 99  # little-endian version field right after the magic
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(make_driver(), path)

    def test_grid_mismatch(self, tmp_path):
        driver = make_driver()
        ckpt = save_checkpoint(driver, tmp_path / "c.ckpt")
        ham = IsingHamiltonian(square_lattice(4))
        other = REWLDriver(
            hamiltonian=ham, proposal_factory=lambda: FlipProposal(),
            grid=EnergyGrid.uniform(-40.0, 40.0, 12),
            initial_config=np.zeros(16, dtype=np.int8),
            config=REWLConfig(n_windows=2, walkers_per_window=2,
                              exchange_interval=300, seed=3),
        )
        with pytest.raises(ValueError, match="grid_n_bins"):
            load_checkpoint(other, ckpt)

    def test_exchange_stats_shape_mismatch(self, tmp_path):
        """A doctored legacy file with the wrong pair count is rejected
        before any driver state is touched."""
        driver = make_driver()
        ckpt = save_checkpoint(driver, tmp_path / "c.ckpt")
        from repro.parallel.checkpoint import _read_state

        state = _read_state(ckpt)
        state["version"] = 1
        state["exchange_attempts"] = np.zeros(5, dtype=np.int64)
        state["exchange_accepts"] = np.zeros(5, dtype=np.int64)
        bad = tmp_path / "legacy.ckpt"
        bad.write_bytes(pickle.dumps(state))
        fresh = make_driver()
        before = fresh.rounds
        with pytest.raises(ValueError, match="exchange statistics"):
            load_checkpoint(fresh, bad)
        assert fresh.rounds == before  # untouched on failure

    def test_legacy_v1_raw_pickle_loads(self, tmp_path):
        """Pre-framing checkpoints (raw pickles, version 1) stay readable."""
        driver = make_driver()
        driver.run(max_rounds=2)
        from repro.parallel.checkpoint import _read_state

        state = _read_state(save_checkpoint(driver, tmp_path / "new.ckpt"))
        state["version"] = 1
        legacy = tmp_path / "legacy.ckpt"
        legacy.write_bytes(pickle.dumps(state))
        fresh = make_driver()
        load_checkpoint(fresh, legacy)
        assert fresh.rounds == 2


class TestCrashConsistency:
    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        path = save_checkpoint(make_driver(), tmp_path / "c.ckpt")
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_crash_mid_save_preserves_latest_snapshot(self, tmp_path):
        """Dying between the tmp write and the rename must leave the last
        published snapshot untouched (the atomic-rename guarantee)."""
        driver = make_driver()
        driver.run(max_rounds=2)
        path = save_checkpoint(driver, tmp_path / "c.ckpt")
        good = path.read_bytes()

        driver.run(max_rounds=4)
        inj = _checkpoint_fault("crash", driver.rounds)
        with pytest.raises(InjectedCrash):
            save_checkpoint(driver, path, faults=inj)
        assert path.read_bytes() == good  # byte-for-byte intact
        fresh = make_driver()
        load_checkpoint(fresh, path)
        assert fresh.rounds == 2

    def test_corrupt_payload_detected_on_load(self, tmp_path):
        driver = make_driver()
        inj = _checkpoint_fault("corrupt", driver.rounds)
        path = save_checkpoint(driver, tmp_path / "c.ckpt", faults=inj)
        with pytest.raises(ValueError, match="integrity"):
            load_checkpoint(make_driver(), path)

    def test_truncated_file_detected(self, tmp_path):
        path = save_checkpoint(make_driver(), tmp_path / "c.ckpt")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="integrity|truncated"):
            load_checkpoint(make_driver(), path)
        path.write_bytes(data[:20])  # not even a full header
        with pytest.raises(ValueError, match="truncated"):
            load_checkpoint(make_driver(), path)

    def test_garbage_file_detected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(ValueError, match="not a readable checkpoint|not readable"):
            load_checkpoint(make_driver(), path)

    def test_rotation_keeps_previous_snapshot(self, tmp_path):
        driver = make_driver()
        driver.run(max_rounds=2)
        path = save_checkpoint(driver, tmp_path / "c.ckpt")
        driver.run(max_rounds=4)
        save_checkpoint(driver, path)
        prev = previous_checkpoint_path(path)
        assert prev.exists()
        older, newer = make_driver(), make_driver()
        load_checkpoint(older, prev)
        load_checkpoint(newer, path)
        assert (older.rounds, newer.rounds) == (2, 4)


class TestAutoResume:
    def test_fallback_to_previous_good_snapshot(self, tmp_path):
        driver = make_driver()
        driver.run(max_rounds=2)
        path = save_checkpoint(driver, tmp_path / "c.ckpt")
        driver.run(max_rounds=4)
        save_checkpoint(driver, path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # bit rot in the primary
        path.write_bytes(bytes(raw))

        fresh = make_driver()
        used = load_latest_checkpoint(fresh, path)
        assert used == previous_checkpoint_path(path)
        assert fresh.rounds == 2

    def test_no_checkpoints_raises_with_details(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no loadable checkpoint"):
            load_latest_checkpoint(make_driver(), tmp_path / "missing.ckpt")

    def test_maybe_resume_fresh_start(self, tmp_path):
        assert maybe_resume(make_driver(), tmp_path / "missing.ckpt") is False

    def test_maybe_resume_restores(self, tmp_path):
        driver = make_driver()
        driver.run(max_rounds=3)
        path = save_checkpoint(driver, tmp_path / "c.ckpt")
        fresh = make_driver()
        assert maybe_resume(fresh, path) is True
        assert fresh.rounds == 3

    def test_maybe_resume_survives_total_damage(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"garbage")
        previous_checkpoint_path(path).write_bytes(b"more garbage")
        assert maybe_resume(make_driver(), path) is False


class TestPeriodicCheckpoints:
    def test_run_snapshots_on_interval(self, tmp_path):
        path = tmp_path / "periodic.ckpt"
        driver = make_driver(checkpoint_path=path, checkpoint_interval=2)
        driver.run(max_rounds=5)
        assert path.exists()
        restored = make_driver()
        load_checkpoint(restored, path)
        assert restored.rounds == 4  # saved at rounds 2 and 4
        prev = make_driver()
        load_checkpoint(prev, previous_checkpoint_path(path))
        assert prev.rounds == 2

    def test_resume_from_periodic_snapshot_is_bit_identical(self, tmp_path):
        straight = make_driver()
        straight.run(max_rounds=6)
        ref = straight.result()

        path = tmp_path / "periodic.ckpt"
        interrupted = make_driver(checkpoint_path=path, checkpoint_interval=3)
        interrupted.run(max_rounds=3)  # "killed" right after the snapshot

        resumed = make_driver()
        assert maybe_resume(resumed, path) is True
        resumed.run(max_rounds=6)
        res = resumed.result()
        for a, b in zip(ref.window_ln_g, res.window_ln_g):
            assert np.array_equal(a, b)
        assert np.array_equal(ref.exchange_accepts, res.exchange_accepts)

    def test_disabled_by_default(self, tmp_path):
        path = tmp_path / "never.ckpt"
        driver = make_driver(checkpoint_path=path)  # interval stays 0
        driver.run(max_rounds=3)
        assert not path.exists()


class TestLogicalValidation:
    """Restore-time guard checks: a checkpoint whose *values* are corrupt
    (written by a poisoned run, not damaged on disk) must not load."""

    def test_poisoned_checkpoint_rejected(self, tmp_path):
        driver = make_driver()
        driver.run(max_rounds=2)
        driver.walkers[0][0].ln_g[2] = np.nan
        ckpt = save_checkpoint(driver, tmp_path / "rewl.ckpt")
        with pytest.raises(ValueError, match="logical validation"):
            load_checkpoint(make_driver(), ckpt)

    def test_bad_ln_f_rejected(self, tmp_path):
        driver = make_driver()
        driver.run(max_rounds=2)
        driver.walkers[1][0].ln_f = float("inf")
        ckpt = save_checkpoint(driver, tmp_path / "rewl.ckpt")
        with pytest.raises(ValueError, match="logical validation"):
            load_checkpoint(make_driver(), ckpt)

    def test_fallback_to_prev_on_logical_damage(self, tmp_path):
        """A poisoned primary falls back to the rotated clean snapshot,
        exactly like a torn write does."""
        path = tmp_path / "rewl.ckpt"
        driver = make_driver()
        driver.run(max_rounds=2)
        save_checkpoint(driver, path)  # clean snapshot
        driver.run(max_rounds=2)
        driver.walkers[0][0].ln_g[1] = np.nan
        save_checkpoint(driver, path)  # rotates clean -> .prev, writes poison

        restored = make_driver()
        used = load_latest_checkpoint(restored, path)
        assert used == previous_checkpoint_path(path)
        assert restored.rounds == 2
        assert np.isfinite(restored.walkers[0][0].ln_g).all()

        fresh = make_driver()
        assert maybe_resume(fresh, path)
        assert fresh.rounds == 2


class TestResilienceRideAlong:
    """Supervisor state and quarantine flags persist through checkpoints."""

    def _driver(self, seed=3):
        from repro.resilience import GuardPolicy, ResilienceConfig

        ham = IsingHamiltonian(square_lattice(4))
        grid = EnergyGrid.from_levels(ham.energy_levels())
        return REWLDriver(
            hamiltonian=ham, proposal_factory=lambda: FlipProposal(),
            grid=grid, initial_config=np.zeros(16, dtype=np.int8),
            config=REWLConfig(n_windows=2, walkers_per_window=1,
                              exchange_interval=300, ln_f_final=1e-6,
                              seed=seed),
            resilience=ResilienceConfig(guards=GuardPolicy(max_rollbacks=0)),
        )

    def test_quarantine_survives_restore(self, tmp_path):
        driver = self._driver()
        driver.run(max_rounds=2)
        driver.supervisor.on_window_failure(driver, 0, RuntimeError("boom"))
        assert driver.window_quarantined == [True, False]
        ckpt = save_checkpoint(driver, tmp_path / "rewl.ckpt")

        restored = self._driver()
        load_checkpoint(restored, ckpt)
        assert restored.window_quarantined == [True, False]
        rows = {r["window"]: r for r in restored.supervisor.dispositions()}
        assert rows[0]["disposition"] == "quarantined"
        assert rows[0]["task_failures"] == 1

    def test_unsupervised_driver_tolerates_resilient_checkpoint(self, tmp_path):
        """Resilience state in the file is optional on both sides."""
        driver = self._driver()
        driver.run(max_rounds=2)
        ckpt = save_checkpoint(driver, tmp_path / "rewl.ckpt")
        plain = make_driver(n_windows=2, walkers=1)
        load_checkpoint(plain, ckpt)  # no supervisor: state is ignored
        assert plain.rounds == 2

    def test_legacy_checkpoint_without_resilience_state(self, tmp_path):
        plain = make_driver(n_windows=2, walkers=1)
        plain.run(max_rounds=2)
        ckpt = save_checkpoint(plain, tmp_path / "rewl.ckpt")
        restored = self._driver()
        load_checkpoint(restored, ckpt)
        assert restored.window_quarantined == [False, False]
        assert restored.supervisor.quarantined == []
