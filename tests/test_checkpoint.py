"""Checkpoint/restore round-trip tests for the REWL driver."""

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.parallel import REWLConfig, REWLDriver, load_checkpoint, save_checkpoint
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid


def make_driver(seed=3, n_windows=2, walkers=2):
    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    return REWLDriver(
        ham, lambda: FlipProposal(), grid, np.zeros(16, dtype=np.int8),
        REWLConfig(n_windows=n_windows, walkers_per_window=walkers,
                   exchange_interval=300, ln_f_final=1e-6, seed=seed),
    )


class TestCheckpointRoundTrip:
    def test_resume_is_bit_identical(self, tmp_path):
        """run(A+B rounds) == run(A) -> checkpoint -> restore -> run(B)."""
        straight = make_driver()
        straight.run(max_rounds=6)
        ref = straight.result()

        first = make_driver()
        first.run(max_rounds=3)
        ckpt = save_checkpoint(first, tmp_path / "rewl.ckpt")

        resumed = make_driver()  # fresh driver, same constructor args
        load_checkpoint(resumed, ckpt)
        resumed.run(max_rounds=6)  # continues from round 3 to 6
        res = resumed.result()

        assert res.rounds == ref.rounds
        for a, b in zip(ref.window_ln_g, res.window_ln_g):
            assert np.array_equal(a, b)
        assert np.array_equal(ref.exchange_accepts, res.exchange_accepts)

    def test_counters_restored(self, tmp_path):
        driver = make_driver()
        driver.run(max_rounds=2)
        ckpt = save_checkpoint(driver, tmp_path / "c.ckpt")
        fresh = make_driver()
        load_checkpoint(fresh, ckpt)
        assert fresh.rounds == 2
        assert fresh.exchange_attempts.sum() == driver.exchange_attempts.sum()


class TestCheckpointValidation:
    def test_window_count_mismatch(self, tmp_path):
        driver = make_driver()
        ckpt = save_checkpoint(driver, tmp_path / "c.ckpt")
        other = make_driver(n_windows=3)
        with pytest.raises(ValueError, match="n_windows"):
            load_checkpoint(other, ckpt)

    def test_walker_count_mismatch(self, tmp_path):
        driver = make_driver()
        ckpt = save_checkpoint(driver, tmp_path / "c.ckpt")
        other = make_driver(walkers=1)
        with pytest.raises(ValueError, match="walkers_per_window"):
            load_checkpoint(other, ckpt)

    def test_version_guard(self, tmp_path):
        import pickle

        path = tmp_path / "bad.ckpt"
        path.write_bytes(pickle.dumps({"version": 999}))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(make_driver(), path)
