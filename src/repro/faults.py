"""Deterministic fault injection for chaos-testing the parallel stack.

Production flat-histogram campaigns run for days across thousands of
workers, where crashes, hangs, and storage corruption are routine.  This
module makes those failures *reproducible*: a :class:`FaultInjector` draws
every fault decision from a counter-based RNG keyed on
``(seed, site, task, attempt)``, so a chaos run is a pure function of its
seed — the same faults fire at the same places every time, and a fixed bug
stays fixed.

Faults are injected *before* the wrapped task body runs (a worker that dies
mid-task never returns a result, so dying before the body is operationally
equivalent and keeps in-process walkers untouched).  Because a retried
attempt starts from the same input state, a run that survives its injected
faults is bit-identical to the fault-free run with the same seed (tested in
``tests/test_faults.py``).

Fault kinds
-----------
- ``crash`` — raise :class:`InjectedCrash` (a task-level failure),
- ``hang``  — sleep ``hang_s`` seconds, then raise :class:`InjectedHang`
  (exercises executor timeouts without ever mutating walker state),
- ``kill``  — ``os._exit`` inside pool *worker* processes (exercises the
  ``BrokenProcessPool`` rebuild path); degrades to ``crash`` in-process,
- ``corrupt`` — checkpoint I/O faults: flip a payload byte (caught by the
  SHA-256 integrity check) or die between the tmp write and the atomic
  rename (the previous snapshot must survive),
- ``nan``  — *silent numerical corruption*: the task body runs normally,
  then the returned walker is deterministically poisoned (a non-finite
  ``ln g`` entry or walker energy).  Nothing raises — exactly the failure
  mode only the :mod:`repro.resilience` guard rails can catch,
- ``slow`` — a seeded fixed delay (``slow_s``) before the task body; the
  task then *succeeds*, exercising stall detection and wall-clock budgets
  without perturbing any walker state.

``window`` (default −1 = everywhere) restricts task faults to tasks whose
walker belongs to one REWL window — the knob behind "permanently kill
window 1 and watch the campaign degrade gracefully" chaos tests.

Activation: pass a :class:`FaultInjector` explicitly, or set the
``REPRO_FAULTS`` environment knob, e.g.::

    REPRO_FAULTS="crash=0.1,hang=0.05,hang_s=0.02,seed=3"
    REPRO_FAULTS="nan=1.0,window=1,seed=0"   # poison window 1, every round

and every supervised executor and checkpoint write picks it up.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, fields

import numpy as np

from repro.util.validation import check_probability

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultConfig",
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "InjectedHang",
    "faults_from_env",
    "parse_faults",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """Base class for failures raised by the fault injector."""


class InjectedCrash(InjectedFault):
    """A task/checkpoint failure injected by :class:`FaultInjector`."""


class InjectedHang(InjectedFault):
    """A slow task injected by :class:`FaultInjector` (sleep, then raise)."""


@dataclass(frozen=True)
class FaultConfig:
    """Per-site fault probabilities plus the injector seed.

    ``crash``/``hang``/``kill``/``nan``/``slow`` apply per task *attempt*
    (their sum must be <= 1); ``corrupt`` applies per checkpoint write.
    ``hang_s``/``slow_s`` are the simulated hang/delay durations in
    seconds.  ``window >= 0`` restricts task faults to walkers of that REWL
    window (checkpoint faults are campaign-wide and unaffected).
    """

    crash: float = 0.0
    hang: float = 0.0
    kill: float = 0.0
    nan: float = 0.0
    slow: float = 0.0
    corrupt: float = 0.0
    hang_s: float = 0.05
    slow_s: float = 0.02
    seed: int = 0
    window: int = -1

    def __post_init__(self):
        for name in ("crash", "hang", "kill", "nan", "slow", "corrupt"):
            check_probability(name, getattr(self, name))
        check_probability(
            "crash + hang + kill + nan + slow",
            self.crash + self.hang + self.kill + self.nan + self.slow,
        )
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s!r}")
        if self.slow_s < 0:
            raise ValueError(f"slow_s must be >= 0, got {self.slow_s!r}")
        if self.window < -1:
            raise ValueError(f"window must be >= -1, got {self.window!r}")

    @property
    def any_task_faults(self) -> bool:
        return (self.crash + self.hang + self.kill + self.nan + self.slow) > 0.0

    @property
    def any_checkpoint_faults(self) -> bool:
        return self.corrupt > 0.0


def _site_code(site: str) -> int:
    """Stable non-negative integer code for a site name (crc32)."""
    return zlib.crc32(site.encode("utf-8"))


def _draw(cfg: FaultConfig, site: str, key: int, attempt: int) -> float:
    """One uniform draw, a pure function of (seed, site, key, attempt)."""
    rng = np.random.default_rng([cfg.seed, _site_code(site), int(key), int(attempt)])
    return float(rng.random())


class FaultInjector:
    """Deterministic fault decisions plus task wrapping.

    Decisions depend only on the config seed, the site name, the task key,
    and the attempt index — never on wall-clock, pids, or global RNG state —
    so runs replay exactly and a retried attempt gets a fresh, deterministic
    draw (a task is not doomed to crash forever).
    """

    def __init__(self, config: FaultConfig):
        self.cfg = config

    # ------------------------------------------------------------ decisions

    def decide_task(self, key: int, attempt: int) -> str | None:
        """``"crash"``/``"hang"``/``"kill"``/``"nan"``/``"slow"``/None for
        one task attempt."""
        cfg = self.cfg
        if not cfg.any_task_faults:
            return None
        u = _draw(cfg, "task", key, attempt)
        band = cfg.crash
        if u < band:
            return "crash"
        band += cfg.hang
        if u < band:
            return "hang"
        band += cfg.kill
        if u < band:
            return "kill"
        band += cfg.nan
        if u < band:
            return "nan"
        band += cfg.slow
        if u < band:
            return "slow"
        return None

    def decide_checkpoint(self, key: int) -> str | None:
        """``"corrupt"`` / ``"crash"`` / None for one checkpoint write.

        The ``corrupt`` probability mass is split evenly between payload
        corruption (caught by the integrity check on load) and dying between
        the tmp-file write and the atomic rename (the previous snapshot must
        survive).
        """
        cfg = self.cfg
        if not cfg.any_checkpoint_faults:
            return None
        u = _draw(cfg, "checkpoint", key, 0)
        if u < cfg.corrupt / 2.0:
            return "corrupt"
        if u < cfg.corrupt:
            return "crash"
        return None

    # ------------------------------------------------------------- wrapping

    def wrap(self, fn, key: int, attempt: int):
        """Wrap a task callable with this injector's decision for one attempt.

        The wrapper is picklable as long as ``fn`` is (process executors ship
        it to workers), and is a no-op passthrough when no task faults are
        configured.
        """
        if not self.cfg.any_task_faults:
            return fn
        return _FaultyCall(self.cfg, fn, key, attempt, os.getpid())


class _FaultyCall:
    """Picklable task wrapper: consult the decision, maybe fault, else run."""

    def __init__(self, cfg: FaultConfig, fn, key: int, attempt: int, origin_pid: int):
        self.cfg = cfg
        self.fn = fn
        self.key = int(key)
        self.attempt = int(attempt)
        self.origin_pid = origin_pid

    def __call__(self, *args, **kwargs):
        action = FaultInjector(self.cfg).decide_task(self.key, self.attempt)
        if action is not None and self.cfg.window >= 0:
            # Window targeting: only walkers tagged with the configured
            # window fault; everything else runs clean.  The decision draw
            # is stateless, so gating after it changes nothing else.
            tag = getattr(args[0], "obs_tag", None) if args else None
            if tag is None or tag[0] != self.cfg.window:
                action = None
        if action == "kill":
            if os.getpid() != self.origin_pid:
                os._exit(13)  # real worker death -> BrokenProcessPool upstream
            action = "crash"  # in-process: degrade to a task failure
        if action == "hang":
            time.sleep(self.cfg.hang_s)
            raise InjectedHang(
                f"injected hang ({self.cfg.hang_s}s, task {self.key}, "
                f"attempt {self.attempt})"
            )
        if action == "crash":
            raise InjectedCrash(
                f"injected crash (task {self.key}, attempt {self.attempt})"
            )
        if action == "slow":
            # Seeded fixed delay, then a *successful* run: stall/budget
            # paths get exercised with zero effect on walker state.
            time.sleep(self.cfg.slow_s)
        result = self.fn(*args, **kwargs)
        if action == "nan":
            _poison_walker(self.cfg, result, self.key, self.attempt)
        return result


def _poison_walker(cfg: FaultConfig, walker, key: int, attempt: int) -> None:
    """Silent numerical corruption of a completed task's walker.

    Deterministically (secondary draw on its own site) either drops a NaN
    into the middle of ``ln g`` or blows up the walker energy — the two
    corruption shapes the resilience guards must catch.  No exception is
    raised; the caller believes the task succeeded.
    """
    u = _draw(cfg, "nan-mode", key, attempt)
    ln_g = getattr(walker, "ln_g", None)
    if u < 0.5 and ln_g is not None and len(ln_g):
        ln_g[len(ln_g) // 2] = np.nan
    elif hasattr(walker, "energies"):  # batched team
        walker.energies[0] = np.inf
    else:
        walker.energy = float("inf")


_FIELD_TYPES = {f.name: f.type for f in fields(FaultConfig)}


def parse_faults(spec: str) -> FaultConfig:
    """Parse a ``REPRO_FAULTS`` value like ``"crash=0.1,hang=0.05,seed=3"``."""
    kwargs = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in _FIELD_TYPES:
            known = ", ".join(_FIELD_TYPES)
            raise ValueError(
                f"bad {FAULTS_ENV_VAR} entry {part!r}; expected key=value with "
                f"key in {{{known}}}"
            )
        try:
            kwargs[key] = int(value) if key in ("seed", "window") else float(value)
        except ValueError as exc:
            raise ValueError(f"bad {FAULTS_ENV_VAR} value for {key!r}: {value!r}") from exc
    return FaultConfig(**kwargs)


def faults_from_env(env_var: str = FAULTS_ENV_VAR) -> FaultInjector | None:
    """Build a :class:`FaultInjector` from the environment (or None).

    Unset, empty, ``"0"``, and ``"off"`` all mean "no injection".
    """
    value = os.environ.get(env_var, "").strip()
    if value in ("", "0", "off", "false"):
        return None
    return FaultInjector(parse_faults(value))
