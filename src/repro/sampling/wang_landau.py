"""Wang–Landau flat-histogram sampling.

Estimates ``ln g(E)`` over an :class:`~repro.sampling.binning.EnergyGrid` by
biasing acceptance with the running estimate::

    ln u < ln g(E) − ln g(E') + log_q_ratio

and incrementing ``ln g`` at the visited bin by the modification factor
``ln f``.  When the visit histogram is flat (min ≥ flatness·mean over the
reachable bins), ``ln f`` is halved and the histogram reset; the run
converges when ``ln f ≤ ln_f_final``.  The ``"one_over_t"`` schedule caps
``ln f`` at ``n_bins/steps`` once halving would undershoot it, which removes
the saturation error of plain halving (Belardinelli & Pereyra 2007).

Moves landing outside the grid are rejected (standard windowed WL), and the
*current* bin is updated on every step whether or not the move is accepted —
both details are required for convergence to the true density of states.

Reachability: bins never visited (gaps in a discrete spectrum, or windows
overlapping forbidden energies) are excluded from the flatness test once the
run has seen at least one flat check; a bin discovered later simply joins
the reachable set.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.proposals.base import Proposal
from repro.sampling.base import register_sampler
from repro.sampling.binning import EnergyGrid
from repro.util.rng import BufferedDraws, as_generator

__all__ = [
    "WLConfig",
    "WangLandauSampler",
    "WangLandauResult",
    "WalkerCounters",
    "drive_into_range",
]


@dataclass(frozen=True)
class WLConfig:
    """Tuning knobs for Wang-Landau sampling (mirrors ``REWLConfig``).

    Passed as the keyword-only ``config=`` of :class:`WangLandauSampler`
    (and of the batched stepper in :mod:`repro.sampling.batched`); loose
    tuning keywords on the constructors are merged into this via
    ``dataclasses.replace``, so a config object and ad-hoc overrides
    compose.

    ``batch_size`` selects batched multi-walker stepping through the
    :func:`repro.sampling.batched.make_wang_landau` factory: 1 (default)
    is the scalar sampler, K > 1 steps K walkers per super-step against a
    shared ln g.  ``profile_sample_every`` > 0 attaches a
    :class:`repro.obs.profile.SectionProfiler` with that sampling stride at
    construction time.
    """

    ln_f_init: float = 1.0
    ln_f_final: float = 1e-6
    flatness: float = 0.8
    check_interval: int | None = None
    schedule: str = "halving"
    max_steps: int = 50_000_000
    batch_size: int = 1
    profile_sample_every: int = 0

    def __post_init__(self):
        if self.schedule not in ("halving", "one_over_t"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if not 0.0 < self.flatness < 1.0:
            raise ValueError(f"flatness must be in (0, 1), got {self.flatness}")
        if not 0.0 < self.ln_f_final < self.ln_f_init:
            raise ValueError(
                f"need 0 < ln_f_final < ln_f_init, got "
                f"{self.ln_f_final}, {self.ln_f_init}"
            )
        if self.check_interval is not None and int(self.check_interval) < 1:
            raise ValueError(f"check_interval must be >= 1, got {self.check_interval}")
        if int(self.batch_size) < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if int(self.max_steps) < 1:
            raise ValueError(f"max_steps must be >= 1, got {self.max_steps}")
        if int(self.profile_sample_every) < 0:
            raise ValueError(
                f"profile_sample_every must be >= 0, got {self.profile_sample_every}"
            )

    def with_overrides(self, **overrides) -> "WLConfig":
        """``dataclasses.replace`` with ``None`` values dropped.

        The constructors funnel loose legacy tuning keywords through here;
        an explicit ``check_interval=None`` is the field's default anyway,
        so dropping Nones loses nothing.
        """
        overrides = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **overrides) if overrides else self


def drive_into_range(hamiltonian: Hamiltonian, proposal: Proposal, grid: EnergyGrid,
                     config: np.ndarray, rng=None, max_steps: int = 1_000_000) -> np.ndarray:
    """Steer ``config`` until its energy lies inside ``grid``.

    Greedy drift: accept any move that does not increase the distance to the
    window (ties accepted, so the walk keeps diffusing on plateaus).  Used to
    initialize REWL walkers whose window excludes the typical energy of a
    random configuration.

    Returns the steered configuration (a copy); raises ``RuntimeError`` when
    the window cannot be reached within ``max_steps``.
    """
    rng = as_generator(rng)
    config = np.array(config, copy=True)
    energy = float(hamiltonian.energy(config))

    def distance(e: float) -> float:
        if e < grid.e_min:
            return grid.e_min - e
        if e > grid.e_max:
            return e - grid.e_max
        return 0.0

    for _ in range(max_steps):
        if grid.contains(energy):
            return config
        move = proposal.propose(config, hamiltonian, rng, current_energy=energy)
        if move is None:
            continue
        if distance(energy + move.delta_energy) <= distance(energy):
            move.apply(config)
            energy += move.delta_energy
    raise RuntimeError(
        f"could not reach energy window [{grid.e_min}, {grid.e_max}] in "
        f"{max_steps} steps (last energy {energy:.6g})"
    )


@dataclass
class WalkerCounters:
    """Per-walker event totals, kept as plain integers in the step loop.

    These are the operational statistics the paper (and the flat-histogram
    parallelization literature) reasons about; they are surfaced on
    :class:`WangLandauResult` and on REWL walker snapshots rather than being
    discarded at the end of a run.  Counting never touches ``ln_g`` or RNG
    state, so instrumented runs stay bit-identical.
    """

    proposals: int = 0
    null_proposals: int = 0
    accepted: int = 0
    out_of_grid: int = 0
    flat_checks_passed: int = 0
    flat_checks_failed: int = 0
    exchange_attempts: int = 0
    exchange_accepts: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "proposals": self.proposals,
            "null_proposals": self.null_proposals,
            "accepted": self.accepted,
            "out_of_grid": self.out_of_grid,
            "flat_checks_passed": self.flat_checks_passed,
            "flat_checks_failed": self.flat_checks_failed,
            "exchange_attempts": self.exchange_attempts,
            "exchange_accepts": self.exchange_accepts,
        }


@dataclass
class WangLandauResult:
    """Outcome of a Wang–Landau run.

    ``ln_g`` is *relative* (shifted so its minimum over visited bins is 0);
    absolute normalization — e.g. pinning the total state count to
    ``n_species^n_sites`` — is applied by :mod:`repro.dos`.
    """

    grid: EnergyGrid
    ln_g: np.ndarray
    histogram: np.ndarray
    visited: np.ndarray
    converged: bool
    n_steps: int
    n_iterations: int
    final_ln_f: float
    acceptance_rate: float
    iteration_steps: list[int] = field(default_factory=list)
    counters: WalkerCounters = field(default_factory=WalkerCounters)

    def masked_ln_g(self) -> np.ndarray:
        """ln g with unvisited bins set to −inf."""
        out = np.where(self.visited, self.ln_g, -np.inf)
        if np.any(self.visited):
            out = out - out[self.visited].min()
        return out


#: Legacy loose tuning keywords, merged into :class:`WLConfig`.
_WL_TUNING = ("ln_f_init", "ln_f_final", "flatness", "check_interval", "schedule")


def _resolve_wl_args(cls_name: str, args: tuple, kwargs: dict):
    """Shared constructor-argument resolution for WL samplers.

    Construction is keyword-only (the pre-redesign positional and
    ``config=<ndarray>`` shims completed their deprecation cycle and now
    raise ``TypeError``); loose tuning keywords are folded into the
    :class:`WLConfig`.  Returns ``(kwargs, cfg)`` with ``kwargs`` holding
    only hamiltonian/proposal/grid/initial_config/rng.
    """
    if args:
        raise TypeError(
            f"{cls_name}() takes keyword arguments only; pass hamiltonian=, "
            "proposal=, grid=, initial_config=, rng= and config=WLConfig(...)"
        )
    cfg = kwargs.pop("config", None)
    if cfg is not None and not isinstance(cfg, WLConfig):
        # Pre-redesign name: ``config`` was the initial configuration array.
        raise TypeError(
            f"{cls_name}(config=...) takes a WLConfig; pass the initial "
            "configuration array as initial_config="
        )
    cfg = cfg if cfg is not None else WLConfig()
    tuning = {k: kwargs.pop(k) for k in _WL_TUNING if k in kwargs}
    cfg = cfg.with_overrides(**tuning)
    unknown = set(kwargs) - {"hamiltonian", "proposal", "grid", "initial_config", "rng"}
    if unknown:
        raise TypeError(
            f"{cls_name}() got unexpected keyword arguments {sorted(unknown)}"
        )
    missing = [
        k for k in ("hamiltonian", "proposal", "grid", "initial_config")
        if kwargs.get(k) is None
    ]
    if missing:
        raise TypeError(f"{cls_name}() missing required arguments {missing}")
    return kwargs, cfg


@register_sampler("wang_landau")
class WangLandauSampler:
    """Single-walker Wang–Landau sampler.

    Keyword-only construction (see DESIGN.md §11 for migration notes)::

        WangLandauSampler(
            hamiltonian=ham, proposal=prop, grid=grid,
            initial_config=cfg0, rng=seed, config=WLConfig(...),
        )

    Parameters
    ----------
    hamiltonian : Hamiltonian
    proposal : Proposal
    grid : EnergyGrid
        Energy window (global range, or one REWL window).
    initial_config : numpy.ndarray
        Initial configuration; its energy must lie inside ``grid`` (use
        :func:`drive_into_range` first otherwise).
    rng : seed or Generator
    config : WLConfig
        Schedule/flatness/step tuning; loose ``ln_f_init=...``-style
        keywords are still accepted and merged into it.

    Construction is keyword-only.  Note the attribute ``self.config``
    remains the *configuration array* (REWL exchange and checkpoints rely
    on it); the tuning object is ``self.cfg``.
    """

    def __init__(self, *args, **kwargs):
        kwargs, cfg = _resolve_wl_args(type(self).__name__, args, kwargs)
        hamiltonian = kwargs["hamiltonian"]
        proposal = kwargs["proposal"]
        grid = kwargs["grid"]
        self.cfg = cfg
        self.hamiltonian = hamiltonian
        self.proposal = proposal
        self.grid = grid
        self.rng = BufferedDraws(as_generator(kwargs.get("rng")))
        self.config = hamiltonian.validate_config(
            np.array(kwargs["initial_config"], copy=True)
        )
        self.energy = float(hamiltonian.energy(self.config))
        self.current_bin = grid.index(self.energy)
        if self.current_bin < 0:
            raise ValueError(
                f"initial energy {self.energy:.6g} lies outside the grid "
                f"[{grid.e_min:.6g}, {grid.e_max:.6g}]; use drive_into_range"
            )
        self.ln_f = float(cfg.ln_f_init)
        self.ln_f_final = float(cfg.ln_f_final)
        self.flatness = float(cfg.flatness)
        self.schedule = cfg.schedule
        self.check_interval = (
            max(1000, 100 * grid.n_bins)
            if cfg.check_interval is None
            else int(cfg.check_interval)
        )

        n = grid.n_bins
        self.ln_g = np.zeros(n)
        self.histogram = np.zeros(n, dtype=np.int64)
        self.visited = np.zeros(n, dtype=bool)
        self.n_steps = 0
        self.n_accepted = 0
        self.n_iterations = 0
        self.iteration_steps: list[int] = []
        self._steps_this_iteration = 0
        # Plain-int telemetry (picklable; travels with the walker through
        # process executors).  The REWL driver fills the exchange fields.
        self.counters = WalkerCounters()
        # Optional section profiler (repro.obs.profile); None keeps the hot
        # loop at a single attribute check.  Enable via enable_profiling().
        self.profiler = None
        if cfg.profile_sample_every:
            from repro.obs.profile import SectionProfiler

            self.enable_profiling(SectionProfiler(sample_every=cfg.profile_sample_every))

    def enable_profiling(self, profiler) -> None:
        """Attach a :class:`repro.obs.profile.SectionProfiler` to this walker.

        Wraps the proposal and Hamiltonian in profiled views (section-timed
        ΔE and proposal generation) and hooks the histogram update and
        flatness checks.  Profiling draws no random numbers and writes only
        into the profiler, so the sampled trajectory is bit-identical; the
        profiler pickles with the walker through process executors.
        """
        if self.profiler is not None:
            raise RuntimeError("profiling is already enabled on this walker")
        self.profiler = profiler
        self.hamiltonian = self.hamiltonian.profiled(profiler)
        self.proposal = self.proposal.profiled(profiler)

    # ----------------------------------------------------------------- step

    def step(self) -> bool:
        """One WL step; returns True when the move was accepted."""
        self.n_steps += 1
        self._steps_this_iteration += 1
        move = self.proposal.propose(
            self.config, self.hamiltonian, self.rng, current_energy=self.energy
        )
        accepted = False
        if move is None:
            self.counters.null_proposals += 1
        else:
            self.counters.proposals += 1
            new_energy = self.energy + move.delta_energy
            new_bin = self.grid.index(new_energy)
            if new_bin < 0:
                self.counters.out_of_grid += 1
            else:
                log_alpha = (
                    self.ln_g[self.current_bin] - self.ln_g[new_bin] + move.log_q_ratio
                )
                if log_alpha >= 0.0 or np.log(self.rng.random()) < log_alpha:
                    move.apply(self.config)
                    self.energy = new_energy
                    self.current_bin = new_bin
                    accepted = True
                    self.n_accepted += 1
                    self.counters.accepted += 1
        # Update the (possibly unchanged) current bin — mandatory for WL.
        prof = self.profiler
        if prof is None:
            self.ln_g[self.current_bin] += self.ln_f
            self.histogram[self.current_bin] += 1
            self.visited[self.current_bin] = True
        else:
            t0 = prof.start("wl.histogram_update")
            self.ln_g[self.current_bin] += self.ln_f
            self.histogram[self.current_bin] += 1
            self.visited[self.current_bin] = True
            prof.stop("wl.histogram_update", t0)
        return accepted

    # ----------------------------------------------------------- iteration

    def is_flat(self) -> bool:
        """Histogram flatness over the reachable-bin set.

        Every call counts as one flatness check in ``self.counters`` —
        whether issued by :meth:`run` or by the REWL driver's sync phase.
        """
        prof = self.profiler
        t0 = prof.start("wl.flat_check") if prof is not None else None
        flat = self._flatness_test()
        if prof is not None:
            prof.stop("wl.flat_check", t0)
        if flat:
            self.counters.flat_checks_passed += 1
        else:
            self.counters.flat_checks_failed += 1
        return flat

    def _flatness_test(self) -> bool:
        mask = self.visited
        if not np.any(mask):
            return False
        h = self.histogram[mask]
        if np.any(h == 0):
            return False
        return float(h.min()) >= self.flatness * float(h.mean())

    def flatness_fraction(self) -> float:
        """min/mean of the visit histogram over visited bins (pure read).

        The quantity the flatness criterion thresholds, exposed as a
        continuous diagnostic for :mod:`repro.obs.convergence`; unlike
        :meth:`is_flat` this touches no counters.
        """
        mask = self.visited
        if not np.any(mask):
            return 0.0
        h = self.histogram[mask]
        mean = float(h.mean())
        return float(h.min()) / mean if mean > 0 else 0.0

    def fill_fraction(self) -> float:
        """Fraction of this window's bins visited so far (pure read)."""
        n = self.visited.shape[0]
        return float(np.count_nonzero(self.visited)) / n if n else 0.0

    def advance_modification_factor(self) -> None:
        """Halve ln f (respecting the 1/t floor) and reset the histogram."""
        self.n_iterations += 1
        self.iteration_steps.append(self._steps_this_iteration)
        self._steps_this_iteration = 0
        new_ln_f = self.ln_f / 2.0
        if self.schedule == "one_over_t":
            sweeps = max(1.0, self.n_steps / max(1, self.hamiltonian.n_sites))
            new_ln_f = max(new_ln_f, 1.0 / sweeps)
            if new_ln_f >= self.ln_f:  # floor reached: 1/t decays on its own
                new_ln_f = 1.0 / sweeps
        self.ln_f = new_ln_f
        self.histogram[:] = 0

    def run(self, max_steps: int | None = None, telemetry=None) -> WangLandauResult:
        """Iterate until ``ln f ≤ ln_f_final`` or ``max_steps`` is exhausted.

        ``max_steps`` defaults to ``self.cfg.max_steps``.  ``telemetry`` (a
        :class:`repro.obs.Telemetry`) is used per *WL iteration*, never per
        step, and is deliberately not stored on the sampler: walkers must
        stay cheaply picklable for process executors.  Enabling it changes
        no sampler state (bit-identity is tested).
        """
        from repro.obs.profile import contribute_profile, profile_from_env

        if max_steps is None:
            max_steps = self.cfg.max_steps
        if self.profiler is None:
            env_profiler = profile_from_env()
            if env_profiler is not None:
                self.enable_profiling(env_profiler)
        profile_before = (
            self.profiler.as_dict() if self.profiler is not None else None
        )
        span = telemetry.span("wl.run") if telemetry is not None else nullcontext()
        steps_before = self.n_steps
        with span:
            while self.n_steps < max_steps and self.ln_f > self.ln_f_final:
                budget = min(self.check_interval, max_steps - self.n_steps)
                for _ in range(budget):
                    self.step()
                if self.is_flat():
                    self.advance_modification_factor()
                    if telemetry is not None:
                        telemetry.emit(
                            "wl_iteration",
                            iteration=self.n_iterations,
                            ln_f=self.ln_f,
                            steps=self.n_steps,
                            iteration_steps=self.iteration_steps[-1],
                        )
                elif self.schedule == "one_over_t" and self.ln_f <= 1.0 / max(
                    1.0, self.n_steps / max(1, self.hamiltonian.n_sites)
                ):
                    # In the 1/t regime ln f decays with time, not with flatness.
                    sweeps = max(1.0, self.n_steps / max(1, self.hamiltonian.n_sites))
                    self.ln_f = 1.0 / sweeps
        if telemetry is not None:
            telemetry.metrics.inc("wl.steps", self.n_steps - steps_before)
        if profile_before is not None:
            contribute_profile(self.profiler.delta_since(profile_before))
            if telemetry is not None:
                self.profiler.publish(telemetry.metrics)
        return self.result()

    def result(self) -> WangLandauResult:
        ln_g = self.ln_g.copy()
        if np.any(self.visited):
            ln_g -= ln_g[self.visited].min()
        return WangLandauResult(
            grid=self.grid,
            ln_g=ln_g,
            histogram=self.histogram.copy(),
            visited=self.visited.copy(),
            converged=self.ln_f <= self.ln_f_final,
            n_steps=self.n_steps,
            n_iterations=self.n_iterations,
            final_ln_f=self.ln_f,
            acceptance_rate=self.n_accepted / self.n_steps if self.n_steps else 0.0,
            iteration_steps=list(self.iteration_steps),
            counters=replace(self.counters),
        )
