"""Multicanonical production sampling.

After Wang–Landau has converged, ``ln g`` is frozen and a production run
samples with weights ``w(E) ∝ 1/g(E)`` — a flat random walk in energy.  Two
things come out of it:

- a refined density of states: ``ln g_refined = ln g + ln H_prod`` (the
  production histogram corrects residual WL error), and
- *microcanonical* observable averages ``<O>(E)``: any observable recorded
  per energy bin can then be reweighted to arbitrary temperature through
  the density of states (this is how experiment E4 gets Warren–Cowley
  parameters as functions of T from a single run).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.proposals.base import Proposal
from repro.sampling.binning import EnergyGrid
from repro.sampling.base import register_sampler
from repro.util.rng import BufferedDraws, as_generator

__all__ = ["MulticanonicalSampler", "MulticanonicalResult"]


@dataclass
class MulticanonicalResult:
    """Production-run output.

    ``observable_means[name][k]`` is the microcanonical average of the
    observable in energy bin ``k`` (NaN where the bin was never visited).
    """

    grid: EnergyGrid
    ln_g: np.ndarray
    histogram: np.ndarray
    observable_means: dict[str, np.ndarray]
    n_steps: int
    acceptance_rate: float

    def refined_ln_g(self) -> np.ndarray:
        """WL estimate corrected by the production histogram."""
        out = np.full(self.grid.n_bins, -np.inf)
        mask = self.histogram > 0
        out[mask] = self.ln_g[mask] + np.log(self.histogram[mask])
        if np.any(mask):
            out[mask] -= out[mask].min()
        return out


@register_sampler("multicanonical")
class MulticanonicalSampler:
    """Fixed-weight flat-energy-walk sampler.

    Parameters
    ----------
    hamiltonian, proposal, grid, config, rng
        As for :class:`~repro.sampling.wang_landau.WangLandauSampler`.
    ln_g : numpy.ndarray
        Converged Wang–Landau estimate over ``grid`` (not modified).
    observables : dict[str, callable], optional
        ``name -> f(config, energy)`` scalar observables accumulated per
        energy bin.
    """

    def __init__(self, hamiltonian: Hamiltonian, proposal: Proposal, grid: EnergyGrid,
                 ln_g: np.ndarray, config: np.ndarray, rng=None, observables=None):
        ln_g = np.asarray(ln_g, dtype=np.float64)
        if ln_g.shape != (grid.n_bins,):
            raise ValueError(f"ln_g must have shape ({grid.n_bins},), got {ln_g.shape}")
        self.hamiltonian = hamiltonian
        self.proposal = proposal
        self.grid = grid
        self.ln_g = ln_g
        self.rng = BufferedDraws(as_generator(rng))
        self.config = hamiltonian.validate_config(np.array(config, copy=True))
        self.energy = float(hamiltonian.energy(self.config))
        self.current_bin = grid.index(self.energy)
        if self.current_bin < 0:
            raise ValueError(
                f"initial energy {self.energy:.6g} outside the grid; "
                "use drive_into_range"
            )
        self.observables = dict(observables or {})
        self.histogram = np.zeros(grid.n_bins, dtype=np.int64)
        self._obs_sums = {name: np.zeros(grid.n_bins) for name in self.observables}
        self.n_steps = 0
        self.n_accepted = 0

    def step(self, measure: bool = True) -> bool:
        """One multicanonical step (optionally recording observables)."""
        self.n_steps += 1
        move = self.proposal.propose(
            self.config, self.hamiltonian, self.rng, current_energy=self.energy
        )
        if move is not None:
            new_energy = self.energy + move.delta_energy
            new_bin = self.grid.index(new_energy)
            if new_bin >= 0:
                log_alpha = (
                    self.ln_g[self.current_bin] - self.ln_g[new_bin] + move.log_q_ratio
                )
                if log_alpha >= 0.0 or np.log(self.rng.random()) < log_alpha:
                    move.apply(self.config)
                    self.energy = new_energy
                    self.current_bin = new_bin
                    self.n_accepted += 1
        if measure:
            self.histogram[self.current_bin] += 1
            for name, fn in self.observables.items():
                self._obs_sums[name][self.current_bin] += float(fn(self.config, self.energy))
        return move is not None

    def run(self, n_steps: int, measure_every: int = 1) -> MulticanonicalResult:
        """Run ``n_steps`` steps, measuring every ``measure_every`` steps."""
        for k in range(n_steps):
            self.step(measure=((k + 1) % measure_every == 0))
        return self.result()

    def result(self) -> MulticanonicalResult:
        means: dict[str, np.ndarray] = {}
        with np.errstate(invalid="ignore", divide="ignore"):
            for name, sums in self._obs_sums.items():
                means[name] = np.where(
                    self.histogram > 0, sums / np.maximum(self.histogram, 1), np.nan
                )
        return MulticanonicalResult(
            grid=self.grid,
            ln_g=self.ln_g.copy(),
            histogram=self.histogram.copy(),
            observable_means=means,
            n_steps=self.n_steps,
            acceptance_rate=self.n_accepted / self.n_steps if self.n_steps else 0.0,
        )
