"""Energy binning for flat-histogram sampling.

Two modes:

- **uniform** — ``n_bins`` equal-width bins over ``[e_min, e_max]``; the
  right edge is inclusive so the ground state is never dropped;
- **levels** — one bin per known discrete energy level (exact for small
  Ising/Potts systems, where levels are spaced by the coupling).

Both expose the same interface: :meth:`index` maps an energy to a bin (−1
when outside), :attr:`centers` are the representative energies used by the
thermodynamics post-processing.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_integer

__all__ = ["EnergyGrid"]


class EnergyGrid:
    """Energy → bin mapping.

    Use :meth:`uniform` or :meth:`from_levels` instead of the constructor.
    """

    def __init__(self, edges: np.ndarray | None, levels: np.ndarray | None, tol: float):
        self._edges = edges
        self._levels = levels
        self._tol = tol
        if (edges is None) == (levels is None):
            raise ValueError("exactly one of edges/levels must be provided")

    # ------------------------------------------------------------- builders

    @classmethod
    def uniform(cls, e_min: float, e_max: float, n_bins: int) -> "EnergyGrid":
        """Equal-width bins covering ``[e_min, e_max]``."""
        n_bins = check_integer("n_bins", n_bins, minimum=1)
        if not e_max > e_min:
            raise ValueError(f"need e_max > e_min, got [{e_min}, {e_max}]")
        return cls(np.linspace(e_min, e_max, n_bins + 1), None, 0.0)

    @classmethod
    def from_levels(cls, levels, tol: float = 1e-6) -> "EnergyGrid":
        """One bin per discrete energy level (must be sorted-unique-able)."""
        levels = np.unique(np.asarray(levels, dtype=np.float64))
        if levels.size == 0:
            raise ValueError("levels must be non-empty")
        if levels.size > 1 and np.min(np.diff(levels)) <= 2 * tol:
            raise ValueError("levels closer than 2*tol cannot be distinguished")
        return cls(None, levels, float(tol))

    # ------------------------------------------------------------ interface

    @property
    def is_levels(self) -> bool:
        return self._levels is not None

    @property
    def n_bins(self) -> int:
        return len(self._levels) if self.is_levels else len(self._edges) - 1

    @property
    def e_min(self) -> float:
        return float(self._levels[0] if self.is_levels else self._edges[0])

    @property
    def e_max(self) -> float:
        return float(self._levels[-1] if self.is_levels else self._edges[-1])

    @property
    def centers(self) -> np.ndarray:
        """Representative energy per bin."""
        if self.is_levels:
            return self._levels.copy()
        return 0.5 * (self._edges[:-1] + self._edges[1:])

    @property
    def widths(self) -> np.ndarray:
        """Bin widths (levels mode reports the level spacing's lower bound)."""
        if self.is_levels:
            if len(self._levels) == 1:
                return np.array([0.0])
            return np.diff(self._levels, append=self._levels[-1] + (self._levels[-1] - self._levels[-2]))
        return np.diff(self._edges)

    def index(self, energy: float) -> int:
        """Bin index of ``energy``; −1 when outside the grid."""
        if self.is_levels:
            k = int(np.searchsorted(self._levels, energy))
            for cand in (k - 1, k):
                if 0 <= cand < len(self._levels) and abs(self._levels[cand] - energy) <= self._tol:
                    return cand
            return -1
        if energy < self._edges[0] or energy > self._edges[-1]:
            return -1
        k = int(np.searchsorted(self._edges, energy, side="right")) - 1
        return min(k, self.n_bins - 1)  # right edge inclusive

    def index_array(self, energies: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`index`."""
        energies = np.asarray(energies, dtype=np.float64)
        if self.is_levels:
            levels = self._levels
            k = np.searchsorted(levels, energies)
            lo = np.maximum(k - 1, 0)  # preferred candidate, as in index()
            hi = np.minimum(k, len(levels) - 1)
            return np.where(
                np.abs(levels[lo] - energies) <= self._tol, lo,
                np.where(np.abs(levels[hi] - energies) <= self._tol, hi, -1),
            ).astype(np.int64, copy=False)
        out = np.searchsorted(self._edges, energies, side="right") - 1
        out = np.minimum(out, self.n_bins - 1)
        outside = (energies < self._edges[0]) | (energies > self._edges[-1])
        return np.where(outside, -1, out).astype(np.int64)

    def contains(self, energy: float) -> bool:
        return self.index(energy) >= 0

    def subgrid(self, lo_bin: int, hi_bin: int) -> "EnergyGrid":
        """Contiguous sub-range of bins ``[lo_bin, hi_bin]`` as a new grid.

        This is how REWL energy windows are cut from the global grid, so
        window bin centers always align with global bin centers.
        """
        if not 0 <= lo_bin <= hi_bin < self.n_bins:
            raise ValueError(
                f"invalid bin range [{lo_bin}, {hi_bin}] for {self.n_bins} bins"
            )
        if self.is_levels:
            return EnergyGrid(None, self._levels[lo_bin : hi_bin + 1].copy(), self._tol)
        return EnergyGrid(self._edges[lo_bin : hi_bin + 2].copy(), None, 0.0)

    def __repr__(self) -> str:
        kind = "levels" if self.is_levels else "uniform"
        return (
            f"EnergyGrid({kind}, n_bins={self.n_bins}, "
            f"range=[{self.e_min:.6g}, {self.e_max:.6g}])"
        )
