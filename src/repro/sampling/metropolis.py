"""Metropolis–Hastings sampling at fixed inverse temperature.

Acceptance rule (log domain)::

    ln u < −β·ΔE + [log q(x|x') − log q(x'|x)]

The second term is the proposal's ``log_q_ratio``; for the classical
symmetric kernels it is identically 0 and the rule reduces to textbook
Metropolis.  Proposals returning ``None`` (e.g. a rejection-mode DL proposal
that missed the composition manifold) count as rejected steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.proposals.base import Proposal
from repro.sampling.base import register_sampler
from repro.util.rng import BufferedDraws, as_generator

__all__ = ["MetropolisSampler", "RunStats"]


@dataclass
class RunStats:
    """Counters for one :meth:`MetropolisSampler.run` call."""

    n_steps: int = 0
    n_accepted: int = 0
    n_null: int = 0  # proposal produced no move
    energies: np.ndarray | None = None

    @property
    def acceptance_rate(self) -> float:
        return self.n_accepted / self.n_steps if self.n_steps else 0.0


@register_sampler("metropolis")
class MetropolisSampler:
    """Single-chain Metropolis–Hastings sampler.

    Parameters
    ----------
    hamiltonian : Hamiltonian
    proposal : Proposal
    beta : float
        Inverse temperature (1/energy units of the Hamiltonian).
    config : numpy.ndarray
        Initial configuration (copied).
    rng : seed or Generator
    require_canonical : bool
        When True (default for multi-species models), reject proposals that
        change composition at construction time.
    """

    def __init__(self, hamiltonian: Hamiltonian, proposal: Proposal, beta: float,
                 config: np.ndarray, rng=None, require_canonical: bool = False):
        if beta < 0:
            raise ValueError(f"beta must be >= 0, got {beta}")
        if require_canonical and not proposal.preserves_composition:
            raise ValueError(
                f"proposal {proposal.name!r} does not preserve composition but "
                "require_canonical=True"
            )
        self.hamiltonian = hamiltonian
        self.proposal = proposal
        self.beta = float(beta)
        self.config = hamiltonian.validate_config(np.array(config, copy=True))
        self.rng = BufferedDraws(as_generator(rng))
        self.energy = float(hamiltonian.energy(self.config))
        self.total_steps = 0
        self.total_accepted = 0

    # ----------------------------------------------------------------- step

    def step(self) -> bool:
        """One MH step; returns True when the move was accepted."""
        move = self.proposal.propose(
            self.config, self.hamiltonian, self.rng, current_energy=self.energy
        )
        self.total_steps += 1
        if move is None:
            return False
        log_alpha = -self.beta * move.delta_energy + move.log_q_ratio
        if log_alpha >= 0.0 or np.log(self.rng.random()) < log_alpha:
            move.apply(self.config)
            self.energy += move.delta_energy
            self.total_accepted += 1
            return True
        return False

    # ------------------------------------------------------------------ run

    def run(self, n_steps: int, record_energy_every: int = 0,
            callback=None, callback_every: int = 1) -> RunStats:
        """Run ``n_steps`` MH steps.

        Parameters
        ----------
        n_steps : int
        record_energy_every : int
            When > 0, record the energy every that many steps into
            ``stats.energies``.
        callback : callable, optional
            ``callback(sampler, step_index)`` invoked every
            ``callback_every`` steps (configuration harvesting, tracing).
        """
        stats = RunStats()
        trace = [] if record_energy_every > 0 else None
        for k in range(n_steps):
            accepted = self.step()
            stats.n_steps += 1
            stats.n_accepted += int(accepted)
            if trace is not None and (k + 1) % record_energy_every == 0:
                trace.append(self.energy)
            if callback is not None and (k + 1) % callback_every == 0:
                callback(self, k)
        if trace is not None:
            stats.energies = np.asarray(trace)
        return stats

    def run_sweeps(self, n_sweeps: int, **kwargs) -> RunStats:
        """Run ``n_sweeps`` sweeps (one sweep = ``n_sites`` steps)."""
        return self.run(n_sweeps * self.hamiltonian.n_sites, **kwargs)

    # ----------------------------------------------------------- diagnostics

    @property
    def acceptance_rate(self) -> float:
        """Lifetime acceptance rate of this sampler."""
        return self.total_accepted / self.total_steps if self.total_steps else 0.0

    def resync_energy(self) -> float:
        """Recompute the energy from scratch (guards against drift).

        Returns the absolute drift; the test suite asserts it stays at
        roundoff level over long runs.
        """
        fresh = float(self.hamiltonian.energy(self.config))
        drift = abs(fresh - self.energy)
        self.energy = fresh
        return drift
