"""The unified Sampler protocol and sampler registry.

Every sampler in :mod:`repro.sampling` — Metropolis, Wang-Landau (scalar
and batched), multicanonical, parallel tempering, Wolff — exposes the same
entry point::

    sampler.run(...) -> Result

where the result is a dataclass specific to the algorithm (``RunStats``,
``WangLandauResult``, ...).  :class:`Sampler` captures that contract as a
``runtime_checkable`` :class:`typing.Protocol`: experiment drivers and
tests type against it instead of importing module-private helpers, and
``isinstance(obj, Sampler)`` verifies third-party samplers structurally.

The registry maps stable string names to sampler classes so configuration
files and CLIs can select an algorithm without importing its module::

    cls = get_sampler("wang_landau")
    sampler = make_sampler("metropolis", hamiltonian=..., ...)
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["Sampler", "SAMPLERS", "register_sampler", "get_sampler", "make_sampler"]


@runtime_checkable
class Sampler(Protocol):
    """Structural type of every MC sampler: a ``run()`` producing a result.

    Signatures vary by algorithm (``run(n_steps)``, ``run(max_steps=...)``,
    ``run(n_rounds, steps_per_round)``...), so the protocol constrains the
    entry-point *name*, not its parameters — the per-algorithm result
    dataclasses carry the typed payload.
    """

    def run(self, *args, **kwargs): ...


#: Stable-name → sampler-class registry (populated by ``register_sampler``).
SAMPLERS: dict[str, type] = {}


def register_sampler(name: str):
    """Class decorator adding a sampler to :data:`SAMPLERS` under ``name``."""

    def _register(cls: type) -> type:
        if not isinstance(cls, type) or not callable(getattr(cls, "run", None)):
            raise TypeError(f"{cls!r} does not satisfy the Sampler protocol")
        existing = SAMPLERS.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"sampler name {name!r} already registered ({existing})")
        SAMPLERS[name] = cls
        return cls

    return _register


def get_sampler(name: str) -> type:
    """Look up a registered sampler class by its stable name."""
    try:
        return SAMPLERS[name]
    except KeyError:
        raise KeyError(
            f"unknown sampler {name!r}; registered: {sorted(SAMPLERS)}"
        ) from None


def make_sampler(name: str, **kwargs):
    """Construct a registered sampler by name with keyword arguments."""
    return get_sampler(name)(**kwargs)
