"""Parallel tempering (replica-exchange Metropolis) — serial reference.

Maintains one Metropolis chain per inverse temperature and periodically
attempts configuration exchanges between adjacent temperatures with the
exact replica-exchange rule::

    ln u < (β_i − β_j)(E_i − E_j)

Even/odd pair alternation avoids exchange deadlock.  This serial version is
the reference implementation; :mod:`repro.parallel.tempering` runs the same
algorithm over the communicator (and the two are asserted bit-identical in
the integration tests, rank-for-rank).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.proposals.base import Proposal
from repro.sampling.metropolis import MetropolisSampler
from repro.sampling.base import register_sampler
from repro.util.rng import RngFactory

__all__ = ["ParallelTempering", "TemperingResult"]


@dataclass
class TemperingResult:
    """Per-replica traces and exchange statistics."""

    betas: np.ndarray
    energies: np.ndarray  # (n_records, n_replicas)
    exchange_attempts: np.ndarray  # per adjacent pair
    exchange_accepts: np.ndarray
    acceptance_rates: np.ndarray  # per replica (within-chain)

    @property
    def exchange_rates(self) -> np.ndarray:
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self.exchange_attempts > 0,
                self.exchange_accepts / np.maximum(self.exchange_attempts, 1),
                np.nan,
            )


@register_sampler("tempering")
class ParallelTempering:
    """Replica-exchange Metropolis over a β ladder.

    Parameters
    ----------
    hamiltonian : Hamiltonian
    proposal_factory : callable
        ``proposal_factory(replica_index) -> Proposal`` (a fresh proposal
        per replica; stateful proposals must not be shared).
    betas : array_like
        Inverse-temperature ladder (any order; stored as given).
    configs : array_like, shape (n_replicas, n_sites)
        Initial configurations.
    seed : int
        Root seed; replicas get independent child streams.
    """

    def __init__(self, hamiltonian: Hamiltonian, proposal_factory, betas, configs, seed=0):
        self.betas = np.asarray(betas, dtype=np.float64)
        if self.betas.ndim != 1 or len(self.betas) < 2:
            raise ValueError("betas must be a 1-D ladder with at least 2 entries")
        configs = np.asarray(configs)
        if configs.shape != (len(self.betas), hamiltonian.n_sites):
            raise ValueError(
                f"configs must have shape ({len(self.betas)}, {hamiltonian.n_sites}), "
                f"got {configs.shape}"
            )
        factory = RngFactory(seed)
        self.chains = [
            MetropolisSampler(
                hamiltonian,
                proposal_factory(k),
                float(self.betas[k]),
                configs[k],
                rng=factory.make("pt-chain", k),
            )
            for k in range(len(self.betas))
        ]
        # Exchange randomness is keyed by (round, lower replica) so the
        # distributed rank program (repro.parallel.tempering) can reproduce
        # the exact same decisions without extra messages.
        self._rng_factory = factory
        self.exchange_attempts = np.zeros(len(self.betas) - 1, dtype=np.int64)
        self.exchange_accepts = np.zeros(len(self.betas) - 1, dtype=np.int64)
        self._round = 0

    @property
    def n_replicas(self) -> int:
        return len(self.chains)

    def exchange_sweep(self) -> None:
        """Attempt exchanges on alternating even/odd adjacent pairs."""
        start = self._round % 2
        round_k = self._round
        self._round += 1
        for left in range(start, self.n_replicas - 1, 2):
            right = left + 1
            self.exchange_attempts[left] += 1
            ci, cj = self.chains[left], self.chains[right]
            log_alpha = (ci.beta - cj.beta) * (ci.energy - cj.energy)
            u = self._rng_factory.make("pt-pair", round_k * 1_000_003 + left).random()
            if log_alpha >= 0.0 or np.log(u) < log_alpha:
                ci.config, cj.config = cj.config, ci.config
                ci.energy, cj.energy = cj.energy, ci.energy
                self.exchange_accepts[left] += 1

    def run(self, n_rounds: int, steps_per_round: int, record: bool = True) -> TemperingResult:
        """Alternate ``steps_per_round`` MH steps per replica with exchanges."""
        records = []
        for _ in range(n_rounds):
            for chain in self.chains:
                chain.run(steps_per_round)
            self.exchange_sweep()
            if record:
                records.append([chain.energy for chain in self.chains])
        return TemperingResult(
            betas=self.betas.copy(),
            energies=np.asarray(records) if records else np.empty((0, self.n_replicas)),
            exchange_attempts=self.exchange_attempts.copy(),
            exchange_accepts=self.exchange_accepts.copy(),
            acceptance_rates=np.array([c.acceptance_rate for c in self.chains]),
        )
