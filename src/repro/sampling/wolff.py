"""Wolff cluster sampling for the Ising model.

The classical answer to "local proposals decorrelate too slowly": at inverse
temperature β, grow a cluster of aligned spins by adding each aligned
neighbor with probability ``p = 1 − exp(−2βJ)`` and flip the whole cluster
(always accepted — the cluster construction satisfies detailed balance by
itself, Wolff 1989).  Included as the strongest *non-learned* baseline the
DL proposals are compared against in the E5/E6 ablations: Wolff beats local
flips near criticality but is model-specific (two-state, symmetric,
zero-field Ising), whereas the learned proposals are generic — exactly the
paper's motivation ("the lack of a generic method to update the system
configurations").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hamiltonians.ising import IsingHamiltonian
from repro.sampling.base import register_sampler
from repro.util.rng import BufferedDraws, as_generator

__all__ = ["WolffSampler", "WolffStats"]


@dataclass
class WolffStats:
    """Counters for one :meth:`WolffSampler.run` call."""

    n_clusters: int = 0
    total_flipped: int = 0
    energies: np.ndarray | None = None

    @property
    def mean_cluster_size(self) -> float:
        return self.total_flipped / self.n_clusters if self.n_clusters else 0.0


@register_sampler("wolff")
class WolffSampler:
    """Cluster-flip sampler for zero-field ferromagnetic Ising models.

    Parameters
    ----------
    hamiltonian : IsingHamiltonian
        Must have ``external_field == 0`` and ``coupling > 0`` (the cluster
        rule below is only valid there; other cases raise).
    beta : float
        Inverse temperature.
    config : numpy.ndarray
        Initial spin configuration (species 0/1).
    rng : seed or Generator
    """

    def __init__(self, hamiltonian: IsingHamiltonian, beta: float,
                 config: np.ndarray, rng=None):
        if not isinstance(hamiltonian, IsingHamiltonian):
            raise TypeError("WolffSampler requires an IsingHamiltonian")
        if hamiltonian.external_field != 0.0:
            raise ValueError("Wolff clusters are only valid at zero field")
        if hamiltonian.coupling <= 0.0:
            raise ValueError("Wolff clusters require ferromagnetic coupling")
        if beta < 0:
            raise ValueError(f"beta must be >= 0, got {beta}")
        self.hamiltonian = hamiltonian
        self.beta = float(beta)
        self.config = hamiltonian.validate_config(np.array(config, copy=True))
        self.rng = BufferedDraws(as_generator(rng))
        self.energy = float(hamiltonian.energy(self.config))
        self.p_add = 1.0 - np.exp(-2.0 * self.beta * hamiltonian.coupling)
        self._table = hamiltonian.lattice.neighbor_shells(1)[0].table
        self.n_clusters = 0
        self.total_flipped = 0

    def step(self) -> int:
        """Grow and flip one Wolff cluster; returns the cluster size."""
        n = self.hamiltonian.n_sites
        seed = self.rng.integers(n)
        spin = self.config[seed]
        in_cluster = np.zeros(n, dtype=bool)
        in_cluster[seed] = True
        stack = [seed]
        while stack:
            site = stack.pop()
            for nbr in self._table[site]:
                if not in_cluster[nbr] and self.config[nbr] == spin:
                    if self.rng.random() < self.p_add:
                        in_cluster[nbr] = True
                        stack.append(int(nbr))
        sites = np.nonzero(in_cluster)[0]
        # Flip via incremental ΔE only across the cluster boundary: compute
        # exactly by energy difference of the flipped block.
        new_values = (1 - self.config[sites]).astype(self.config.dtype)
        before = self.energy
        self.config[sites] = new_values
        # Boundary-only recompute: bonds with exactly one endpoint flipped
        # change sign; the cheap exact update is a partial energy around the
        # cluster (still O(cluster · z), not O(N)).
        self.energy = self._energy_after_flip(before, sites)
        self.n_clusters += 1
        self.total_flipped += len(sites)
        return int(len(sites))

    def _energy_after_flip(self, energy_before: float, sites: np.ndarray) -> float:
        """Exact energy update after flipping ``sites`` (already applied).

        Every bond with exactly one endpoint in the cluster flips sign; its
        post-flip contribution is ``−J·s_i·s_j``, so
        ``E_after = E_before − 2·Σ_boundary (−J·s_i^new·s_j)`` ... computed
        directly from the post-flip configuration for clarity:
        ``ΔE = −2·Σ_boundary J·s_i^new·s_j``.
        """
        j = self.hamiltonian.coupling
        spins = IsingHamiltonian.spins(self.config)
        in_cluster = np.zeros(self.hamiltonian.n_sites, dtype=bool)
        in_cluster[sites] = True
        nbrs = self._table[sites]  # (c, z)
        boundary = ~in_cluster[nbrs]
        # Post-flip bond energy across the boundary: -J s_i s_j; before the
        # flip it was +J s_i s_j (endpoint sign flipped), so ΔE = -2J Σ s_i s_j.
        contrib = (spins[sites][:, None] * spins[nbrs]) * boundary
        delta = -2.0 * j * float(contrib.sum())
        return energy_before + delta

    def run(self, n_clusters: int, record_energy_every: int = 0) -> WolffStats:
        """Flip ``n_clusters`` clusters."""
        stats = WolffStats()
        trace = [] if record_energy_every > 0 else None
        for k in range(n_clusters):
            size = self.step()
            stats.n_clusters += 1
            stats.total_flipped += size
            if trace is not None and (k + 1) % record_energy_every == 0:
                trace.append(self.energy)
        if trace is not None:
            stats.energies = np.asarray(trace)
        return stats

    def resync_energy(self) -> float:
        """Recompute the energy from scratch; returns the drift."""
        fresh = float(self.hamiltonian.energy(self.config))
        drift = abs(fresh - self.energy)
        self.energy = fresh
        return drift
