"""Monte Carlo samplers (S5).

All samplers consume any :class:`~repro.hamiltonians.base.Hamiltonian` and
any :class:`~repro.proposals.base.Proposal`; acceptance rules include the
proposal's ``log_q_ratio`` term so learned (asymmetric) proposals remain
exact.  Every sampler satisfies the :class:`Sampler` protocol
(``run(...) -> Result``) and is registered by stable name in
:data:`SAMPLERS` — import from this package, not from the submodules.

- :class:`MetropolisSampler` — canonical sampling at fixed β,
- :class:`WangLandauSampler` — flat-histogram estimation of ln g(E)
  (standard halving and 1/t modification-factor schedules), tuned through
  :class:`WLConfig`,
- :class:`BatchedWangLandauSampler` / :func:`make_wang_landau` — batched
  multi-walker WL stepping against a shared ln g
  (``WLConfig(batch_size=K)``),
- :class:`MulticanonicalSampler` — production run with fixed 1/g(E) weights
  (microcanonical observable accumulation),
- :class:`ParallelTempering` — serial reference replica-exchange Metropolis
  (the distributed version lives in :mod:`repro.parallel`),
- :class:`WolffSampler` — cluster updates for the Ising validation model,
- :class:`EnergyGrid` — uniform or level-based energy binning,
- :func:`drive_into_range` — steers a configuration into an energy window
  (REWL walker initialization).
"""

from repro.sampling.base import (
    SAMPLERS,
    Sampler,
    get_sampler,
    make_sampler,
    register_sampler,
)
from repro.sampling.binning import EnergyGrid
from repro.sampling.metropolis import MetropolisSampler, RunStats
from repro.sampling.wang_landau import (
    WalkerCounters,
    WangLandauSampler,
    WangLandauResult,
    WLConfig,
    drive_into_range,
)
from repro.sampling.batched import BatchedWangLandauSampler, make_wang_landau
from repro.sampling.multicanonical import MulticanonicalSampler, MulticanonicalResult
from repro.sampling.tempering import ParallelTempering, TemperingResult
from repro.sampling.wolff import WolffSampler, WolffStats

__all__ = [
    "SAMPLERS",
    "Sampler",
    "get_sampler",
    "make_sampler",
    "register_sampler",
    "EnergyGrid",
    "MetropolisSampler",
    "RunStats",
    "WalkerCounters",
    "WLConfig",
    "WangLandauSampler",
    "WangLandauResult",
    "BatchedWangLandauSampler",
    "make_wang_landau",
    "drive_into_range",
    "MulticanonicalSampler",
    "MulticanonicalResult",
    "ParallelTempering",
    "TemperingResult",
    "WolffSampler",
    "WolffStats",
]
