"""Batched multi-walker Wang–Landau stepping.

:class:`BatchedWangLandauSampler` steps B walkers *of the same energy
window* together against one shared ``ln g`` / histogram.  Each super-step
is split into a vectorized phase and a sequential phase:

- **vectorized** (amortized over B): proposal generation
  (:meth:`~repro.proposals.base.Proposal.propose_many` → array RNG draws +
  the ``delta_energy_*_many`` kernels of :mod:`repro.kernels`), bin lookup
  (:meth:`EnergyGrid.index_array`), and the acceptance noise
  ``ln u ~ log U(0,1)^B``;
- **sequential** (cheap scalar loop): the accept/reject decision and the
  ``ln g``/histogram commit, walker by walker.

The commit **must** stay sequential: Wang-Landau acceptance compares ``ln
g`` at the current and proposed bins, and walker ``b``'s decision has to
see the ``ln f`` increments walkers ``0..b-1`` just deposited — committing
the whole batch against a stale ``ln g`` snapshot is a different (biased)
update rule.  Sequential commits make a super-step exactly equivalent to B
round-robin scalar WL steps of a shared-``ln g`` team, which is the
established multiple-walkers-per-window REWL scheme (Vogel et al. 2013), so
the convergence guarantees carry over unchanged (E1-tested in
``tests/test_batched_wl.py``).

What batching changes is only *which* serial trajectory is realized: RNG
draws are array-shaped (one draw per field per super-step) rather than the
scalar sampler's per-step draw sequence.  ``batch_size=1`` therefore does
not use this class at all — :func:`make_wang_landau` returns the plain
scalar :class:`WangLandauSampler`, keeping single-walker runs bit-identical
to the pre-kernel implementation.

The deep-learning proposals batch the same entry point: their
``propose_many`` overrides (DESIGN.md §12) run one model sampling pass, one
density-scoring forward and one batched full-config energy evaluation per
walker team, so a DL-driven (or mixture) batched chain amortizes the model
cost over B walkers exactly like the local kernels amortize ΔE — the
``tests/test_dl_batched.py`` E1-style test pins that this path still
reproduces exact enumeration.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import replace

import numpy as np

from repro.sampling.base import register_sampler
from repro.sampling.wang_landau import (
    WalkerCounters,
    WangLandauResult,
    WangLandauSampler,
    WLConfig,
    _resolve_wl_args,
)
from repro.util.rng import as_generator

__all__ = ["BatchedWangLandauSampler", "make_wang_landau"]


def make_wang_landau(*args, **kwargs):
    """Construct the right WL sampler for ``config.batch_size``.

    ``batch_size <= 1`` returns the scalar :class:`WangLandauSampler`
    (bit-identical trajectories); ``batch_size = K > 1`` returns a
    :class:`BatchedWangLandauSampler` stepping K walkers per super-step.
    Accepts the same keyword arguments as the samplers themselves.
    """
    resolved, cfg = _resolve_wl_args("make_wang_landau", args, dict(kwargs))
    initial = np.asarray(resolved["initial_config"])
    if cfg.batch_size <= 1:
        if initial.ndim == 2:
            if initial.shape[0] != 1:
                raise ValueError(
                    f"batch_size=1 but initial_config has {initial.shape[0]} rows"
                )
            initial = initial[0]
        return WangLandauSampler(
            hamiltonian=resolved["hamiltonian"], proposal=resolved["proposal"],
            grid=resolved["grid"], initial_config=initial,
            rng=resolved.get("rng"), config=cfg,
        )
    return BatchedWangLandauSampler(
        hamiltonian=resolved["hamiltonian"], proposal=resolved["proposal"],
        grid=resolved["grid"], initial_config=initial,
        rng=resolved.get("rng"), config=cfg,
    )


@register_sampler("batched_wang_landau")
class BatchedWangLandauSampler:
    """B walkers of one window sharing a single ``ln g`` estimate.

    Keyword-only construction, mirroring :class:`WangLandauSampler`::

        BatchedWangLandauSampler(
            hamiltonian=ham, proposal=prop, grid=window_grid,
            initial_config=configs,          # (B, n_sites) or (n_sites,)
            rng=seed, config=WLConfig(batch_size=B),
        )

    A 1-D ``initial_config`` is tiled to ``config.batch_size`` rows; a 2-D
    one fixes B directly.  All rows must start inside ``grid``.

    The flatness/schedule surface (``is_flat``, ``advance_modification_
    factor``, ``ln_f``, ``n_iterations``, ``histogram``, ``visited``,
    ``counters``) matches the scalar sampler, so the REWL driver, health
    monitor, and checkpoints treat a batched team as one walker-shaped
    object; per-walker state is reached through the ``slot_*`` accessors
    (replica exchange swaps individual slots).  ``n_steps`` counts *walker*
    steps — one super-step adds B.
    """

    def __init__(self, *args, **kwargs):
        kwargs, cfg = _resolve_wl_args(type(self).__name__, args, kwargs)
        hamiltonian = kwargs["hamiltonian"]
        grid = kwargs["grid"]
        initial = np.asarray(kwargs["initial_config"])
        if initial.ndim == 1:
            configs = np.tile(initial, (max(1, cfg.batch_size), 1))
        else:
            configs = np.array(initial, copy=True)
        if cfg.batch_size != configs.shape[0]:
            cfg = replace(cfg, batch_size=configs.shape[0])
        self.cfg = cfg
        self.hamiltonian = hamiltonian
        self.proposal = kwargs["proposal"]
        self.grid = grid
        self.rng = as_generator(kwargs.get("rng"))
        for row in configs:
            hamiltonian.validate_config(row)
        self.configs = configs
        self.energies = hamiltonian.energies(configs)
        self.bins = grid.index_array(self.energies).astype(np.int64)
        if (self.bins < 0).any():
            bad = int(np.argmax(self.bins < 0))
            raise ValueError(
                f"initial energy {self.energies[bad]:.6g} (walker {bad}) lies "
                f"outside the grid [{grid.e_min:.6g}, {grid.e_max:.6g}]; use "
                "drive_into_range"
            )
        self.ln_f = float(cfg.ln_f_init)
        self.ln_f_final = float(cfg.ln_f_final)
        self.flatness = float(cfg.flatness)
        self.schedule = cfg.schedule
        self.check_interval = (
            max(1000, 100 * grid.n_bins)
            if cfg.check_interval is None
            else int(cfg.check_interval)
        )

        n = grid.n_bins
        self.ln_g = np.zeros(n)
        self.histogram = np.zeros(n, dtype=np.int64)
        self.visited = np.zeros(n, dtype=bool)
        self.n_steps = 0
        self.n_accepted = 0
        self.n_iterations = 0
        self.iteration_steps: list[int] = []
        self._steps_this_iteration = 0
        self.slot_accepted = np.zeros(self.n_slots, dtype=np.int64)
        self.slot_steps = np.zeros(self.n_slots, dtype=np.int64)
        self.counters = WalkerCounters()
        self.profiler = None
        if cfg.profile_sample_every:
            from repro.obs.profile import SectionProfiler

            self.enable_profiling(SectionProfiler(sample_every=cfg.profile_sample_every))

    # ----------------------------------------------------------------- slots

    @property
    def n_slots(self) -> int:
        """Number of walkers stepped per super-step."""
        return int(self.configs.shape[0])

    def slot_energy(self, k: int) -> float:
        return float(self.energies[k])

    def slot_bin(self, k: int) -> int:
        return int(self.bins[k])

    def slot_config(self, k: int) -> np.ndarray:
        """Walker ``k``'s configuration (a view — copy before mutating)."""
        return self.configs[k]

    def set_slot(self, k: int, config: np.ndarray, energy: float, bin_index: int) -> None:
        """Overwrite walker ``k``'s state (replica exchange)."""
        self.configs[k] = config
        self.energies[k] = energy
        self.bins[k] = bin_index

    def enable_profiling(self, profiler) -> None:
        """Attach a section profiler (same contract as the scalar sampler)."""
        if self.profiler is not None:
            raise RuntimeError("profiling is already enabled on this walker")
        self.profiler = profiler
        self.hamiltonian = self.hamiltonian.profiled(profiler)
        self.proposal = self.proposal.profiled(profiler)

    # ----------------------------------------------------------------- step

    def step_batch(self) -> int:
        """One super-step: every walker takes one WL step.  Returns accepts.

        Proposal generation, ΔE, bin lookup and the acceptance noise are
        vectorized over walkers; the accept/reject + ln g commit runs
        walker-by-walker so each decision sees every earlier commit (see
        the module docstring for why that ordering is load-bearing).
        """
        batch = self.proposal.propose_many(
            self.configs, self.hamiltonian, self.rng, current_energies=self.energies
        )
        return self.commit_batch(batch)

    def commit_batch(self, batch) -> int:
        """Decide and commit a prepared :class:`BatchMove`.  Returns accepts.

        The back half of :meth:`step_batch`, split out so the fused REWL
        super-step (:mod:`repro.parallel.fused`) can price many teams' moves
        with one stacked gather and still commit each team here.  This draws
        the acceptance noise from ``self.rng`` — after the proposal's own
        field draws, exactly where :meth:`step_batch` drew it — so the fused
        and per-window paths consume each team's stream identically.
        """
        n_rows = self.n_slots
        new_energies = self.energies + batch.delta_energies
        new_bins = self.grid.index_array(new_energies).tolist()
        ln_u = np.log(self.rng.random(n_rows)).tolist()
        log_q = batch.log_q_ratios.tolist()
        valid = None if batch.valid is None else batch.valid.tolist()

        prof = self.profiler
        t0 = prof.start("wl.batch_commit") if prof is not None else None
        # Scalar indexing dominates the sequential commit, so it runs on
        # plain Python lists; array state is written back vectorized below.
        ln_g = self.ln_g.tolist()
        bins = self.bins.tolist()
        ln_f = self.ln_f
        accepted_rows: list[int] = []
        n_null = n_out = 0
        for b in range(n_rows):
            if valid is not None and not valid[b]:
                n_null += 1
            else:
                nb = new_bins[b]
                if nb < 0:
                    n_out += 1
                else:
                    cur = bins[b]
                    log_alpha = ln_g[cur] - ln_g[nb] + log_q[b]
                    if log_alpha >= 0.0 or ln_u[b] < log_alpha:
                        bins[b] = nb
                        accepted_rows.append(b)
            # Update the (possibly unchanged) current bin — mandatory for WL.
            cur = bins[b]
            ln_g[cur] += ln_f
        deposits = np.asarray(bins)  # each walker's post-decision bin
        self.ln_g[:] = ln_g
        self.bins[:] = deposits  # in place: fused teams hold views here
        self.histogram += np.bincount(deposits, minlength=self.grid.n_bins)
        self.visited[deposits] = True
        accepted = len(accepted_rows)
        if accepted:
            acc = np.asarray(accepted_rows)
            self.configs[acc[:, None], batch.sites[acc]] = batch.new_values[acc]
            self.energies[acc] = new_energies[acc]
            self.slot_accepted[acc] += 1
        if prof is not None:
            prof.stop("wl.batch_commit", t0)
        counters = self.counters
        counters.null_proposals += n_null
        counters.proposals += n_rows - n_null
        counters.out_of_grid += n_out
        counters.accepted += accepted
        self.n_accepted += accepted
        self.n_steps += n_rows
        self._steps_this_iteration += n_rows
        self.slot_steps += 1
        return accepted

    def steps(self, n_steps_per_walker: int) -> None:
        """Run ``n_steps_per_walker`` super-steps (the REWL advance phase)."""
        for _ in range(n_steps_per_walker):
            self.step_batch()

    # ----------------------------------------------------------- iteration

    def is_flat(self) -> bool:
        """Histogram flatness over the reachable-bin set (shared histogram)."""
        prof = self.profiler
        t0 = prof.start("wl.flat_check") if prof is not None else None
        mask = self.visited
        flat = False
        if np.any(mask):
            h = self.histogram[mask]
            if not np.any(h == 0):
                flat = float(h.min()) >= self.flatness * float(h.mean())
        if prof is not None:
            prof.stop("wl.flat_check", t0)
        if flat:
            self.counters.flat_checks_passed += 1
        else:
            self.counters.flat_checks_failed += 1
        return flat

    def flatness_fraction(self) -> float:
        """min/mean of the shared visit histogram over visited bins.

        Same continuous diagnostic as the scalar sampler's
        :meth:`WangLandauSampler.flatness_fraction`; pure read, no counters.
        """
        mask = self.visited
        if not np.any(mask):
            return 0.0
        h = self.histogram[mask]
        mean = float(h.mean())
        return float(h.min()) / mean if mean > 0 else 0.0

    def fill_fraction(self) -> float:
        """Fraction of this window's bins visited so far (pure read)."""
        n = self.visited.shape[0]
        return float(np.count_nonzero(self.visited)) / n if n else 0.0

    def advance_modification_factor(self) -> None:
        """Halve ln f (respecting the 1/t floor) and reset the histogram.

        The 1/t floor uses *total* walker steps across slots — with a shared
        histogram receiving B deposits per super-step, total steps is the
        quantity the Belardinelli–Pereyra argument applies to.
        """
        self.n_iterations += 1
        self.iteration_steps.append(self._steps_this_iteration)
        self._steps_this_iteration = 0
        new_ln_f = self.ln_f / 2.0
        if self.schedule == "one_over_t":
            sweeps = max(1.0, self.n_steps / max(1, self.hamiltonian.n_sites))
            new_ln_f = max(new_ln_f, 1.0 / sweeps)
            if new_ln_f >= self.ln_f:
                new_ln_f = 1.0 / sweeps
        self.ln_f = new_ln_f
        self.histogram[:] = 0

    # ------------------------------------------------------------------ run

    def run(self, max_steps: int | None = None, telemetry=None) -> WangLandauResult:
        """Iterate until ``ln f ≤ ln_f_final`` or ``max_steps`` walker steps."""
        from repro.obs.profile import contribute_profile, profile_from_env

        if max_steps is None:
            max_steps = self.cfg.max_steps
        if self.profiler is None:
            env_profiler = profile_from_env()
            if env_profiler is not None:
                self.enable_profiling(env_profiler)
        profile_before = (
            self.profiler.as_dict() if self.profiler is not None else None
        )
        span = telemetry.span("wl.run") if telemetry is not None else nullcontext()
        steps_before = self.n_steps
        n_rows = self.n_slots
        with span:
            while self.n_steps < max_steps and self.ln_f > self.ln_f_final:
                budget = min(self.check_interval, max_steps - self.n_steps)
                for _ in range(max(1, budget // n_rows)):
                    self.step_batch()
                if self.is_flat():
                    self.advance_modification_factor()
                    if telemetry is not None:
                        telemetry.emit(
                            "wl_iteration",
                            iteration=self.n_iterations,
                            ln_f=self.ln_f,
                            steps=self.n_steps,
                            iteration_steps=self.iteration_steps[-1],
                        )
                elif self.schedule == "one_over_t" and self.ln_f <= 1.0 / max(
                    1.0, self.n_steps / max(1, self.hamiltonian.n_sites)
                ):
                    sweeps = max(1.0, self.n_steps / max(1, self.hamiltonian.n_sites))
                    self.ln_f = 1.0 / sweeps
        if telemetry is not None:
            telemetry.metrics.inc("wl.steps", self.n_steps - steps_before)
        if profile_before is not None:
            contribute_profile(self.profiler.delta_since(profile_before))
            if telemetry is not None:
                self.profiler.publish(telemetry.metrics)
        return self.result()

    def result(self) -> WangLandauResult:
        ln_g = self.ln_g.copy()
        if np.any(self.visited):
            ln_g -= ln_g[self.visited].min()
        return WangLandauResult(
            grid=self.grid,
            ln_g=ln_g,
            histogram=self.histogram.copy(),
            visited=self.visited.copy(),
            converged=self.ln_f <= self.ln_f_final,
            n_steps=self.n_steps,
            n_iterations=self.n_iterations,
            final_ln_f=self.ln_f,
            acceptance_rate=self.n_accepted / self.n_steps if self.n_steps else 0.0,
            iteration_steps=list(self.iteration_steps),
            counters=replace(self.counters),
        )

    def __repr__(self) -> str:
        return (
            f"BatchedWangLandauSampler(n_slots={self.n_slots}, "
            f"n_bins={self.grid.n_bins}, ln_f={self.ln_f:.3g})"
        )
