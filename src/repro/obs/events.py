"""Structured event log: newline-delimited JSON records with swappable sinks.

Every record carries the envelope ``{"v": schema version, "run": run id,
"seq": monotone index, "ts": unix wall time, "kind": event kind}`` plus
kind-specific fields; :mod:`repro.obs.report` consumes the resulting
``.jsonl`` files.  The default sink is :class:`NullSink`, and ``emit`` on a
fully disabled log is a single attribute check — instrumented code paths
cost nothing until a real sink is attached.

Sinks
-----
- :class:`NullSink` — drop everything (default),
- :class:`MemorySink` — keep records in a list (tests, in-process readers),
- :class:`JsonlSink` — append JSON lines to a file or stream,
- :class:`ConsoleSink` — render ``[kind] key=value`` lines for humans; this
  is what replaced the experiment runners' raw ``print()`` calls.

Environment wiring: :func:`from_env` builds an :class:`EventLog` from
``REPRO_TRACE`` (a path → JSONL file; ``stderr``/``-`` → console lines;
unset → disabled), so any entry point gains telemetry without new flags.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time

__all__ = [
    "SCHEMA_VERSION",
    "EventSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "JsonlFollower",
    "FileSink",
    "ConsoleSink",
    "EventLog",
    "event_field",
    "from_env",
    "worker_log",
    "TRACE_ENV_VAR",
    "TRACE_FSYNC_ENV_VAR",
    "TRACE_DIR_ENV_VAR",
]

SCHEMA_VERSION = 1
TRACE_ENV_VAR = "REPRO_TRACE"
TRACE_FSYNC_ENV_VAR = "REPRO_TRACE_FSYNC"
TRACE_DIR_ENV_VAR = "REPRO_TRACE_DIR"


def event_field(record: dict, key: str, default=None):
    """Read ``key`` from a trace record, flat or nested.

    Event payloads historically rode flat next to the envelope
    (``{"kind": ..., "round": 3}``); newer producers may nest them under a
    ``"fields"`` dict.  Consumers (dash, report, trace export) must accept
    both shapes — the flat spelling wins when both carry the key.
    """
    if key in record:
        return record[key]
    fields = record.get("fields")
    if isinstance(fields, dict) and key in fields:
        return fields[key]
    return default


def _json_default(obj):
    """Serialize the numpy scalars/arrays that ride along in telemetry."""
    item = getattr(obj, "item", None)
    if item is not None and getattr(obj, "ndim", None) == 0:
        return item()
    tolist = getattr(obj, "tolist", None)
    if tolist is not None:
        return tolist()
    if isinstance(obj, float) and not math.isfinite(obj):
        return str(obj)
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


class EventSink:
    """Sink interface: receive one record dict per event."""

    enabled: bool = True

    def emit(self, record: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        return None


class NullSink(EventSink):
    """Discard everything (the near-zero-cost default)."""

    enabled = False

    def emit(self, record: dict) -> None:
        return None


class MemorySink(EventSink):
    """Buffer records in memory (tests and in-process consumers)."""

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)


class JsonlSink(EventSink):
    """Append newline-delimited JSON to ``path`` (or a writable stream).

    Crash durability: every record is flushed to the OS before ``emit``
    returns, so an injected crash (``repro.faults``) loses at most the
    record being written — a SIGKILL mid-``write`` leaves one partial line,
    which every trace consumer here skips.  ``fsync=True`` (or
    ``REPRO_TRACE_FSYNC=1`` via :func:`from_env`) additionally forces each
    record to stable storage, surviving power loss at a large per-event
    cost; leave it off unless the trace *is* the experiment record.
    """

    def __init__(self, path_or_stream, autoflush: bool = True,
                 fsync: bool = False):
        self.autoflush = autoflush or fsync  # fsync of unflushed data is moot
        self.fsync = fsync
        if hasattr(path_or_stream, "write"):
            self.path = None
            self._stream = path_or_stream
            self._owned = False
        else:
            self.path = os.fspath(path_or_stream)
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._stream = open(self.path, "a", encoding="utf-8")
            self._owned = True

    def emit(self, record: dict) -> None:
        self._stream.write(
            json.dumps(record, separators=(",", ":"), default=_json_default) + "\n"
        )
        if self.autoflush:
            self._stream.flush()
        if self.fsync:
            fileno = getattr(self._stream, "fileno", None)
            if fileno is not None:
                try:
                    os.fsync(fileno())
                except (OSError, ValueError):
                    pass  # stream has no real fd (StringIO, closed, ...)

    def close(self) -> None:
        if self._owned and not self._stream.closed:
            self._stream.close()


#: Historical name for the JSONL file sink.
FileSink = JsonlSink


class JsonlFollower:
    """Incremental reader of a growing JSONL trace file.

    Persists a byte offset between :meth:`poll` calls, so consumers that
    refresh repeatedly (``obs dash --watch``, the live time-series
    aggregator) pay for *new* records only instead of re-parsing the whole
    file every tick.  Semantics:

    - only complete lines are consumed: a partial trailing line (a writer
      crash or an in-flight ``write``) is left at the offset and re-read on
      the next poll once finished,
    - malformed/garbage lines are skipped (same tolerance as every other
      trace consumer),
    - truncation or rotation — the file shrinking below the stored offset —
      is detected and resets the follower to the start of the (new) file;
      :attr:`truncations` counts the resets so consumers can drop state
      accumulated from the old incarnation,
    - a missing file simply yields no records (and does not reset).
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self.pos = 0
        self.truncations = 0

    def poll(self) -> list[dict]:
        """Parse and return records appended since the previous poll."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self.pos:
            self.pos = 0
            self.truncations += 1
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self.pos)
                chunk = fh.read()
        except OSError:
            return []
        consumed = chunk.rfind(b"\n") + 1
        self.pos += consumed
        records: list[dict] = []
        for raw in chunk[:consumed].splitlines():
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records


class ConsoleSink(EventSink):
    """Human-readable one-liners: ``[run:kind] key=value ...``."""

    #: Envelope keys hidden from the rendered line.
    _SKIP = frozenset({"v", "ts", "seq", "run", "kind", "pid"})

    def __init__(self, stream=None):
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, record: dict) -> None:
        fields = " ".join(
            f"{k}={_render(v)}" for k, v in record.items() if k not in self._SKIP
        )
        self._stream.write(f"[{record.get('run', '?')}:{record.get('kind', '?')}] "
                           f"{fields}".rstrip() + "\n")
        self._stream.flush()


def _render(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, str):
        return value
    return json.dumps(value, default=_json_default)


class EventLog:
    """Fan-out event emitter with the envelope described in the module doc.

    ``emit`` bails on one boolean when every sink is disabled, so leaving an
    ``EventLog()`` default argument in a hot-ish path is safe.
    """

    def __init__(self, run_id: str | None = None, sinks=()):
        self.run_id = run_id if run_id is not None else _default_run_id()
        self.sinks = [s for s in sinks if s is not None]
        self.enabled = any(s.enabled for s in self.sinks)
        self._seq = 0

    def emit(self, kind: str, **fields) -> None:
        if not self.enabled:
            return
        record = {
            "v": SCHEMA_VERSION,
            "run": self.run_id,
            "seq": self._seq,
            "ts": time.time(),
            "pid": os.getpid(),
            "kind": kind,
        }
        record.update(fields)
        self._seq += 1
        for sink in self.sinks:
            if sink.enabled:
                sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _default_run_id() -> str:
    # Wall-clock + pid: unique enough for traces, and crucially *not* drawn
    # from any numpy RNG stream (telemetry must never perturb sampling).
    return f"run-{int(time.time() * 1000):x}-{os.getpid()}"


def from_env(run_id: str | None = None, env_var: str = TRACE_ENV_VAR,
             extra_sinks=()) -> EventLog:
    """Build an :class:`EventLog` from the ``REPRO_TRACE`` environment knob.

    - unset/empty → disabled log (plus any ``extra_sinks``),
    - ``"stderr"`` or ``"-"`` → console lines on stderr,
    - anything else → treated as a JSONL output path; ``REPRO_TRACE_FSYNC=1``
      additionally fsyncs each record (crash-durable traces, see
      :class:`JsonlSink`).
    """
    value = os.environ.get(env_var, "").strip()
    sinks = list(extra_sinks)
    if value in ("stderr", "-"):
        sinks.append(ConsoleSink(sys.stderr))
    elif value:
        fsync = os.environ.get(TRACE_FSYNC_ENV_VAR, "").strip().lower()
        sinks.append(JsonlSink(value, fsync=fsync in ("1", "on", "true")))
    return EventLog(run_id=run_id, sinks=sinks)


# Per-process worker log for the REPRO_TRACE_DIR knob, keyed by pid so a
# forked/spawned worker never inherits its parent's open file handle.
_worker_log: EventLog | None = None
_worker_log_pid: int | None = None


def worker_log() -> EventLog:
    """This process's worker-side event log (``REPRO_TRACE_DIR`` knob).

    When ``REPRO_TRACE_DIR`` names a directory, every process that calls
    this gets a lazily opened :class:`EventLog` appending to
    ``<dir>/worker-<pid>.jsonl`` — one file per worker process, merged into
    a single campaign timeline by ``python -m repro obs export-trace``.
    Unset → a disabled log (the usual zero-cost default).  The log is
    rebuilt after a fork, so child processes write their own files.
    """
    global _worker_log, _worker_log_pid
    pid = os.getpid()
    if _worker_log is not None and _worker_log_pid == pid:
        return _worker_log
    if _worker_log is not None:
        _worker_log = None  # forked child: drop the inherited handle unclosed
    directory = os.environ.get(TRACE_DIR_ENV_VAR, "").strip()
    if directory:
        path = os.path.join(directory, f"worker-{pid}.jsonl")
        _worker_log = EventLog(sinks=[JsonlSink(path)])
    else:
        _worker_log = EventLog()
    _worker_log_pid = pid
    return _worker_log
