"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The REWL advance phase ships walker state through process executors
(:mod:`repro.parallel.executors`); anything measured inside a worker must
therefore be (a) picklable and (b) *mergeable*, so per-walker registries can
be reduced across walkers, windows, and ranks after the fact.  All three
metric kinds here are plain-data and merge associatively:

- :class:`Counter` — monotone integer, merged by addition,
- :class:`Gauge` — last-written float, merged right-biased (the right
  operand wins when it has ever been set),
- :class:`Histogram` — fixed bucket edges, merged bucket-wise; edges must
  match exactly (histograms are only mergeable within one schema).

Metrics never touch sampler state: values live in the registry only, so a
run with metrics enabled is bit-identical to one without (the determinism
guarantee tested in ``tests/test_obs_rewl.py``).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "merge_registries"]

#: Default histogram bucket upper bounds (seconds-flavored, log-spaced).
DEFAULT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0
)


@dataclass
class Counter:
    """Monotonically increasing integer metric."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> dict:
        return {"kind": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-written float metric (e.g. current ln f, rolling loss)."""

    name: str
    value: float = 0.0
    updated: bool = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updated = True

    def merge(self, other: "Gauge") -> None:
        # Right-biased: the most recently merged writer wins.  Associative
        # (though not commutative), which is what executor reduction needs.
        if other.updated:
            self.value = other.value
        self.updated = self.updated or other.updated

    def as_dict(self) -> dict:
        return {"kind": "gauge", "value": self.value, "updated": self.updated}


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary statistics.

    ``buckets`` are upper bounds; an implicit +inf bucket catches overflow.
    """

    name: str
    buckets: tuple = DEFAULT_BUCKETS
    counts: list = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self):
        self.buckets = tuple(float(b) for b in self.buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"histogram {self.name!r} buckets must be strictly increasing")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)
        elif len(self.counts) != len(self.buckets) + 1:
            raise ValueError(
                f"histogram {self.name!r}: {len(self.counts)} counts for "
                f"{len(self.buckets)} buckets"
            )

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched buckets "
                f"{other.buckets} into {self.buckets}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_dict(self) -> dict:
        return {
            "kind": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named collection of metrics; picklable and mergeable.

    Metric kinds are fixed at first registration: asking for an existing
    name with a different kind raises ``TypeError`` (silent kind morphing
    would make merges undefined).
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------ creation

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name=name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, buckets=tuple(buckets))

    # --------------------------------------------------------- convenience

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float, buckets=DEFAULT_BUCKETS) -> None:
        self.histogram(name, buckets).observe(value)

    # ------------------------------------------------------------ plumbing

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (in place); returns ``self``."""
        for name in other.names():
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                # Re-register a same-kind copy so later merges stay isolated.
                mine = self._get(
                    name, type(theirs),
                    **({"buckets": theirs.buckets} if isinstance(theirs, Histogram) else {}),
                )
            elif type(mine) is not type(theirs):
                raise TypeError(
                    f"metric {name!r}: cannot merge {type(theirs).__name__} "
                    f"into {type(mine).__name__}"
                )
            mine.merge(theirs)
        return self

    def as_dict(self) -> dict[str, dict]:
        return {name: self._metrics[name].as_dict() for name in self.names()}

    @classmethod
    def from_dict(cls, payload: dict[str, dict]) -> "MetricsRegistry":
        reg = cls()
        for name, entry in payload.items():
            kind = entry.get("kind")
            if kind == "counter":
                reg.counter(name).value = int(entry["value"])
            elif kind == "gauge":
                g = reg.gauge(name)
                g.value = float(entry["value"])
                g.updated = bool(entry.get("updated", True))
            elif kind == "histogram":
                h = reg.histogram(name, tuple(entry["buckets"]))
                h.counts = [int(c) for c in entry["counts"]]
                h.count = int(entry["count"])
                h.sum = float(entry["sum"])
                h.min = math.inf if entry.get("min") is None else float(entry["min"])
                h.max = -math.inf if entry.get("max") is None else float(entry["max"])
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
        return reg


def merge_registries(registries) -> MetricsRegistry:
    """Reduce an iterable of registries into a fresh one (left to right)."""
    out = MetricsRegistry()
    for reg in registries:
        out.merge(reg)
    return out
