"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The REWL advance phase ships walker state through process executors
(:mod:`repro.parallel.executors`); anything measured inside a worker must
therefore be (a) picklable and (b) *mergeable*, so per-walker registries can
be reduced across walkers, windows, and ranks after the fact.  All three
metric kinds here are plain-data and merge associatively:

- :class:`Counter` — monotone integer, merged by addition,
- :class:`Gauge` — last-written float, merged right-biased (the right
  operand wins when it has ever been set),
- :class:`Histogram` — fixed bucket edges, merged bucket-wise; edges must
  match exactly (histograms are only mergeable within one schema).

Metrics optionally carry **labels** (``metrics.set("window.ln_f", v,
labels={"window": 3})``): same-name metrics with different label sets are
distinct series of one *family*, which is what the OpenMetrics exposition
(:mod:`repro.obs.promexport`) renders as ``name{window="3"}``.  A per-family
**cardinality guard** caps the number of distinct label sets
(``max_label_sets``): past the cap, new label sets are folded into a single
``other`` bucket (every label value replaced by ``"other"``) and a warning
fires once per family — so W·K per-walker labels cannot blow up exposition
size as campaigns scale.

Metrics never touch sampler state: values live in the registry only, so a
run with metrics enabled is bit-identical to one without (the determinism
guarantee tested in ``tests/test_obs_rewl.py``).
"""

from __future__ import annotations

import bisect
import math
import warnings
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "merge_registries"]

#: Default per-family cap on distinct label sets (the cardinality guard).
DEFAULT_MAX_LABEL_SETS = 256


def _normalize_labels(labels) -> tuple:
    """Canonical label form: sorted tuple of ``(key, value)`` string pairs."""
    if not labels:
        return ()
    if isinstance(labels, tuple):
        return labels
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_key(name: str, labels: tuple) -> str:
    """Registry key for one series: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"

#: Default histogram bucket upper bounds (seconds-flavored, log-spaced).
DEFAULT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0
)


@dataclass
class Counter:
    """Monotonically increasing integer metric."""

    name: str
    value: int = 0
    labels: tuple = ()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> dict:
        out = {"kind": "counter", "value": self.value}
        if self.labels:
            out["name"] = self.name
            out["labels"] = dict(self.labels)
        return out


@dataclass
class Gauge:
    """Last-written float metric (e.g. current ln f, rolling loss)."""

    name: str
    value: float = 0.0
    updated: bool = False
    labels: tuple = ()

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updated = True

    def merge(self, other: "Gauge") -> None:
        # Right-biased: the most recently merged writer wins.  Associative
        # (though not commutative), which is what executor reduction needs.
        if other.updated:
            self.value = other.value
        self.updated = self.updated or other.updated

    def as_dict(self) -> dict:
        out = {"kind": "gauge", "value": self.value, "updated": self.updated}
        if self.labels:
            out["name"] = self.name
            out["labels"] = dict(self.labels)
        return out


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary statistics.

    ``buckets`` are upper bounds; an implicit +inf bucket catches overflow.
    """

    name: str
    buckets: tuple = DEFAULT_BUCKETS
    counts: list = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    labels: tuple = ()

    def __post_init__(self):
        self.buckets = tuple(float(b) for b in self.buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"histogram {self.name!r} buckets must be strictly increasing")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)
        elif len(self.counts) != len(self.buckets) + 1:
            raise ValueError(
                f"histogram {self.name!r}: {len(self.counts)} counts for "
                f"{len(self.buckets)} buckets"
            )

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched buckets "
                f"{other.buckets} into {self.buckets}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_dict(self) -> dict:
        out = {
            "kind": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }
        if self.labels:
            out["name"] = self.name
            out["labels"] = dict(self.labels)
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named collection of metrics; picklable and mergeable.

    Metric kinds are fixed at first registration: asking for an existing
    name with a different kind raises ``TypeError`` (silent kind morphing
    would make merges undefined).

    ``max_label_sets`` caps the distinct label sets per metric family; the
    cap applies on direct registration and on merge, so a reduction over
    thousands of per-walker registries stays bounded too.
    """

    def __init__(self, max_label_sets: int = DEFAULT_MAX_LABEL_SETS):
        if int(max_label_sets) < 1:
            raise ValueError(
                f"max_label_sets must be >= 1, got {max_label_sets!r}"
            )
        self.max_label_sets = int(max_label_sets)
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._label_sets: dict[str, set] = {}
        self._overflowed: set[str] = set()

    # ------------------------------------------------------------ creation

    def _guard_labels(self, name: str, labels: tuple) -> tuple:
        """Apply the cardinality guard: past the cap, fold into ``other``."""
        if not labels:
            return labels
        seen = self._label_sets.setdefault(name, set())
        if labels in seen or len(seen) < self.max_label_sets:
            seen.add(labels)
            return labels
        if name not in self._overflowed:
            self._overflowed.add(name)
            warnings.warn(
                f"metric family {name!r} exceeded {self.max_label_sets} "
                f"label sets; further series aggregate into an 'other' "
                f"bucket (raise MetricsRegistry(max_label_sets=...) if the "
                f"cardinality is intended)",
                RuntimeWarning,
                stacklevel=4,
            )
        return tuple((k, "other") for k, _ in labels)

    def _get(self, name: str, cls, labels=None, **kwargs):
        labels = self._guard_labels(name, _normalize_labels(labels))
        key = _series_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, labels=labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {key!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str, labels=None) -> Counter:
        return self._get(name, Counter, labels=labels)

    def gauge(self, name: str, labels=None) -> Gauge:
        return self._get(name, Gauge, labels=labels)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS,
                  labels=None) -> Histogram:
        return self._get(name, Histogram, labels=labels,
                         buckets=tuple(buckets))

    # --------------------------------------------------------- convenience

    def inc(self, name: str, n: int = 1, labels=None) -> None:
        self.counter(name, labels=labels).inc(n)

    def set(self, name: str, value: float, labels=None) -> None:
        self.gauge(name, labels=labels).set(value)

    def observe(self, name: str, value: float, buckets=DEFAULT_BUCKETS,
                labels=None) -> None:
        self.histogram(name, buckets, labels=labels).observe(value)

    # ------------------------------------------------------------ plumbing

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (in place); returns ``self``.

        Labeled series merge family-wise through the cardinality guard, so
        reducing many per-walker registries cannot exceed the cap either.
        """
        for key in other.names():
            theirs = other._metrics[key]
            mine = self._metrics.get(_series_key(
                theirs.name, self._guard_labels(theirs.name, theirs.labels)
            ))
            if mine is None:
                # Re-register a same-kind copy so later merges stay isolated.
                mine = self._get(
                    theirs.name, type(theirs), labels=theirs.labels,
                    **({"buckets": theirs.buckets} if isinstance(theirs, Histogram) else {}),
                )
            elif type(mine) is not type(theirs):
                raise TypeError(
                    f"metric {key!r}: cannot merge {type(theirs).__name__} "
                    f"into {type(mine).__name__}"
                )
            mine.merge(theirs)
        return self

    def as_dict(self) -> dict[str, dict]:
        return {name: self._metrics[name].as_dict() for name in self.names()}

    @classmethod
    def from_dict(cls, payload: dict[str, dict]) -> "MetricsRegistry":
        reg = cls()
        for key, entry in payload.items():
            kind = entry.get("kind")
            # Labeled entries carry their family name + labels explicitly
            # (the payload key is the composed series key).
            name = entry.get("name", key)
            labels = entry.get("labels") or None
            if kind == "counter":
                reg.counter(name, labels=labels).value = int(entry["value"])
            elif kind == "gauge":
                g = reg.gauge(name, labels=labels)
                g.value = float(entry["value"])
                g.updated = bool(entry.get("updated", True))
            elif kind == "histogram":
                h = reg.histogram(name, tuple(entry["buckets"]), labels=labels)
                h.counts = [int(c) for c in entry["counts"]]
                h.count = int(entry["count"])
                h.sum = float(entry["sum"])
                h.min = math.inf if entry.get("min") is None else float(entry["min"])
                h.max = -math.inf if entry.get("max") is None else float(entry["max"])
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {key!r}")
        return reg


def merge_registries(registries) -> MetricsRegistry:
    """Reduce an iterable of registries into a fresh one (left to right)."""
    out = MetricsRegistry()
    for reg in registries:
        out.merge(reg)
    return out
