"""Benchmark-regression tracking: versioned BENCH snapshots + comparison.

The paper's headline claims are performance claims, so benchmark numbers
need a machine-readable trajectory PR-over-PR, not ad-hoc console prints.
This module runs any subset of ``benchmarks/bench_*.py`` through one common
runner (a child ``pytest --benchmark-only`` process, so benchmark isolation
and calibration stay pytest-benchmark's job) and captures the result as a
versioned snapshot::

    {
      "v": 1,                       # BENCH schema version
      "created_ts": ...,            # unix wall time
      "wall_s": ...,                # end-to-end harness wall time
      "peak_rss_kb": ...,           # child peak resident set (ru_maxrss)
      "fingerprint": {...},         # python/numpy/platform/commit identity
      "selection": [...],           # bench files run
      "benchmarks": {name: {"mean_s", "stddev_s", "min_s", "rounds",
                            "steps_per_s" (when the bench records
                            steps_per_round in extra_info)}},
      "profile": {section: {...}}   # merged per-section SectionProfiler dump
    }

The per-section profile is recovered from the child process through the
``REPRO_PROFILE`` / ``REPRO_PROFILE_OUT`` knobs (see
:mod:`repro.obs.profile`): the child's global collector dumps merged
sections as JSON at interpreter exit, and the snapshot embeds them.

:func:`compare_snapshots` diffs two snapshots with a multiplicative noise
threshold — a benchmark regresses when ``new_mean > old_mean * (1 +
threshold)`` — and ``python -m repro obs bench-compare`` renders the diff,
exiting non-zero on regression unless ``--warn-only`` (the CI smoke job
runs warn-only against the committed baseline).

CLI: ``python -m repro obs bench [--quick] [-k EXPR] [-o OUT] [FILE ...]``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "QUICK_BENCHES",
    "discover_benchmarks",
    "run_benchmarks",
    "load_snapshot",
    "next_snapshot_path",
    "compare_snapshots",
    "render_compare",
    "main_bench",
    "main_compare",
]

BENCH_SCHEMA_VERSION = 1

#: Default noise threshold for compare: 25% mean-time growth is a regression.
DEFAULT_THRESHOLD = 0.25

#: The fast subset for CI smoke runs (micro-kernels + setup costs; the long
#: convergence benches stay out so the job finishes in a couple of minutes).
QUICK_BENCHES = (
    "bench_e7_strong_scaling.py",
    "bench_e8_weak_scaling.py",
    "bench_e9_throughput.py",
    "bench_e12_systems_table.py",
    "bench_e14_sro_anneal.py",
    "bench_obs_overhead.py",
    "bench_resilience_overhead.py",
)


def discover_benchmarks(bench_dir) -> list[Path]:
    """All ``bench_*.py`` files under ``bench_dir``, sorted by name."""
    return sorted(Path(bench_dir).glob("bench_*.py"))


def _fingerprint() -> dict:
    """Environment/commit identity a snapshot is comparable under."""
    import numpy as np

    commit, dirty = None, None
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10,
        )
        if out.returncode == 0:
            commit = out.stdout.strip()
            status = subprocess.run(
                ["git", "status", "--porcelain"], capture_output=True,
                text=True, timeout=10,
            )
            dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
    except OSError:
        pass
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "commit": commit,
        "dirty": dirty,
    }


def _child_peak_rss_kb() -> int | None:
    """Peak resident set over reaped children, in kB (max-so-far semantics)."""
    try:
        import resource
    except ImportError:  # non-posix
        return None
    peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    # ru_maxrss is kB on Linux, bytes on macOS.
    return int(peak // 1024) if sys.platform == "darwin" else int(peak)


def _extract_benchmarks(pytest_json: dict) -> dict[str, dict]:
    out: dict[str, dict] = {}
    for bench in pytest_json.get("benchmarks", []):
        stats = bench.get("stats", {})
        entry = {
            "mean_s": stats.get("mean"),
            "stddev_s": stats.get("stddev"),
            "min_s": stats.get("min"),
            "rounds": stats.get("rounds"),
        }
        extra = bench.get("extra_info") or {}
        steps = extra.get("steps_per_round")
        if steps and stats.get("mean"):
            entry["steps_per_s"] = float(steps) / float(stats["mean"])
        # Ultra-tier rows carry a memory envelope (see the ``rss_budget``
        # bench fixture): the measured process peak plus the budget it must
        # stay under, both gated by compare_snapshots.
        for key in ("peak_rss_kb", "rss_budget_kb"):
            if extra.get(key) is not None:
                entry[key] = int(extra[key])
        out[bench.get("fullname", bench.get("name", "?"))] = entry
    return out


def run_benchmarks(
    selection=None,
    bench_dir="benchmarks",
    quick: bool = False,
    keyword: str | None = None,
    out_path=None,
    profile_every: int = 8,
    pytest_args=(),
    stream=None,
) -> dict:
    """Run bench files through pytest-benchmark; return (and save) a snapshot.

    ``selection`` is an iterable of bench file names/paths (defaults to the
    whole directory, or :data:`QUICK_BENCHES` under ``quick=True``).  The
    child process runs with profiling enabled so the snapshot carries the
    per-section breakdown.  Profiling adds a small, *uniform* cost to the
    instrumented kernels, so keep ``profile_every`` identical across
    snapshots you intend to compare (the default never changes silently).
    """
    bench_dir = Path(bench_dir)
    if selection:
        files = [bench_dir / Path(s).name for s in selection]
    elif quick:
        files = [bench_dir / name for name in QUICK_BENCHES]
    else:
        files = discover_benchmarks(bench_dir)
    missing = [str(f) for f in files if not f.exists()]
    if missing:
        raise FileNotFoundError(f"no such benchmark file(s): {missing}")
    if not files:
        raise FileNotFoundError(f"no bench_*.py files under {bench_dir}")

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        pytest_json = Path(tmp) / "pytest-bench.json"
        profile_json = Path(tmp) / "profile.json"
        cmd = [
            sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
            # Collection must not depend on the rootdir's ini (bench files
            # may live outside this repo, e.g. in test fixtures).
            "-o", "python_files=bench_*.py", "-o", "python_functions=bench_*",
            "--benchmark-only", f"--benchmark-json={pytest_json}",
            *map(str, files), *pytest_args,
        ]
        if keyword:
            cmd += ["-k", keyword]
        env = dict(os.environ)
        env["REPRO_PROFILE"] = str(int(profile_every))
        env["REPRO_PROFILE_OUT"] = str(profile_json)
        t0 = time.perf_counter()
        proc = subprocess.run(
            cmd, env=env, text=True, capture_output=True, cwd=os.getcwd(),
        )
        wall_s = time.perf_counter() - t0
        if stream is not None:
            stream.write(proc.stdout)
            if proc.stderr:
                stream.write(proc.stderr)
        if proc.returncode != 0 and not pytest_json.exists():
            raise RuntimeError(
                f"benchmark run failed (pytest exit {proc.returncode}):\n"
                + (proc.stdout or "") + (proc.stderr or "")
            )
        with pytest_json.open(encoding="utf-8") as fh:
            pytest_payload = json.load(fh)
        profile = {}
        if profile_json.exists():
            try:
                with profile_json.open(encoding="utf-8") as fh:
                    profile = json.load(fh)
            except (OSError, json.JSONDecodeError):
                profile = {}

    snapshot = {
        "v": BENCH_SCHEMA_VERSION,
        "created_ts": time.time(),
        "wall_s": wall_s,
        "peak_rss_kb": _child_peak_rss_kb(),
        "pytest_exit": proc.returncode,
        "fingerprint": _fingerprint(),
        "selection": [f.name for f in files],
        "benchmarks": _extract_benchmarks(pytest_payload),
        "profile": profile,
    }
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        with out_path.open("w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return snapshot


def load_snapshot(path) -> dict:
    with Path(path).open(encoding="utf-8") as fh:
        snapshot = json.load(fh)
    version = snapshot.get("v")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: BENCH schema v{version!r}, expected v{BENCH_SCHEMA_VERSION}"
        )
    return snapshot


def next_snapshot_path(directory=".") -> Path:
    """First unused ``BENCH_<n>.json`` in ``directory`` (versioned names)."""
    directory = Path(directory)
    taken = set()
    for existing in directory.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", existing.name)
        if match:
            taken.add(int(match.group(1)))
    n = 1
    while n in taken:
        n += 1
    return directory / f"BENCH_{n}.json"


# ------------------------------------------------------------------ comparison


def compare_snapshots(old: dict, new: dict,
                      threshold: float = DEFAULT_THRESHOLD) -> dict:
    """Diff two snapshots' mean times with a multiplicative noise threshold.

    Returns ``{"threshold", "entries": [...], "regressions": [names]}``;
    each entry has ``name/old_mean_s/new_mean_s/ratio/status`` with status
    one of ``ok | regression | improvement | added | removed``.

    Memory gating: a benchmark that recorded both ``peak_rss_kb`` and
    ``rss_budget_kb`` (the ultra-tier rows) also regresses when the new
    peak exceeds its budget — staying fast by spending memory is exactly
    the trade the ultra-large-scale tier forbids.  ``added`` rows are
    budget-checked too (a brand-new over-budget row must not slip in
    ungated).
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold!r}")
    old_b = old.get("benchmarks", {})
    new_b = new.get("benchmarks", {})
    entries = []
    regressions = []
    for name in sorted(set(old_b) | set(new_b)):
        o = old_b.get(name, {}).get("mean_s")
        n = new_b.get(name, {}).get("mean_s")
        new_entry = new_b.get(name, {})
        peak = new_entry.get("peak_rss_kb")
        budget = new_entry.get("rss_budget_kb")
        over_budget = (peak is not None and budget is not None
                       and peak > budget)
        if o is None or n is None:
            status = "removed" if n is None else "added"
            if n is not None and over_budget:
                status = "rss-over-budget"
                regressions.append(name)
            entries.append({
                "name": name, "old_mean_s": o, "new_mean_s": n,
                "ratio": None, "status": status,
                "peak_rss_kb": peak, "rss_budget_kb": budget,
            })
            continue
        ratio = n / o if o > 0 else None
        if ratio is not None and ratio > 1.0 + threshold:
            status = "regression"
            regressions.append(name)
        elif over_budget:
            status = "rss-over-budget"
            regressions.append(name)
        elif ratio is not None and ratio < 1.0 / (1.0 + threshold):
            status = "improvement"
        else:
            status = "ok"
        entries.append({
            "name": name, "old_mean_s": o, "new_mean_s": n,
            "ratio": ratio, "status": status,
            "peak_rss_kb": peak, "rss_budget_kb": budget,
        })
    return {"threshold": threshold, "entries": entries,
            "regressions": regressions}


def render_compare(diff: dict) -> str:
    from repro.util.tables import format_table

    rows = []
    for entry in diff["entries"]:
        o, n, ratio = entry["old_mean_s"], entry["new_mean_s"], entry["ratio"]
        peak = entry.get("peak_rss_kb")
        budget = entry.get("rss_budget_kb")
        if peak is not None and budget is not None:
            rss = f"{peak / 1024:.0f}/{budget / 1024:.0f}MB"
        elif peak is not None:
            rss = f"{peak / 1024:.0f}MB"
        else:
            rss = "-"
        rows.append([
            entry["name"],
            "-" if o is None else f"{o * 1e3:.3f}",
            "-" if n is None else f"{n * 1e3:.3f}",
            "-" if ratio is None else f"{ratio:.2f}x",
            rss,
            entry["status"],
        ])
    table = format_table(
        ["benchmark", "old mean_ms", "new mean_ms", "ratio", "peak_rss",
         "status"],
        rows, title=f"bench-compare (threshold {diff['threshold']:.0%})",
    )
    regressions = diff["regressions"]
    verdict = (
        f"{len(regressions)} regression(s): {', '.join(regressions)}"
        if regressions else "no regressions beyond threshold"
    )
    return f"{table}\n{verdict}\n"


# ------------------------------------------------------------------------- CLI


def main_bench(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs bench",
        description="Run benchmarks/bench_*.py and emit a BENCH_<n>.json "
                    "snapshot.",
    )
    parser.add_argument("files", nargs="*",
                        help="bench files to run (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help=f"run the CI smoke subset {list(QUICK_BENCHES)}")
    parser.add_argument("-k", dest="keyword", default=None,
                        help="pytest -k expression to filter benchmarks")
    parser.add_argument("-o", "--out", default=None,
                        help="snapshot path (default: next free BENCH_<n>.json)")
    parser.add_argument("--bench-dir", default="benchmarks")
    parser.add_argument("--profile-every", type=int, default=8,
                        help="profiler sampling stride in the child run")
    parser.add_argument("--pytest-arg", action="append", default=[],
                        dest="pytest_args", metavar="ARG",
                        help="extra argument forwarded to pytest (repeatable)")
    args = parser.parse_args(argv)

    out_path = Path(args.out) if args.out else next_snapshot_path(".")
    try:
        snapshot = run_benchmarks(
            selection=args.files or None, bench_dir=args.bench_dir,
            quick=args.quick, keyword=args.keyword, out_path=out_path,
            profile_every=args.profile_every, pytest_args=args.pytest_args,
            stream=sys.stderr,
        )
    except (FileNotFoundError, RuntimeError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    n_bench = len(snapshot["benchmarks"])
    n_prof = len(snapshot["profile"])
    print(f"wrote {out_path}: {n_bench} benchmark(s), {n_prof} profiled "
          f"section(s), wall {snapshot['wall_s']:.1f}s")
    return 0 if snapshot["pytest_exit"] == 0 else 1


def main_compare(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs bench-compare",
        description="Diff two BENCH snapshots; exit 1 on regression.",
    )
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative mean-time growth that counts as a "
                             "regression (default 0.25)")
    parser.add_argument("--warn-only", action="store_true",
                        help="always exit 0 (CI smoke mode)")
    parser.add_argument("--gate-only", metavar="SUBSTR", default=None,
                        action="append",
                        help="exit 1 only for regressions whose name contains "
                             "SUBSTR; others are reported but don't gate "
                             "(repeatable — any match gates)")
    args = parser.parse_args(argv)

    try:
        old = load_snapshot(args.old)
        new = load_snapshot(args.new)
        diff = compare_snapshots(old, new, threshold=args.threshold)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(render_compare(diff), end="")
    gating = diff["regressions"]
    if args.gate_only is not None:
        gating = [name for name in gating
                  if any(sub in name for sub in args.gate_only)]
        if gating:
            print(f"gated regression(s) matching {args.gate_only!r}: "
                  f"{', '.join(gating)}")
    if gating and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main_bench())
