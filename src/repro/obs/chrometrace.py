"""Cross-process trace aggregation and Chrome trace-event export.

A campaign run with ``REPRO_TRACE=trace.jsonl`` (driver-side events) and
``REPRO_TRACE_DIR=traces/`` (one ``worker-<pid>.jsonl`` per worker process;
see :func:`repro.obs.events.worker_log`) leaves a set of JSONL files.  This
module merges them into one deterministic campaign timeline and exports it
as Chrome trace-event JSON — loadable in ``chrome://tracing`` or Perfetto —
via ``python -m repro obs export-trace``.

Mapping (trace-event "phases"):

- ``span`` / ``worker_span`` records become complete (``"X"``) events.
  Span records carry their duration and are emitted at span *end*, so the
  event start is ``ts − dur_s``.  ``pid`` comes from the record envelope;
  the tid lane encodes ``(window, walker)`` when a worker span carries
  them, so each walker renders as its own named row.
- every other kind becomes an instant (``"i"``) event.
- metadata (``"M"``) events name each process and walker lane.

Merging is deterministic for a fixed input set: records sort by
``(ts, pid, run, seq)``, so the merged timeline is independent of file
enumeration order and worker count (tested in
``tests/test_obs_chrometrace.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.events import event_field
from repro.obs.report import load_trace

__all__ = [
    "iter_trace_files",
    "merge_traces",
    "to_chrome",
    "main_export",
]

#: Envelope + span-shape keys excluded from a Chrome event's ``args``.
_ENVELOPE = frozenset({"v", "run", "seq", "ts", "pid", "kind", "fields",
                       "name", "path", "dur_s", "window", "walker", "rank"})

#: tid for records with no walker lane (the process's main timeline).
_MAIN_TID = 0


def iter_trace_files(paths) -> list[Path]:
    """Expand files and directories into a sorted list of ``.jsonl`` files."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.glob("*.jsonl")))
        else:
            out.append(path)
    return out


def _sort_key(record: dict):
    ts = record.get("ts")
    return (
        float(ts) if isinstance(ts, (int, float)) else 0.0,
        int(record.get("pid") or 0),
        str(record.get("run", "")),
        int(record.get("seq") or 0),
    )


def merge_traces(paths, run: str | None = None) -> list[dict]:
    """One deterministic timeline from many per-process JSONL files.

    Garbage/truncated lines are skipped (same tolerance as every other
    trace consumer); the result is sorted by ``(ts, pid, run, seq)`` so it
    does not depend on the order the files are listed or how the campaign's
    events interleaved across processes.
    """
    records: list[dict] = []
    for path in iter_trace_files(paths):
        if not Path(path).exists():
            continue
        records.extend(load_trace(path, run=run))
    records.sort(key=_sort_key)
    return records


def _lane(record: dict) -> tuple[int, str | None]:
    """(tid, lane name) for one record; walker spans get their own lane."""
    window = event_field(record, "window")
    walker = event_field(record, "walker")
    rank = event_field(record, "rank")
    if isinstance(window, int):
        slot = walker if isinstance(walker, int) else 0
        return 1000 + window * 100 + slot, (
            f"window {window}" + (f" walker {walker}"
                                  if isinstance(walker, int) else "")
        )
    if isinstance(rank, int):
        return 500 + rank, f"rank {rank}"
    return _MAIN_TID, None


def _args(record: dict) -> dict:
    args = {k: v for k, v in record.items() if k not in _ENVELOPE}
    nested = record.get("fields")
    if isinstance(nested, dict):
        for k, v in nested.items():
            if k not in _ENVELOPE:
                args.setdefault(k, v)
    return args


def to_chrome(records: list[dict]) -> dict:
    """Render merged records as a Chrome trace-event JSON object."""
    events: list[dict] = []
    processes: dict[int, str] = {}
    lanes: dict[tuple[int, int], str] = {}
    for record in records:
        kind = record.get("kind", "?")
        pid = int(record.get("pid") or 0)
        ts = record.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        run = str(record.get("run", "?"))
        processes.setdefault(pid, f"{run} (pid {pid})")
        tid, lane_name = _lane(record)
        if lane_name is not None:
            lanes.setdefault((pid, tid), lane_name)
        if kind in ("span", "worker_span"):
            dur_s = event_field(record, "dur_s", 0.0)
            dur_us = max(0.0, float(dur_s)) * 1e6
            name = event_field(
                record, "path", event_field(record, "name", kind)
            )
            events.append({
                "name": str(name),
                "ph": "X",
                "ts": float(ts) * 1e6 - dur_us,
                "dur": dur_us,
                "pid": pid,
                "tid": tid,
                "cat": kind,
                "args": _args(record),
            })
        else:
            events.append({
                "name": str(kind),
                "ph": "i",
                "ts": float(ts) * 1e6,
                "pid": pid,
                "tid": tid,
                "s": "p",
                "cat": "event",
                "args": _args(record),
            })
    meta: list[dict] = []
    for pid, name in sorted(processes.items()):
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "tid": _MAIN_TID, "args": {"name": name}})
    for (pid, tid), name in sorted(lanes.items()):
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"name": name}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def main_export(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs export-trace",
        description="Merge JSONL traces (files and/or REPRO_TRACE_DIR "
                    "directories) into Chrome trace-event JSON.",
    )
    parser.add_argument("traces", nargs="+",
                        help=".jsonl files or directories of worker-*.jsonl")
    parser.add_argument("-o", "--output", default="trace.chrome.json",
                        help="output path (default trace.chrome.json)")
    parser.add_argument("--run", default=None,
                        help="only include records from this run id")
    args = parser.parse_args(argv)

    files = [p for p in iter_trace_files(args.traces) if p.exists()]
    if not files:
        print("no trace files found under: "
              + ", ".join(args.traces), file=sys.stderr)
        return 1
    records = merge_traces(files, run=args.run)
    if not records:
        print("no telemetry records in: "
              + ", ".join(str(f) for f in files), file=sys.stderr)
        return 1
    trace = to_chrome(records)
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trace), encoding="utf-8")
    pids = {e["pid"] for e in trace["traceEvents"]}
    print(f"wrote {out}: {len(trace['traceEvents'])} events from "
          f"{len(records)} records across {len(pids)} process(es)")
    return 0


if __name__ == "__main__":
    sys.exit(main_export())
