"""Structured run telemetry: metrics, spans, and JSONL event traces.

DeepThermo's claims are operational — time-to-flat-histogram, exchange
acceptance, walker throughput — so the reproduction carries a telemetry
layer wired through the sampling stack:

- :mod:`repro.obs.metrics` — picklable, mergeable counters / gauges /
  histograms (per-walker metrics survive the process executors and reduce
  across windows),
- :mod:`repro.obs.tracing` — nestable spans with per-path aggregates; also
  home of ``Timer``/``TimerRegistry``,
- :mod:`repro.obs.events` — newline-delimited JSON event records behind
  swappable sinks (no-op by default),
- :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``
  renders per-phase time/throughput breakdowns from a trace,
- :mod:`repro.obs.profile` — deterministic counter-sampled section profiler
  hooked into the ΔE / proposal / histogram-update / exchange hot paths,
- :mod:`repro.obs.health` — heartbeats and stall/anomaly detection for long
  REWL campaigns (``REPRO_HEALTH``),
- :mod:`repro.obs.bench` — BENCH_<n>.json benchmark snapshots and
  regression comparison (``python -m repro obs bench / bench-compare``),
- :mod:`repro.obs.dash` — ``python -m repro obs dash / tail`` terminal
  views over a live JSONL trace,
- :mod:`repro.obs.convergence` — per-window/per-walker scientific
  diagnostics (flatness, ln g drift, replica round trips, ETA) behind the
  same deterministic-stride contract (``REPRO_CONVERGENCE``),
- :mod:`repro.obs.chrometrace` — ``python -m repro obs export-trace``
  merges per-worker JSONL traces (``REPRO_TRACE_DIR``) into one Chrome
  trace-event timeline,
- :mod:`repro.obs.timeseries` — deterministic ring-buffered live series
  sampled at round boundaries (``REPRO_TIMESERIES``), plus the
  cross-process worker-series aggregator,
- :mod:`repro.obs.promexport` — OpenMetrics/Prometheus text exposition of
  a metrics snapshot,
- :mod:`repro.obs.server` — read-only HTTP status server (``/metrics``,
  ``/healthz``, ``/campaign``, ``/events``; ``REPRO_OBS_PORT`` /
  ``run_all --serve``),
- :mod:`repro.obs.costattr` — wall-clock cost attribution: profiler
  sections folded into the propose/ΔE/commit/exchange/... phase tree.

:class:`Telemetry` bundles the three runtime pieces behind one handle that
drivers accept as an optional argument.  The determinism contract: enabling
telemetry never draws random numbers and never accumulates floats into
sampler state, so instrumented runs are bit-identical to bare ones.
"""

from __future__ import annotations

from repro.obs.chrometrace import merge_traces, to_chrome
from repro.obs.costattr import attribute_cost, format_cost_line, publish_cost
from repro.obs.convergence import (
    CONVERGENCE_ENV_VAR,
    ConvergenceConfig,
    ConvergenceLedger,
    convergence_from_env,
)
from repro.obs.events import (
    ConsoleSink,
    EventLog,
    EventSink,
    FileSink,
    JsonlSink,
    MemorySink,
    NullSink,
    SCHEMA_VERSION,
    TRACE_DIR_ENV_VAR,
    TRACE_ENV_VAR,
    TRACE_FSYNC_ENV_VAR,
    event_field,
    from_env,
    worker_log,
)
from repro.obs.instrumentation import Instrumentation
from repro.obs.health import (
    HEALTH_ENV_VAR,
    HealthConfig,
    HealthMonitor,
    health_from_env,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)
from repro.obs.profile import (
    PROFILE_ENV_VAR,
    ProfiledHamiltonian,
    ProfiledProposal,
    SectionProfiler,
    SectionStat,
    profile_from_env,
)
from repro.obs.promexport import render_openmetrics
from repro.obs.server import (
    OBS_PORT_ENV_VAR,
    StatusBoard,
    StatusServer,
    get_board,
    server_from_env,
    start_server,
    stop_server,
)
from repro.obs.timeseries import (
    TIMESERIES_ENV_VAR,
    SeriesBuffer,
    TimeSeriesConfig,
    TimeSeriesRecorder,
    aggregate_worker_series,
    timeseries_from_env,
)
from repro.obs.tracing import Span, Timer, TimerRegistry, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_registries",
    "Span",
    "Timer",
    "TimerRegistry",
    "Tracer",
    "ConsoleSink",
    "EventLog",
    "EventSink",
    "FileSink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "SCHEMA_VERSION",
    "TRACE_DIR_ENV_VAR",
    "TRACE_ENV_VAR",
    "TRACE_FSYNC_ENV_VAR",
    "event_field",
    "from_env",
    "worker_log",
    "merge_traces",
    "to_chrome",
    "CONVERGENCE_ENV_VAR",
    "ConvergenceConfig",
    "ConvergenceLedger",
    "convergence_from_env",
    "Instrumentation",
    "Telemetry",
    "HEALTH_ENV_VAR",
    "HealthConfig",
    "HealthMonitor",
    "health_from_env",
    "PROFILE_ENV_VAR",
    "ProfiledHamiltonian",
    "ProfiledProposal",
    "SectionProfiler",
    "SectionStat",
    "profile_from_env",
    "TIMESERIES_ENV_VAR",
    "SeriesBuffer",
    "TimeSeriesConfig",
    "TimeSeriesRecorder",
    "aggregate_worker_series",
    "timeseries_from_env",
    "render_openmetrics",
    "OBS_PORT_ENV_VAR",
    "StatusBoard",
    "StatusServer",
    "get_board",
    "server_from_env",
    "start_server",
    "stop_server",
    "attribute_cost",
    "format_cost_line",
    "publish_cost",
]


class Telemetry:
    """One handle bundling a metrics registry, a tracer, and an event log.

    ``Telemetry()`` is fully disabled (null event log) and cheap enough to
    be every driver's default.  ``Telemetry.from_env(run_id=...)`` attaches
    a JSONL or console sink when ``REPRO_TRACE`` is set.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 events: EventLog | None = None, run_id: str | None = None):
        self.events = events if events is not None else EventLog(run_id=run_id)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = Tracer(events=self.events)

    @classmethod
    def from_env(cls, run_id: str | None = None, extra_sinks=()) -> "Telemetry":
        return cls(events=from_env(run_id=run_id, extra_sinks=extra_sinks))

    @property
    def enabled(self) -> bool:
        """True when at least one event sink is live."""
        return self.events.enabled

    def span(self, name: str, **fields) -> Span:
        return self.tracer.span(name, **fields)

    def emit(self, kind: str, **fields) -> None:
        self.events.emit(kind, **fields)

    def summary(self) -> dict:
        """JSON-ready snapshot: run id + span aggregates + metrics."""
        return {
            "run_id": self.events.run_id,
            "spans": self.tracer.as_dict(),
            "metrics": self.metrics.as_dict(),
        }

    def close(self) -> None:
        self.events.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
