"""Live run-health monitoring for long REWL campaigns.

A multi-day flat-histogram campaign can fail *quietly*: a window stops
making histogram progress, exchange acceptance between two windows
collapses to zero (the replica ladder is severed), or the executor burns
its retry budget on a flaky node.  :class:`HealthMonitor` watches a running
:class:`repro.parallel.rewl.REWLDriver` from inside the round loop and
surfaces those conditions as structured telemetry:

- **heartbeat** events every ``heartbeat_rounds`` rounds carrying, per
  window, the flatness ratio (min/mean of the visit histogram over visited
  bins, minimum across the walker team), ``ln f``, and the WL iteration
  count; per adjacent window pair, the exchange attempts/accepts/rate since
  the previous heartbeat; the task-retry delta from the metrics registry;
  and the heartbeat interval + walker throughput measured on
  ``time.monotonic()`` — internal timing deliberately never reads the wall
  clock, so stall/rate math survives NTP steps and DST jumps on multi-day
  campaigns (the envelope ``ts`` stays wall time for log correlation),
- **health_alert** events from three detectors:
  ``stall`` (no window advanced an iteration, improved its flatness ratio,
  or converged for ``stall_heartbeats`` consecutive heartbeats),
  ``exchange_collapse`` (a pair's per-heartbeat acceptance stayed below
  ``min_exchange_rate`` over ``stall_heartbeats`` heartbeats with enough
  attempts to judge), and ``retry_burst`` (``retry_alert`` or more task
  retries — injected faults, timeouts, dead workers — inside one heartbeat
  window).

Everything here *reads* sampler state and writes only telemetry: no random
numbers, no float accumulation into walkers — a monitored run is
bit-identical to a bare one (tested in ``tests/test_obs_health.py``).
:mod:`repro.obs.report` folds the resulting events into its digest, and
``python -m repro obs dash / tail`` render them live from a JSONL trace.

Environment wiring: ``REPRO_HEALTH=1`` (or
``"rounds=20,stall=3,min_rate=0.02,min_attempts=4,retries=1"``) attaches a
monitor to any REWL entry point without new flags.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_integer, check_probability

__all__ = [
    "HEALTH_ENV_VAR",
    "HealthConfig",
    "HealthMonitor",
    "health_from_env",
    "parse_health",
    "team_flatness_ratio",
]

HEALTH_ENV_VAR = "REPRO_HEALTH"

#: Heartbeat/alert event kinds (consumed by report/dash/tail).
HEARTBEAT_KIND = "heartbeat"
ALERT_KIND = "health_alert"


@dataclass(frozen=True)
class HealthConfig:
    """Cadence and thresholds for :class:`HealthMonitor`."""

    heartbeat_rounds: int = 10
    stall_heartbeats: int = 3
    min_exchange_rate: float = 0.01
    min_exchange_attempts: int = 4
    retry_alert: int = 1
    flatness_epsilon: float = 1e-3  # ratio improvement that counts as progress

    def __post_init__(self):
        check_integer("heartbeat_rounds", self.heartbeat_rounds, minimum=1)
        check_integer("stall_heartbeats", self.stall_heartbeats, minimum=1)
        check_probability("min_exchange_rate", self.min_exchange_rate)
        check_integer("min_exchange_attempts", self.min_exchange_attempts, minimum=1)
        check_integer("retry_alert", self.retry_alert, minimum=1)
        if self.flatness_epsilon < 0:
            raise ValueError(
                f"flatness_epsilon must be >= 0, got {self.flatness_epsilon!r}"
            )


def team_flatness_ratio(team) -> float:
    """min/mean of the visit histogram over visited bins, worst walker.

    0.0 when no walker has visited a bin yet; 1.0 is a perfectly flat
    histogram.  Pure read — never touches walker state.

    ``team`` is a list of walker-shaped objects (anything carrying
    ``histogram``/``visited``), a lone such object (e.g. a
    :class:`~repro.sampling.batched.BatchedWangLandauSampler` window team,
    whose K slots share one histogram), or a mix where a walker carries a
    2-D ``(K, n_bins)`` per-slot histogram — the worst slot counts.
    """
    if hasattr(team, "histogram"):
        team = [team]
    worst = None
    for walker in team:
        hist = np.asarray(walker.histogram)
        mask = np.asarray(walker.visited)
        rows = hist[None, :] if hist.ndim == 1 else hist
        row_masks = mask[None, :] if mask.ndim == 1 else mask
        for row, row_mask in zip(rows, row_masks):
            if not np.any(row_mask):
                return 0.0
            h = row[row_mask]
            mean = float(h.mean())
            ratio = float(h.min()) / mean if mean > 0 else 0.0
            worst = ratio if worst is None else min(worst, ratio)
    return worst if worst is not None else 0.0


class HealthMonitor:
    """Round-loop observer for a :class:`repro.parallel.rewl.REWLDriver`.

    The driver calls :meth:`observe_round` after every sync phase; all work
    happens on heartbeat rounds, so the per-round cost is one modulo.
    Alerts are also kept on :attr:`alerts` for programmatic access (they
    land in ``REWLResult.telemetry["health"]``).
    """

    def __init__(self, telemetry, config: HealthConfig | None = None):
        self.obs = telemetry
        self.cfg = config or HealthConfig()
        self.heartbeats = 0
        self.alerts: list[dict] = []
        self._stall_streak = 0
        self._collapse_streaks: dict[int, int] = {}
        self._last_iterations: list[int] | None = None
        self._last_flatness: list[float] | None = None
        self._last_converged = 0
        self._last_attempts: np.ndarray | None = None
        self._last_accepts: np.ndarray | None = None
        self._last_retries = 0
        # Monotonic clock only: interval/throughput math must survive
        # wall-clock jumps (NTP, DST) on long campaigns.
        self._last_mono: float | None = None
        self._last_steps = 0

    # -------------------------------------------------------------- observe

    def observe_round(self, driver) -> None:
        if driver.rounds % self.cfg.heartbeat_rounds != 0:
            return
        self.heartbeats += 1
        windows = []
        iterations = []
        flatness = []
        quarantined = list(getattr(
            driver, "window_quarantined", [False] * len(driver.walkers)
        ))
        for w, team in enumerate(driver.walkers):
            ratio = team_flatness_ratio(team)
            iterations.append(team[0].n_iterations)
            flatness.append(ratio)
            windows.append({
                "window": w,
                "ln_f": team[0].ln_f,
                "iteration": team[0].n_iterations,
                "flatness": round(ratio, 6),
                "converged": bool(driver.window_converged[w]),
                "quarantined": bool(quarantined[w]),
            })

        pairs, collapsed = self._exchange_deltas(driver)
        retries_delta = self._retries_delta()
        total_steps = sum(
            walker.n_steps for team in driver.walkers for walker in team
        )
        now_mono = time.monotonic()
        interval_s = (
            None if self._last_mono is None else now_mono - self._last_mono
        )
        steps_per_s = None
        if interval_s and interval_s > 0 and total_steps > self._last_steps:
            steps_per_s = (total_steps - self._last_steps) / interval_s
        self._last_mono = now_mono
        self._last_steps = total_steps

        # Campaign ETA from the convergence ledger, when one is attached
        # (:mod:`repro.obs.convergence`); None until it has enough history.
        ledger = getattr(driver, "convergence", None)
        eta = ledger.eta(driver) if ledger is not None else None

        # Resilience posture rides on the heartbeat so the live dash shows
        # quarantines/budget without a second event stream.
        supervisor = getattr(driver, "supervisor", None)
        budget = dict(supervisor.budget_status) if supervisor is not None else None

        self.obs.metrics.inc("health.heartbeats")
        if self.obs.enabled:
            self.obs.emit(
                HEARTBEAT_KIND, round=driver.rounds, windows=windows,
                pairs=pairs, steps=total_steps, retries=retries_delta,
                converged_windows=sum(bool(c) for c in driver.window_converged),
                quarantined_windows=sum(bool(q) for q in quarantined),
                budget=budget,
                eta=eta,
                interval_s=(
                    None if interval_s is None else round(interval_s, 4)
                ),
                steps_per_s=(
                    None if steps_per_s is None else round(steps_per_s, 2)
                ),
            )

        self._detect_stall(driver, iterations, flatness)
        self._detect_collapse(driver, collapsed)
        if retries_delta >= self.cfg.retry_alert:
            self._alert(driver, "retry_burst",
                        f"{retries_delta} task retries since last heartbeat",
                        retries=retries_delta)

        self._last_iterations = iterations
        self._last_flatness = flatness
        self._last_converged = sum(bool(c) for c in driver.window_converged)

    # ------------------------------------------------------------ detectors

    def _exchange_deltas(self, driver) -> tuple[list[dict], list[int]]:
        attempts = driver.exchange_attempts
        accepts = driver.exchange_accepts
        if self._last_attempts is None:
            d_att = attempts.copy()
            d_acc = accepts.copy()
        else:
            d_att = attempts - self._last_attempts
            d_acc = accepts - self._last_accepts
        self._last_attempts = attempts.copy()
        self._last_accepts = accepts.copy()
        pairs = []
        collapsed = []
        for pair in range(len(d_att)):
            att, acc = int(d_att[pair]), int(d_acc[pair])
            rate = acc / att if att else None
            pairs.append({"pair": pair, "attempts": att, "accepts": acc,
                          "rate": None if rate is None else round(rate, 4)})
            if att >= self.cfg.min_exchange_attempts \
                    and (rate or 0.0) < self.cfg.min_exchange_rate:
                collapsed.append(pair)
        return pairs, collapsed

    def _retries_delta(self) -> int:
        total = 0
        if "task.retries" in self.obs.metrics:
            total = self.obs.metrics.counter("task.retries").value
        delta = total - self._last_retries
        self._last_retries = total
        return delta

    def _detect_stall(self, driver, iterations, flatness) -> None:
        if self._last_iterations is None:
            return  # first heartbeat: no baseline yet
        progressed = (
            any(a > b for a, b in zip(iterations, self._last_iterations))
            or any(
                a > b + self.cfg.flatness_epsilon
                for a, b in zip(flatness, self._last_flatness)
            )
            or sum(bool(c) for c in driver.window_converged) > self._last_converged
        )
        # A quarantined window is settled, not stalled: only windows still
        # expected to progress count toward the stall detector.
        quarantined = getattr(
            driver, "window_quarantined", [False] * len(driver.window_converged)
        )
        settled = all(
            c or q for c, q in zip(driver.window_converged, quarantined)
        )
        if progressed or settled:
            self._stall_streak = 0
            return
        self._stall_streak += 1
        if self._stall_streak >= self.cfg.stall_heartbeats:
            self._alert(
                driver, "stall",
                f"no histogram progress for {self._stall_streak} heartbeats "
                f"({self._stall_streak * self.cfg.heartbeat_rounds} rounds)",
                heartbeats=self._stall_streak,
            )

    def _detect_collapse(self, driver, collapsed: list[int]) -> None:
        for pair in list(self._collapse_streaks):
            if pair not in collapsed:
                del self._collapse_streaks[pair]
        for pair in collapsed:
            streak = self._collapse_streaks.get(pair, 0) + 1
            self._collapse_streaks[pair] = streak
            if streak >= self.cfg.stall_heartbeats:
                self._alert(
                    driver, "exchange_collapse",
                    f"window pair {pair}-{pair + 1} acceptance below "
                    f"{self.cfg.min_exchange_rate:.1%} for {streak} heartbeats",
                    pair=pair, heartbeats=streak,
                )

    def _alert(self, driver, alert: str, detail: str, **fields) -> None:
        record = {"alert": alert, "round": driver.rounds, "detail": detail,
                  **fields}
        self.alerts.append(record)
        self.obs.metrics.inc("health.alerts")
        self.obs.metrics.inc(f"health.alerts.{alert}")
        if self.obs.enabled:
            self.obs.emit(ALERT_KIND, **record)

    # -------------------------------------------------------------- summary

    def summary(self) -> dict:
        """JSON-ready digest for ``REWLResult.telemetry["health"]``."""
        return {
            "heartbeats": self.heartbeats,
            "alerts": list(self.alerts),
        }


# ------------------------------------------------------------- env activation

_KEY_ALIASES = {
    "rounds": "heartbeat_rounds",
    "heartbeat_rounds": "heartbeat_rounds",
    "stall": "stall_heartbeats",
    "stall_heartbeats": "stall_heartbeats",
    "min_rate": "min_exchange_rate",
    "min_exchange_rate": "min_exchange_rate",
    "min_attempts": "min_exchange_attempts",
    "min_exchange_attempts": "min_exchange_attempts",
    "retries": "retry_alert",
    "retry_alert": "retry_alert",
}

_INT_FIELDS = {"heartbeat_rounds", "stall_heartbeats",
               "min_exchange_attempts", "retry_alert"}


def parse_health(spec: str) -> HealthConfig:
    """Parse a ``REPRO_HEALTH`` value: ``"1"`` or ``"rounds=20,stall=3,..."``."""
    value = spec.strip().lower()
    if value in ("1", "on", "true"):
        return HealthConfig()
    kwargs = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        field = _KEY_ALIASES.get(key.strip())
        if not sep or field is None:
            known = ", ".join(sorted(set(_KEY_ALIASES)))
            raise ValueError(
                f"bad {HEALTH_ENV_VAR} entry {part!r}; expected 1/on or "
                f"key=value with key in {{{known}}}"
            )
        try:
            kwargs[field] = int(raw) if field in _INT_FIELDS else float(raw)
        except ValueError as exc:
            raise ValueError(
                f"bad {HEALTH_ENV_VAR} value for {key!r}: {raw!r}"
            ) from exc
    return HealthConfig(**kwargs)


def health_from_env(env_var: str = HEALTH_ENV_VAR) -> HealthConfig | None:
    """A :class:`HealthConfig` from the environment, or None when disabled."""
    value = os.environ.get(env_var, "").strip()
    if value.lower() in ("", "0", "off", "false"):
        return None
    return parse_health(value)
