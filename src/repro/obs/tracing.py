"""Span tracing and wall-clock timers.

:class:`Span` generalizes the plain :class:`Timer` stopwatch: spans nest (a span opened while another is running becomes its child, and
aggregates under the dotted path ``parent.child``), survive exceptions (the
interval is recorded and the stack unwound either way), and optionally emit
a structured record to an event log (:mod:`repro.obs.events`) on close.

``Timer`` and ``TimerRegistry`` live here because a span *is* a timer
plus context; the aggregate a :class:`Tracer` keeps per path is literally
a ``Timer``.

Nothing in this module draws random numbers or writes into sampler arrays:
instrumented runs stay bit-identical to uninstrumented ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "TimerRegistry", "Span", "Tracer"]


@dataclass
class Timer:
    """Accumulating stopwatch usable as a context manager.

    >>> t = Timer("sweep")
    >>> with t:
    ...     pass
    >>> t.count
    1
    """

    name: str = ""
    total: float = 0.0
    count: int = 0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the elapsed interval for this start/stop pair."""
        if self._start is None:
            raise RuntimeError(f"timer {self.name!r} is not running")
        elapsed = time.perf_counter() - self._start
        self._start = None
        self.total += elapsed
        self.count += 1
        return elapsed

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def mean(self) -> float:
        """Mean interval length (0.0 when never stopped)."""
        return self.total / self.count if self.count else 0.0


class TimerRegistry:
    """Named collection of timers with a one-line report per timer."""

    def __init__(self):
        self._timers: dict[str, Timer] = {}

    def __getitem__(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def names(self) -> list[str]:
        return sorted(self._timers)

    def report(self) -> str:
        # Size the name column to the longest name so long (e.g. deeply
        # nested span) names cannot shear the numeric columns out of line.
        width = max([28] + [len(name) + 2 for name in self.names()])
        lines = [f"{'timer':<{width}}{'calls':>8}{'total_s':>12}{'mean_ms':>12}"]
        for name in self.names():
            t = self._timers[name]
            lines.append(
                f"{name:<{width}}{t.count:>8}{t.total:>12.4f}{t.mean * 1e3:>12.4f}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {
            name: {"total": t.total, "count": t.count, "mean": t.mean}
            for name, t in self._timers.items()
        }


class Span:
    """One timed region; created by :meth:`Tracer.span`, used as a context.

    Attributes are populated on exit: ``duration`` (seconds) and ``path``
    (dot-joined ancestry, e.g. ``"rewl.round.advance"``).
    """

    __slots__ = ("tracer", "name", "fields", "path", "duration", "_t0")

    def __init__(self, tracer: "Tracer", name: str, fields: dict):
        self.tracer = tracer
        self.name = name
        self.fields = fields
        self.path = name
        self.duration = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        stack = self.tracer._stack
        if stack:
            self.path = f"{stack[-1].path}.{self.name}"
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._t0
        # Unwind unconditionally so an exception inside the span cannot
        # corrupt the ancestry of later spans.
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        agg = self.tracer.timers[self.path]
        agg.total += self.duration
        agg.count += 1
        events = self.tracer.events
        if events is not None and events.enabled:
            record = {"name": self.name, "path": self.path,
                      "dur_s": self.duration, **self.fields}
            if exc_type is not None:
                record["error"] = exc_type.__name__
            events.emit("span", **record)


class Tracer:
    """Span factory plus per-path aggregate timings.

    Parameters
    ----------
    events : EventLog, optional
        Sink for per-span records; ``None`` aggregates only.
    """

    def __init__(self, events=None):
        self.events = events
        self.timers = TimerRegistry()
        self._stack: list[Span] = []

    def span(self, name: str, **fields) -> Span:
        """Open a (nestable) span: ``with tracer.span("advance", round=3):``."""
        return Span(self, name, fields)

    @property
    def current_path(self) -> str | None:
        """Dotted path of the innermost open span (None outside any span)."""
        return self._stack[-1].path if self._stack else None

    def report(self) -> str:
        return self.timers.report()

    def as_dict(self) -> dict[str, dict[str, float]]:
        return self.timers.as_dict()
