"""HTTP status server: live ``/metrics``, ``/healthz``, ``/campaign``,
``/events`` for a running campaign.

A long unattended REWL campaign should be observable *while it runs*
without attaching a debugger or waiting for ``obs report``.  This module
serves the plain-data views the :class:`~repro.obs.timeseries.TimeSeriesRecorder`
maintains at round boundaries, over a stdlib ``http.server`` thread:

====================  =======================================================
endpoint              serves
====================  =======================================================
``/metrics``          OpenMetrics text (:mod:`repro.obs.promexport`) of the
                      newest registry snapshot — campaign counters, per-window
                      ln f / flatness / fill gauges, phase cost gauges
``/healthz``          JSON liveness: 200 while healthy, 503 once any window
                      is quarantined / the supervisor is degraded or the
                      failure budget is exhausted (scrape-friendly paging)
``/campaign``         campaign manifest (what ``run_all`` published) plus the
                      per-run live status JSON: windows, dispositions, ETA,
                      cost attribution, ring-buffer series
``/events``           trailing records of the JSONL trace (``?n=`` lines,
                      default 50) as ``application/jsonl``
====================  =======================================================

Read-only guarantee: the handler thread renders exclusively from
:class:`StatusBoard` state — plain-data copies published by the driver
thread under the recorder's lock — and never touches live walkers,
registries, or RNG streams.  Serving therefore cannot change a single
sampled number; ``tests/test_obs_server.py`` proves bit-identity of a
seeded campaign run with and without ``--serve``.

Wiring: ``run_all --serve PORT`` or ``REPRO_OBS_PORT=PORT`` (port ``0``
binds an ephemeral port, which tests use).  The module keeps one process
singleton (:func:`get_board` / :func:`start_server`) so the driver, the
experiment harness, and tests all talk about the same board.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs.promexport import CONTENT_TYPE, render_openmetrics

__all__ = [
    "OBS_PORT_ENV_VAR",
    "StatusBoard",
    "StatusServer",
    "get_board",
    "start_server",
    "stop_server",
    "server_from_env",
]

OBS_PORT_ENV_VAR = "REPRO_OBS_PORT"


class StatusBoard:
    """Thread-safe bulletin board the HTTP handlers render from.

    Producers (driver thread, ``run_all``) publish plain-data snapshots;
    the handler thread only reads.  Nothing here refers back into live
    sampler objects.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._recorders: dict[str, object] = {}
        self._campaign: dict | None = None
        self._trace_path: str | None = None

    # -------------------------------------------------------- publishers

    def publish_recorder(self, recorder, run: str | None = None) -> None:
        """Attach a :class:`TimeSeriesRecorder` (latest per run id wins)."""
        with self._lock:
            key = run or recorder.latest.get("run") or "current"
            self._recorders[str(key)] = recorder
            self._recorders["current"] = recorder

    def publish_campaign(self, manifest: dict) -> None:
        """Publish the campaign manifest (``run_all``'s campaign dict)."""
        with self._lock:
            self._campaign = json.loads(json.dumps(manifest, default=str))

    def publish_trace(self, path) -> None:
        """Register the JSONL trace file ``/events`` should tail."""
        with self._lock:
            self._trace_path = os.fspath(path)

    def clear(self) -> None:
        with self._lock:
            self._recorders.clear()
            self._campaign = None
            self._trace_path = None

    # ----------------------------------------------------------- readers

    def _recorder(self):
        with self._lock:
            return self._recorders.get("current")

    def metrics_text(self) -> str:
        recorder = self._recorder()
        snapshot = recorder.metrics_view() if recorder is not None else {}
        return render_openmetrics(snapshot)

    def health(self) -> tuple[int, dict]:
        """``/healthz`` payload and status code (200 healthy, 503 not)."""
        recorder = self._recorder()
        if recorder is None:
            return 200, {"status": "idle", "reason": "no recorder attached"}
        status = recorder.status()
        budget = status.get("budget") or {}
        if budget.get("exhausted"):
            return 503, {
                "status": "budget_exhausted",
                "trigger": budget.get("trigger"),
                "round": status.get("round"),
            }
        if status.get("degraded") or status.get("quarantined"):
            return 503, {
                "status": "degraded",
                "quarantined_windows": status.get("quarantined", []),
                "round": status.get("round"),
            }
        return 200, {
            "status": "ok",
            "round": status.get("round"),
            "steps": status.get("steps"),
            "converged": status.get("converged"),
        }

    def campaign_view(self) -> dict:
        recorder = self._recorder()
        with self._lock:
            out = {"campaign": self._campaign}
        if recorder is not None:
            out["live"] = recorder.status()
        return out

    def events_tail(self, n: int = 50) -> list[str]:
        with self._lock:
            path = self._trace_path
        if not path:
            return []
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError:
            return []
        lines = [
            line.decode("utf-8", errors="replace")
            for line in raw.splitlines()
            if line.strip()
        ]
        return lines[-n:] if n else lines


_board = StatusBoard()
_server: "StatusServer | None" = None
_server_lock = threading.Lock()


def get_board() -> StatusBoard:
    """The process-wide status board (what servers and drivers share)."""
    return _board


class _Handler(BaseHTTPRequestHandler):
    """Render-only request handler; never writes to board or campaign."""

    server_version = "repro-obs/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        return None  # keep campaign stdout/stderr clean

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload) -> None:
        body = json.dumps(payload, indent=2, default=str).encode("utf-8")
        self._send(code, body, "application/json; charset=utf-8")

    def do_GET(self):  # noqa: N802 - stdlib hook name
        board: StatusBoard = self.server.board
        url = urlparse(self.path)
        try:
            if url.path in ("/metrics", "/metrics/"):
                self._send(200, board.metrics_text().encode("utf-8"),
                           CONTENT_TYPE)
            elif url.path in ("/healthz", "/health", "/healthz/"):
                code, payload = board.health()
                self._send_json(code, payload)
            elif url.path in ("/campaign", "/campaign/"):
                self._send_json(200, board.campaign_view())
            elif url.path in ("/events", "/events/"):
                query = parse_qs(url.query)
                try:
                    n = int(query.get("n", ["50"])[0])
                except ValueError:
                    n = 50
                body = "".join(line + "\n" for line in board.events_tail(n))
                self._send(200, body.encode("utf-8"),
                           "application/jsonl; charset=utf-8")
            elif url.path == "/":
                self._send_json(200, {
                    "endpoints": ["/metrics", "/healthz", "/campaign",
                                  "/events"],
                })
            else:
                self._send_json(404, {"error": f"no such endpoint {url.path}"})
        except BrokenPipeError:
            pass  # scraper went away mid-response; nothing to clean up


class StatusServer:
    """A ``ThreadingHTTPServer`` on a daemon thread, bound to ``board``."""

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 board: StatusBoard | None = None):
        self.board = board if board is not None else get_board()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.board = self.board
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-obs-server:{self.port}",
            daemon=True,
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "StatusServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)


def start_server(port: int = 0, host: str = "127.0.0.1") -> StatusServer:
    """Start (or return) the process singleton server.

    Idempotent: a second call returns the running server (ports are not
    rebound mid-campaign).  Use :func:`stop_server` between tests.
    """
    global _server
    with _server_lock:
        if _server is not None:
            return _server
        _server = StatusServer(port=port, host=host).start()
        return _server


def stop_server() -> None:
    """Stop and forget the singleton server (no-op when none runs)."""
    global _server
    with _server_lock:
        server, _server = _server, None
    if server is not None:
        server.stop()


def server_from_env(env_var: str = OBS_PORT_ENV_VAR) -> StatusServer | None:
    """Start the singleton server from ``REPRO_OBS_PORT``, or None if unset.

    ``"0"`` is a valid value (ephemeral port); an empty/missing variable
    disables serving.  Malformed values raise ``ValueError`` loudly rather
    than silently not serving.
    """
    value = os.environ.get(env_var, "").strip()
    if not value:
        return None
    try:
        port = int(value)
    except ValueError as exc:
        raise ValueError(
            f"bad {env_var} value {value!r}; expected an integer port"
        ) from exc
    return start_server(port=port)
