"""Render a per-phase breakdown from a telemetry trace.

``python -m repro.obs.report trace.jsonl`` reads the newline-delimited JSON
records written by :class:`repro.obs.events.JsonlSink` and prints

- the runs contained in the trace (id, record count, wall-clock span),
- a per-phase table aggregated over span records (calls, total time, mean,
  share of traced time) with walker throughput where spans carry ``steps``,
- exchange-acceptance rates per adjacent window pair,
- the per-window ln f trajectory (sync events),
- a training summary when trainer events are present,
- a profiled-sections table when ``profile`` events are present (emitted by
  :mod:`repro.obs.profile` via the REWL driver),
- a "Cost attribution" table — profiler sections folded into the
  propose/ΔE/commit/exchange/... phase tree of
  :mod:`repro.obs.costattr` — when ``cost`` events are present,
- a run-health digest — heartbeat count plus ``health_alert`` events by
  kind — when :mod:`repro.obs.health` monitored the run,
- a "Convergence" table — per-window flatness/fill/ln g drift, walker-label
  tunneling counts, and the ETA projection — when the run carried a
  :class:`repro.obs.convergence.ConvergenceLedger`,
- a "Resilience" table — per-window disposition (healthy / retrying /
  rolled-back / quarantined), guard trips, rollbacks, plus budget status
  and an explicit DEGRADED banner — when the run carried a
  :class:`repro.resilience.CampaignSupervisor`.

This is the consumer side of the schema described in DESIGN.md §8/§10; the
producer side is wired through :class:`repro.parallel.rewl.REWLDriver`,
:class:`repro.sampling.wang_landau.WangLandauSampler`,
:class:`repro.training.trainer.ProposalTrainer`, and the experiment harness.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

from repro.obs.events import event_field

__all__ = ["load_trace", "render_report", "main"]


def load_trace(path, run: str | None = None) -> list[dict]:
    """Parse a JSONL trace; skips malformed lines, optionally filters by run."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and (run is None or record.get("run") == run):
                records.append(record)
    return records


def _fmt_seconds(s: float) -> str:
    return f"{s:.4f}"


def _span_table(records: list[dict]) -> str:
    from repro.util.tables import format_table

    agg: dict[str, dict] = defaultdict(
        lambda: {"calls": 0, "total": 0.0, "steps": 0}
    )
    for r in records:
        if r.get("kind") != "span":
            continue
        row = agg[r.get("path", r.get("name", "?"))]
        row["calls"] += 1
        row["total"] += float(r.get("dur_s", 0.0))
        if isinstance(r.get("steps"), (int, float)):
            row["steps"] += r["steps"]
    if not agg:
        return "(no span records)"
    # Share is computed against top-level spans only; child spans are a
    # subdivision of their parents, not extra wall time.
    top_total = sum(v["total"] for path, v in agg.items() if "." not in path)
    if top_total <= 0:
        top_total = sum(v["total"] for v in agg.values())
    rows = []
    for path in sorted(agg):
        v = agg[path]
        mean_ms = v["total"] / v["calls"] * 1e3 if v["calls"] else 0.0
        share = v["total"] / top_total if top_total > 0 else 0.0
        throughput = f"{v['steps'] / v['total']:,.0f}" if v["steps"] and v["total"] > 0 else "-"
        rows.append([path, v["calls"], _fmt_seconds(v["total"]),
                     f"{mean_ms:.3f}", f"{share:.1%}", throughput])
    return format_table(
        ["phase", "calls", "total_s", "mean_ms", "share", "steps/s"],
        rows, title="per-phase breakdown",
    )


def _exchange_table(records: list[dict]) -> str | None:
    from repro.util.tables import format_table

    attempts: dict[int, int] = defaultdict(int)
    accepts: dict[int, int] = defaultdict(int)
    for r in records:
        if r.get("kind") != "exchange_attempt":
            continue
        pair = int(r.get("pair", -1))
        attempts[pair] += 1
        if r.get("accepted"):
            accepts[pair] += 1
    if not attempts:
        return None
    rows = []
    for pair in sorted(attempts):
        att, acc = attempts[pair], accepts[pair]
        rate = f"{acc / att:.1%}" if att else "-"
        rows.append([f"{pair}-{pair + 1}", att, acc, rate])
    return format_table(
        ["window pair", "attempts", "accepts", "acceptance"],
        rows, title="replica exchanges",
    )


def _lnf_table(records: list[dict]) -> str | None:
    from repro.util.tables import format_table

    per_window: dict[int, list[float]] = defaultdict(list)
    for r in records:
        if r.get("kind") == "sync":
            per_window[int(r.get("window", -1))].append(float(r.get("ln_f", 0.0)))
        elif r.get("kind") == "wl_iteration":
            per_window[int(r.get("window", 0))].append(float(r.get("ln_f", 0.0)))
    if not per_window:
        return None
    rows = [
        [w, len(traj), f"{traj[0]:.3g}", f"{traj[-1]:.3g}"]
        for w, traj in sorted(per_window.items())
    ]
    return format_table(
        ["window", "iterations", "first ln f", "final ln f"],
        rows, title="ln f trajectory",
    )


def _fault_lines(records: list[dict]) -> list[str]:
    """Fault-tolerance digest: retries by reason, rebuilds, checkpoint I/O."""
    retries: dict[str, int] = defaultdict(int)
    for r in records:
        if r.get("kind") == "task_retry":
            retries[str(r.get("reason", "?"))] += 1
    rebuilds = sum(1 for r in records if r.get("kind") == "pool_rebuild")
    saved = sum(1 for r in records if r.get("kind") == "checkpoint_saved")
    restored = sum(1 for r in records if r.get("kind") == "checkpoint_restored")
    fallbacks = sum(1 for r in records if r.get("kind") == "checkpoint_fallback")
    if not (retries or rebuilds or saved or restored or fallbacks):
        return []
    parts = []
    if retries:
        by_reason = ", ".join(f"{k}={v}" for k, v in sorted(retries.items()))
        parts.append(f"{sum(retries.values())} task retries ({by_reason})")
    if rebuilds:
        parts.append(f"{rebuilds} pool rebuild(s)")
    if saved or restored:
        parts.append(f"checkpoints: {saved} saved, {restored} restored")
    if fallbacks:
        parts.append(f"{fallbacks} fallback(s) to a previous snapshot")
    return ["fault tolerance: " + "; ".join(parts), ""]


def _profile_table(records: list[dict]) -> str | None:
    """Sections table from ``profile`` events (latest event wins per run).

    The driver emits one cumulative ``profile`` event at run end, so merging
    across runs sums the last event of each run.
    """
    from repro.util.tables import format_table

    latest: dict[str, dict] = {}
    for r in records:
        if r.get("kind") == "profile" and isinstance(r.get("sections"), dict):
            latest[str(r.get("run", "?"))] = r["sections"]
    if not latest:
        return None
    merged: dict[str, dict] = defaultdict(
        lambda: {"calls": 0, "timed": 0, "est_total_s": 0.0}
    )
    for sections in latest.values():
        for name, stat in sections.items():
            row = merged[name]
            row["calls"] += int(stat.get("calls", 0))
            row["timed"] += int(stat.get("timed", 0))
            row["est_total_s"] += float(stat.get("est_total_s", 0.0))
    rows = []
    for name in sorted(merged):
        v = merged[name]
        mean_us = v["est_total_s"] / v["calls"] * 1e6 if v["calls"] else 0.0
        rows.append([name, v["calls"], v["timed"],
                     f"{v['est_total_s']:.4f}", f"{mean_us:.2f}"])
    return format_table(
        ["section", "calls", "timed", "est_total_s", "mean_us"],
        rows, title="profiled sections",
    )


def _cost_lines(records: list[dict]) -> list[str]:
    """"Cost attribution" table from ``cost`` events (latest per run).

    The driver emits one cumulative ``cost`` event at run end (the phase
    tree built by :func:`repro.obs.costattr.attribute_cost` from the merged
    profile), so per run the newest event wins.
    """
    from repro.obs.costattr import COST_KIND, PHASES
    from repro.util.tables import format_table

    latest: dict[str, dict] = {}
    for r in records:
        if r.get("kind") != COST_KIND:
            continue
        if isinstance(event_field(r, "phases"), dict):
            latest[str(r.get("run", "?"))] = r
    if not latest:
        return []
    lines: list[str] = []
    for run_id, summ in latest.items():
        phases = event_field(summ, "phases", {})
        rows = []
        for phase in PHASES:
            bucket = phases.get(phase)
            if not bucket:
                continue
            sections = bucket.get("sections", {})
            rows.append([
                phase,
                f"{bucket.get('seconds', 0.0):.4f}",
                f"{bucket.get('share', 0.0):.1%}",
                ", ".join(sorted(sections))[:56] or "-",
            ])
        if rows:
            lines.append(format_table(
                ["phase", "est_total_s", "share", "sections"],
                rows, title=f"Cost attribution (run {run_id})",
            ))
        total = event_field(summ, "total_s", 0.0)
        unattributed = event_field(summ, "unattributed_s", 0.0)
        detail = f"attributed wall-clock: {total:.4f}s"
        if unattributed:
            detail += f" (+{unattributed:.4f}s in unmapped sections)"
        lines.append(detail)
        lines.append("")
    return lines


def _health_lines(records: list[dict]) -> list[str]:
    """Run-health digest: heartbeat count + alerts by kind (with details)."""
    heartbeats = sum(1 for r in records if r.get("kind") == "heartbeat")
    alerts = [r for r in records if r.get("kind") == "health_alert"]
    if not heartbeats and not alerts:
        return []
    by_kind: dict[str, int] = defaultdict(int)
    for a in alerts:
        # Alert payloads may ride flat next to the envelope or nested under
        # "fields" — event_field reads both shapes.
        by_kind[str(event_field(a, "alert", "?"))] += 1
    summary = ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
    lines = [
        f"run health: {heartbeats} heartbeat(s), {len(alerts)} alert(s)"
        + (f" ({summary})" if summary else "")
    ]
    for a in alerts:
        lines.append(f"  [{event_field(a, 'alert', '?')}] round "
                     f"{event_field(a, 'round', '?')}: "
                     f"{event_field(a, 'detail', '')}")
    lines.append("")
    return lines


def _convergence_lines(records: list[dict]) -> list[str]:
    """"Convergence" section from ledger summary events (latest per run).

    The driver emits one cumulative ``convergence`` event at run end (the
    digest of :class:`repro.obs.convergence.ConvergenceLedger`), so per run
    the newest event wins; the ETA shown is the freshest of the summary's
    own projection and the last heartbeat's ``eta`` field.
    """
    from repro.util.tables import format_table

    latest: dict[str, dict] = {}
    for r in records:
        if r.get("kind") != "convergence":
            continue
        windows = event_field(r, "windows")
        if isinstance(windows, list):
            latest[str(r.get("run", "?"))] = r
    if not latest:
        return []
    heartbeat_eta = None
    for r in records:
        if r.get("kind") == "heartbeat":
            eta = event_field(r, "eta")
            if isinstance(eta, dict):
                heartbeat_eta = eta
    lines: list[str] = []
    for run_id, summ in latest.items():
        eta = event_field(summ, "eta") or heartbeat_eta
        eta_by_window = {}
        if isinstance(eta, dict):
            for entry in eta.get("windows", []):
                eta_by_window[entry.get("window")] = entry
        rows = []
        for w in event_field(summ, "windows", []):
            flat = w.get("flatness") or []
            traj = w.get("ln_f") or []
            drift = w.get("ln_g_drift")
            proj = eta_by_window.get(w.get("window"))
            rows.append([
                w.get("window"),
                w.get("syncs", 0),
                f"{traj[-1]:.3g}" if traj else "-",
                f"{flat[-1]:.3f}" if flat else "-",
                f"{w.get('fill', 0.0):.1%}",
                "-" if drift is None else f"{drift:.3g}",
                "flat" if proj is None else f"{proj.get('eta_rounds', '?')}",
            ])
        if rows:
            lines.append(format_table(
                ["window", "syncs", "ln f", "flatness", "fill",
                 "ln g drift", "eta rounds"],
                rows, title=f"Convergence (run {run_id})",
            ))
        attempts = sum(event_field(summ, "pair_attempts", []) or [])
        accepts = sum(event_field(summ, "pair_accepts", []) or [])
        detail = (
            f"replica diffusion: {event_field(summ, 'tunnels', 0)} tunnel(s), "
            f"{event_field(summ, 'round_trips', 0)} round trip(s); "
            f"exchanges {accepts}/{attempts} accepted"
        )
        if isinstance(eta, dict) and eta.get("windows"):
            seconds = eta.get("seconds")
            wall = "" if seconds is None else f" (~{seconds:,.0f}s)"
            detail += f"; ETA {eta.get('rounds', '?')} round(s){wall}"
        lines.append(detail)
        lines.append("")
    return lines


def _resilience_lines(records: list[dict]) -> list[str]:
    """"Resilience" section: disposition table + guard/budget digest.

    The driver emits one cumulative ``resilience`` event at run end (the
    digest of :class:`repro.resilience.CampaignSupervisor`); per run the
    newest event wins.  Incremental ``guard_trip`` / ``window_rollback`` /
    ``window_quarantine`` / ``budget_exhausted`` events are counted as a
    cross-check even when no summary made it out (e.g. an aborted run).
    """
    from repro.util.tables import format_table

    latest: dict[str, dict] = {}
    for r in records:
        if r.get("kind") != "resilience":
            continue
        if isinstance(event_field(r, "windows"), list):
            latest[str(r.get("run", "?"))] = r
    trips = sum(1 for r in records if r.get("kind") == "guard_trip")
    rollbacks = sum(1 for r in records if r.get("kind") == "window_rollback")
    quarantines = sum(1 for r in records if r.get("kind") == "window_quarantine")
    budget_events = [r for r in records if r.get("kind") == "budget_exhausted"]
    if not latest and not (trips or rollbacks or quarantines or budget_events):
        return []
    lines: list[str] = []
    for run_id, summ in latest.items():
        rows = []
        for w in event_field(summ, "windows", []) or []:
            rows.append([
                w.get("window"),
                w.get("disposition", "?"),
                w.get("guard_trips", 0),
                w.get("rollbacks", 0),
                w.get("task_failures", 0),
                (w.get("reason") or "-")[:48],
            ])
        if rows:
            lines.append(format_table(
                ["window", "disposition", "guard trips", "rollbacks",
                 "task failures", "reason"],
                rows, title=f"Resilience (run {run_id}, "
                            f"mode {event_field(summ, 'mode', '?')})",
            ))
        budget = event_field(summ, "budget") or {}
        status = (
            f"budget exhausted ({budget.get('trigger')})"
            if budget.get("exhausted") else "budget ok"
        )
        flag = "DEGRADED" if event_field(summ, "degraded") else "complete"
        lines.append(
            f"campaign {flag}: {event_field(summ, 'guard_trips', 0)} guard "
            f"trip(s), {event_field(summ, 'rollbacks', 0)} rollback(s), "
            f"{len(event_field(summ, 'quarantined', []) or [])} "
            f"quarantine(s); {status}"
        )
        lines.append("")
    if not latest:
        parts = []
        if trips:
            parts.append(f"{trips} guard trip(s)")
        if rollbacks:
            parts.append(f"{rollbacks} rollback(s)")
        if quarantines:
            parts.append(f"{quarantines} quarantine(s)")
        for b in budget_events:
            parts.append(f"budget exhausted ({event_field(b, 'trigger', '?')})")
        lines.append("resilience: " + "; ".join(parts)
                     + " (no run summary — campaign aborted?)")
        lines.append("")
    return lines


def _training_lines(records: list[dict]) -> list[str]:
    losses = [float(r["loss"]) for r in records
              if r.get("kind") == "train_step" and "loss" in r]
    if not losses:
        return []
    return [
        f"training: {len(losses)} steps, loss {losses[0]:.4f} -> {losses[-1]:.4f}",
        "",
    ]


def render_report(records: list[dict]) -> str:
    """Assemble the full text report for one trace's records."""
    lines: list[str] = []
    runs: dict[str, list[dict]] = defaultdict(list)
    for r in records:
        runs[str(r.get("run", "?"))].append(r)
    for run_id, recs in runs.items():
        stamps = [r["ts"] for r in recs if isinstance(r.get("ts"), (int, float))]
        span = f"{max(stamps) - min(stamps):.1f}s" if len(stamps) > 1 else "n/a"
        lines.append(f"run {run_id}: {len(recs)} records, wall span {span}")
    lines.append("")
    lines.append(_span_table(records))
    lines.append("")
    for table in (_exchange_table(records), _lnf_table(records),
                  _profile_table(records)):
        if table is not None:
            lines.append(table)
            lines.append("")
    lines.extend(_cost_lines(records))
    lines.extend(_convergence_lines(records))
    lines.extend(_resilience_lines(records))
    lines.extend(_health_lines(records))
    lines.extend(_fault_lines(records))
    lines.extend(_training_lines(records))
    errors = [r for r in records if r.get("kind") == "span" and "error" in r]
    if errors:
        lines.append(f"WARNING: {len(errors)} span(s) closed by an exception "
                     f"({sorted({r['error'] for r in errors})})")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Per-phase time/throughput breakdown of a telemetry trace.",
    )
    parser.add_argument("trace", help="path to a .jsonl trace file")
    parser.add_argument("--run", default=None,
                        help="only include records from this run id")
    args = parser.parse_args(argv)

    path = Path(args.trace)
    if not path.exists():
        print(f"no such trace file: {path}", file=sys.stderr)
        return 1
    records = load_trace(path, run=args.run)
    if not records:
        print(f"no telemetry records in {path}"
              + (f" for run {args.run}" if args.run else ""), file=sys.stderr)
        return 1
    print(render_report(records), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
