"""Deterministic in-process time series for live campaign telemetry.

Everything observability built before this module is either *cumulative*
(metrics registry, profiler) or *post-hoc* (JSONL traces digested after the
run).  :class:`TimeSeriesRecorder` is the live middle: at round boundaries
it samples the quantities an operator of a long unattended campaign watches
— per-window ln f / flatness / fill, campaign step counters, the
:class:`~repro.obs.convergence.ConvergenceLedger` ETA, HealthMonitor
heartbeat rates, and resilience dispositions — into fixed-capacity
:class:`SeriesBuffer` rings, and republishes the latest values as *labeled*
gauges in the metrics registry so the OpenMetrics exposition
(:mod:`repro.obs.promexport`) and the HTTP status server
(:mod:`repro.obs.server`) can serve them without touching sampler state.

Determinism contract (same as the ledger and profiler): sampling is chosen
by a plain round-counter stride, draws no random numbers, and writes only
into the recorder and the metrics registry — a recorded (or served) run is
bit-identical to a bare one (tested in ``tests/test_obs_server.py``).

Ring buffers use the ConvergenceLedger's every-other decimation: past
``max_samples`` every other *old* sample is dropped, keeping the newest, so
long campaigns retain a coarse full-history view at fixed memory, and the
decimation points are a pure function of the append count (resumed runs
decimate identically).

Cross-process aggregation: when ``REPRO_TRACE_DIR`` is set, worker
processes append ``worker_span`` records to per-pid JSONL files
(:func:`repro.obs.events.worker_log`).  The recorder tails those files
incrementally (:class:`repro.obs.events.JsonlFollower`) and folds them into
campaign-level series keyed by ``(window, walker)`` — advance seconds and
walker throughput per lane;  :func:`aggregate_worker_series` is the
standalone post-hoc spelling of the same fold.

Environment wiring: ``REPRO_TIMESERIES=1`` (or ``"every=5,max=512"``)
attaches a recorder to any REWL entry point; serving (``REPRO_OBS_PORT`` /
``run_all --serve``) implies one.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.obs.events import TRACE_DIR_ENV_VAR, JsonlFollower, event_field
from repro.util.validation import check_integer

__all__ = [
    "TIMESERIES_ENV_VAR",
    "SeriesBuffer",
    "TimeSeriesConfig",
    "TimeSeriesRecorder",
    "aggregate_worker_series",
    "parse_timeseries",
    "timeseries_from_env",
]

TIMESERIES_ENV_VAR = "REPRO_TIMESERIES"


@dataclass(frozen=True)
class TimeSeriesConfig:
    """Sampling cadence and retention for :class:`TimeSeriesRecorder`.

    ``sample_every`` is a round stride; ``max_samples`` bounds every series
    (every-other decimation on overflow, the ConvergenceLedger scheme).
    """

    sample_every: int = 5
    max_samples: int = 512

    def __post_init__(self):
        check_integer("sample_every", self.sample_every, minimum=1)
        check_integer("max_samples", self.max_samples, minimum=4)


class SeriesBuffer:
    """Fixed-capacity ``(x, value)`` series with every-other decimation.

    ``x`` is whatever the producer samples against (round number here).
    Appends past ``capacity`` drop every other old sample, keeping the
    newest — deterministic in the append count alone, so two runs that
    append the same values decimate to the same retained set.
    """

    __slots__ = ("capacity", "samples")

    def __init__(self, capacity: int = 512):
        check_integer("capacity", capacity, minimum=4)
        self.capacity = int(capacity)
        self.samples: list[tuple] = []

    def append(self, x, value) -> None:
        self.samples.append((x, value))
        if len(self.samples) > self.capacity:
            # Drop every other old sample, keeping the newest (mirrors
            # ConvergenceLedger._decimate).
            del self.samples[-2::-2]

    def last(self):
        """The newest ``(x, value)`` pair, or None when empty."""
        return self.samples[-1] if self.samples else None

    def values(self) -> list:
        return [v for _, v in self.samples]

    def as_list(self) -> list[list]:
        return [[x, v] for x, v in self.samples]

    def __len__(self) -> int:
        return len(self.samples)


def _labels_key(labels: dict | None) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_name(name: str, labels: tuple) -> str:
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class TimeSeriesRecorder:
    """Round-boundary sampler feeding the live-telemetry surface.

    The driver owns the hookup (like the ledger): construction, then
    :meth:`observe_round` once per round; :meth:`note_cost` lands the
    end-of-run cost attribution.  All mutable state is guarded by a lock so
    the HTTP server thread can render a consistent view while the campaign
    is mid-round — the server only ever reads the recorder's own plain-data
    copies, never live sampler state.
    """

    def __init__(self, config: TimeSeriesConfig | None = None):
        self.cfg = config or TimeSeriesConfig()
        self._lock = threading.Lock()
        self.samples = 0
        self.series: dict[tuple[str, tuple], SeriesBuffer] = {}
        self.latest: dict = {}
        self.metrics_snapshot: dict = {}
        self.cost: dict | None = None
        self.workers: dict[tuple, dict] = {}
        self._followers: dict[str, JsonlFollower] = {}
        self._mono_samples: list[tuple[int, float, int]] = []

    # ------------------------------------------------------------- series

    def series_buffer(self, name: str, labels: dict | None = None) -> SeriesBuffer:
        key = (name, _labels_key(labels))
        buf = self.series.get(key)
        if buf is None:
            buf = self.series[key] = SeriesBuffer(self.cfg.max_samples)
        return buf

    def _record(self, name: str, x, value, labels: dict | None = None) -> None:
        self.series_buffer(name, labels).append(x, value)

    # ------------------------------------------------------------ observe

    def observe_round(self, driver, force: bool = False) -> None:
        """Stride-sampled snapshot of one REWL driver round.

        Reads driver state (driver thread only), publishes labeled gauges
        into ``driver.obs.metrics``, appends ring-buffer samples, folds any
        worker trace files, and refreshes the plain-data view the status
        server renders from.  Pure reads + own-state writes: no RNG, no
        float accumulation into walkers.
        """
        if not force and driver.rounds % self.cfg.sample_every != 0:
            return
        from repro.obs.convergence import _team_fill
        from repro.obs.health import team_flatness_ratio

        metrics = driver.obs.metrics
        rounds = driver.rounds
        windows = []
        quarantined = list(getattr(
            driver, "window_quarantined", [False] * len(driver.walkers)
        ))
        for w, team in enumerate(driver.walkers):
            ln_f = float(team[0].ln_f)
            iteration = int(team[0].n_iterations)
            flatness = team_flatness_ratio(team)
            fill = _team_fill(team)
            windows.append({
                "window": w,
                "ln_f": ln_f,
                "iteration": iteration,
                "flatness": round(flatness, 6),
                "fill": round(fill, 6),
                "converged": bool(driver.window_converged[w]),
                "quarantined": bool(quarantined[w]),
            })
        total_steps = driver.total_steps()
        eta = None
        if driver.convergence is not None:
            eta = driver.convergence.eta(driver)
        budget = None
        degraded = bool(any(quarantined))
        dispositions: list[dict] = []
        supervisor = getattr(driver, "supervisor", None)
        if supervisor is not None:
            budget = dict(supervisor.budget_status)
            degraded = bool(supervisor.degraded)
            dispositions = supervisor.dispositions()
        health = getattr(driver, "health", None)

        now_mono = time.monotonic()
        self._mono_samples.append((rounds, now_mono, total_steps))
        if len(self._mono_samples) > self.cfg.max_samples:
            del self._mono_samples[-2::-2]
        steps_per_s = None
        if len(self._mono_samples) >= 2:
            (r0, t0, s0), (r1, t1, s1) = (
                self._mono_samples[0], self._mono_samples[-1]
            )
            if t1 > t0 and s1 > s0:
                steps_per_s = (s1 - s0) / (t1 - t0)

        worker_lanes = self._fold_workers()

        with self._lock:
            self.samples += 1
            for entry in windows:
                labels = {"window": entry["window"]}
                self._record("rewl.window.ln_f", rounds, entry["ln_f"], labels)
                self._record("rewl.window.flatness", rounds,
                             entry["flatness"], labels)
                self._record("rewl.window.fill", rounds, entry["fill"], labels)
                self._record("rewl.window.iteration", rounds,
                             entry["iteration"], labels)
                metrics.set("rewl.window.ln_f", entry["ln_f"], labels=labels)
                metrics.set("rewl.window.flatness", entry["flatness"],
                            labels=labels)
                metrics.set("rewl.window.fill", entry["fill"], labels=labels)
                metrics.set("rewl.window.iteration", entry["iteration"],
                            labels=labels)
            self._record("rewl.steps_total", rounds, total_steps)
            self._record("rewl.converged_windows", rounds,
                         sum(bool(c) for c in driver.window_converged))
            self._record("rewl.quarantined_windows", rounds,
                         sum(bool(q) for q in quarantined))
            if steps_per_s is not None:
                self._record("rewl.steps_per_s", rounds, round(steps_per_s, 3))
                metrics.set("rewl.steps_per_s", steps_per_s)
            if isinstance(eta, dict):
                self._record("rewl.eta_rounds", rounds, eta.get("rounds"))
                metrics.set("rewl.eta_rounds", float(eta.get("rounds") or 0))
                if eta.get("seconds") is not None:
                    self._record("rewl.eta_seconds", rounds, eta["seconds"])
                    metrics.set("rewl.eta_seconds", float(eta["seconds"]))
            for (w, k), lane in worker_lanes:
                labels = {"window": w, "walker": "-" if k is None else k}
                self._record("rewl.worker.advance_s", rounds,
                             round(lane["seconds"], 6), labels)
                metrics.set("rewl.worker.advance_s", lane["seconds"],
                            labels=labels)
                if lane["seconds"] > 0 and lane["steps"]:
                    metrics.set("rewl.worker.steps_per_s",
                                lane["steps"] / lane["seconds"], labels=labels)
            self.latest = {
                "run": driver.obs.events.run_id,
                "round": rounds,
                "updated_ts": time.time(),
                "updated_mono": now_mono,
                "steps": total_steps,
                "converged": bool(all(driver.window_converged)),
                "degraded": degraded,
                "budget": budget,
                "eta": eta,
                "windows": windows,
                "dispositions": dispositions,
                "quarantined": [w for w, q in enumerate(quarantined) if q],
                "heartbeats": getattr(health, "heartbeats", 0),
                "alerts": len(getattr(health, "alerts", ())),
            }
            self.metrics_snapshot = metrics.as_dict()

    # ---------------------------------------------------- worker traces

    def _fold_workers(self) -> list[tuple[tuple, dict]]:
        """Incrementally fold ``REPRO_TRACE_DIR`` worker files into lanes.

        Returns the ``((window, walker), lane)`` pairs that changed this
        fold, so the caller republishes only fresh gauges.
        """
        directory = os.environ.get(TRACE_DIR_ENV_VAR, "").strip()
        if not directory or not os.path.isdir(directory):
            return []
        changed: dict[tuple, dict] = {}
        for entry in sorted(os.listdir(directory)):
            if not entry.endswith(".jsonl"):
                continue
            path = os.path.join(directory, entry)
            follower = self._followers.get(path)
            if follower is None:
                follower = self._followers[path] = JsonlFollower(path)
            for record in follower.poll():
                lane = _fold_worker_record(self.workers, record)
                if lane is not None:
                    changed[lane] = self.workers[lane]
        return sorted(changed.items(), key=lambda item: (
            -1 if item[0][0] is None else item[0][0],
            -1 if item[0][1] is None else item[0][1],
        ))

    # ----------------------------------------------------------- cost hook

    def note_cost(self, cost: dict) -> None:
        """Land the end-of-run wall-clock cost attribution (plain data)."""
        with self._lock:
            self.cost = cost

    # ------------------------------------------------------------- render

    def status(self) -> dict:
        """JSON-ready live view (what ``/campaign`` serves per run)."""
        with self._lock:
            out = dict(self.latest)
            out["samples"] = self.samples
            out["series"] = {
                _series_name(name, labels): buf.as_list()
                for (name, labels), buf in sorted(self.series.items())
            }
            if self.cost is not None:
                out["cost"] = self.cost
            if self.workers:
                out["workers"] = {
                    f"{w}:{'-' if k is None else k}": dict(lane)
                    for (w, k), lane in sorted(
                        self.workers.items(),
                        key=lambda item: (
                            -1 if item[0][0] is None else item[0][0],
                            -1 if item[0][1] is None else item[0][1],
                        ),
                    )
                }
            return out

    def metrics_view(self) -> dict:
        """The newest metrics-registry snapshot (``/metrics`` input)."""
        with self._lock:
            return dict(self.metrics_snapshot)

    def summary(self) -> dict:
        """Compact digest for ``REWLResult.telemetry["timeseries"]``."""
        with self._lock:
            return {
                "samples": self.samples,
                "series": sorted(
                    _series_name(name, labels)
                    for name, labels in self.series
                ),
                "points": sum(len(buf) for buf in self.series.values()),
                "workers": len(self.workers),
            }


def _fold_worker_record(lanes: dict[tuple, dict], record: dict):
    """Fold one worker-trace record into the lane table; returns the lane
    key when the record contributed, else None."""
    if record.get("kind") != "worker_span":
        return None
    dur = event_field(record, "dur_s")
    if not isinstance(dur, (int, float)):
        return None
    window = event_field(record, "window")
    walker = event_field(record, "walker")
    key = (window, walker)
    lane = lanes.get(key)
    if lane is None:
        lane = lanes[key] = {"seconds": 0.0, "steps": 0, "spans": 0}
    lane["seconds"] += float(dur)
    lane["spans"] += 1
    steps = event_field(record, "steps")
    if isinstance(steps, (int, float)):
        lane["steps"] += int(steps)
    return key


def aggregate_worker_series(paths, run: str | None = None) -> dict[tuple, dict]:
    """Post-hoc cross-process fold: worker JSONL files → per-lane totals.

    ``paths`` is any mix of ``.jsonl`` files and directories of
    ``worker-*.jsonl`` (a ``REPRO_TRACE_DIR``).  Returns ``{(window,
    walker): {"seconds", "steps", "spans"}}`` — the same fold the live
    recorder applies incrementally, usable standalone after a campaign.
    """
    from repro.obs.chrometrace import iter_trace_files
    from repro.obs.report import load_trace

    lanes: dict[tuple, dict] = {}
    for path in iter_trace_files(paths):
        if not path.exists():
            continue
        for record in load_trace(path, run=run):
            _fold_worker_record(lanes, record)
    return lanes


# ------------------------------------------------------------- env activation

_TS_KEYS = {
    "every": "sample_every",
    "sample_every": "sample_every",
    "max": "max_samples",
    "max_samples": "max_samples",
}


def parse_timeseries(spec: str) -> TimeSeriesConfig:
    """Parse a ``REPRO_TIMESERIES`` value: ``"1"`` or ``"every=5,max=512"``."""
    value = spec.strip().lower()
    if value in ("1", "on", "true"):
        return TimeSeriesConfig()
    kwargs = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        field = _TS_KEYS.get(key.strip())
        if not sep or field is None:
            known = ", ".join(sorted(set(_TS_KEYS)))
            raise ValueError(
                f"bad {TIMESERIES_ENV_VAR} entry {part!r}; expected 1/on or "
                f"key=value with key in {{{known}}}"
            )
        try:
            kwargs[field] = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"bad {TIMESERIES_ENV_VAR} value for {key!r}: {raw!r}"
            ) from exc
    return TimeSeriesConfig(**kwargs)


def timeseries_from_env(env_var: str = TIMESERIES_ENV_VAR) -> TimeSeriesConfig | None:
    """A :class:`TimeSeriesConfig` from the environment, or None when off."""
    value = os.environ.get(env_var, "").strip()
    if value.lower() in ("", "0", "off", "false"):
        return None
    return parse_timeseries(value)
