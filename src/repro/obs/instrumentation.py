"""The driver-facing instrumentation bundle.

:class:`~repro.parallel.rewl.REWLDriver` grew one observability keyword per
subsystem (telemetry, profiler, health, convergence, timeseries) — five
knobs that always travel together.  :class:`Instrumentation` folds them
into one value::

    REWLDriver(..., instrumentation=Instrumentation(telemetry=Telemetry()))

Each field accepts exactly what the old keyword accepted (an instance, a
config object where the driver supported one, or None for the environment
default), and the driver resolves environment defaults per field exactly
as before — an empty bundle is indistinguishable from passing nothing.
The old per-field keywords keep working for one release behind a
``DeprecationWarning`` (:func:`repro.util.deprecation.warn_once`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

__all__ = ["Instrumentation"]


@dataclass
class Instrumentation:
    """Observability wiring for a campaign driver, as one bundle.

    Fields mirror the (deprecated) per-field ``REWLDriver`` keywords:

    - ``telemetry`` — :class:`repro.obs.Telemetry`,
    - ``profiler`` — :class:`repro.obs.profile.SectionProfiler`,
    - ``health`` — :class:`repro.obs.health.HealthMonitor` or
      ``HealthConfig``,
    - ``convergence`` — :class:`repro.obs.convergence.ConvergenceLedger`
      or ``ConvergenceConfig``,
    - ``timeseries`` — :class:`repro.obs.timeseries.TimeSeriesRecorder`
      or ``TimeSeriesConfig``.

    ``None`` fields fall back to the corresponding environment knobs
    (``REPRO_PROFILE``, ``REPRO_HEALTH``, …) inside the driver.
    """

    telemetry: Any = None
    profiler: Any = None
    health: Any = None
    convergence: Any = None
    timeseries: Any = None

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in fields(cls))
