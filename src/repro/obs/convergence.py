"""Scientific convergence diagnostics for REWL campaigns.

The operational telemetry (spans, heartbeats, profiles) says how fast the
machine is going; :class:`ConvergenceLedger` records how fast the *science*
is converging — the quantities the flat-histogram parallelization
literature tunes window overlap and walkers-per-window against:

- the per-window **ln f trajectory** (one sample per sync, with the WL
  iteration count and round number),
- the per-window **flatness fraction** (min/mean of the visit histogram
  over visited bins, worst walker) and **histogram fill** over time,
- the per-window **ln g drift** between sampled snapshots (mean |Δ ln g|
  over bins visited in both snapshots — a direct stationarity measure),
- a per-adjacent-pair **exchange-acceptance matrix**,
- **replica round-trip and tunneling counters**: walker labels ride
  configurations through accepted exchanges, and a label touching the
  opposite end of the window ladder from the end it last touched counts
  one tunnel (one-way traversal); two traversals make a round trip,
- an **ETA estimate** projecting rounds-to-convergence per window from the
  ln f halving schedule and the observed flatness rate, converted to wall
  seconds via sampled round timestamps.

Determinism contract (same as :class:`repro.obs.profile.SectionProfiler`):
the ledger samples on a plain round-counter stride, draws no random
numbers, and writes nothing into sampler state — a run with the ledger
enabled is bit-identical to a bare run (tested in
``tests/test_obs_convergence.py``).  Snapshots ride the REWL checkpoint
framing (:mod:`repro.parallel.checkpoint`), so ``--resume`` restores the
diagnostics losslessly.

Environment wiring: ``REPRO_CONVERGENCE=1`` (or ``"every=20,max=256"``)
attaches a ledger to any REWL entry point without new flags.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.obs.health import team_flatness_ratio
from repro.util.validation import check_integer

__all__ = [
    "CONVERGENCE_ENV_VAR",
    "ConvergenceConfig",
    "ConvergenceLedger",
    "convergence_from_env",
    "parse_convergence",
]

CONVERGENCE_ENV_VAR = "REPRO_CONVERGENCE"


@dataclass(frozen=True)
class ConvergenceConfig:
    """Sampling cadence and retention for :class:`ConvergenceLedger`.

    ``sample_every`` is a *round* stride (flatness/fill/drift and wall-clock
    samples land every N-th round); ln f trajectory points are event-driven
    (one per sync) and exchange counters are exact.  ``max_samples`` bounds
    each per-window series: on overflow every other sample is dropped, so
    long campaigns keep a coarse full-history view at fixed memory.
    """

    sample_every: int = 10
    max_samples: int = 512

    def __post_init__(self):
        check_integer("sample_every", self.sample_every, minimum=1)
        check_integer("max_samples", self.max_samples, minimum=4)


def _team_slots(team) -> int:
    """Walkers in one window team: K scalar walkers or one K-slot batch."""
    if len(team) == 1:
        return int(getattr(team[0], "n_slots", 1))
    return len(team)


def _team_fill(team) -> float:
    """Fraction of the window's bins visited by at least one walker."""
    union = None
    for walker in team:
        union = walker.visited if union is None else (union | walker.visited)
    if union is None or union.shape[0] == 0:
        return 0.0
    return float(np.count_nonzero(union)) / union.shape[0]


class ConvergenceLedger:
    """Per-window/per-walker scientific diagnostics for one REWL run.

    The driver owns the hookup: :meth:`attach` at construction,
    :meth:`note_exchange` / :meth:`note_sync` from the exchange and sync
    phases, :meth:`observe_round` once per round.  Everything is a pure
    read of sampler state plus plain-Python bookkeeping, so it pickles
    through checkpoints (:meth:`state_dict` / :meth:`load_state`) and
    perturbs nothing.
    """

    def __init__(self, config: ConvergenceConfig | None = None):
        self.cfg = config or ConvergenceConfig()
        self.attached = False
        self.n_windows = 0
        self.n_slots = 0
        self.samples = 0
        self.labels: list[list[int]] = []
        self._last_extreme: dict[int, str] = {}
        self._traversals: dict[int, int] = {}
        self.pair_attempts: list[int] = []
        self.pair_accepts: list[int] = []
        self.lnf_trajectory: list[list] = []
        self.flatness_series: list[list] = []
        self.drift_series: list[list] = []
        self._prev_ln_g: list = []
        self.wall_samples: list[tuple[int, float]] = []

    # ------------------------------------------------------------- wiring

    def attach(self, driver) -> None:
        """Size the per-window structures against a constructed driver.

        Walker labels start at their home windows; labels already sitting
        at an end of the ladder seed the traversal tracker so the first
        arrival at the *opposite* end counts as a tunnel.
        """
        if self.attached:
            return
        w_count = len(driver.walkers)
        k_count = _team_slots(driver.walkers[0]) if w_count else 0
        self.attached = True
        self.n_windows = w_count
        self.n_slots = k_count
        self.labels = [
            [w * k_count + k for k in range(k_count)] for w in range(w_count)
        ]
        if w_count > 1:
            for label in self.labels[0]:
                self._last_extreme[label] = "bottom"
            for label in self.labels[-1]:
                self._last_extreme[label] = "top"
        self.pair_attempts = [0] * max(0, w_count - 1)
        self.pair_accepts = [0] * max(0, w_count - 1)
        self.lnf_trajectory = [[] for _ in range(w_count)]
        self.flatness_series = [[] for _ in range(w_count)]
        self.drift_series = [[] for _ in range(w_count)]
        self._prev_ln_g = [None] * w_count

    # -------------------------------------------------------------- hooks

    def note_exchange(self, left: int, ia: int, right: int, ib: int,
                      accepted: bool, in_overlap: bool) -> None:
        """Record one replica-exchange attempt between adjacent windows.

        On acceptance the walker labels swap with the configurations, which
        is what makes the ladder-diffusion (tunnel/round-trip) counters
        meaningful.
        """
        if not self.attached:
            return
        self.pair_attempts[left] += 1
        if not accepted:
            return
        self.pair_accepts[left] += 1
        la = self.labels[left][ia]
        lb = self.labels[right][ib]
        self.labels[left][ia] = lb
        self.labels[right][ib] = la
        self._touch(lb, left)
        self._touch(la, right)

    def _touch(self, label: int, window: int) -> None:
        if self.n_windows <= 1:
            return
        if window == 0:
            extreme = "bottom"
        elif window == self.n_windows - 1:
            extreme = "top"
        else:
            return
        last = self._last_extreme.get(label)
        if last is None:
            self._last_extreme[label] = extreme
        elif last != extreme:
            self._last_extreme[label] = extreme
            self._traversals[label] = self._traversals.get(label, 0) + 1

    def note_sync(self, window: int, rounds: int, ln_f: float,
                  iteration: int, converged: bool) -> None:
        """Record one window sync (ln f halving)."""
        if not self.attached:
            return
        series = self.lnf_trajectory[window]
        series.append((rounds, float(ln_f), int(iteration)))
        self._decimate(series)

    def observe_round(self, driver) -> None:
        """Stride-sampled per-window snapshot (flatness, fill, ln g drift)."""
        if not self.attached or driver.rounds % self.cfg.sample_every != 0:
            return
        self.samples += 1
        self.wall_samples.append((driver.rounds, time.perf_counter()))
        self._decimate(self.wall_samples)
        for w, team in enumerate(driver.walkers):
            ratio = team_flatness_ratio(team)
            fill = _team_fill(team)
            series = self.flatness_series[w]
            series.append((driver.rounds, round(ratio, 6), round(fill, 6)))
            self._decimate(series)
            merged, union = driver._merge_window(team)
            prev = self._prev_ln_g[w]
            if prev is not None:
                both = union & prev[1]
                drift = (
                    float(np.abs(merged - prev[0])[both].mean())
                    if both.any() else 0.0
                )
                dseries = self.drift_series[w]
                dseries.append((driver.rounds, drift))
                self._decimate(dseries)
            self._prev_ln_g[w] = (merged, union)

    def _decimate(self, series: list) -> None:
        if len(series) > self.cfg.max_samples:
            # Drop every other old sample, keeping the newest; deterministic
            # (count-based), so resumed runs decimate identically.
            del series[-2::-2]

    # ---------------------------------------------------------- estimates

    @property
    def tunnels(self) -> int:
        """One-way end-to-end label traversals of the window ladder."""
        return sum(self._traversals.values())

    @property
    def round_trips(self) -> int:
        """Completed bottom→top→bottom (or inverse) label cycles."""
        return sum(v // 2 for v in self._traversals.values())

    def seconds_per_round(self) -> float | None:
        """Observed mean wall seconds per round, or None before 2 samples."""
        if len(self.wall_samples) < 2:
            return None
        (r0, t0), (r1, t1) = self.wall_samples[0], self.wall_samples[-1]
        if r1 <= r0:
            return None
        return (t1 - t0) / (r1 - r0)

    def eta(self, driver) -> dict | None:
        """Projected rounds/seconds until every window converges.

        Per unconverged window: remaining ln f halvings from the schedule,
        times the observed rounds-per-iteration (ln f trajectory), with the
        current iteration's remainder projected from the flatness slope.
        Campaign ETA is the slowest window.  Returns None while there is
        not enough history to project anything.
        """
        per_window = []
        for w, team in enumerate(driver.walkers):
            if driver.window_converged[w]:
                continue
            ln_f = float(team[0].ln_f)
            final = float(driver.cfg.ln_f_final)
            if ln_f <= final:
                continue
            halvings = max(1, math.ceil(math.log2(ln_f / final)))
            rounds_per_iter = self._rounds_per_iteration(w)
            rounds_to_flat = self._rounds_to_flat(w, driver)
            if rounds_per_iter is None and rounds_to_flat is None:
                continue
            rpi = rounds_per_iter if rounds_per_iter is not None else rounds_to_flat
            rtf = rounds_to_flat if rounds_to_flat is not None else rpi
            eta_rounds = rtf + (halvings - 1) * rpi
            per_window.append({
                "window": w,
                "ln_f": ln_f,
                "halvings_left": halvings,
                "eta_rounds": round(float(eta_rounds), 1),
            })
        if all(driver.window_converged):
            return {"rounds": 0, "seconds": 0.0, "windows": []}
        if not per_window:
            return None
        sec = self.seconds_per_round()
        eta_rounds = max(e["eta_rounds"] for e in per_window)
        if sec is not None:
            for entry in per_window:
                entry["eta_s"] = round(entry["eta_rounds"] * sec, 3)
        return {
            "rounds": eta_rounds,
            "seconds": None if sec is None else round(eta_rounds * sec, 3),
            "windows": per_window,
        }

    def _rounds_per_iteration(self, window: int) -> float | None:
        traj = self.lnf_trajectory[window]
        if len(traj) < 2:
            return None
        d_rounds = traj[-1][0] - traj[0][0]
        d_iters = traj[-1][2] - traj[0][2]
        if d_iters <= 0 or d_rounds <= 0:
            return None
        return d_rounds / d_iters

    def _rounds_to_flat(self, window: int, driver) -> float | None:
        series = self.flatness_series[window]
        if len(series) < 2:
            return None
        (r0, f0, _), (r1, f1, _) = series[-2], series[-1]
        if r1 <= r0:
            return None
        rate = (f1 - f0) / (r1 - r0)
        if rate <= 0:
            return None
        threshold = float(driver.cfg.flatness)
        return max(0.0, (threshold - f1) / rate)

    # ------------------------------------------------------------- digest

    def acceptance_matrix(self) -> list[list[float | None]]:
        """(n_windows × n_windows) acceptance rates; None off the ladder."""
        n = self.n_windows
        matrix: list[list[float | None]] = [[None] * n for _ in range(n)]
        for pair in range(len(self.pair_attempts)):
            att = self.pair_attempts[pair]
            rate = self.pair_accepts[pair] / att if att else 0.0
            matrix[pair][pair + 1] = round(rate, 4)
            matrix[pair + 1][pair] = round(rate, 4)
        return matrix

    def summary(self, driver=None) -> dict:
        """JSON-ready digest for ``REWLResult.telemetry["convergence"]``."""
        windows = []
        for w in range(self.n_windows):
            traj = self.lnf_trajectory[w]
            flat = self.flatness_series[w]
            drift = self.drift_series[w]
            windows.append({
                "window": w,
                "syncs": len(traj),
                "ln_f": [t[1] for t in traj],
                "flatness": [f[1] for f in flat],
                "fill": flat[-1][2] if flat else 0.0,
                "ln_g_drift": drift[-1][1] if drift else None,
            })
        out = {
            "n_windows": self.n_windows,
            "walkers_per_window": self.n_slots,
            "samples": self.samples,
            "tunnels": self.tunnels,
            "round_trips": self.round_trips,
            "pair_attempts": list(self.pair_attempts),
            "pair_accepts": list(self.pair_accepts),
            "acceptance_matrix": self.acceptance_matrix(),
            "windows": windows,
        }
        if driver is not None:
            out["eta"] = self.eta(driver)
        return out

    # --------------------------------------------------------- checkpoint

    def state_dict(self) -> dict:
        """Everything that evolves, for the REWL checkpoint payload."""
        return {
            "cfg": {"sample_every": self.cfg.sample_every,
                    "max_samples": self.cfg.max_samples},
            "attached": self.attached,
            "n_windows": self.n_windows,
            "n_slots": self.n_slots,
            "samples": self.samples,
            "labels": [list(row) for row in self.labels],
            "last_extreme": dict(self._last_extreme),
            "traversals": dict(self._traversals),
            "pair_attempts": list(self.pair_attempts),
            "pair_accepts": list(self.pair_accepts),
            "lnf_trajectory": [list(s) for s in self.lnf_trajectory],
            "flatness_series": [list(s) for s in self.flatness_series],
            "drift_series": [list(s) for s in self.drift_series],
            "prev_ln_g": [
                None if p is None else (p[0].copy(), p[1].copy())
                for p in self._prev_ln_g
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore from :meth:`state_dict` (checkpoint resume).

        Wall-clock samples are deliberately *not* restored — the resumed
        process has a fresh ``perf_counter`` epoch, so stale samples would
        poison the seconds-per-round estimate.
        """
        self.cfg = ConvergenceConfig(**state["cfg"])
        self.attached = bool(state["attached"])
        self.n_windows = int(state["n_windows"])
        self.n_slots = int(state["n_slots"])
        self.samples = int(state["samples"])
        self.labels = [list(row) for row in state["labels"]]
        self._last_extreme = dict(state["last_extreme"])
        self._traversals = dict(state["traversals"])
        self.pair_attempts = list(state["pair_attempts"])
        self.pair_accepts = list(state["pair_accepts"])
        self.lnf_trajectory = [
            [tuple(t) for t in s] for s in state["lnf_trajectory"]
        ]
        self.flatness_series = [
            [tuple(t) for t in s] for s in state["flatness_series"]
        ]
        self.drift_series = [
            [tuple(t) for t in s] for s in state["drift_series"]
        ]
        self._prev_ln_g = [
            None if p is None else (np.asarray(p[0]), np.asarray(p[1]))
            for p in state["prev_ln_g"]
        ]
        self.wall_samples = []


# ------------------------------------------------------------- env activation

_CONV_KEYS = {
    "every": "sample_every",
    "sample_every": "sample_every",
    "max": "max_samples",
    "max_samples": "max_samples",
}


def parse_convergence(spec: str) -> ConvergenceConfig:
    """Parse a ``REPRO_CONVERGENCE`` value: ``"1"`` or ``"every=20,max=256"``."""
    value = spec.strip().lower()
    if value in ("1", "on", "true"):
        return ConvergenceConfig()
    kwargs = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        field = _CONV_KEYS.get(key.strip())
        if not sep or field is None:
            known = ", ".join(sorted(set(_CONV_KEYS)))
            raise ValueError(
                f"bad {CONVERGENCE_ENV_VAR} entry {part!r}; expected 1/on or "
                f"key=value with key in {{{known}}}"
            )
        try:
            kwargs[field] = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"bad {CONVERGENCE_ENV_VAR} value for {key!r}: {raw!r}"
            ) from exc
    return ConvergenceConfig(**kwargs)


def convergence_from_env(env_var: str = CONVERGENCE_ENV_VAR) -> ConvergenceConfig | None:
    """A :class:`ConvergenceConfig` from the environment, or None when off."""
    value = os.environ.get(env_var, "").strip()
    if value.lower() in ("", "0", "off", "false"):
        return None
    return parse_convergence(value)
