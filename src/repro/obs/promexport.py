"""OpenMetrics / Prometheus text exposition of the metrics registry.

:func:`render_openmetrics` turns a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot (``metrics.as_dict()`` — the picklable plain-data form that already
travels through checkpoints and executor reductions) into the OpenMetrics
text format that Prometheus and its ecosystem scrape:

- dotted metric names are sanitized to the ``[a-zA-Z_:][a-zA-Z0-9_:]*``
  charset (``rewl.window.ln_f`` → ``rewl_window_ln_f``),
- counters get the mandatory ``_total`` sample suffix,
- histograms expand to cumulative ``_bucket{le="..."}`` series (with the
  ``+Inf`` bucket), ``_count`` and ``_sum``,
- label values are escaped per the spec (backslash, double quote, newline),
- every family gets exactly one ``# TYPE`` line, series of one family are
  contiguous, and the exposition ends with ``# EOF``.

The renderer is a pure function of the snapshot dict — no clock, no RNG, no
registry mutation — so serving ``/metrics`` (:mod:`repro.obs.server`)
cannot perturb a campaign.  Validity is pinned down in
``tests/test_obs_promexport.py`` (escaping, type lines, counter
monotonicity across successive snapshots).
"""

from __future__ import annotations

import math
import re

__all__ = ["CONTENT_TYPE", "render_openmetrics", "sanitize_metric_name"]

#: Content type of the exposition (the Prometheus text format; OpenMetrics
#: consumers accept it and stdlib serving needs no content negotiation).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """Fold a dotted registry name into the Prometheus name charset."""
    out = _NAME_BAD.sub("_", str(name))
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _sanitize_label_name(name: str) -> str:
    out = _LABEL_BAD.sub("_", str(name))
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _escape_label_value(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: dict, extra: list[tuple[str, str]] = ()) -> str:
    pairs = [
        (_sanitize_label_name(k), _escape_label_value(v))
        for k, v in sorted(labels.items())
    ]
    pairs.extend(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _render_value(value) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_openmetrics(snapshot: dict, prefix: str = "") -> str:
    """Render a ``metrics.as_dict()`` snapshot as exposition text.

    ``snapshot`` maps series keys to the plain-data entry each metric's
    ``as_dict`` produced; labeled entries carry explicit ``name`` +
    ``labels`` fields, unlabeled ones use the key as the family name.
    ``prefix`` is prepended to every family name (e.g. ``"repro_"``).
    """
    # Group series by family so each family renders one TYPE line with its
    # series contiguous (an OpenMetrics requirement).
    families: dict[str, list[tuple[dict, dict]]] = {}
    for key, entry in sorted(snapshot.items()):
        name = sanitize_metric_name(prefix + str(entry.get("name", key)))
        labels = entry.get("labels") or {}
        families.setdefault(name, []).append((entry, labels))

    lines: list[str] = []
    for name in sorted(families):
        series = families[name]
        kind = series[0][0].get("kind", "gauge")
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            for entry, labels in series:
                lines.append(
                    f"{name}_total{_render_labels(labels)} "
                    f"{_render_value(entry.get('value', 0))}"
                )
        elif kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            for entry, labels in series:
                buckets = entry.get("buckets", [])
                counts = entry.get("counts", [])
                cumulative = 0
                for edge, count in zip(buckets, counts):
                    cumulative += int(count)
                    le = _render_labels(labels, [("le", _render_value(edge))])
                    lines.append(f"{name}_bucket{le} {cumulative}")
                total = int(entry.get("count", 0))
                le_inf = _render_labels(labels, [("le", "+Inf")])
                lines.append(f"{name}_bucket{le_inf} {total}")
                rendered = _render_labels(labels)
                lines.append(f"{name}_count{rendered} {total}")
                lines.append(
                    f"{name}_sum{rendered} {_render_value(entry.get('sum', 0.0))}"
                )
        else:  # gauge (and anything unknown degrades to a gauge)
            lines.append(f"# TYPE {name} gauge")
            for entry, labels in series:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_render_value(entry.get('value', 0.0))}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
