"""Terminal views of a live campaign's JSONL trace: ``dash`` and ``tail``.

A long REWL campaign run with ``REPRO_TRACE=trace.jsonl`` (and usually
``REPRO_HEALTH=1``) leaves a growing event stream; these commands watch it
without touching the run:

- ``python -m repro obs dash trace.jsonl`` renders a one-screen status
  board from the most recent records: per-window ln f / WL iteration /
  flatness ratio from the latest ``heartbeat`` event, per-pair exchange
  acceptance, the latest wall-clock cost attribution (``cost`` events),
  recent ``health_alert`` events, and trace staleness (how long since the
  last record — a crude liveness check for the producer).  ``--watch N``
  re-renders every N seconds; ``--iterations`` bounds the loop (tests
  use 1).  The watch loop tails the trace *incrementally* through a
  :class:`repro.obs.events.JsonlFollower` — a byte offset persists between
  refreshes, and truncation/rotation resets the board — so the per-tick
  cost stays proportional to new records, not campaign length.
- ``python -m repro obs tail trace.jsonl`` prints trailing records as
  human one-liners (same rendering as :class:`repro.obs.events.ConsoleSink`)
  and with ``--follow`` keeps polling for new lines, again bounded by
  ``--iterations`` so it is testable and cron-safe.

Both are read-only consumers of the DESIGN.md §8/§10 schemas — they never
write to the trace and tolerate truncated/garbage lines (a crash mid-write
leaves at most one partial line; see the fsync notes in
:mod:`repro.obs.events`).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.obs.costattr import COST_KIND, format_cost_line
from repro.obs.events import JsonlFollower, _render, event_field
from repro.obs.health import ALERT_KIND, HEARTBEAT_KIND

__all__ = [
    "render_dash",
    "render_record_line",
    "main_dash",
    "main_tail",
]


def _latest_run(records: list[dict]) -> str | None:
    """Run id of the record with the newest timestamp (ties: last wins).

    Runs that emitted heartbeats win over runs that did not, whatever the
    timestamps: a multi-run trace (e.g. the experiment harness wrapping a
    monitored REWL campaign) usually ends with a wrapper summary event, and
    the board should default to the run actually being monitored.
    """
    heartbeats = [r for r in records if r.get("kind") == HEARTBEAT_KIND]
    best, best_ts = None, float("-inf")
    for r in heartbeats or records:
        ts = r.get("ts")
        if isinstance(ts, (int, float)) and ts >= best_ts:
            best, best_ts = str(r.get("run", "?")), ts
    return best


def render_dash(records: list[dict], run: str | None = None,
                now: float | None = None, max_alerts: int = 5) -> str:
    """One-screen status board from a trace's records (pure function)."""
    from repro.util.tables import format_table

    if not records:
        return "(empty trace)\n"
    run = run or _latest_run(records)
    records = [r for r in records if str(r.get("run", "?")) == run]
    now = time.time() if now is None else now

    lines = []
    stamps = [r["ts"] for r in records if isinstance(r.get("ts"), (int, float))]
    staleness = f"{now - max(stamps):.1f}s ago" if stamps else "unknown"
    lines.append(f"run {run}: {len(records)} records, last event {staleness}")

    heartbeats = [r for r in records if r.get("kind") == HEARTBEAT_KIND]
    if heartbeats:
        hb = heartbeats[-1]
        # Heartbeat payloads may ride flat next to the envelope or nested
        # under "fields" — event_field reads both shapes.
        quarantined = event_field(hb, "quarantined_windows", 0)
        budget = event_field(hb, "budget")
        resilience_bits = ""
        if quarantined:
            resilience_bits += f", {quarantined} window(s) QUARANTINED"
        if isinstance(budget, dict) and budget.get("exhausted"):
            resilience_bits += f", budget exhausted ({budget.get('trigger')})"
        lines.append(
            f"heartbeat #{len(heartbeats)} @ round {event_field(hb, 'round', '?')}: "
            f"{event_field(hb, 'steps', 0):,} steps, "
            f"{event_field(hb, 'converged_windows', 0)} window(s) converged, "
            f"{event_field(hb, 'retries', 0)} retries since previous"
            + resilience_bits
        )
        eta = event_field(hb, "eta")
        if isinstance(eta, dict):
            seconds = eta.get("seconds")
            wall = "unknown wall time" if seconds is None else f"~{seconds:,.0f}s"
            lines.append(
                f"ETA to convergence: {eta.get('rounds', '?')} round(s), {wall}"
            )
        lines.append("")
        window_rows = [
            [w.get("window"), f"{w.get('ln_f', 0.0):.3g}", w.get("iteration"),
             f"{w.get('flatness', 0.0):.3f}",
             "quarantined" if w.get("quarantined")
             else ("yes" if w.get("converged") else "no")]
            for w in event_field(hb, "windows", [])
        ]
        if window_rows:
            lines.append(format_table(
                ["window", "ln f", "iteration", "flatness", "converged"],
                window_rows, title="windows (latest heartbeat)",
            ))
            lines.append("")
        pair_rows = [
            [f"{p.get('pair')}-{p.get('pair', 0) + 1}", p.get("attempts"),
             p.get("accepts"),
             "-" if p.get("rate") is None else f"{p['rate']:.1%}"]
            for p in event_field(hb, "pairs", [])
        ]
        if pair_rows:
            lines.append(format_table(
                ["window pair", "attempts", "accepts", "acceptance"],
                pair_rows, title="exchange (since previous heartbeat)",
            ))
            lines.append("")
    else:
        lines.append("(no heartbeat events yet — is REPRO_HEALTH set?)")
        lines.append("")

    costs = [r for r in records if r.get("kind") == COST_KIND
             and isinstance(event_field(r, "phases"), dict)]
    if costs:
        cost = {
            "total_s": event_field(costs[-1], "total_s", 0.0),
            "phases": event_field(costs[-1], "phases", {}),
        }
        lines.append(format_cost_line(cost))
        lines.append("")

    alerts = [r for r in records if r.get("kind") == ALERT_KIND]
    if alerts:
        lines.append(f"ALERTS ({len(alerts)} total, newest last):")
        for alert in alerts[-max_alerts:]:
            lines.append(
                f"  [{event_field(alert, 'alert', '?')}] round "
                f"{event_field(alert, 'round', '?')}: "
                f"{event_field(alert, 'detail', '')}"
            )
    else:
        lines.append("no health alerts")
    return "\n".join(lines).rstrip() + "\n"


def render_record_line(record: dict) -> str:
    """One trace record as a ``[run:kind] key=value`` console line."""
    skip = ("v", "ts", "seq", "run", "kind", "pid", "fields")
    items = {k: v for k, v in record.items() if k not in skip}
    nested = record.get("fields")
    if isinstance(nested, dict):  # newer shape: payload nested under "fields"
        for k, v in nested.items():
            items.setdefault(k, v)
    fields = " ".join(f"{k}={_render(v)}" for k, v in items.items())
    return (f"[{record.get('run', '?')}:{record.get('kind', '?')}] "
            f"{fields}").rstrip()


def main_dash(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs dash",
        description="Status board for a (running) campaign's JSONL trace.",
    )
    parser.add_argument("trace", help="path to a .jsonl trace file")
    parser.add_argument("--run", default=None,
                        help="run id to show (default: newest in the trace)")
    parser.add_argument("--watch", type=float, default=0.0, metavar="SECONDS",
                        help="re-render every SECONDS (0 = render once)")
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N renders in watch mode (0 = forever)")
    args = parser.parse_args(argv)

    path = Path(args.trace)
    if not path.exists():
        print(f"no such trace file: {path}", file=sys.stderr)
        return 1
    # Incremental tail: the follower keeps a byte offset between refreshes,
    # so each tick parses only new records; a truncated/rotated trace resets
    # the accumulated board state.
    follower = JsonlFollower(path)
    records: list[dict] = []
    rendered = 0
    while True:
        if not path.exists():
            print(f"no such trace file: {path}", file=sys.stderr)
            return 1
        resets = follower.truncations
        fresh = follower.poll()
        if follower.truncations != resets:
            records = []
        records.extend(fresh)
        board = render_dash(records, run=args.run)
        if rendered:
            print("\n" + "=" * 60 + "\n")
        print(board, end="")
        rendered += 1
        if args.watch <= 0 or (args.iterations and rendered >= args.iterations):
            return 0
        time.sleep(args.watch)


def main_tail(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs tail",
        description="Print trailing trace records; --follow polls for more.",
    )
    parser.add_argument("trace", help="path to a .jsonl trace file")
    parser.add_argument("-n", "--lines", type=int, default=10,
                        help="trailing records to print first (default 10)")
    parser.add_argument("-f", "--follow", action="store_true",
                        help="keep polling the file for new records")
    parser.add_argument("--interval", type=float, default=0.5,
                        help="poll interval in follow mode (seconds)")
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N polls in follow mode (0 = forever)")
    args = parser.parse_args(argv)

    path = Path(args.trace)
    if not path.exists():
        print(f"no such trace file: {path}", file=sys.stderr)
        return 1

    follower = JsonlFollower(path)
    tail = follower.poll()
    for record in tail[-args.lines:] if args.lines else tail:
        print(render_record_line(record))

    if not args.follow:
        return 0
    polls = 0
    while not args.iterations or polls < args.iterations:
        time.sleep(args.interval)
        polls += 1
        # The follower only consumes complete lines; a partial trailing
        # line is re-read on the next poll once the writer finishes it.
        for record in follower.poll():
            print(render_record_line(record), flush=True)
    return 0
