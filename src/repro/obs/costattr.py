"""Wall-clock cost attribution: profiler sections folded into phases.

The :class:`~repro.obs.profile.SectionProfiler` answers "how long does one
ΔE call take"; this module answers the operator question "where did the
campaign's wall-clock go".  :func:`attribute_cost` folds a merged profile
(``SectionProfiler.as_dict()``) into a fixed phase tree:

==========  ==================================================================
phase       profiler sections
==========  ==================================================================
propose       ``proposal.*`` (move generation, incl. DL proposal inference)
delta_e       ``hamiltonian.*`` (energy / ΔE kernels)
fused_gather  ``rewl.fused_gather`` — the fused backends' stacked cross-
              window ΔE gather (campaign-wide kernel time that per-window
              ``hamiltonian.*`` sections can't see)
commit        ``wl.histogram_update``, ``wl.batch_commit``, ``wl.flat_check``
advance       the *unattributed* remainder of ``rewl.advance`` — driver-side
              advance time not explained by the walker sections above
              (executor dispatch, pickling, scheduling)
exchange      ``rewl.exchange_round``
sync        ``rewl.sync``
checkpoint  ``rewl.checkpoint``
guard       ``rewl.guard``
stitch      ``rewl.stitch``
==========  ==================================================================

Walker sections (propose / delta_e / commit) happen *inside* the advance
phase, so naive addition would double count: the ``advance`` row reports
only the remainder ``rewl.advance − (propose + delta_e + commit)``, clamped
at zero (the subtraction mixes exact phase timings with strided estimates,
which can land slightly negative).  Shares are fractions of the attributed
total, so the table reads as "X% of the accounted wall-clock".

All numbers are ``est_total_s`` estimates (mean of timed calls × call
count — the profiler's own reconstruction); the attribution is a pure
function of the profile dict and is rendered three ways: ``/metrics``
gauges (:func:`publish_cost`), the ``obs report`` "Cost attribution" table,
and a one-line ``obs dash`` summary.
"""

from __future__ import annotations

__all__ = ["COST_KIND", "PHASES", "attribute_cost", "publish_cost",
           "format_cost_line"]

#: Event kind under which drivers emit the attribution dict.
COST_KIND = "cost"

#: Phase order for rendering (biggest conceptual pipeline order, not size).
PHASES = ("propose", "delta_e", "fused_gather", "commit", "advance",
          "exchange", "sync", "checkpoint", "guard", "stitch")

#: Exact-section → phase mapping (prefix rules handled in _phase_of).
_EXACT = {
    "wl.histogram_update": "commit",
    "wl.batch_commit": "commit",
    "wl.flat_check": "commit",
    "rewl.fused_gather": "fused_gather",
    "rewl.exchange_round": "exchange",
    "rewl.sync": "sync",
    "rewl.checkpoint": "checkpoint",
    "rewl.guard": "guard",
    "rewl.stitch": "stitch",
}

#: Sections folded into the advance remainder rather than a phase of their
#: own (the driver-side phase timer).
_ADVANCE_SECTION = "rewl.advance"


def _phase_of(section: str) -> str | None:
    if section in _EXACT:
        return _EXACT[section]
    if section.startswith("proposal."):
        return "propose"
    if section.startswith("hamiltonian."):
        return "delta_e"
    return None


def attribute_cost(profile: dict) -> dict:
    """Fold a ``SectionProfiler.as_dict()`` profile into the phase tree.

    Returns ``{"total_s", "phases": {phase: {"seconds", "share",
    "sections": {name: seconds}}}, "unattributed_s"}``.  Phases with zero
    cost are omitted; ``unattributed_s`` collects sections that map to no
    phase (custom user sections), so the table never silently drops time.
    """
    phases: dict[str, dict] = {}
    advance_total = 0.0
    inside_advance = 0.0
    unattributed = 0.0
    for section, entry in sorted(profile.items()):
        seconds = float(entry.get("est_total_s", 0.0) or 0.0)
        if seconds <= 0.0:
            continue
        if section == _ADVANCE_SECTION:
            advance_total += seconds
            continue
        phase = _phase_of(section)
        if phase is None:
            unattributed += seconds
            continue
        bucket = phases.setdefault(phase, {"seconds": 0.0, "sections": {}})
        bucket["seconds"] += seconds
        bucket["sections"][section] = round(seconds, 6)
        if phase in ("propose", "delta_e", "fused_gather", "commit"):
            inside_advance += seconds
    remainder = max(0.0, advance_total - inside_advance)
    if remainder > 0.0:
        phases["advance"] = {
            "seconds": remainder,
            "sections": {_ADVANCE_SECTION: round(remainder, 6)},
        }
    total = sum(bucket["seconds"] for bucket in phases.values())
    for bucket in phases.values():
        bucket["share"] = round(bucket["seconds"] / total, 4) if total else 0.0
        bucket["seconds"] = round(bucket["seconds"], 6)
    return {
        "total_s": round(total, 6),
        "phases": {p: phases[p] for p in PHASES if p in phases},
        "unattributed_s": round(unattributed, 6),
    }


def publish_cost(cost: dict, metrics) -> None:
    """Expose an attribution as registry gauges (→ ``/metrics``).

    One labeled gauge per phase (``rewl.cost.phase_s{phase="..."}``) plus
    the attributed total — the shape Prometheus dashboards stack.
    """
    metrics.set("rewl.cost.total_s", cost.get("total_s", 0.0))
    for phase, bucket in cost.get("phases", {}).items():
        metrics.set("rewl.cost.phase_s", bucket["seconds"],
                    labels={"phase": phase})
        metrics.set("rewl.cost.phase_share", bucket["share"],
                    labels={"phase": phase})


def format_cost_line(cost: dict, top: int = 3) -> str:
    """One-line digest for ``obs dash``: top phases by share."""
    phases = cost.get("phases", {})
    if not phases:
        return "cost attribution: (no profiled sections)"
    ranked = sorted(phases.items(), key=lambda kv: -kv[1]["seconds"])
    bits = ", ".join(
        f"{phase} {bucket['share']:.0%} ({bucket['seconds']:.3g}s)"
        for phase, bucket in ranked[:top]
    )
    return (
        f"cost attribution: {cost.get('total_s', 0.0):.3g}s attributed — {bits}"
    )
