"""Deterministic sampling profiler for the Monte Carlo hot paths.

Python-level timing of every ΔE evaluation would swamp the kernels it
measures, so :class:`SectionProfiler` times only every ``sample_every``-th
entry into a section — chosen by a plain call counter, **never** by a random
draw — and counts every entry.  The estimate ``mean(timed) × calls`` then
reconstructs total section time with bounded overhead.  Three properties
make it safe to leave in the hot loops:

- **zero-RNG / zero-state**: profiling reads the clock and writes into its
  own stat dicts only, so a profiled run is bit-identical to a bare one
  (same contract as the rest of :mod:`repro.obs`; tested),
- **picklable + mergeable**: a profiler travels with its walker through the
  process executors and per-walker profiles reduce associatively (calls and
  timed totals add, min/max combine), exactly like
  :class:`repro.obs.metrics.MetricsRegistry`,
- **cheap when off**: every hook is ``if profiler is None`` on a local.

Hook sites (see DESIGN.md §10): energy-delta evaluation
(:meth:`repro.hamiltonians.base.Hamiltonian.profiled`), proposal generation
(:meth:`repro.proposals.base.Proposal.profiled`), the Wang-Landau histogram
update (:meth:`repro.sampling.wang_landau.WangLandauSampler.enable_profiling`),
and the REWL round phases (:class:`repro.parallel.rewl.REWLDriver`).

Environment wiring: ``REPRO_PROFILE=1`` (or ``every=<N>`` / a bare integer)
activates profiling in any entry point without new flags; the process-wide
collector aggregates finished runs and, when ``REPRO_PROFILE_OUT`` names a
file, dumps the merged sections as JSON at interpreter exit — that file is
how :mod:`repro.obs.bench` embeds per-section profiles in BENCH snapshots.
"""

from __future__ import annotations

import atexit
import json
import math
import os
import time
from dataclasses import dataclass

__all__ = [
    "PROFILE_ENV_VAR",
    "PROFILE_OUT_ENV_VAR",
    "SectionStat",
    "SectionProfiler",
    "ProfiledHamiltonian",
    "ProfiledProposal",
    "profile_from_env",
    "global_collector",
    "reset_global_collector",
    "contribute_profile",
]

PROFILE_ENV_VAR = "REPRO_PROFILE"
PROFILE_OUT_ENV_VAR = "REPRO_PROFILE_OUT"

#: Default sampling stride: time one call in 64.
DEFAULT_SAMPLE_EVERY = 64


@dataclass
class SectionStat:
    """Aggregate for one named section (plain data; merges associatively)."""

    calls: int = 0
    timed: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.timed if self.timed else 0.0

    @property
    def est_total_s(self) -> float:
        """Estimated wall time over *all* calls (mean of timed × calls)."""
        return self.mean_s * self.calls

    def merge(self, other: "SectionStat") -> None:
        self.calls += other.calls
        self.timed += other.timed
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "timed": self.timed,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "est_total_s": self.est_total_s,
            "min_s": None if self.timed == 0 else self.min_s,
            "max_s": None if self.timed == 0 else self.max_s,
        }


class SectionProfiler:
    """Counter-sampled section timings (``sample_every=1`` times every call).

    Hot-path usage::

        t0 = prof.start("hamiltonian.delta_swap")
        ...                      # the measured work
        prof.stop("hamiltonian.delta_swap", t0)

    ``start`` increments the call count unconditionally and returns a clock
    token only on sampled calls; ``stop`` with a ``None`` token is free.
    ``section(name)`` wraps the pair as a context manager for coarse regions.
    """

    __slots__ = ("sample_every", "sections")

    def __init__(self, sample_every: int = DEFAULT_SAMPLE_EVERY):
        if int(sample_every) < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every!r}")
        self.sample_every = int(sample_every)
        self.sections: dict[str, SectionStat] = {}

    # ------------------------------------------------------------ hot path

    def start(self, name: str) -> float | None:
        stat = self.sections.get(name)
        if stat is None:
            stat = self.sections[name] = SectionStat()
        stat.calls += 1
        if (stat.calls - 1) % self.sample_every:
            return None
        return time.perf_counter()

    def start_always(self, name: str) -> float:
        """Like :meth:`start` but times every call (coarse sections — e.g.
        REWL round phases — where per-call cost dwarfs the clock read)."""
        stat = self.sections.get(name)
        if stat is None:
            stat = self.sections[name] = SectionStat()
        stat.calls += 1
        return time.perf_counter()

    def stop(self, name: str, token: float | None) -> None:
        if token is None:
            return
        elapsed = time.perf_counter() - token
        stat = self.sections[name]
        stat.timed += 1
        stat.total_s += elapsed
        if elapsed < stat.min_s:
            stat.min_s = elapsed
        if elapsed > stat.max_s:
            stat.max_s = elapsed

    def section(self, name: str):
        """Context manager over one ``start``/``stop`` pair."""
        return _SectionContext(self, name)

    # ------------------------------------------------------------ plumbing

    def __contains__(self, name: str) -> bool:
        return name in self.sections

    def __getitem__(self, name: str) -> SectionStat:
        return self.sections[name]

    def __len__(self) -> int:
        return len(self.sections)

    def names(self) -> list[str]:
        return sorted(self.sections)

    def merge(self, other: "SectionProfiler") -> "SectionProfiler":
        """Fold ``other`` into this profiler (in place); returns ``self``."""
        for name, theirs in other.sections.items():
            mine = self.sections.get(name)
            if mine is None:
                mine = self.sections[name] = SectionStat()
            mine.merge(theirs)
        return self

    def as_dict(self) -> dict[str, dict]:
        return {name: self.sections[name].as_dict() for name in self.names()}

    @classmethod
    def from_dict(cls, payload: dict[str, dict],
                  sample_every: int = DEFAULT_SAMPLE_EVERY) -> "SectionProfiler":
        prof = cls(sample_every=sample_every)
        for name, entry in payload.items():
            stat = SectionStat(
                calls=int(entry["calls"]),
                timed=int(entry["timed"]),
                total_s=float(entry["total_s"]),
            )
            if stat.timed:
                stat.min_s = float(entry["min_s"])
                stat.max_s = float(entry["max_s"])
            prof.sections[name] = stat
        return prof

    def delta_since(self, before: dict[str, dict]) -> "SectionProfiler":
        """Profile accumulated since a prior ``as_dict()`` snapshot.

        Counts and totals subtract exactly; min/max carry the cumulative
        values (per-period extrema are not recoverable from snapshots).
        Lets a sampler whose profiler outlives many ``run()`` calls
        contribute each run exactly once to the global collector.
        """
        delta = SectionProfiler(sample_every=self.sample_every)
        for name, stat in self.sections.items():
            prev = before.get(name)
            d = SectionStat(
                calls=stat.calls - (int(prev["calls"]) if prev else 0),
                timed=stat.timed - (int(prev["timed"]) if prev else 0),
                total_s=stat.total_s - (float(prev["total_s"]) if prev else 0.0),
                min_s=stat.min_s,
                max_s=stat.max_s,
            )
            if d.calls > 0:
                delta.sections[name] = d
        return delta

    def publish(self, metrics) -> None:
        """Write section aggregates into a :class:`MetricsRegistry`.

        Gauges, not counters, so re-publishing a cumulative profile is
        idempotent (the latest snapshot wins on merge, right-biased).
        """
        for name, stat in self.sections.items():
            metrics.set(f"profile.{name}.calls", float(stat.calls))
            metrics.set(f"profile.{name}.est_total_s", stat.est_total_s)
            metrics.set(f"profile.{name}.mean_us", stat.mean_s * 1e6)


class _SectionContext:
    __slots__ = ("profiler", "name", "token")

    def __init__(self, profiler: SectionProfiler, name: str):
        self.profiler = profiler
        self.name = name

    def __enter__(self):
        self.token = self.profiler.start(self.name)
        return self

    def __exit__(self, *exc) -> None:
        self.profiler.stop(self.name, self.token)


# --------------------------------------------------------------- hot-path views


class ProfiledHamiltonian:
    """Delegating view of a Hamiltonian that times its ΔE/energy kernels.

    Not a :class:`repro.hamiltonians.base.Hamiltonian` subclass — a plain
    forwarding wrapper, so the wrapped instance keeps sole ownership of its
    state and several walkers can hold independent profiled views of one
    shared Hamiltonian.  Picklable as long as the inner model is.
    """

    __slots__ = ("inner", "profiler")

    def __init__(self, inner, profiler: SectionProfiler):
        self.inner = inner
        self.profiler = profiler

    def energy(self, config):
        prof = self.profiler
        t0 = prof.start("hamiltonian.energy")
        out = self.inner.energy(config)
        prof.stop("hamiltonian.energy", t0)
        return out

    def delta_energy_swap(self, config, i, j):
        prof = self.profiler
        t0 = prof.start("hamiltonian.delta_swap")
        out = self.inner.delta_energy_swap(config, i, j)
        prof.stop("hamiltonian.delta_swap", t0)
        return out

    def delta_energy_flip(self, config, site, new_species):
        prof = self.profiler
        t0 = prof.start("hamiltonian.delta_flip")
        out = self.inner.delta_energy_flip(config, site, new_species)
        prof.stop("hamiltonian.delta_flip", t0)
        return out

    def energies(self, configs):
        prof = self.profiler
        t0 = prof.start("hamiltonian.energies")
        out = self.inner.energies(configs)
        prof.stop("hamiltonian.energies", t0)
        return out

    def delta_energy_swap_batch(self, config, sites_i, sites_j):
        prof = self.profiler
        t0 = prof.start("hamiltonian.delta_swap_batch")
        out = self.inner.delta_energy_swap_batch(config, sites_i, sites_j)
        prof.stop("hamiltonian.delta_swap_batch", t0)
        return out

    def delta_energy_flip_batch(self, config, sites, new_species):
        prof = self.profiler
        t0 = prof.start("hamiltonian.delta_flip_batch")
        out = self.inner.delta_energy_flip_batch(config, sites, new_species)
        prof.stop("hamiltonian.delta_flip_batch", t0)
        return out

    def delta_energy_swap_many(self, configs, sites_i, sites_j):
        prof = self.profiler
        t0 = prof.start("hamiltonian.delta_swap_many")
        out = self.inner.delta_energy_swap_many(configs, sites_i, sites_j)
        prof.stop("hamiltonian.delta_swap_many", t0)
        return out

    def delta_energy_flip_many(self, configs, sites, new_species):
        prof = self.profiler
        t0 = prof.start("hamiltonian.delta_flip_many")
        out = self.inner.delta_energy_flip_many(configs, sites, new_species)
        prof.stop("hamiltonian.delta_flip_many", t0)
        return out

    def __getattr__(self, name):
        if name in ("inner", "profiler"):  # slot not yet set (unpickling)
            raise AttributeError(name)
        return getattr(self.inner, name)

    def __getstate__(self):
        return (self.inner, self.profiler)

    def __setstate__(self, state):
        inner, profiler = state
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "profiler", profiler)

    def __repr__(self) -> str:
        return f"ProfiledHamiltonian({self.inner!r})"


class ProfiledProposal:
    """Delegating view of a Proposal that times ``propose``.

    The section name carries the kernel (``proposal.swap``,
    ``proposal.flip``, ...), so mixtures profile their components apart.
    """

    __slots__ = ("inner", "profiler", "_section")

    def __init__(self, inner, profiler: SectionProfiler):
        self.inner = inner
        self.profiler = profiler
        self._section = f"proposal.{getattr(inner, 'name', 'proposal')}"

    def propose(self, config, hamiltonian, rng, current_energy=None):
        prof = self.profiler
        t0 = prof.start(self._section)
        out = self.inner.propose(config, hamiltonian, rng,
                                 current_energy=current_energy)
        prof.stop(self._section, t0)
        return out

    def propose_many(self, configs, hamiltonian, rng, current_energies=None):
        prof = self.profiler
        section = self._section + ".many"
        t0 = prof.start(section)
        out = self.inner.propose_many(configs, hamiltonian, rng,
                                      current_energies=current_energies)
        prof.stop(section, t0)
        return out

    def draw_fields(self, configs, hamiltonian, rng):
        prof = self.profiler
        section = self._section + ".fields"
        t0 = prof.start(section)
        out = self.inner.draw_fields(configs, hamiltonian, rng)
        prof.stop(section, t0)
        return out

    def __getattr__(self, name):
        if name in ("inner", "profiler", "_section"):  # unpickling guard
            raise AttributeError(name)
        return getattr(self.inner, name)

    def __getstate__(self):
        return (self.inner, self.profiler)

    def __setstate__(self, state):
        inner, profiler = state
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "profiler", profiler)
        object.__setattr__(self, "_section",
                           f"proposal.{getattr(inner, 'name', 'proposal')}")

    def __repr__(self) -> str:
        return f"ProfiledProposal({self.inner!r})"


# ------------------------------------------------------------- env activation


def parse_profile_spec(spec: str) -> int | None:
    """Parse ``REPRO_PROFILE``: sampling stride, or None for disabled.

    ``""``/``"0"``/``"off"``/``"false"`` → None; ``"1"``/``"on"``/``"true"``
    → the default stride; ``"every=<N>"`` or a bare integer ≥ 2 → that stride.
    """
    value = spec.strip().lower()
    if value in ("", "0", "off", "false"):
        return None
    if value in ("1", "on", "true"):
        return DEFAULT_SAMPLE_EVERY
    if value.startswith("every="):
        value = value[len("every="):]
    try:
        every = int(value)
    except ValueError as exc:
        raise ValueError(
            f"bad {PROFILE_ENV_VAR} value {spec!r}; expected 1/on/off, "
            f"every=<N>, or an integer stride"
        ) from exc
    if every < 1:
        raise ValueError(f"{PROFILE_ENV_VAR} stride must be >= 1, got {every}")
    return every


def profile_from_env(env_var: str = PROFILE_ENV_VAR) -> SectionProfiler | None:
    """Fresh :class:`SectionProfiler` per the environment knob (or None)."""
    every = parse_profile_spec(os.environ.get(env_var, ""))
    return None if every is None else SectionProfiler(sample_every=every)


_COLLECTOR: SectionProfiler | None = None
_DUMP_REGISTERED = False


def global_collector() -> SectionProfiler | None:
    """Process-wide profile aggregate, created lazily when profiling is on.

    Finished runs contribute their merged profiles here
    (:func:`contribute_profile`); when ``REPRO_PROFILE_OUT`` is set the
    collector is dumped as JSON at interpreter exit, which is how the bench
    harness recovers per-section profiles from a child pytest process.
    """
    global _COLLECTOR, _DUMP_REGISTERED
    if parse_profile_spec(os.environ.get(PROFILE_ENV_VAR, "")) is None:
        return None
    if _COLLECTOR is None:
        _COLLECTOR = SectionProfiler(sample_every=1)
        if not _DUMP_REGISTERED:
            atexit.register(_dump_collector)
            _DUMP_REGISTERED = True
    return _COLLECTOR


def reset_global_collector() -> None:
    global _COLLECTOR
    _COLLECTOR = None


def contribute_profile(profiler: SectionProfiler | None) -> None:
    """Merge a finished run's profile into the global collector (if active).

    Callers own delta semantics: contribute each run's profile exactly once
    (the REWL driver does this at ``run()`` exit).
    """
    if profiler is None:
        return
    collector = global_collector()
    if collector is not None and collector is not profiler:
        collector.merge(profiler)


def _dump_collector() -> None:
    path = os.environ.get(PROFILE_OUT_ENV_VAR, "").strip()
    if not path or _COLLECTOR is None or not _COLLECTOR.sections:
        return
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(_COLLECTOR.as_dict(), fh, indent=2, sort_keys=True)
    except OSError:
        return  # exit-time dump is best-effort; never break shutdown
