"""SRO-targeted fast structure generation (SQS-style) and supercell export.

The ultra-large-scale structure generator of the tier: instead of annealing
a Hamiltonian (every move priced through ΔE kernels against interaction
matrices), :func:`anneal_sro` anneals swap moves **directly against
Warren–Cowley α targets** using O(z) incremental pair-count deltas
(:func:`repro.kernels.ops.pair_count_deltas_swap_alternatives`).  This is
the PyHEA insight: for *generating* structures with prescribed short-range
order, the chemistry enters only through the target α matrix, so the whole
anneal runs on small integer count algebra.

Because swap moves preserve composition, α is an **affine** function of
the directed pair counts::

    α_s[i, j] = 1 − C_s[i, j] · N / (z_s · N_i · N_j) = 1 − C_s[i, j] · scale_s[i, j]

with ``scale_s`` constant over the run.  One iteration prices a batch of M
candidate swaps on the current configuration (one vectorized numpy pass),
applies the best by the quadratic objective

    J = Σ_s w_s Σ_{(i,j) targeted} (α_s[i,j] − target_s[i,j])²

under a Metropolis accept at an annealed temperature, and updates counts
incrementally — no full recount, no energies.  Untargeted entries of the
target matrices are NaN (masked out of J); note the α sum rules couple
entries, so pinning one pair necessarily moves others.

:func:`anneal_energy` is the conventional full-energy Metropolis anneal
(scalar ΔE per move) kept as the honest baseline the benchmarks compare
throughput against, and :func:`write_lammps_data` exports any
configuration as a LAMMPS ``.data`` file, streamed in site blocks so a
10⁶-site export never materializes the whole text in memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import ops
from repro.kernels.tables import PairTables
from repro.lattice.configuration import (
    CONFIG_DTYPE,
    composition_counts,
    random_configuration,
)
from repro.lattice.structures import Lattice
from repro.util.validation import check_integer

__all__ = ["SROAnnealResult", "anneal_sro", "anneal_energy", "write_lammps_data"]


@dataclass
class SROAnnealResult:
    """Outcome of one :func:`anneal_sro` run."""

    config: np.ndarray          #: final configuration, int8
    alpha: np.ndarray           #: final per-shell α, (n_shells, S, S)
    objective: float            #: final value of J
    max_abs_error: float        #: max |α − target| over targeted entries
    converged: bool             #: reached ``tol`` before the move budget
    n_iters: int                #: batched iterations run
    n_accepted: int             #: accepted swaps
    candidates_priced: int      #: total candidate swaps priced (M · iters)


def _target_arrays(targets, n_shells: int, n_species: int):
    """Normalize targets to (n_shells, S, S) float with NaN = untargeted."""
    targets = np.asarray(targets, dtype=np.float64)
    if targets.ndim == 2:
        pad = np.full((n_shells, n_species, n_species), np.nan)
        pad[0] = targets
        targets = pad
    if targets.shape != (n_shells, n_species, n_species):
        raise ValueError(
            f"targets must have shape (S, S) or ({n_shells}, S, S) with "
            f"S={n_species}, got {targets.shape}"
        )
    # Symmetrize the mask implicitly: α is symmetric for symmetric
    # compositions of directed counts, so an asymmetric target is a bug.
    for s in range(n_shells):
        t = targets[s]
        both = ~np.isnan(t) & ~np.isnan(t.T)
        if not np.allclose(t[both], t.T[both], equal_nan=True):
            raise ValueError(f"shell-{s} target matrix is not symmetric")
    return targets


def anneal_sro(
    lattice: Lattice,
    n_species: int,
    targets,
    *,
    config: np.ndarray | None = None,
    counts=None,
    n_shells: int | None = None,
    shell_weights=None,
    batch: int = 128,
    max_iters: int = 20_000,
    tol: float = 0.01,
    t_start: float = 1e-3,
    t_end: float = 1e-6,
    rng=None,
) -> SROAnnealResult:
    """Anneal a configuration toward Warren–Cowley α targets — no energies.

    Parameters
    ----------
    lattice : Lattice
        Host lattice; neighbor tables are built once (int32).
    n_species : int
    targets : array
        ``(S, S)`` (first shell) or ``(n_shells, S, S)``; NaN entries are
        unconstrained.  α targets must be symmetric where specified.
    config : int array, optional
        Starting configuration; defaults to a uniform random alloy with
        ``counts`` composition (equiatomic-ish if ``counts`` is None).
    counts : sequence of int, optional
        Composition for the random start (ignored when ``config`` given).
    n_shells : int, optional
        Shells to track; defaults to the leading dimension of ``targets``.
    shell_weights : sequence of float, optional
        Per-shell weights ``w_s`` in the objective (default all 1).
    batch : int
        Candidate swaps priced per iteration (best one is considered).
    max_iters : int
        Iteration budget; the move budget is ``batch · max_iters``.
    tol : float
        Convergence: stop when max |α − target| over targeted entries ≤ tol.
    t_start, t_end : float
        Geometric Metropolis temperature schedule on J (uphill moves are
        mostly useful early; by t_end the accept rule is effectively greedy).
    rng : seed or numpy Generator

    Returns
    -------
    SROAnnealResult
    """
    rng = np.random.default_rng(rng)
    n_species = check_integer("n_species", n_species, minimum=2)
    batch = check_integer("batch", batch, minimum=1)
    max_iters = check_integer("max_iters", max_iters, minimum=1)

    targets_arr = np.asarray(targets, dtype=np.float64)
    if n_shells is None:
        n_shells = 1 if targets_arr.ndim == 2 else targets_arr.shape[0]
    targets_arr = _target_arrays(targets_arr, n_shells, n_species)
    mask = ~np.isnan(targets_arr)                     # (nsh, S, S)
    if not mask.any():
        raise ValueError("targets are all-NaN; nothing to anneal toward")
    weights = (np.ones(n_shells) if shell_weights is None
               else np.asarray(shell_weights, dtype=np.float64))
    if weights.shape != (n_shells,):
        raise ValueError(f"shell_weights must have {n_shells} entries")

    if config is None:
        if counts is None:
            from repro.lattice.configuration import equiatomic_counts
            counts = equiatomic_counts(lattice.n_sites, n_species)
        config = random_configuration(lattice.n_sites, counts, rng=rng)
    config = np.array(config, dtype=CONFIG_DTYPE)     # private working copy
    if config.shape != (lattice.n_sites,):
        raise ValueError(
            f"config must have shape ({lattice.n_sites},), got {config.shape}"
        )

    shells = lattice.neighbor_shells(n_shells)
    # Zero interaction matrices: only the index structures are used, and
    # PairTables builds those lazily, so this costs nothing extra.
    t = PairTables(shells, [np.zeros((n_species, n_species))] * n_shells)

    species_counts = composition_counts(config, n_species)
    if (species_counts[:n_species] == 0).any():
        raise ValueError("every species must be present (α is undefined otherwise)")
    n_sites = lattice.n_sites
    z = np.array([sh.coordination for sh in shells], dtype=np.float64)
    # α_s = 1 − C_s · scale_s, constant scale under composition-preserving swaps.
    scale = (n_sites
             / (z[:, None, None]
                * species_counts[None, :, None]
                * species_counts[None, None, :]))
    scale_m = np.where(mask, scale, 0.0)
    w_bcast = weights[:, None, None]

    # Current directed counts (one full pass; everything after is O(z)).
    from repro.analysis.sro import pair_counts
    C = np.stack([pair_counts(config, sh.table, n_species) for sh in shells])
    # Residual R = α − target on targeted entries (0 elsewhere).
    def residual(C):
        alpha = 1.0 - C * scale
        return np.where(mask, alpha - targets_arr, 0.0)

    R = residual(C)
    J = float(np.sum(w_bcast * R * R))
    max_err = float(np.abs(R).max())

    n_accepted = 0
    priced = 0
    it = 0
    decay = (t_end / t_start) ** (1.0 / max(1, max_iters - 1))
    temp = t_start
    while it < max_iters and max_err > tol:
        ii = rng.integers(0, n_sites, batch)
        jj = rng.integers(0, n_sites, batch)
        D = ops.pair_count_deltas_swap_alternatives(t, config, ii, jj)
        priced += batch
        # J per candidate from the affine update R' = R − D·scale.
        Rp = R[None] - D * scale_m[None]
        Jc = np.sum(w_bcast[None] * Rp * Rp, axis=(1, 2, 3))
        best = int(np.argmin(Jc))
        dJ = float(Jc[best]) - J
        if dJ <= 0.0 or rng.random() < np.exp(-dJ / temp):
            bi, bj = int(ii[best]), int(jj[best])
            if config[bi] != config[bj]:
                config[bi], config[bj] = config[bj], config[bi]
                C += D[best]
                R = R - D[best] * scale_m
                J = float(Jc[best])
                max_err = float(np.abs(R).max())
                n_accepted += 1
        temp *= decay
        it += 1

    # Imported here, not at module top: repro.analysis.sro itself imports
    # repro.lattice for type hints, so a top-level import is circular
    # whenever repro.analysis initializes first.
    from repro.analysis.sro import warren_cowley_from_counts

    alpha = np.stack([
        warren_cowley_from_counts(C[s], species_counts) for s in range(n_shells)
    ])
    return SROAnnealResult(
        config=config,
        alpha=alpha,
        objective=J,
        max_abs_error=max_err,
        converged=max_err <= tol,
        n_iters=it,
        n_accepted=n_accepted,
        candidates_priced=priced,
    )


def anneal_energy(
    hamiltonian,
    config: np.ndarray,
    *,
    n_steps: int,
    beta_start: float = 1.0,
    beta_end: float = 20.0,
    rng=None,
) -> tuple[np.ndarray, int]:
    """Conventional full-energy Metropolis anneal (the throughput baseline).

    Scalar swap moves priced through the Hamiltonian's ΔE path with a
    geometric inverse-temperature ramp; returns ``(config, n_accepted)``.
    The e14 benchmark compares :func:`anneal_sro`'s candidates/s against
    this — the tier claim is ≥10× (DESIGN.md §17).
    """
    rng = np.random.default_rng(rng)
    n_steps = check_integer("n_steps", n_steps, minimum=1)
    config = np.array(config, dtype=CONFIG_DTYPE)
    n_sites = config.shape[0]
    growth = (beta_end / beta_start) ** (1.0 / max(1, n_steps - 1))
    beta = beta_start
    n_accepted = 0
    for _ in range(n_steps):
        i = int(rng.integers(n_sites))
        j = int(rng.integers(n_sites))
        de = hamiltonian.delta_energy_swap(config, i, j)
        if de <= 0.0 or rng.random() < np.exp(-beta * de):
            config[i], config[j] = config[j], config[i]
            n_accepted += 1
        beta *= growth
    return config, n_accepted


def write_lammps_data(
    path,
    lattice: Lattice,
    config: np.ndarray,
    *,
    species_names=None,
    masses=None,
    lattice_constant: float = 1.0,
    block_sites: int = 65_536,
) -> None:
    """Export a configuration as a LAMMPS ``.data`` file (atomic style).

    Writes site blocks of ``block_sites`` at a time so a 10⁶-site export
    streams through bounded memory.  Species indices are written 1-based
    as LAMMPS atom types.  Only orthogonal supercells are supported (the
    standard builders all are); a non-orthogonal primitive raises.
    """
    config = np.asarray(config)
    if config.shape != (lattice.n_sites,):
        raise ValueError(
            f"config must have shape ({lattice.n_sites},), got {config.shape}"
        )
    if lattice.dim != 3:
        raise ValueError("LAMMPS export requires a 3D lattice")
    prim = lattice.primitive
    if not np.allclose(prim, np.diag(np.diag(prim))):
        raise ValueError("only orthogonal primitive cells are supported")
    n_species = int(config.max()) + 1
    if species_names is not None and len(species_names) < n_species:
        raise ValueError("species_names shorter than the species range")
    box = np.diag(prim) * np.asarray(lattice.size) * lattice_constant

    with open(path, "w") as fh:
        names = ("" if species_names is None
                 else " (" + " ".join(species_names) + ")")
        fh.write(f"# {lattice.name} supercell {lattice.size}{names} "
                 f"-- repro.lattice.generate\n\n")
        fh.write(f"{lattice.n_sites} atoms\n")
        fh.write(f"{n_species} atom types\n\n")
        fh.write(f"0.0 {box[0]:.8f} xlo xhi\n")
        fh.write(f"0.0 {box[1]:.8f} ylo yhi\n")
        fh.write(f"0.0 {box[2]:.8f} zlo zhi\n\n")
        if masses is not None:
            if len(masses) < n_species:
                raise ValueError("masses shorter than the species range")
            fh.write("Masses\n\n")
            for k in range(n_species):
                fh.write(f"{k + 1} {float(masses[k]):.6f}\n")
            fh.write("\n")
        fh.write("Atoms # atomic\n\n")
        strides = lattice._cell_strides()
        size = np.asarray(lattice.size, dtype=np.int64)
        scale = np.diag(prim) * lattice_constant
        for start in range(0, lattice.n_sites, block_sites):
            stop = min(start + block_sites, lattice.n_sites)
            sites = np.arange(start, stop, dtype=np.int64)
            basis = sites % lattice.n_basis
            flat_cell = sites // lattice.n_basis
            coords = np.empty((stop - start, 3), dtype=np.float64)
            for k in range(3):
                coords[:, k] = (flat_cell // strides[k]) % size[k]
            frac = coords + lattice.basis_frac[basis]
            pos = frac * scale
            types = config[start:stop].astype(np.int64) + 1
            lines = [
                f"{sid + 1} {typ} {p[0]:.8f} {p[1]:.8f} {p[2]:.8f}\n"
                for sid, typ, p in zip(sites, types, pos)
            ]
            fh.writelines(lines)
