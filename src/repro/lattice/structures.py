"""Periodic lattices and neighbor-shell construction.

A :class:`Lattice` is defined by primitive vectors, an integer supercell size
per direction, and a basis (atom positions inside the primitive cell, in
fractional coordinates).  Neighbor shells are constructed *exactly* by
enumerating inter-cell offset vectors — no distance-matrix approximations —
so the tables are correct for any supercell large enough that a site does not
alias with its own image (``size >= 3`` in every direction for the standard
builders; smaller sizes raise).

Site indexing convention (used everywhere downstream): the site with grid
cell ``(i_1, …, i_d)`` and basis slot ``b`` has flat index
``(((i_1·L_2 + i_2)·L_3 + …)·n_basis + b)`` — row-major over the grid, basis
fastest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_integer

__all__ = ["Lattice", "NeighborShell", "square_lattice", "simple_cubic", "bcc", "fcc"]

_DIST_DECIMALS = 8  # distances equal to within 1e-8 are the same shell


@dataclass(frozen=True)
class NeighborShell:
    """One coordination shell of a lattice.

    Attributes
    ----------
    distance : float
        The shell radius (Cartesian, in units of the primitive vectors).
    table : numpy.ndarray, shape (n_sites, z), dtype int64
        ``table[i]`` lists the ``z`` neighbors of site ``i`` in this shell.
    """

    distance: float
    table: np.ndarray

    @property
    def coordination(self) -> int:
        """Number of neighbors per site (``z``)."""
        return self.table.shape[1]

    def pairs(self) -> np.ndarray:
        """Unique (i, j) pairs with ``i < j``, shape (n_pairs, 2).

        Each undirected bond appears exactly once, which is what pair
        Hamiltonians sum over.
        """
        n = self.table.shape[0]
        i = np.repeat(np.arange(n, dtype=np.int64), self.table.shape[1])
        j = self.table.reshape(-1)
        keep = i < j
        return np.stack([i[keep], j[keep]], axis=1)


class Lattice:
    """A periodic lattice: primitive vectors × integer supercell × basis.

    Parameters
    ----------
    primitive : array_like, shape (dim, dim)
        Primitive cell vectors as rows.
    size : sequence of int
        Supercell extent per direction (number of primitive cells).
    basis_frac : array_like, shape (n_basis, dim)
        Basis atom positions in fractional (primitive-cell) coordinates.
    name : str
        Human-readable structure name ("bcc", "square", ...).
    """

    def __init__(self, primitive, size, basis_frac, name: str = "custom"):
        self.primitive = np.asarray(primitive, dtype=np.float64)
        if self.primitive.ndim != 2 or self.primitive.shape[0] != self.primitive.shape[1]:
            raise ValueError(f"primitive must be square (dim, dim), got {self.primitive.shape}")
        self.dim = self.primitive.shape[0]
        self.size = tuple(check_integer(f"size[{k}]", s, minimum=1) for k, s in enumerate(size))
        if len(self.size) != self.dim:
            raise ValueError(f"size must have {self.dim} entries, got {len(self.size)}")
        self.basis_frac = np.atleast_2d(np.asarray(basis_frac, dtype=np.float64))
        if self.basis_frac.shape[1] != self.dim:
            raise ValueError(
                f"basis_frac must have {self.dim} columns, got {self.basis_frac.shape[1]}"
            )
        self.name = name
        self.n_basis = self.basis_frac.shape[0]
        self.n_cells = int(np.prod(self.size))
        self.n_sites = self.n_cells * self.n_basis
        self._shell_cache: dict[int, tuple[NeighborShell, ...]] = {}

    def __repr__(self) -> str:
        return (
            f"Lattice({self.name!r}, size={self.size}, "
            f"n_basis={self.n_basis}, n_sites={self.n_sites})"
        )

    # ------------------------------------------------------------------ sites

    def site_grid(self) -> np.ndarray:
        """Integer coordinates of every site, shape (n_sites, dim + 1).

        Columns are the grid cell indices followed by the basis slot.
        """
        axes = [np.arange(s) for s in self.size] + [np.arange(self.n_basis)]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.reshape(-1) for m in mesh], axis=1)

    def positions(self) -> np.ndarray:
        """Cartesian positions of every site, shape (n_sites, dim)."""
        grid = self.site_grid()
        cells = grid[:, : self.dim].astype(np.float64)
        frac = cells + self.basis_frac[grid[:, self.dim]]
        return frac @ self.primitive

    def site_index(self, cell, basis: int = 0) -> int:
        """Flat index of the site at grid ``cell`` (wrapped) and basis slot."""
        cell = np.asarray(cell, dtype=np.int64) % np.asarray(self.size, dtype=np.int64)
        idx = 0
        for k in range(self.dim):
            idx = idx * self.size[k] + int(cell[k])
        return idx * self.n_basis + int(basis)

    # -------------------------------------------------------------- neighbors

    def neighbor_shells(self, n_shells: int = 1) -> tuple[NeighborShell, ...]:
        """Return the first ``n_shells`` coordination shells.

        Raises
        ------
        ValueError
            If the supercell is too small for neighbor tables to be
            unambiguous (a site would be its own neighbor, or the same
            neighbor would appear via two images at the same distance).
        """
        n_shells = check_integer("n_shells", n_shells, minimum=1)
        if n_shells not in self._shell_cache:
            self._shell_cache[n_shells] = self._build_shells(n_shells)
        return self._shell_cache[n_shells]

    def _offset_catalog(self, n_shells: int):
        """Enumerate (distance, b_from, b_to, cell offset) tuples per shell.

        Searches offsets in a cube of radius ``reach`` and keeps the
        ``n_shells`` smallest distinct distances.  ``reach`` is grown until
        the shells are stable (guards against missing a shell that lies
        outside the initial cube).
        """
        reach = 2
        prev_key = None
        while True:
            offs = np.stack(
                np.meshgrid(*([np.arange(-reach, reach + 1)] * self.dim), indexing="ij"),
                axis=-1,
            ).reshape(-1, self.dim)
            records = []  # (rounded dist, exact dist, b_from, b_to, offset)
            for b_from in range(self.n_basis):
                for b_to in range(self.n_basis):
                    delta_frac = offs + (self.basis_frac[b_to] - self.basis_frac[b_from])
                    cart = delta_frac @ self.primitive
                    d = np.sqrt(np.sum(cart * cart, axis=1))
                    for off, dist in zip(offs, d):
                        if dist < 10.0**-_DIST_DECIMALS:
                            continue
                        records.append(
                            (round(float(dist), _DIST_DECIMALS), float(dist),
                             b_from, b_to, tuple(off))
                        )
            dists = sorted({r[0] for r in records})[:n_shells]
            if len(dists) < n_shells:
                reach += 1
                continue
            key = tuple(dists)
            # A shell is trustworthy once enlarging the cube stops changing it
            # and the largest kept distance fits well inside the cube.
            max_cell = np.max(np.abs([r[4] for r in records if r[0] <= dists[-1]]))
            if key == prev_key and max_cell < reach:
                shells: dict[float, list] = {d: [] for d in dists}
                exact: dict[float, float] = {}
                for dist, exact_dist, b_from, b_to, off in records:
                    if dist in shells:
                        shells[dist].append((b_from, b_to, off))
                        exact[dist] = exact_dist
                return [(exact[d], shells[d]) for d in dists]
            prev_key = key
            reach += 1

    def _build_shells(self, n_shells: int) -> tuple[NeighborShell, ...]:
        catalog = self._offset_catalog(n_shells)
        size = np.asarray(self.size, dtype=np.int64)
        grid = self.site_grid()
        cells = grid[:, : self.dim]
        basis = grid[:, self.dim]
        # Strides to turn wrapped cell coords into flat cell index.
        strides = np.ones(self.dim, dtype=np.int64)
        for k in range(self.dim - 2, -1, -1):
            strides[k] = strides[k + 1] * self.size[k + 1]

        out = []
        for distance, entries in catalog:
            # Check the supercell can host this shell without image aliasing.
            for b_from, _b_to, off in entries:
                for k in range(self.dim):
                    if abs(off[k]) * 2 > self.size[k]:
                        raise ValueError(
                            f"supercell {self.size} too small for shell at distance "
                            f"{distance:.4f} (offset {off}); enlarge the lattice"
                        )
            columns = []
            for b_from in range(self.n_basis):
                mask = basis == b_from
                from_cells = cells[mask]
                for b_to, off in [(bt, o) for bf, bt, o in entries if bf == b_from]:
                    wrapped = (from_cells + np.asarray(off, dtype=np.int64)) % size
                    flat = wrapped @ strides * self.n_basis + b_to
                    columns.append((mask, flat))
            z = len(entries) // self.n_basis
            if len(entries) % self.n_basis:
                # Coordination differs between basis slots (possible for
                # exotic bases); fall back to ragged handling via -1 padding
                # is not supported — the standard builders never hit this.
                raise ValueError(
                    f"shell at distance {distance:.4f} has basis-dependent "
                    "coordination; unsupported"
                )
            table = np.empty((self.n_sites, z), dtype=np.int64)
            fill = np.zeros(self.n_sites, dtype=np.int64)
            for mask, flat in columns:
                idx = np.nonzero(mask)[0]
                col = fill[idx]
                table[idx, col] = flat
                fill[idx] = col + 1
            if not np.all(fill == z):
                raise AssertionError("neighbor table construction is inconsistent")
            # Duplicate neighbors mean the supercell aliases images.
            sample = table[: min(64, self.n_sites)]
            for row_i, row in enumerate(sample):
                if len(set(row.tolist())) != z or row_i in row:
                    raise ValueError(
                        f"supercell {self.size} aliases images in shell at "
                        f"distance {distance:.4f}; enlarge the lattice"
                    )
            out.append(NeighborShell(distance=distance, table=table))
        return tuple(out)

    # ---------------------------------------------------- brute-force checker

    def neighbor_shells_bruteforce(self, n_shells: int = 1) -> tuple[NeighborShell, ...]:
        """O(N²) minimum-image construction — slow, for cross-checking only."""
        pos_frac = self.site_grid()[:, : self.dim].astype(np.float64)
        pos_frac += self.basis_frac[self.site_grid()[:, self.dim]]
        size = np.asarray(self.size, dtype=np.float64)
        n = self.n_sites
        # Pairwise fractional deltas with minimum image, blocked over rows.
        dist = np.empty((n, n), dtype=np.float64)
        block = max(1, 2_000_000 // max(n, 1))
        for start in range(0, n, block):
            stop = min(start + block, n)
            d = pos_frac[start:stop, None, :] - pos_frac[None, :, :]
            d -= np.round(d / size) * size
            cart = d @ self.primitive
            dist[start:stop] = np.sqrt(np.sum(cart * cart, axis=2))
        np.fill_diagonal(dist, np.inf)
        rounded = np.round(dist, _DIST_DECIMALS)
        shell_dists = np.unique(rounded)[:n_shells]
        out = []
        for sd in shell_dists:
            rows = [np.sort(np.nonzero(rounded[i] == sd)[0]) for i in range(n)]
            z = len(rows[0])
            if any(len(r) != z for r in rows):
                raise ValueError("inconsistent coordination in brute-force shells")
            out.append(NeighborShell(distance=float(sd), table=np.stack(rows)))
        return tuple(out)


# ------------------------------------------------------------------ builders


def square_lattice(length: int, width: int | None = None) -> Lattice:
    """2D square lattice (z₁ = 4, z₂ = 4). Used by the Ising validation."""
    width = length if width is None else width
    return Lattice(np.eye(2), (length, width), [[0.0, 0.0]], name="square")


def simple_cubic(length: int) -> Lattice:
    """Simple cubic lattice (z₁ = 6, z₂ = 12)."""
    return Lattice(np.eye(3), (length,) * 3, [[0.0, 0.0, 0.0]], name="sc")


def bcc(length: int) -> Lattice:
    """Body-centered cubic with the conventional 2-atom cell.

    ``n_sites = 2·length³``; shell 1 has z = 8 at √3/2·a, shell 2 has z = 6
    at a.  This is the lattice of the NbMoTaW-class refractory HEAs the paper
    evaluates.
    """
    return Lattice(
        np.eye(3),
        (length,) * 3,
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]],
        name="bcc",
    )


def fcc(length: int) -> Lattice:
    """Face-centered cubic with the conventional 4-atom cell.

    ``n_sites = 4·length³``; shell 1 has z = 12 at a/√2.
    """
    return Lattice(
        np.eye(3),
        (length,) * 3,
        [[0.0, 0.0, 0.0], [0.0, 0.5, 0.5], [0.5, 0.0, 0.5], [0.5, 0.5, 0.0]],
        name="fcc",
    )
