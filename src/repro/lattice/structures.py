"""Periodic lattices and neighbor-shell construction.

A :class:`Lattice` is defined by primitive vectors, an integer supercell size
per direction, and a basis (atom positions inside the primitive cell, in
fractional coordinates).  Neighbor shells are constructed *exactly* by
enumerating inter-cell offset vectors — no distance-matrix approximations —
so the tables are correct for any supercell large enough that a site does not
alias with its own image (``size >= 3`` in every direction for the standard
builders; smaller sizes raise).

Site indexing convention (used everywhere downstream): the site with grid
cell ``(i_1, …, i_d)`` and basis slot ``b`` has flat index
``(((i_1·L_2 + i_2)·L_3 + …)·n_basis + b)`` — row-major over the grid, basis
fastest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_integer

__all__ = ["Lattice", "NeighborShell", "square_lattice", "simple_cubic", "bcc", "fcc"]

_DIST_DECIMALS = 8  # distances equal to within 1e-8 are the same shell

#: Site indices in neighbor tables (int32 addresses 2·10⁹ sites at half
#: the memory of int64 — the ultra-large tier caps out far below that).
_TABLE_DTYPE = np.int32

#: Above this site count the O(N²) brute-force shell builder materializes
#: a multi-GB distance matrix; callers are pointed at the O(N·z)
#: catalog-based :meth:`Lattice.neighbor_shells` instead.
_BRUTEFORCE_MAX_SITES = 4096


@dataclass(frozen=True)
class NeighborShell:
    """One coordination shell of a lattice.

    Attributes
    ----------
    distance : float
        The shell radius (Cartesian, in units of the primitive vectors).
    table : numpy.ndarray, shape (n_sites, z), dtype int32
        ``table[i]`` lists the ``z`` neighbors of site ``i`` in this shell.
    """

    distance: float
    table: np.ndarray

    @property
    def coordination(self) -> int:
        """Number of neighbors per site (``z``)."""
        return self.table.shape[1]

    def pairs(self) -> np.ndarray:
        """Unique (i, j) pairs with ``i < j``, shape (n_pairs, 2).

        Each undirected bond appears exactly once, which is what pair
        Hamiltonians sum over.
        """
        n = self.table.shape[0]
        i = np.repeat(np.arange(n, dtype=_TABLE_DTYPE), self.table.shape[1])
        j = self.table.reshape(-1)
        keep = i < j
        return np.stack([i[keep], j[keep]], axis=1)


class Lattice:
    """A periodic lattice: primitive vectors × integer supercell × basis.

    Parameters
    ----------
    primitive : array_like, shape (dim, dim)
        Primitive cell vectors as rows.
    size : sequence of int
        Supercell extent per direction (number of primitive cells).
    basis_frac : array_like, shape (n_basis, dim)
        Basis atom positions in fractional (primitive-cell) coordinates.
    name : str
        Human-readable structure name ("bcc", "square", ...).
    """

    def __init__(self, primitive, size, basis_frac, name: str = "custom"):
        self.primitive = np.asarray(primitive, dtype=np.float64)
        if self.primitive.ndim != 2 or self.primitive.shape[0] != self.primitive.shape[1]:
            raise ValueError(f"primitive must be square (dim, dim), got {self.primitive.shape}")
        self.dim = self.primitive.shape[0]
        self.size = tuple(check_integer(f"size[{k}]", s, minimum=1) for k, s in enumerate(size))
        if len(self.size) != self.dim:
            raise ValueError(f"size must have {self.dim} entries, got {len(self.size)}")
        self.basis_frac = np.atleast_2d(np.asarray(basis_frac, dtype=np.float64))
        if self.basis_frac.shape[1] != self.dim:
            raise ValueError(
                f"basis_frac must have {self.dim} columns, got {self.basis_frac.shape[1]}"
            )
        self.name = name
        self.n_basis = self.basis_frac.shape[0]
        self.n_cells = int(np.prod(self.size))
        self.n_sites = self.n_cells * self.n_basis
        self._shell_cache: dict[int, tuple[NeighborShell, ...]] = {}
        self._catalog_cache: dict[int, list] = {}

    def __repr__(self) -> str:
        return (
            f"Lattice({self.name!r}, size={self.size}, "
            f"n_basis={self.n_basis}, n_sites={self.n_sites})"
        )

    # ------------------------------------------------------------------ sites

    def site_grid(self) -> np.ndarray:
        """Integer coordinates of every site, shape (n_sites, dim + 1).

        Columns are the grid cell indices followed by the basis slot.
        """
        axes = [np.arange(s) for s in self.size] + [np.arange(self.n_basis)]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.reshape(-1) for m in mesh], axis=1)

    def positions(self) -> np.ndarray:
        """Cartesian positions of every site, shape (n_sites, dim)."""
        grid = self.site_grid()
        cells = grid[:, : self.dim].astype(np.float64)
        frac = cells + self.basis_frac[grid[:, self.dim]]
        return frac @ self.primitive

    def site_index(self, cell, basis: int = 0) -> int:
        """Flat index of the site at grid ``cell`` (wrapped) and basis slot."""
        cell = np.asarray(cell, dtype=np.int64) % np.asarray(self.size, dtype=np.int64)
        idx = 0
        for k in range(self.dim):
            idx = idx * self.size[k] + int(cell[k])
        return idx * self.n_basis + int(basis)

    # -------------------------------------------------------------- neighbors

    def neighbor_shells(self, n_shells: int = 1) -> tuple[NeighborShell, ...]:
        """Return the first ``n_shells`` coordination shells.

        Raises
        ------
        ValueError
            If the supercell is too small for neighbor tables to be
            unambiguous (a site would be its own neighbor, or the same
            neighbor would appear via two images at the same distance).
        """
        n_shells = check_integer("n_shells", n_shells, minimum=1)
        if n_shells not in self._shell_cache:
            self._shell_cache[n_shells] = self._build_shells(n_shells)
        return self._shell_cache[n_shells]

    def _offset_catalog(self, n_shells: int):
        """Enumerate (distance, b_from, b_to, cell offset) tuples per shell.

        Searches offsets in a cube of radius ``reach`` and keeps the
        ``n_shells`` smallest distinct distances.  ``reach`` is grown until
        the shells are stable (guards against missing a shell that lies
        outside the initial cube).  The catalog is O(basis² · reach^dim) —
        independent of the supercell size — and cached, so streaming
        consumers (:meth:`neighbor_block`, :meth:`shell_info`) never pay an
        O(N) cost.
        """
        if n_shells in self._catalog_cache:
            return self._catalog_cache[n_shells]
        reach = 2
        prev_key = None
        while True:
            offs = np.stack(
                np.meshgrid(*([np.arange(-reach, reach + 1)] * self.dim), indexing="ij"),
                axis=-1,
            ).reshape(-1, self.dim)
            records = []  # (rounded dist, exact dist, b_from, b_to, offset)
            for b_from in range(self.n_basis):
                for b_to in range(self.n_basis):
                    delta_frac = offs + (self.basis_frac[b_to] - self.basis_frac[b_from])
                    cart = delta_frac @ self.primitive
                    d = np.sqrt(np.sum(cart * cart, axis=1))
                    for off, dist in zip(offs, d):
                        if dist < 10.0**-_DIST_DECIMALS:
                            continue
                        records.append(
                            (round(float(dist), _DIST_DECIMALS), float(dist),
                             b_from, b_to, tuple(off))
                        )
            dists = sorted({r[0] for r in records})[:n_shells]
            if len(dists) < n_shells:
                reach += 1
                continue
            key = tuple(dists)
            # A shell is trustworthy once enlarging the cube stops changing it
            # and the largest kept distance fits well inside the cube.
            max_cell = np.max(np.abs([r[4] for r in records if r[0] <= dists[-1]]))
            if key == prev_key and max_cell < reach:
                shells: dict[float, list] = {d: [] for d in dists}
                exact: dict[float, float] = {}
                for dist, exact_dist, b_from, b_to, off in records:
                    if dist in shells:
                        shells[dist].append((b_from, b_to, off))
                        exact[dist] = exact_dist
                catalog = [(exact[d], shells[d]) for d in dists]
                self._catalog_cache[n_shells] = catalog
                return catalog
            prev_key = key
            reach += 1

    def _cell_strides(self) -> np.ndarray:
        """Strides turning wrapped cell coords into the flat cell index."""
        strides = np.ones(self.dim, dtype=np.int64)
        for k in range(self.dim - 2, -1, -1):
            strides[k] = strides[k + 1] * self.size[k + 1]
        return strides

    def _check_shell_fits(self, distance: float, entries) -> None:
        """Raise unless the supercell can host this shell without image
        aliasing, and the shell coordination is basis-uniform.

        Aliasing is decided from the catalog alone (no table needed): two
        distinct offsets that wrap to the same cell, or an offset wrapping
        to a site's own cell/basis, mean the supercell folds images onto
        each other.  This makes :meth:`shell_info` and
        :meth:`neighbor_block` exactly as strict as the materialized
        builder at O(catalog) cost.
        """
        seen = set()
        for b_from, b_to, off in entries:
            for k in range(self.dim):
                if abs(off[k]) * 2 > self.size[k]:
                    raise ValueError(
                        f"supercell {self.size} too small for shell at distance "
                        f"{distance:.4f} (offset {off}); enlarge the lattice"
                    )
            wrapped = tuple(int(o) % s for o, s in zip(off, self.size))
            key = (b_from, b_to, wrapped)
            if key in seen or (b_to == b_from and not any(wrapped)):
                raise ValueError(
                    f"supercell {self.size} aliases images in shell at "
                    f"distance {distance:.4f}; enlarge the lattice"
                )
            seen.add(key)
        if len(entries) % self.n_basis:
            # Coordination differs between basis slots (possible for
            # exotic bases); ragged handling via -1 padding is not
            # supported — the standard builders never hit this.
            raise ValueError(
                f"shell at distance {distance:.4f} has basis-dependent "
                "coordination; unsupported"
            )

    def shell_info(self, n_shells: int = 1) -> tuple[tuple[float, int], ...]:
        """``(distance, coordination)`` per shell — O(1) in the supercell.

        Built from the offset catalog alone, so streaming consumers (the
        chunk planner, :class:`~repro.kernels.chunked.ChunkedPairTables`)
        can size their working sets without materializing any (N, z) table.
        """
        n_shells = check_integer("n_shells", n_shells, minimum=1)
        out = []
        for distance, entries in self._offset_catalog(n_shells):
            self._check_shell_fits(distance, entries)
            out.append((float(distance), len(entries) // self.n_basis))
        return tuple(out)

    def neighbor_block(self, n_shells: int, start: int, stop: int) -> list[np.ndarray]:
        """Neighbor-table rows for sites ``[start, stop)``, one array per
        shell, computed from the offset catalog without touching any other
        site — the streaming building block of the ultra-large-scale tier.

        Returns ``[(stop - start, z_s) int32, ...]``; row ``r`` equals
        ``neighbor_shells(n_shells)[s].table[start + r]`` exactly (tested),
        but peak memory is O(block · z), independent of ``n_sites``.
        """
        n_shells = check_integer("n_shells", n_shells, minimum=1)
        start = int(start)
        stop = int(stop)
        if not (0 <= start <= stop <= self.n_sites):
            raise ValueError(
                f"block [{start}, {stop}) out of range for {self.n_sites} sites"
            )
        catalog = self._offset_catalog(n_shells)
        size = np.asarray(self.size, dtype=np.int64)
        strides = self._cell_strides()
        sites = np.arange(start, stop, dtype=np.int64)
        basis = sites % self.n_basis
        flat_cell = sites // self.n_basis
        # Unravel the flat cell index (row-major over the grid).
        coords = np.empty((stop - start, self.dim), dtype=np.int64)
        for k in range(self.dim):
            coords[:, k] = (flat_cell // strides[k]) % size[k]

        out = []
        for distance, entries in catalog:
            self._check_shell_fits(distance, entries)
            z = len(entries) // self.n_basis
            table = np.empty((stop - start, z), dtype=_TABLE_DTYPE)
            fill = np.zeros(stop - start, dtype=np.int64)
            for b_from in range(self.n_basis):
                idx = np.nonzero(basis == b_from)[0]
                if not len(idx):
                    continue
                cells_b = coords[idx]
                for b_to, off in [(bt, o) for bf, bt, o in entries if bf == b_from]:
                    wrapped = (cells_b + np.asarray(off, dtype=np.int64)) % size
                    col = fill[idx]
                    table[idx, col] = wrapped @ strides * self.n_basis + b_to
                    fill[idx] = col + 1
            if not np.all(fill == z):
                raise AssertionError("neighbor table construction is inconsistent")
            out.append(table)
        return out

    def _build_shells(self, n_shells: int) -> tuple[NeighborShell, ...]:
        catalog = self._offset_catalog(n_shells)
        tables = self.neighbor_block(n_shells, 0, self.n_sites)
        out = []
        for (distance, _entries), table in zip(catalog, tables):
            z = table.shape[1]
            # Duplicate neighbors mean the supercell aliases images.
            sample = table[: min(64, self.n_sites)]
            for row_i, row in enumerate(sample):
                if len(set(row.tolist())) != z or row_i in row:
                    raise ValueError(
                        f"supercell {self.size} aliases images in shell at "
                        f"distance {distance:.4f}; enlarge the lattice"
                    )
            out.append(NeighborShell(distance=distance, table=table))
        return tuple(out)

    # ---------------------------------------------------- brute-force checker

    def neighbor_shells_bruteforce(
        self, n_shells: int = 1, *, force: bool = False
    ) -> tuple[NeighborShell, ...]:
        """O(N²) minimum-image construction — slow, for cross-checking only.

        Refuses to run above ``_BRUTEFORCE_MAX_SITES`` sites (the pairwise
        distance matrix alone is ``8·N²`` bytes) unless ``force=True``;
        production callers want the O(N·z) :meth:`neighbor_shells`.
        """
        if self.n_sites > _BRUTEFORCE_MAX_SITES and not force:
            raise ValueError(
                f"neighbor_shells_bruteforce is O(N²) and {self.n_sites} sites "
                f"exceeds the {_BRUTEFORCE_MAX_SITES}-site guard; use the "
                "catalog-based neighbor_shells() (exact and O(N·z)), or pass "
                "force=True if you really want the cross-check"
            )
        pos_frac = self.site_grid()[:, : self.dim].astype(np.float64)
        pos_frac += self.basis_frac[self.site_grid()[:, self.dim]]
        size = np.asarray(self.size, dtype=np.float64)
        n = self.n_sites
        # Pairwise fractional deltas with minimum image, blocked over rows.
        dist = np.empty((n, n), dtype=np.float64)
        block = max(1, 2_000_000 // max(n, 1))
        for start in range(0, n, block):
            stop = min(start + block, n)
            d = pos_frac[start:stop, None, :] - pos_frac[None, :, :]
            d -= np.round(d / size) * size
            cart = d @ self.primitive
            dist[start:stop] = np.sqrt(np.sum(cart * cart, axis=2))
        np.fill_diagonal(dist, np.inf)
        rounded = np.round(dist, _DIST_DECIMALS)
        shell_dists = np.unique(rounded)[:n_shells]
        out = []
        for sd in shell_dists:
            rows = [np.sort(np.nonzero(rounded[i] == sd)[0]) for i in range(n)]
            z = len(rows[0])
            if any(len(r) != z for r in rows):
                raise ValueError("inconsistent coordination in brute-force shells")
            out.append(NeighborShell(distance=float(sd), table=np.stack(rows)))
        return tuple(out)


# ------------------------------------------------------------------ builders


def square_lattice(length: int, width: int | None = None) -> Lattice:
    """2D square lattice (z₁ = 4, z₂ = 4). Used by the Ising validation."""
    width = length if width is None else width
    return Lattice(np.eye(2), (length, width), [[0.0, 0.0]], name="square")


def simple_cubic(length: int) -> Lattice:
    """Simple cubic lattice (z₁ = 6, z₂ = 12)."""
    return Lattice(np.eye(3), (length,) * 3, [[0.0, 0.0, 0.0]], name="sc")


def bcc(length: int) -> Lattice:
    """Body-centered cubic with the conventional 2-atom cell.

    ``n_sites = 2·length³``; shell 1 has z = 8 at √3/2·a, shell 2 has z = 6
    at a.  This is the lattice of the NbMoTaW-class refractory HEAs the paper
    evaluates.
    """
    return Lattice(
        np.eye(3),
        (length,) * 3,
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]],
        name="bcc",
    )


def fcc(length: int) -> Lattice:
    """Face-centered cubic with the conventional 4-atom cell.

    ``n_sites = 4·length³``; shell 1 has z = 12 at a/√2.
    """
    return Lattice(
        np.eye(3),
        (length,) * 3,
        [[0.0, 0.0, 0.0], [0.0, 0.5, 0.5], [0.5, 0.0, 0.5], [0.5, 0.5, 0.0]],
        name="fcc",
    )
