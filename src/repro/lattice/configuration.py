"""Multi-species configuration handling.

A *configuration* is a 1-D ``int8`` numpy array of species indices over the
lattice sites.  High-entropy-alloy sampling is canonical in composition: the
number of atoms of each species is fixed, so valid MC moves are swaps (and
DL proposals must project back onto the composition manifold — see
:mod:`repro.proposals.dl_vae`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_generator
from repro.util.validation import check_integer

__all__ = [
    "SpeciesSet",
    "NBMOTAW",
    "random_configuration",
    "composition_counts",
    "composition_fractions",
    "one_hot",
    "from_one_hot",
    "validate_configuration",
    "swap_sites",
    "equiatomic_counts",
]

CONFIG_DTYPE = np.int8


@dataclass(frozen=True)
class SpeciesSet:
    """Named chemical species with stable index mapping.

    >>> NBMOTAW.index("Ta")
    2
    >>> NBMOTAW.names[0]
    'Nb'
    """

    names: tuple[str, ...]

    def __post_init__(self):
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate species names: {self.names}")
        if not self.names:
            raise ValueError("SpeciesSet requires at least one species")

    @property
    def n_species(self) -> int:
        return len(self.names)

    def index(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"unknown species {name!r}; known: {self.names}") from None

    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self):
        return iter(self.names)


#: The quaternary refractory HEA the paper evaluates.
NBMOTAW = SpeciesSet(("Nb", "Mo", "Ta", "W"))


def equiatomic_counts(n_sites: int, n_species: int) -> np.ndarray:
    """Species counts for an (as close as possible) equiatomic alloy.

    The remainder ``n_sites mod n_species`` is distributed one atom at a time
    to the lowest-index species, so counts are deterministic.
    """
    n_sites = check_integer("n_sites", n_sites, minimum=1)
    n_species = check_integer("n_species", n_species, minimum=1)
    base = n_sites // n_species
    counts = np.full(n_species, base, dtype=np.int64)
    counts[: n_sites % n_species] += 1
    return counts


def random_configuration(n_sites: int, counts, rng=None) -> np.ndarray:
    """Uniform random configuration with exactly the given composition.

    Parameters
    ----------
    n_sites : int
        Number of lattice sites.
    counts : sequence of int
        Atoms per species; must sum to ``n_sites``.
    rng : seed or Generator, optional
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.min() < 0:
        raise ValueError(f"species counts must be non-negative, got {counts}")
    if counts.sum() != n_sites:
        raise ValueError(f"counts sum to {counts.sum()}, expected n_sites={n_sites}")
    if len(counts) > np.iinfo(CONFIG_DTYPE).max:
        raise ValueError(f"too many species for {CONFIG_DTYPE}: {len(counts)}")
    rng = as_generator(rng)
    config = np.repeat(np.arange(len(counts), dtype=CONFIG_DTYPE), counts)
    rng.shuffle(config)
    return config


def composition_counts(config: np.ndarray, n_species: int) -> np.ndarray:
    """Count atoms per species (length ``n_species``)."""
    return np.bincount(np.asarray(config, dtype=np.int64), minlength=n_species)


def composition_fractions(config: np.ndarray, n_species: int) -> np.ndarray:
    """Fraction of sites per species."""
    counts = composition_counts(config, n_species)
    return counts / counts.sum()


def one_hot(config: np.ndarray, n_species: int) -> np.ndarray:
    """One-hot encode, dtype float64.

    A 1-D configuration encodes to ``(n_sites, n_species)``; a 2-D batch of
    configurations encodes to ``(B, n_sites, n_species)`` with a single
    fancy-indexed scatter (no per-row Python loop) — row ``b`` of the result
    is bit-identical to ``one_hot(config[b], n_species)``.

    This is the input representation for the deep-learning proposals.
    """
    config = np.asarray(config, dtype=np.int64)
    if config.ndim not in (1, 2):
        raise ValueError(
            f"expected a (n_sites,) configuration or (B, n_sites) batch, "
            f"got shape {config.shape}"
        )
    if config.size and (config.min() < 0 or config.max() >= n_species):
        raise ValueError(
            f"species indices out of range [0, {n_species}): "
            f"[{config.min()}, {config.max()}]"
        )
    out = np.zeros(config.shape + (n_species,), dtype=np.float64)
    if config.ndim == 1:
        out[np.arange(config.shape[0]), config] = 1.0
    else:
        B, n_sites = config.shape
        out[np.arange(B)[:, None], np.arange(n_sites)[None, :], config] = 1.0
    return out


def from_one_hot(encoded: np.ndarray) -> np.ndarray:
    """Invert :func:`one_hot` (argmax over the species axis)."""
    encoded = np.asarray(encoded)
    if encoded.ndim != 2:
        raise ValueError(f"expected (n_sites, n_species), got shape {encoded.shape}")
    return np.argmax(encoded, axis=1).astype(CONFIG_DTYPE)


def validate_configuration(config: np.ndarray, n_sites: int, n_species: int) -> np.ndarray:
    """Check dtype/shape/range; returns the array (possibly cast to int8)."""
    config = np.asarray(config)
    if config.shape != (n_sites,):
        raise ValueError(f"configuration must have shape ({n_sites},), got {config.shape}")
    if config.size and (config.min() < 0 or config.max() >= n_species):
        raise ValueError(f"species indices must lie in [0, {n_species})")
    return config.astype(CONFIG_DTYPE, copy=False)


def swap_sites(config: np.ndarray, i: int, j: int) -> None:
    """Swap the species at sites ``i`` and ``j`` in place."""
    config[i], config[j] = config[j], config[i]
