"""Lattice substrate (S1).

Periodic crystal lattices with multi-atom bases, exact neighbor-shell tables,
and multi-species configuration handling.  The DeepThermo workloads live on a
BCC lattice (NbMoTaW-class refractory high entropy alloys); the 2D square
lattice backs the exactly solvable Ising validation experiments.

Public API
----------
:class:`Lattice`
    A periodic lattice: primitive vectors × integer supercell × basis.
:func:`square_lattice`, :func:`simple_cubic`, :func:`bcc`, :func:`fcc`
    Standard builders.
:class:`NeighborShell`
    One coordination shell: distance, per-site neighbor table, unique pairs.
:class:`SpeciesSet`
    Named species (e.g. Nb/Mo/Ta/W) with index mapping.
:func:`random_configuration`, :func:`one_hot`, :func:`from_one_hot`, ...
    Configuration helpers (fixed-composition sampling, encodings).
:func:`anneal_sro`, :func:`anneal_energy`, :func:`write_lammps_data`
    SRO-targeted fast structure generation (α-target annealing on O(z)
    pair-count deltas — no energies) and LAMMPS ``.data`` supercell export.
"""

from repro.lattice.structures import (
    Lattice,
    NeighborShell,
    square_lattice,
    simple_cubic,
    bcc,
    fcc,
)
from repro.lattice.configuration import (
    SpeciesSet,
    NBMOTAW,
    random_configuration,
    composition_counts,
    composition_fractions,
    one_hot,
    from_one_hot,
    validate_configuration,
    swap_sites,
    equiatomic_counts,
)
from repro.lattice.generate import (
    SROAnnealResult,
    anneal_sro,
    anneal_energy,
    write_lammps_data,
)

__all__ = [
    "Lattice",
    "NeighborShell",
    "square_lattice",
    "simple_cubic",
    "bcc",
    "fcc",
    "SpeciesSet",
    "NBMOTAW",
    "random_configuration",
    "composition_counts",
    "composition_fractions",
    "one_hot",
    "from_one_hot",
    "validate_configuration",
    "swap_sites",
    "equiatomic_counts",
    "SROAnnealResult",
    "anneal_sro",
    "anneal_energy",
    "write_lammps_data",
]
