"""Developer tooling: repo-hygiene checks run from CI.

- :mod:`repro.tools.lint` — ``python -m repro tools lint-api`` greps the
  tree for imports/calls of deprecated API paths so the deprecation shims
  stay *external-facing only* (the repo itself must use the canonical
  names).
"""

from repro.tools.lint import lint_api

__all__ = ["lint_api"]
