"""API-deprecation lint: fail CI when the repo uses its own shims.

Retired spellings (``Hamiltonian.energy_batch``, ``repro.util.timers``)
must not creep back in, and live shims exist for *downstream* callers only;
in-repo code must use the canonical spellings or shims can never retire.  This
lint is a plain line-grep — fast, zero imports of the checked code — over
``src/``, ``tests/``, ``benchmarks/`` and ``examples/``.

A line may opt out with a trailing ``# lint-api: allow`` marker (used by
the tests that exercise the shims themselves).

Run as ``python -m repro tools lint-api [root]``; exits 1 on any hit.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

__all__ = ["DEPRECATED_PATTERNS", "lint_api", "main"]

#: (compiled pattern, human-readable reason, path prefix, excluded prefixes)
#: — one entry per retired path.  A non-empty prefix scopes the rule to
#: files under that subtree (repo-relative, posix), so idioms can be banned
#: where a faster canonical spelling exists without outlawing them
#: repo-wide; excluded prefixes carve out subtrees where the idiom remains
#: legitimate.
DEPRECATED_PATTERNS: list[tuple[re.Pattern[str], str, str, tuple[str, ...]]] = [
    (
        re.compile(r"repro\.util\.timers"),
        "repro.util.timers was removed; import Timer/TimerRegistry from repro.obs.tracing",
        "",
        (),
    ),
    (
        re.compile(r"\.energy_batch\("),
        "Hamiltonian.energy_batch() was removed; call .energies()",
        "",
        (),
    ),
    (
        re.compile(r"one_hot\([^()]*\)\s*\[None\]"),
        "per-row one_hot(...)[None] in proposal code defeats the batched "
        "encoder; encode the 2-D batch directly (one_hot(x[None], ...) or "
        "repro.nn.encode_one_hot)",
        "src/repro/proposals/",
        (),
    ),
    (
        # The memory-lean tier (DESIGN.md §17) stores neighbor/pair index
        # tables as int32 and configurations as int8; an int64 allocation
        # in the kernel layer silently doubles the dominant footprint at
        # ultra-large N.  Accumulators (pair counts, bincounts) are exempt
        # via the allow marker — they are O(S²), not O(N·z).
        re.compile(r"dtype\s*=\s*(np\.)?int64"),
        "int64 allocation under src/repro/kernels/: index tables are "
        "INDEX_DTYPE (int32) and configs CONFIG_DTYPE (int8) per DESIGN "
        "§17; use the named dtype, or mark '# lint-api: allow' for an "
        "O(S²) accumulator",
        "src/repro/kernels/",
        (),
    ),
    (
        # Bare print() — not def print(...), not obj.print(...).  Library
        # code must narrate through structured events (repro.obs) so output
        # reaches traces/dashboards; stdout rendering is the job of the obs
        # CLI tools and the __main__ entry point.
        re.compile(r"(?<!def )(?<![\w.])print\("),
        "bare print() in library code; emit structured events (repro.obs) "
        "or mark the line '# lint-api: allow' for a final human render",
        "src/repro/",
        ("src/repro/obs/", "src/repro/tools/", "src/repro/__main__.py"),
    ),
]

#: Marker suppressing the lint for a single line.
ALLOW_MARKER = "# lint-api: allow"

#: Directories scanned, relative to the repo root.
SCAN_DIRS = ("src", "tests", "benchmarks", "examples")

#: Subtrees never scanned (the lint's own pattern table would match itself).
EXCLUDE_PARTS = ("repro/tools", "egg-info", "__pycache__")


def _iter_files(root: Path):
    for base in SCAN_DIRS:
        directory = root / base
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if any(part in rel for part in EXCLUDE_PARTS):
                continue
            yield path


def lint_api(root: str | Path = ".") -> list[tuple[str, int, str, str]]:
    """Scan the tree; return ``(relpath, lineno, line, reason)`` violations."""
    root = Path(root).resolve()
    violations: list[tuple[str, int, str, str]] = []
    for path in _iter_files(root):
        rel = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):  # unreadable file: not lintable
            continue
        for lineno, line in enumerate(text.splitlines(), start=1):
            if ALLOW_MARKER in line:
                continue
            for pattern, reason, prefix, excludes in DEPRECATED_PATTERNS:
                if prefix and not rel.startswith(prefix):
                    continue
                if any(rel.startswith(ex) for ex in excludes):
                    continue
                if pattern.search(line):
                    violations.append((rel, lineno, line.strip(), reason))
    return violations


def main(argv: list[str] | None = None) -> int:
    argv = list(argv or [])
    if argv and argv[0] in ("-h", "--help"):
        print("usage: python -m repro tools lint-api [root]")
        return 0
    root = argv[0] if argv else "."
    violations = lint_api(root)
    for rel, lineno, line, reason in violations:
        print(f"{rel}:{lineno}: {line}\n    ^ {reason}", file=sys.stderr)
    if violations:
        print(f"lint-api: {len(violations)} deprecated-API use(s)", file=sys.stderr)
        return 1
    print("lint-api: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
