"""Warn-once deprecation helper.

The API-migration contract (DESIGN.md §11) is that every deprecated entry
point keeps working for one release and emits a ``DeprecationWarning``
**exactly once per process** — loud enough to show up in logs, quiet enough
not to drown a long REWL campaign that constructs thousands of walkers
through a legacy call site.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_once", "reset_deprecation_warnings"]

_WARNED: set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> bool:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is seen.

    Returns True when the warning fired (first call for this key).  The
    default ``stacklevel`` points two frames above the deprecated entry
    point — at the deprecated call site rather than the shim that detected
    it; shims with an extra resolution frame pass a deeper level.
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset_deprecation_warnings() -> None:
    """Forget which warnings fired (test isolation only)."""
    _WARNED.clear()
