"""Numerically stable log-domain primitives.

Density-of-states work lives entirely in the log domain: the DeepThermo paper
evaluates densities of states spanning ~e^10,000, which overflow any floating
point representation if exponentiated.  Every thermodynamic quantity in
:mod:`repro.dos` is therefore computed from ``ln g(E)`` with the helpers in
this module, which never exponentiate un-shifted arguments.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "logsumexp",
    "logmeanexp",
    "log_add_exp",
    "log_sub_exp",
    "log1pexp",
    "softmax",
    "log_softmax",
    "stable_sigmoid",
    "weighted_logsumexp",
]


def logsumexp(a, axis=None, keepdims=False):
    """Compute ``log(sum(exp(a)))`` without overflow.

    Parameters
    ----------
    a : array_like
        Log-domain values.  ``-inf`` entries are handled correctly (they
        contribute zero weight); an all ``-inf`` reduction returns ``-inf``.
    axis : int or None
        Axis to reduce over; ``None`` reduces over the whole array.
    keepdims : bool
        Keep the reduced axis as size 1.

    Returns
    -------
    numpy.ndarray or float
        The log-domain sum.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.size == 0:
        raise ValueError("logsumexp of an empty array is undefined")
    amax = np.max(a, axis=axis, keepdims=True)
    # An all -inf slice must not produce nan via (-inf) - (-inf).
    amax_safe = np.where(np.isfinite(amax), amax, 0.0)
    with np.errstate(over="raise"):
        shifted = np.exp(a - amax_safe)
    total = np.sum(shifted, axis=axis, keepdims=True)
    with np.errstate(divide="ignore"):
        out = np.log(total) + amax_safe
    out = np.where(np.isfinite(amax), out, amax)
    if not keepdims:
        out = np.squeeze(out, axis=axis) if axis is not None else out.reshape(())
    if out.ndim == 0:
        return float(out)
    return out


def weighted_logsumexp(a, log_w, axis=None):
    """Compute ``log(sum(exp(a + log_w)))``, i.e. a weighted log-sum-exp.

    Useful for canonical averages ``<O> = sum O(E) g(E) e^{-beta E} / Z`` with
    observables folded into the weight term.
    """
    a = np.asarray(a, dtype=np.float64)
    log_w = np.asarray(log_w, dtype=np.float64)
    return logsumexp(a + log_w, axis=axis)


def logmeanexp(a, axis=None):
    """Compute ``log(mean(exp(a)))`` — the log-domain arithmetic mean.

    This is the estimator used for VAE proposal densities:
    ``log q(x) ≈ log (1/S) sum_s p(x|z_s)`` over S latent samples.
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.size if axis is None else a.shape[axis]
    return logsumexp(a, axis=axis) - np.log(n)


def log_add_exp(a, b):
    """Elementwise ``log(exp(a) + exp(b))`` (stable)."""
    return np.logaddexp(a, b)


def log_sub_exp(a, b):
    """Elementwise ``log(exp(a) - exp(b))`` for ``a >= b`` (stable).

    Raises
    ------
    ValueError
        If any ``a < b`` (the result would be the log of a negative number).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if np.any(a < b):
        raise ValueError("log_sub_exp requires a >= b elementwise")
    diff = b - a
    # -expm1(diff) in [0, 1); log1p of its negative is stable.
    with np.errstate(divide="ignore"):
        out = a + np.log1p(-np.exp(diff))
    # a == b -> log(0) = -inf, which is correct.
    return out


def log1pexp(x):
    """Compute ``log(1 + exp(x))`` (softplus) without overflow."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x > 0
    out[pos] = x[pos] + np.log1p(np.exp(-x[pos]))
    out[~pos] = np.log1p(np.exp(x[~pos]))
    if out.ndim == 0:
        return float(out)
    return out


def softmax(x, axis=-1):
    """Stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x, axis=-1):
    """Stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def stable_sigmoid(x):
    """Sigmoid that never overflows in ``exp``."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    if out.ndim == 0:
        return float(out)
    return out
