"""Plain-text plotting for terminal-only environments.

The experiment harness prints figures as rows; these helpers add a compact
visual: an ASCII line plot for series (specific-heat peaks, scaling curves)
and sparklines for inline traces.  No plotting library is available in the
target environment, so "figures" ship as text.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_plot", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values) -> str:
    """One-line unicode sparkline of a numeric series."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return " " * values.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    chars = []
    for v in values:
        if not np.isfinite(v):
            chars.append(" ")
            continue
        frac = 0.5 if span == 0 else (v - lo) / span
        chars.append(_SPARK_LEVELS[min(int(frac * len(_SPARK_LEVELS)), len(_SPARK_LEVELS) - 1)])
    return "".join(chars)


def ascii_plot(xs, ys, width: int = 64, height: int = 16,
               xlabel: str = "x", ylabel: str = "y", title: str = "") -> str:
    """Render (xs, ys) as an ASCII scatter/line plot.

    Multiple series: pass ``ys`` as a dict name -> values; each series gets
    its own marker character.
    """
    xs = np.asarray(xs, dtype=np.float64)
    series = ys if isinstance(ys, dict) else {"": np.asarray(ys, dtype=np.float64)}
    markers = "*o+x#@%&"
    all_y = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    finite = all_y[np.isfinite(all_y)]
    if xs.size < 2 or finite.size == 0:
        raise ValueError("ascii_plot needs >= 2 x points and finite y values")
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(finite.min()), float(finite.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for s_idx, (name, yvals) in enumerate(series.items()):
        yvals = np.asarray(yvals, dtype=np.float64)
        if yvals.shape != xs.shape:
            raise ValueError(
                f"series {name!r} has {yvals.shape}, x has {xs.shape}"
            )
        mark = markers[s_idx % len(markers)]
        for x, y in zip(xs, yvals):
            if not np.isfinite(y):
                continue
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            canvas[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>12.4g} ┤" + "".join(canvas[0]))
    for row in canvas[1:-1]:
        lines.append(" " * 12 + " │" + "".join(row))
    lines.append(f"{y_lo:>12.4g} ┤" + "".join(canvas[-1]))
    lines.append(" " * 12 + " └" + "─" * width)
    lines.append(" " * 14 + f"{x_lo:<.4g}".ljust(width - 8) + f"{x_hi:>.4g}")
    lines.append(" " * 14 + f"{xlabel} →   ({ylabel} ↑)")
    if isinstance(ys, dict) and len(series) > 1:
        legend = "  ".join(
            f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
        )
        lines.append(" " * 14 + legend)
    return "\n".join(lines)
