"""Plain-text table rendering for experiment reports.

Every experiment harness prints "the same rows/series the paper reports";
these helpers keep the formatting uniform across all twelve experiments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value, fmt: str | None) -> str:
    if value is None:
        return "-"
    if fmt is not None and isinstance(value, (int, float)) and not isinstance(value, bool):
        return format(value, fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    floatfmt: str = ".4g",
) -> str:
    """Render rows as an aligned monospace table.

    Parameters
    ----------
    headers : sequence of str
        Column names.
    rows : iterable of sequences
        Each row must have ``len(headers)`` entries; numbers are formatted
        with ``floatfmt``, ``None`` renders as ``-``.
    title : str, optional
        A title line placed above the table.
    floatfmt : str
        Format spec applied to int/float cells.
    """
    str_rows = [[_cell(v, floatfmt) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, xlabel="x", ylabel="y") -> str:
    """Render an (x, y) series as the two-column table a figure would plot."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: len(xs)={len(xs)} != len(ys)={len(ys)}")
    return format_table([xlabel, ylabel], list(zip(xs, ys)), title=f"series: {name}")
