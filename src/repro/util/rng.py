"""Reproducible random-number stream management.

Parallel Monte Carlo demands *independent* streams per walker: correlated
streams silently bias replica-exchange statistics.  We build on numpy's
``SeedSequence`` spawning, which guarantees independence by construction, and
expose a tiny factory so samplers, proposals, and communicator ranks all draw
from the same seeding discipline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngFactory", "as_generator", "spawn_generators", "BufferedDraws"]


def as_generator(seed_or_rng) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence``,
    an existing ``Generator``, or a :class:`BufferedDraws` facade (the last
    two are returned unchanged).
    """
    if isinstance(seed_or_rng, (np.random.Generator, BufferedDraws)):
        return seed_or_rng
    if isinstance(seed_or_rng, np.random.SeedSequence):
        return np.random.default_rng(seed_or_rng)
    return np.random.default_rng(seed_or_rng)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` provably independent generators from one seed."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


class BufferedDraws:
    """Generator facade with block-buffered scalar draws.

    Scalar ``Generator.random()`` / ``Generator.integers(n)`` calls cost
    microseconds each, which dominates tight MC loops on one core.  This
    wrapper pre-draws blocks of uniforms and serves scalars from them;
    every other attribute/method is delegated to the wrapped generator, so
    code that needs full Generator functionality (``standard_normal``,
    array draws, ...) keeps working.

    Notes
    -----
    - ``integers(high)`` (single positional int, scalar) is served as
      ``floor(u·high)``; the bias is O(high·2⁻⁵³) — negligible for any
      realistic site count.  Other call signatures are delegated.
    - Draw *order* differs from an unbuffered Generator with the same seed
      (blocks are pre-consumed); runs remain fully deterministic per seed.
    - Picklable, so REWL walkers can ship across process executors.
    """

    __slots__ = ("generator", "_block", "_buf", "_pos")

    def __init__(self, generator: np.random.Generator, block: int = 4096):
        if isinstance(generator, BufferedDraws):
            generator = generator.generator
        self.generator = generator
        self._block = int(block)
        self._buf = generator.random(self._block)
        self._pos = 0

    def _next_uniform(self) -> float:
        if self._pos >= self._block:
            self._buf = self.generator.random(self._block)
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        return value

    def random(self, size=None):
        if size is None:
            return self._next_uniform()
        return self.generator.random(size)

    def integers(self, low, high=None, size=None, **kwargs):
        if high is None and size is None and not kwargs and isinstance(low, (int, np.integer)):
            return int(self._next_uniform() * low)
        return self.generator.integers(low, high=high, size=size, **kwargs)

    def __getattr__(self, name):
        return getattr(self.generator, name)

    def __getstate__(self):
        return {
            "generator": self.generator,
            "block": self._block,
            "buf": self._buf,
            "pos": self._pos,
        }

    def __setstate__(self, state):
        object.__setattr__(self, "generator", state["generator"])
        object.__setattr__(self, "_block", state["block"])
        object.__setattr__(self, "_buf", state["buf"])
        object.__setattr__(self, "_pos", state["pos"])


class RngFactory:
    """Hierarchical seed factory.

    A single root seed deterministically generates the stream for every
    (component, index) pair in the system — e.g. ``factory.make("walker", 3)``
    always yields the same stream for a given root seed, regardless of the
    order in which components ask for their streams.  This is what makes the
    serial and multiprocessing REWL backends bit-identical.
    """

    def __init__(self, root_seed: int | None = 0):
        self._root = np.random.SeedSequence(root_seed)
        self.root_seed = root_seed

    def make(self, component: str, index: int = 0) -> np.random.Generator:
        """Create the generator for ``(component, index)``.

        The component name is hashed into spawn-key integers so different
        components get independent streams even at the same index.
        """
        # Stable 64-bit hash of the component name (not Python's salted hash).
        h = np.uint64(1469598103934665603)
        for byte in component.encode("utf-8"):
            h = np.uint64((int(h) ^ byte) * 1099511628211 % (1 << 64))
        key = [int(h & np.uint64(0xFFFFFFFF)), int(h >> np.uint64(32)), int(index)]
        child = np.random.SeedSequence(entropy=self._root.entropy, spawn_key=tuple(key))
        return np.random.default_rng(child)

    def seed_for(self, component: str, index: int = 0) -> int:
        """Return a plain integer seed for ``(component, index)``.

        Useful when a stream must cross a process boundary (multiprocessing
        workers receive integer seeds, not generator objects).
        """
        return int(self.make(component, index).integers(0, 2**63 - 1))
