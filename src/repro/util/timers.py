"""Wall-clock instrumentation (compatibility shim).

``Timer`` and ``TimerRegistry`` moved to :mod:`repro.obs.tracing`, where
they back the span-tracing layer; this module keeps the historical import
path (``from repro.util.timers import Timer``) working unchanged.
"""

from __future__ import annotations

from repro.obs.tracing import Timer, TimerRegistry

__all__ = ["Timer", "TimerRegistry"]
