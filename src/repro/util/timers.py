"""Wall-clock instrumentation.

The machine performance model (:mod:`repro.machine`) is calibrated from
measured per-operation costs; these timers are how the experiment harness
collects those costs without pulling in an external profiler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "TimerRegistry"]


@dataclass
class Timer:
    """Accumulating stopwatch usable as a context manager.

    >>> t = Timer("sweep")
    >>> with t:
    ...     pass
    >>> t.count
    1
    """

    name: str = ""
    total: float = 0.0
    count: int = 0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the elapsed interval for this start/stop pair."""
        if self._start is None:
            raise RuntimeError(f"timer {self.name!r} is not running")
        elapsed = time.perf_counter() - self._start
        self._start = None
        self.total += elapsed
        self.count += 1
        return elapsed

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def mean(self) -> float:
        """Mean interval length (0.0 when never stopped)."""
        return self.total / self.count if self.count else 0.0


class TimerRegistry:
    """Named collection of timers with a one-line report per timer."""

    def __init__(self):
        self._timers: dict[str, Timer] = {}

    def __getitem__(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def names(self) -> list[str]:
        return sorted(self._timers)

    def report(self) -> str:
        lines = [f"{'timer':<28}{'calls':>8}{'total_s':>12}{'mean_ms':>12}"]
        for name in self.names():
            t = self._timers[name]
            lines.append(f"{name:<28}{t.count:>8}{t.total:>12.4f}{t.mean * 1e3:>12.4f}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {
            name: {"total": t.total, "count": t.count, "mean": t.mean}
            for name, t in self._timers.items()
        }
