"""Deprecated compatibility shim — import from :mod:`repro.obs.tracing`.

``Timer`` and ``TimerRegistry`` moved to :mod:`repro.obs.tracing`, where
they back the span-tracing layer.  This module keeps the historical import
path (``from repro.util.timers import Timer``) working one release longer;
it warns on import and will be removed.
"""

from __future__ import annotations

import warnings

from repro.obs.tracing import Timer, TimerRegistry

__all__ = ["Timer", "TimerRegistry"]

warnings.warn(
    "repro.util.timers is deprecated; import Timer/TimerRegistry from "
    "repro.obs.tracing instead",
    DeprecationWarning,
    stacklevel=2,
)
