"""Argument-checking helpers used at public API boundaries.

Fail fast with messages that name the offending argument; internal hot paths
skip these checks (they validate once at construction).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_integer",
    "check_array_shape",
]


def check_positive(name: str, value, strict: bool = True):
    """Require ``value > 0`` (or ``>= 0`` when ``strict=False``)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value):
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value, lo, hi, inclusive: bool = True):
    """Require ``lo <= value <= hi`` (or strict inequalities)."""
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not ok:
        brackets = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {brackets[0]}{lo}, {hi}{brackets[1]}, got {value!r}"
        )
    return value


def check_integer(name: str, value, minimum=None):
    """Require an integer (bools rejected), optionally with a lower bound."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_array_shape(name: str, array, shape):
    """Require ``array.shape == shape`` (``None`` entries are wildcards)."""
    array = np.asarray(array)
    if len(array.shape) != len(shape) or any(
        expected is not None and actual != expected
        for actual, expected in zip(array.shape, shape)
    ):
        raise ValueError(f"{name} must have shape {shape}, got {array.shape}")
    return array
