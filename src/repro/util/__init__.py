"""Shared low-level utilities for the DeepThermo reproduction.

This package deliberately has no dependencies on the rest of :mod:`repro`;
every other subpackage may depend on it.  It provides

- :mod:`repro.util.rng` — reproducible, spawnable random-number streams
  (one independent stream per MC walker / parallel rank),
- :mod:`repro.util.numerics` — numerically stable log-domain primitives used
  throughout density-of-states post-processing,
- :mod:`repro.util.tables` — plain-text table rendering for experiment
  reports (the "same rows the paper prints" requirement),
- :mod:`repro.util.validation` — argument checking helpers shared by public
  API entry points.

Wall-clock instrumentation (``Timer``/``TimerRegistry``) lives in
:mod:`repro.obs.tracing`.
"""

from repro.util.numerics import (
    logsumexp,
    logmeanexp,
    log_add_exp,
    log_sub_exp,
    log1pexp,
    softmax,
    log_softmax,
    stable_sigmoid,
    weighted_logsumexp,
)
from repro.util.rng import RngFactory, as_generator, spawn_generators
from repro.util.tables import format_table, format_series
from repro.util.plots import ascii_plot, sparkline
from repro.util.validation import (
    check_positive,
    check_probability,
    check_in_range,
    check_integer,
    check_array_shape,
)

__all__ = [
    "logsumexp",
    "logmeanexp",
    "log_add_exp",
    "log_sub_exp",
    "log1pexp",
    "softmax",
    "log_softmax",
    "stable_sigmoid",
    "weighted_logsumexp",
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "format_table",
    "format_series",
    "ascii_plot",
    "sparkline",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_integer",
    "check_array_shape",
]
