"""Numerical guard rails for flat-histogram walker state.

A multi-day campaign can be poisoned *silently*: a bad kernel, a cosmic-ray
bit flip survived by ECC-less memory, or an injected ``nan`` fault leaves a
non-finite ``ln g`` entry or an impossible histogram, and every subsequent
acceptance decision — and the final stitched DoS — is garbage.  Guards make
corruption *loud and local*: :func:`check_team` inspects one window's walker
team at a super-step boundary (or a checkpoint on restore) and returns a
list of violation strings, and the :class:`GuardPolicy` decides what the
campaign supervisor does about them:

- ``strict``      — raise :class:`GuardViolation` (abort the campaign),
- ``rollback``    — restore the window's last guard-clean snapshot, at most
  ``max_rollbacks`` consecutive times, then abort,
- ``quarantine``  — like ``rollback``, but exhaustion removes the window
  from the campaign instead of aborting (see
  :class:`repro.resilience.supervisor.CampaignSupervisor`).

Checks are pure reads over walker state (``ln g`` / histogram / energy /
bin indices / ``ln f``), draw no random numbers and mutate nothing, so a
guarded run that never trips is bit-identical to an unguarded one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_integer

__all__ = [
    "GUARD_MODES",
    "GuardPolicy",
    "GuardViolation",
    "check_team",
    "check_walker",
]

#: Escalation modes, mildest response last.
GUARD_MODES = ("strict", "rollback", "quarantine")

#: Visit counts past this are treated as histogram overflow — far beyond any
#: real campaign (2^62 steps into one bin) but short of int64 wraparound.
HISTOGRAM_LIMIT = np.int64(2) ** 62


class GuardViolation(RuntimeError):
    """Walker state failed its numerical guard checks (strict/exhausted)."""


@dataclass(frozen=True)
class GuardPolicy:
    """What to validate at super-step boundaries, and how to respond.

    ``max_rollbacks`` bounds *consecutive* rollbacks per window: a clean
    guarded round resets the streak, so transient corruption (one bad
    round) is absorbed while persistent corruption escalates.
    ``snapshot_interval`` is the cadence (in guarded rounds) of the
    in-memory last-good snapshots rollback restores from.
    """

    mode: str = "quarantine"
    max_rollbacks: int = 2
    snapshot_interval: int = 1
    check_flatness: bool = True

    def __post_init__(self):
        if self.mode not in GUARD_MODES:
            raise ValueError(
                f"unknown guard mode {self.mode!r}; expected one of {GUARD_MODES}"
            )
        check_integer("max_rollbacks", self.max_rollbacks, minimum=0)
        check_integer("snapshot_interval", self.snapshot_interval, minimum=1)


def _finite(arr: np.ndarray) -> bool:
    return bool(np.isfinite(arr).all())


def check_walker(walker, last_ln_f: float | None = None) -> list[str]:
    """Violation strings for one walker-shaped object (empty = healthy).

    Accepts both the scalar :class:`~repro.sampling.wang_landau.
    WangLandauSampler` (``energy``/``current_bin``) and a batched window
    team (``energies``/``bins`` arrays); both expose 1-D ``ln_g``,
    ``histogram``, and ``visited`` over the window grid.

    ``last_ln_f`` enables the monotone-sanity check: the modification
    factor can only shrink between checks (halving / 1-over-t schedules),
    so an ln f that *grew* means the walker state was scrambled.
    """
    out: list[str] = []
    n_bins = walker.grid.n_bins
    ln_g = np.asarray(walker.ln_g)
    if ln_g.shape != (n_bins,):
        out.append(f"ln_g shape {ln_g.shape} != ({n_bins},)")
    elif not _finite(ln_g):
        bad = int(np.flatnonzero(~np.isfinite(ln_g))[0])
        out.append(f"non-finite ln_g (first at bin {bad})")
    hist = np.asarray(walker.histogram)
    if hist.shape != (n_bins,):
        out.append(f"histogram shape {hist.shape} != ({n_bins},)")
    else:
        if not _finite(hist.astype(np.float64)):
            out.append("non-finite histogram")
        elif (hist < 0).any():
            out.append("negative histogram count")
        elif (hist >= HISTOGRAM_LIMIT).any():
            out.append("histogram overflow")
    ln_f = float(walker.ln_f)
    if not np.isfinite(ln_f) or ln_f <= 0.0:
        out.append(f"ln_f {ln_f!r} is not a positive finite number")
    elif last_ln_f is not None and ln_f > last_ln_f * (1.0 + 1e-12):
        out.append(f"ln_f grew from {last_ln_f:.6g} to {ln_f:.6g}")
    # Energies and bins: scalar walkers carry floats, batched teams arrays.
    energies = np.atleast_1d(
        np.asarray(getattr(walker, "energies", getattr(walker, "energy", 0.0)),
                   dtype=np.float64)
    )
    if not _finite(energies):
        out.append("non-finite walker energy")
    bins = np.atleast_1d(
        np.asarray(getattr(walker, "bins", getattr(walker, "current_bin", 0)))
    )
    if (bins < 0).any() or (bins >= n_bins).any():
        out.append(f"walker bin outside [0, {n_bins})")
    return out


def check_team(team, last_ln_f: float | None = None) -> list[str]:
    """Violations across one window's walker team, tagged per walker.

    ``team`` is a list of walkers (scalar mode) or a single-element list
    holding a batched team object — the shapes the REWL driver keeps in
    ``driver.walkers[w]``.
    """
    out: list[str] = []
    for k, walker in enumerate(team):
        for violation in check_walker(walker, last_ln_f=last_ln_f):
            out.append(f"walker {k}: {violation}" if len(team) > 1 else violation)
    return out
