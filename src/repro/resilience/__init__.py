"""Campaign-level self-healing for REWL runs (DESIGN.md §14).

Numerical guard rails, bounded rollback, window quarantine with exchange
re-pairing, and terminate-and-harvest budgets — everything that turns
"one window died, the campaign aborted" into "the campaign finished,
degraded, with every disposition on record".
"""

from repro.resilience.guards import (
    GUARD_MODES,
    GuardPolicy,
    GuardViolation,
    check_team,
    check_walker,
)
from repro.resilience.supervisor import (
    RESILIENCE_ENV_VAR,
    BudgetPolicy,
    CampaignSupervisor,
    ResilienceConfig,
    WindowState,
    parse_resilience,
    resilience_from_env,
)

__all__ = [
    "GUARD_MODES",
    "RESILIENCE_ENV_VAR",
    "BudgetPolicy",
    "CampaignSupervisor",
    "GuardPolicy",
    "GuardViolation",
    "ResilienceConfig",
    "WindowState",
    "check_team",
    "check_walker",
    "parse_resilience",
    "resilience_from_env",
]
