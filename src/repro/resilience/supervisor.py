"""Campaign-level self-healing: escalation, quarantine, and budgets.

The REWL driver delegates every recovery *decision* to one object here,
:class:`CampaignSupervisor`, so the policy is testable in isolation and the
driver stays a straight-line loop.  The supervisor tracks a small state
machine per window::

    healthy -> retrying -> rolled-back -> quarantined

- **healthy**: last guarded round was clean.
- **retrying**: the executor burned retries on this window's tasks this
  round (transient crashes/hangs absorbed below the supervisor).
- **rolled-back**: a guard trip or exhausted task failure restored the
  window's last guard-clean in-memory snapshot.
- **quarantined**: the rollback budget is spent; the window is removed from
  the exchange topology (neighbors re-pair around the hole, see
  :func:`repro.parallel.windows.surviving_pairs`), its walkers are frozen
  at the last good snapshot, and the rest of the campaign keeps stepping.

Budgets are the other half of graceful degradation: a campaign that hits
its wall-clock / round / step ceiling terminates *cleanly* — the driver
breaks out of the loop and harvests whatever converged, instead of dying
to a job-scheduler SIGKILL with nothing to show.

Determinism: the supervisor draws no random numbers, and snapshots are
byte-copies of walker state.  A degraded run driven by seeded faults is
therefore bit-identically reproducible — same seed, same trips, same
rollbacks, same quarantine round, same stitched result.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field, fields

from repro.resilience.guards import (
    GUARD_MODES,
    GuardPolicy,
    GuardViolation,
    check_team,
)
from repro.util.validation import check_integer

__all__ = [
    "RESILIENCE_ENV_VAR",
    "BudgetPolicy",
    "CampaignSupervisor",
    "ResilienceConfig",
    "WindowState",
    "parse_resilience",
    "resilience_from_env",
]

RESILIENCE_ENV_VAR = "REPRO_RESILIENCE"

#: Disposition names, in escalation order (report/dash render these).
DISPOSITIONS = ("healthy", "retrying", "rolled-back", "quarantined")


@dataclass(frozen=True)
class BudgetPolicy:
    """Clean terminate-and-harvest ceilings (None/0 = unlimited).

    ``rounds`` and ``steps`` are deterministic (counters the driver already
    keeps); ``wall_s`` reads the monotonic clock and is therefore the one
    knowingly non-reproducible trigger — use the counters when bit-identity
    matters.
    """

    wall_s: float | None = None
    rounds: int | None = None
    steps: int | None = None

    def __post_init__(self):
        if self.wall_s is not None and self.wall_s < 0:
            raise ValueError(f"wall_s must be >= 0, got {self.wall_s!r}")
        if self.rounds is not None:
            check_integer("rounds", self.rounds, minimum=0)
        if self.steps is not None:
            check_integer("steps", self.steps, minimum=0)

    @property
    def unlimited(self) -> bool:
        return self.wall_s is None and self.rounds is None and self.steps is None


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the campaign supervisor needs: guards + budgets."""

    guards: GuardPolicy = field(default_factory=GuardPolicy)
    budget: BudgetPolicy = field(default_factory=BudgetPolicy)


@dataclass
class WindowState:
    """Mutable per-window ledger the supervisor keeps."""

    disposition: str = "healthy"
    guard_trips: int = 0
    task_failures: int = 0
    rollbacks: int = 0          # lifetime total (reporting)
    rollback_streak: int = 0    # consecutive — resets on a clean round
    reason: str = ""            # first line of why we left "healthy"
    quarantined_round: int | None = None
    last_ln_f: float | None = None

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CampaignSupervisor:
    """Applies a :class:`ResilienceConfig` to a running REWL driver.

    The driver calls, per round::

        budget_exceeded(driver)      # loop top: terminate-and-harvest?
        on_window_failure(driver, w, exc)   # advance tasks exhausted retries
        guard_round(driver)          # post-advance: validate + escalate
        snapshot(driver)             # record guard-clean windows

    plus :meth:`state_dict`/:meth:`load_state_dict` for checkpoint
    ride-along and :meth:`summary` for the result/telemetry payload.
    """

    def __init__(self, config: ResilienceConfig, telemetry=None):
        self.cfg = config
        self.telemetry = telemetry
        self.windows: list[WindowState] = []
        self._snapshots: list[bytes | None] = []
        self._started = time.monotonic()
        self._rounds_guarded = 0
        # Windows that failed/tripped since the last guarded round: a
        # restored snapshot passes the guards, but that must not count as a
        # clean round, or a permanently failing window would reset its own
        # rollback streak every round and never escalate to quarantine.
        self._round_tripped: set[int] = set()
        self.budget_status: dict = {"exhausted": False, "trigger": None}

    # ------------------------------------------------------------ wiring

    def bind(self, driver) -> None:
        """Size per-window state once the driver knows its window count."""
        n = len(driver.windows)
        if len(self.windows) != n:
            self.windows = [WindowState() for _ in range(n)]
            self._snapshots = [None] * n
        self._started = time.monotonic()

    def _emit(self, kind: str, **payload) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(kind, **payload)

    # ------------------------------------------------------------ budgets

    def budget_exceeded(self, driver) -> bool:
        """True once any budget ceiling is hit (sticky; emits one event)."""
        if self.budget_status["exhausted"]:
            return True
        b = self.cfg.budget
        trigger = None
        if b.rounds is not None and b.rounds > 0 and driver.rounds >= b.rounds:
            trigger = f"rounds ({driver.rounds} >= {b.rounds})"
        elif b.steps is not None and b.steps > 0:
            total = driver.total_steps()
            if total >= b.steps:
                trigger = f"steps ({total} >= {b.steps})"
        if trigger is None and b.wall_s is not None and b.wall_s > 0:
            elapsed = time.monotonic() - self._started
            if elapsed >= b.wall_s:
                trigger = f"wall clock ({elapsed:.1f}s >= {b.wall_s:.1f}s)"
        if trigger is None:
            return False
        self.budget_status = {"exhausted": True, "trigger": trigger}
        self._emit("budget_exhausted", round=driver.rounds, trigger=trigger)
        return True

    # --------------------------------------------------------- snapshots

    def snapshot(self, driver) -> None:
        """Byte-copy guard-clean window teams for later rollback.

        Taken *after* :meth:`guard_round`, so a snapshot is always of
        validated state; pickling keeps walker RNG state with the walkers,
        preserving bit-identity across a restore.
        """
        if self._rounds_guarded % self.cfg.guards.snapshot_interval != 0:
            return
        for w, state in enumerate(self.windows):
            if state.disposition == "quarantined":
                continue
            self._snapshots[w] = pickle.dumps(driver.walkers[w])

    def snapshot_window(self, driver, w: int) -> None:
        """Per-window snapshot for the overlapped (shm) drain loop.

        Called after :meth:`guard_window` but *before* the round's
        :meth:`end_guard_round`, so the cadence check uses the round about
        to be accounted (``_rounds_guarded + 1``) — the same rounds are
        snapshotted as in the barriered guard→snapshot sequence.
        """
        if (self._rounds_guarded + 1) % self.cfg.guards.snapshot_interval != 0:
            return
        if self.windows[w].disposition == "quarantined":
            return
        self._snapshots[w] = pickle.dumps(driver.walkers[w])

    def _restore(self, driver, w: int) -> bool:
        blob = self._snapshots[w]
        if blob is None:
            return False
        driver.walkers[w] = pickle.loads(blob)
        driver._retag_window(w)
        return True

    # -------------------------------------------------------- escalation

    def on_window_failure(self, driver, w: int, exc: Exception) -> None:
        """An advance task for window ``w`` exhausted executor retries."""
        state = self.windows[w]
        state.task_failures += 1
        reason = f"{type(exc).__name__}: {exc}"
        self._escalate(driver, w, f"task failure ({reason})")

    def guard_round(self, driver) -> None:
        """Validate every live window post-advance; escalate violations."""
        for w in range(len(self.windows)):
            self.guard_window(driver, w)
        self.end_guard_round()

    def guard_window(self, driver, w: int) -> None:
        """Validate one window post-advance; escalate violations.

        The per-window half of :meth:`guard_round`, used by the overlapped
        shm drain loop to guard each window the moment its super-step
        lands (instead of barriering the whole round first).  Callers must
        finish the round with :meth:`end_guard_round`.
        """
        state = self.windows[w]
        if state.disposition == "quarantined":
            return
        violations = check_team(
            driver.walkers[w], last_ln_f=state.last_ln_f
        )
        if violations:
            state.guard_trips += 1
            self._emit(
                "guard_trip", round=driver.rounds, window=w,
                violations=violations,
            )
            self._escalate(driver, w, f"guard: {violations[0]}")
        elif w not in self._round_tripped:
            # Clean round: record ln f high-water mark for the
            # monotone check and forgive the rollback streak.
            walker = driver.walkers[w][0]
            state.last_ln_f = float(walker.ln_f)
            state.rollback_streak = 0
            if state.disposition in ("retrying", "rolled-back"):
                state.disposition = "healthy"

    def end_guard_round(self) -> None:
        """Close a round of per-window guards (streak/round bookkeeping)."""
        self._round_tripped.clear()
        self._rounds_guarded += 1

    def _escalate(self, driver, w: int, reason: str) -> None:
        """One corruption/failure signal for window ``w`` -> policy action."""
        policy = self.cfg.guards
        state = self.windows[w]
        self._round_tripped.add(w)
        if not state.reason:
            state.reason = reason
        if policy.mode == "strict":
            raise GuardViolation(
                f"window {w} failed under strict guard policy: {reason}"
            )
        if state.rollback_streak < policy.max_rollbacks and self._restore(driver, w):
            state.rollbacks += 1
            state.rollback_streak += 1
            state.disposition = "rolled-back"
            # ln f may legitimately move backwards across a rollback.
            state.last_ln_f = None
            self._emit(
                "window_rollback", round=driver.rounds, window=w,
                rollback=state.rollbacks, reason=reason,
            )
            return
        if policy.mode == "rollback":
            raise GuardViolation(
                f"window {w} exhausted its rollback budget "
                f"({policy.max_rollbacks}): {reason}"
            )
        self._quarantine(driver, w, reason)

    def _quarantine(self, driver, w: int, reason: str) -> None:
        state = self.windows[w]
        state.disposition = "quarantined"
        state.quarantined_round = driver.rounds
        # Freeze the window at its last guard-clean snapshot so the harvest
        # never reports corrupted state; if no snapshot exists yet, leave
        # the live walkers (their state predates any failure we can undo).
        self._restore(driver, w)
        driver.window_quarantined[w] = True
        self._emit(
            "window_quarantine", round=driver.rounds, window=w, reason=reason,
        )

    # ----------------------------------------------------------- queries

    @property
    def quarantined(self) -> list[int]:
        return [w for w, s in enumerate(self.windows)
                if s.disposition == "quarantined"]

    @property
    def degraded(self) -> bool:
        """True when the campaign result is partial or policy-affected."""
        return bool(self.quarantined) or self.budget_status["exhausted"]

    def dispositions(self) -> list[dict]:
        """Per-window disposition table (result/manifest payload)."""
        return [
            {"window": w, **{k: v for k, v in s.as_dict().items()
                             if k != "last_ln_f"}}
            for w, s in enumerate(self.windows)
        ]

    def summary(self) -> dict:
        """The ``telemetry["resilience"]`` block."""
        return {
            "mode": self.cfg.guards.mode,
            "degraded": self.degraded,
            "guard_trips": sum(s.guard_trips for s in self.windows),
            "task_failures": sum(s.task_failures for s in self.windows),
            "rollbacks": sum(s.rollbacks for s in self.windows),
            "quarantined": self.quarantined,
            "budget": dict(self.budget_status),
            "windows": self.dispositions(),
        }

    # -------------------------------------------------------- checkpoint

    def state_dict(self) -> dict:
        """Checkpoint ride-along (snapshots are re-taken after restore)."""
        return {
            "windows": [s.as_dict() for s in self.windows],
            "budget_status": dict(self.budget_status),
            "rounds_guarded": self._rounds_guarded,
        }

    def load_state_dict(self, state: dict) -> None:
        self.windows = [WindowState(**w) for w in state["windows"]]
        self._snapshots = [None] * len(self.windows)
        self.budget_status = dict(state["budget_status"])
        self._rounds_guarded = int(state["rounds_guarded"])
        self._started = time.monotonic()


# ------------------------------------------------------------ env plumbing

_KEY_ALIASES = {
    "mode": "mode",
    "max_rollbacks": "max_rollbacks",
    "rollbacks": "max_rollbacks",
    "snapshot_interval": "snapshot_interval",
    "wall_s": "wall_s",
    "wall": "wall_s",
    "rounds": "rounds",
    "steps": "steps",
}

_GUARD_FIELDS = {"mode", "max_rollbacks", "snapshot_interval"}
_INT_FIELDS = {"max_rollbacks", "snapshot_interval", "rounds", "steps"}


def parse_resilience(spec: str) -> ResilienceConfig:
    """Parse a ``REPRO_RESILIENCE`` value.

    ``"1"``/``"on"`` enable the defaults (quarantine mode, no budgets);
    otherwise ``key=value`` pairs, e.g.
    ``"mode=rollback,rollbacks=3,wall_s=3600,steps=5e8"``.
    """
    value = spec.strip()
    if value.lower() in ("1", "on", "true"):
        return ResilienceConfig()
    guard_kwargs: dict = {}
    budget_kwargs: dict = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        name = _KEY_ALIASES.get(key.strip().lower())
        if not sep or name is None:
            known = ", ".join(sorted(set(_KEY_ALIASES)))
            raise ValueError(
                f"bad {RESILIENCE_ENV_VAR} entry {part!r}; expected 1/on or "
                f"key=value with key in {{{known}}}"
            )
        raw = raw.strip()
        try:
            if name == "mode":
                parsed: object = raw.lower()
                if parsed not in GUARD_MODES:
                    raise ValueError(f"expected one of {GUARD_MODES}")
            elif name in _INT_FIELDS:
                parsed = int(float(raw))  # accept "5e8"
            else:
                parsed = float(raw)
        except ValueError as exc:
            raise ValueError(
                f"bad {RESILIENCE_ENV_VAR} value for {key!r}: {raw!r}"
            ) from exc
        (guard_kwargs if name in _GUARD_FIELDS else budget_kwargs)[name] = parsed
    return ResilienceConfig(
        guards=GuardPolicy(**guard_kwargs), budget=BudgetPolicy(**budget_kwargs)
    )


def resilience_from_env(env_var: str = RESILIENCE_ENV_VAR) -> ResilienceConfig | None:
    """A :class:`ResilienceConfig` from the environment, or None if off."""
    value = os.environ.get(env_var, "").strip()
    if value.lower() in ("", "0", "off", "false"):
        return None
    return parse_resilience(value)
