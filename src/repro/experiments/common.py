"""Shared infrastructure for the experiment runners."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.hamiltonians import NbMoTaWHamiltonian
from repro.lattice import bcc, equiatomic_counts, random_configuration
from repro.obs import Telemetry
from repro.proposals import SwapProposal
from repro.sampling import EnergyGrid
from repro.util.rng import as_generator

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "results_dir",
    "estimate_energy_range",
    "experiment_telemetry",
    "hea_system",
    "default_hea_grid",
]

#: Registry of experiment ids -> module paths (populated by run_all).
EXPERIMENTS = {
    "E1": "repro.experiments.e01_wl_validation",
    "E2": "repro.experiments.e02_hea_dos",
    "E3": "repro.experiments.e03_specific_heat",
    "E4": "repro.experiments.e04_sro",
    "E5": "repro.experiments.e05_acceptance",
    "E6": "repro.experiments.e06_time_to_flat",
    "E7": "repro.experiments.e07_strong_scaling",
    "E8": "repro.experiments.e08_weak_scaling",
    "E9": "repro.experiments.e09_throughput",
    "E10": "repro.experiments.e10_training_ablation",
    "E11": "repro.experiments.e11_window_ablation",
    "E12": "repro.experiments.e12_systems_table",
    # Extension experiments (DESIGN.md §4b) — not paper figures.
    "E13": "repro.experiments.e13_wham_cross_validation",
    "E14": "repro.experiments.e14_sro_anneal",
}


@dataclass
class ExperimentResult:
    """Everything one experiment produces.

    Attributes
    ----------
    experiment_id : str
        E1..E12.
    title : str
    paper_claim : str
        What the paper's figure/table shows (the *shape* we must match).
    measured : str
        One-line summary of what this run measured.
    tables : dict[str, str]
        Rendered text tables/series (printed by run_all).
    data : dict
        Raw numbers (JSON-serializable) for downstream use.
    elapsed_s : float
    telemetry : dict
        Structured run telemetry (span aggregates, metrics, run id) stamped
        by the harness; lands in the saved JSON as a ``telemetry`` block.
    degraded : bool
        True when the experiment completed on *partial* data — e.g. a REWL
        campaign that quarantined a window or hit a budget
        (:mod:`repro.resilience`).  Propagated to ``campaign.json`` and the
        run_all exit code so a degraded result can never pass silently.
    """

    experiment_id: str
    title: str
    paper_claim: str
    measured: str
    tables: dict[str, str] = field(default_factory=dict)
    data: dict = field(default_factory=dict)
    elapsed_s: float = 0.0
    telemetry: dict = field(default_factory=dict)
    degraded: bool = False

    def print(self) -> None:
        # This IS the human-facing final render (DESIGN.md §8) — the one
        # place experiment code writes to stdout directly.
        tag = " [DEGRADED]" if self.degraded else ""
        header = (
            f"=== {self.experiment_id}: {self.title}{tag} "
            f"({self.elapsed_s:.1f}s) ==="
        )
        print(header)  # lint-api: allow
        for name in sorted(self.tables):
            print(self.tables[name])  # lint-api: allow
            print()  # lint-api: allow
        print(f"paper claim : {self.paper_claim}")  # lint-api: allow
        print(f"measured    : {self.measured}")  # lint-api: allow
        print("=" * len(header))  # lint-api: allow

    def save(self, directory: Path | None = None) -> Path:
        directory = results_dir() if directory is None else Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id.lower()}.json"
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "measured": self.measured,
            "tables": self.tables,
            "data": _jsonify(self.data),
            "elapsed_s": self.elapsed_s,
            "telemetry": _jsonify(self.telemetry),
            "degraded": self.degraded,
        }
        path.write_text(json.dumps(payload, indent=2))
        return path


def _jsonify(obj):
    if isinstance(obj, dict):
        return {str(k): _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    return obj


def results_dir() -> Path:
    """``results/`` next to the repository root (created on demand)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / "results"
    return Path.cwd() / "results"


class timed:
    """Context manager stamping ``elapsed_s`` onto an ExperimentResult."""

    def __init__(self):
        self.start = time.perf_counter()

    def stamp(self, result: ExperimentResult) -> ExperimentResult:
        result.elapsed_s = time.perf_counter() - self.start
        return result


def experiment_telemetry(experiment_id: str, extra_sinks=()) -> Telemetry:
    """Telemetry handle for one experiment run.

    Honors the ``REPRO_TRACE`` environment knob (JSONL path / ``stderr`` /
    unset → disabled), so every runner and the ``run_all`` harness share one
    wiring convention.  Stamp the summary onto the result before saving::

        tel = experiment_telemetry("E11")
        ...
        result.telemetry = tel.summary()
    """
    return Telemetry.from_env(run_id=experiment_id, extra_sinks=extra_sinks)


# ------------------------------------------------------------- HEA helpers


def hea_system(length: int = 3, n_shells: int = 2):
    """The standard HEA workload: NbMoTaW on a BCC L³ cell, equiatomic."""
    ham = NbMoTaWHamiltonian(bcc(length), n_shells=n_shells)
    counts = equiatomic_counts(ham.n_sites, 4)
    return ham, counts


def anneal_extreme(ham, config, rng, minimize: bool = True, sweeps: int = 400) -> float:
    """Estimate an extreme energy by simulated annealing with swaps."""
    rng = as_generator(rng)
    sign = 1.0 if minimize else -1.0
    cfg = np.array(config, copy=True)
    energy = ham.energy(cfg)
    prop = SwapProposal()
    n = ham.n_sites
    betas = np.geomspace(0.5, 200.0, sweeps)
    for beta in betas:
        for _ in range(n):
            move = prop.propose(cfg, ham, rng, current_energy=energy)
            if move is None:
                continue
            if sign * move.delta_energy <= 0 or rng.random() < np.exp(
                -beta * sign * move.delta_energy
            ):
                move.apply(cfg)
                energy += move.delta_energy
    return float(energy)


def estimate_energy_range(ham, counts, rng=0, margin: float = 0.02) -> tuple[float, float]:
    """Annealed estimate of the reachable energy range at fixed composition.

    Returns ``(e_lo, e_hi)`` *shrunk inward* by ``margin`` of the span: the
    annealed extremes are exponentially rare states, and a flat-histogram
    grid that insists on them spends almost all its time hunting the tails.
    Trimming the outermost percents is standard practice (the paper's DoS
    figures likewise cover a chosen window, not the literal ground state).
    Rigorous matrix bounds (:meth:`Hamiltonian.energy_bounds`) are far too
    loose for window construction.
    """
    rng = as_generator(rng)
    cfg = random_configuration(ham.n_sites, counts, rng=rng)
    e_lo = anneal_extreme(ham, cfg, rng, minimize=True)
    e_hi = anneal_extreme(ham, cfg, rng, minimize=False)
    span = e_hi - e_lo
    if span <= 0:
        raise RuntimeError("degenerate energy range estimate")
    return e_lo + margin * span, e_hi - margin * span


def default_hea_grid(ham, counts, n_bins: int = 60, rng=0) -> EnergyGrid:
    """Uniform grid over the annealed energy range."""
    e_lo, e_hi = estimate_energy_range(ham, counts, rng=rng)
    return EnergyGrid.uniform(e_lo, e_hi, n_bins)
