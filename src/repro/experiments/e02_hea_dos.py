"""E2 (Fig 2): direct density of states of an HEA over an astronomical range.

The abstract's headline: "For the first time, we directly evaluate a density
of states expanding over a range of ~e^10,000 for a real material."  The
range is a combinatorial property — the total state count at N sites and 4
species is 4^N (multinomial at fixed composition), so ln g spans O(N·ln 4).
We run the full REWL machinery on the NbMoTaW EPI model at laptop scale,
measure the stitched ln g span, verify it tracks the multinomial total, and
print the extrapolation to the paper's system size (N ≈ 7,200 sites already
gives e^10,000).

The stitched DoS produced here is cached and reused by E3 (specific heat)
and E4 (short-range order).
"""

from __future__ import annotations

import zipfile
from dataclasses import dataclass

import numpy as np

from repro.dos import normalize_ln_g
from repro.dos.thermo import log_multinomial
from repro.experiments.common import (
    ExperimentResult,
    default_hea_grid,
    experiment_telemetry,
    hea_system,
    results_dir,
    timed,
)
from repro.lattice import random_configuration
from repro.obs import Instrumentation
from repro.parallel import (
    REWLConfig,
    REWLDriver,
    maybe_resume,
    previous_checkpoint_path,
)
from repro.proposals import SwapProposal
from repro.sampling import EnergyGrid
from repro.util.tables import format_series, format_table

__all__ = ["run", "HeaDos", "load_or_run_hea_dos"]


@dataclass
class HeaDos:
    """Cached HEA density of states on its full (bin-aligned) grid.

    ``ln_g`` is absolutely normalized (Σg = multinomial) over visited bins
    and −inf elsewhere.
    """

    grid: EnergyGrid
    ln_g: np.ndarray
    visited: np.ndarray
    span: float
    steps: int
    rounds: int
    residual: float
    n_sites: int
    converged: bool
    degraded: bool = False  # partial harvest (quarantine/budget; PR 7)

    @property
    def energies(self) -> np.ndarray:
        """Centers of the visited bins."""
        return self.grid.centers[self.visited]

    @property
    def values(self) -> np.ndarray:
        """ln g at the visited bins."""
        return self.ln_g[self.visited]


def _cache_path(length: int, seed: int):
    return results_dir() / "cache" / f"hea_dos_L{length}_seed{seed}.npz"


def load_or_run_hea_dos(length: int = 3, seed: int = 0, quick: bool = True) -> HeaDos:
    """REWL DoS of the NbMoTaW system, cached on disk."""
    path = _cache_path(length, seed)
    if path.exists():
        # A truncated/corrupt cache (e.g. a killed writer) must not wedge
        # the experiment — fall through and regenerate it.
        try:
            with np.load(path, allow_pickle=False) as f:
                grid = EnergyGrid.uniform(float(f["e_lo"]), float(f["e_hi"]), int(f["n_bins"]))
                return HeaDos(
                    grid=grid, ln_g=f["ln_g"], visited=f["visited"].astype(bool),
                    span=float(f["span"]), steps=int(f["steps"]), rounds=int(f["rounds"]),
                    residual=float(f["residual"]), n_sites=int(f["n_sites"]),
                    converged=bool(f["converged"]),
                    degraded=bool(f["degraded"]) if "degraded" in f else False,
                )
        except (OSError, KeyError, ValueError, zipfile.BadZipFile):
            path.unlink(missing_ok=True)
    ham, counts = hea_system(length)
    grid = default_hea_grid(ham, counts, n_bins=32 if quick else 96, rng=seed)
    cfg = REWLConfig(
        n_windows=2 if quick else 6,
        walkers_per_window=1 if quick else 2,
        overlap=0.6,
        exchange_interval=2_000,
        ln_f_final=1e-3 if quick else 1e-6,
        flatness=0.7 if quick else 0.8,
        seed=seed,
        checkpoint_interval=25,
    )
    # Crash consistency: periodic snapshots next to the cache file let an
    # interrupted run (job-time limit, injected fault) resume mid-campaign
    # bit-identically instead of restarting from scratch.
    ckpt = path.with_suffix(".ckpt")
    # Same wiring convention as E11: the campaign driver gets its own
    # REPRO_TRACE-honoring telemetry handle, so heartbeat/convergence
    # events from this REWL run land in the campaign trace.
    tel = experiment_telemetry(f"E2-rewl-L{length}")
    driver = REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: SwapProposal(), grid=grid,
        initial_config=random_configuration(ham.n_sites, counts, rng=seed),
        config=cfg, checkpoint_path=ckpt,
        instrumentation=Instrumentation(telemetry=tel),
    )
    maybe_resume(driver, ckpt)
    try:
        res = driver.run(max_rounds=4_000)
    finally:
        tel.close()
    ckpt.unlink(missing_ok=True)
    previous_checkpoint_path(ckpt).unlink(missing_ok=True)
    stitched = res.stitched()
    ln_g = normalize_ln_g(stitched.ln_g, log_multinomial(counts))
    dos = HeaDos(
        grid=grid,
        ln_g=ln_g,
        visited=stitched.visited,
        span=stitched.span,
        steps=res.total_steps,
        rounds=res.rounds,
        residual=float(np.max(stitched.joint_residuals)) if len(stitched.joint_residuals) else 0.0,
        n_sites=ham.n_sites,
        converged=res.converged,
        degraded=res.degraded,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(
        path, e_lo=grid.e_min, e_hi=grid.e_max, n_bins=grid.n_bins,
        ln_g=dos.ln_g, visited=dos.visited, span=dos.span, steps=dos.steps,
        rounds=dos.rounds, residual=dos.residual, n_sites=dos.n_sites,
        converged=dos.converged, degraded=dos.degraded,
    )
    return dos


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    # L=2 would alias second-shell images through the periodic boundary
    # (the lattice layer rejects it), so L=3 (54 sites) is the smallest cell.
    lengths = [3] if quick else [3, 4]
    series_rows = []
    spans = []
    degraded = False
    for length in lengths:
        dos = load_or_run_hea_dos(length, seed=seed, quick=quick)
        degraded = degraded or dos.degraded
        _ham, counts = hea_system(length)
        total = log_multinomial(counts)
        spans.append((dos.n_sites, dos.span, total))
        series_rows.append(
            [length, dos.n_sites, dos.span, total, dos.span / total,
             dos.steps, dos.residual]
        )

    per_site = [s / n for n, s, _ in spans]
    n_for_paper = 10_000 / np.log(4.0)
    main = load_or_run_hea_dos(lengths[-1], seed=seed, quick=quick)

    result = ExperimentResult(
        experiment_id="E2",
        title="HEA density of states over an astronomical range",
        paper_claim=(
            "direct DoS evaluation over ~e^10,000 for a real material "
            "(NbMoTaW-class HEA); span grows with system size as N·ln 4"
        ),
        measured=(
            f"stitched REWL DoS at N={spans[-1][0]} spans ln g = {spans[-1][1]:.1f} "
            f"({100 * spans[-1][1] / spans[-1][2]:.0f}% of the multinomial total "
            f"{spans[-1][2]:.1f}); span/site ≈ {per_site[-1]:.2f} -> e^10,000 "
            f"reached at N ≈ {n_for_paper:.0f} sites (a 16^3 BCC cell has 8,192)"
        ),
        tables={
            "spans": format_table(
                ["L", "N sites", "ln g span", "ln(total states)", "coverage",
                 "MC steps", "stitch residual"],
                series_rows,
                title="Fig 2a: DoS span vs system size (NbMoTaW REWL)",
            ),
            "dos": format_series(
                f"Fig 2b: ln g(E), NbMoTaW L={lengths[-1]} (N={main.n_sites})",
                np.round(main.energies, 4), np.round(main.values, 2),
                xlabel="E [eV]", ylabel="ln g",
            ),
        },
        data={
            "lengths": lengths,
            "spans": spans,
            "per_site_span": per_site,
            "n_sites_for_e10000": n_for_paper,
            "energies": main.energies,
            "ln_g": main.values,
            "converged": main.converged,
        },
        degraded=degraded or main.degraded,
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
