"""E4 (Fig 4): Warren-Cowley short-range order vs temperature.

The materials-science observable behind "phase transition behaviors of high
entropy alloys": chemical short-range order.  Two routes, cross-checked:

1. *Reweighting route* (the DoS payoff): a multicanonical production run
   with the converged REWL ln g accumulates microcanonical SRO(E) for each
   species pair; canonical SRO(T) then follows for every temperature at
   once by reweighting.
2. *Direct route*: independent canonical Metropolis runs at a few spot
   temperatures.

Shape expectations: α(Mo-Ta) on shell 1 is strongly negative (B2 ordering)
and |α| decays toward 0 as T grows; near-neutral pairs (Nb-Ta, Mo-W) stay
close to 0; the two routes agree within statistics.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import warren_cowley
from repro.dos import reweight_observable
from repro.experiments.common import ExperimentResult, default_hea_grid, hea_system, timed
from repro.experiments.e02_hea_dos import load_or_run_hea_dos
from repro.hamiltonians import KB_EV_PER_K
from repro.lattice import NBMOTAW, random_configuration
from repro.proposals import SwapProposal
from repro.sampling import EnergyGrid, MetropolisSampler, MulticanonicalSampler, drive_into_range
from repro.util.rng import RngFactory
from repro.util.tables import format_table

__all__ = ["run"]

PAIRS = [("Mo", "Ta"), ("Ta", "W"), ("Nb", "Mo"), ("Nb", "Ta"), ("Mo", "W")]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    length = 3
    ham, counts = hea_system(length)
    lat = ham.lattice
    rngs = RngFactory(seed)

    # ---- route 1: multicanonical accumulation + reweighting ------------
    dos = load_or_run_hea_dos(length, seed=seed, quick=quick)
    grid = dos.grid
    # Unvisited bins get the minimum visited weight so the flat walk never
    # sees -inf (they are, in practice, unreachable anyway).
    ln_g = dos.ln_g.copy()
    ln_g[~dos.visited] = ln_g[dos.visited].min()
    observables = {}
    for a, b in PAIRS:
        ia, ib = NBMOTAW.index(a), NBMOTAW.index(b)
        observables[f"{a}-{b}"] = (
            lambda cfg, e, ia=ia, ib=ib: warren_cowley(lat, cfg, 4, shell=0)[ia, ib]
        )
    start = drive_into_range(
        ham, SwapProposal(), grid,
        random_configuration(ham.n_sites, counts, rng=rngs.make("sro-init")),
        rng=rngs.make("sro-drive"),
    )
    muca = MulticanonicalSampler(
        ham, SwapProposal(), grid, ln_g, start,
        rng=rngs.make("sro-muca"), observables=observables,
    )
    muca.run(150_000 if quick else 1_200_000, measure_every=5)
    muca_res = muca.result()

    # The synthetic EPI magnitudes put the order-disorder transition near
    # 3,000 K (E3), so the grid spans well past it to show the SRO decay.
    temps = np.array([300.0, 1000.0, 2000.0, 3500.0, 6000.0, 10000.0])
    lng_for_reweight = np.where(dos.visited, dos.ln_g, -np.inf)
    sro_reweighted = {}
    for name in observables:
        sro_reweighted[name] = reweight_observable(
            grid.centers, lng_for_reweight, muca_res.observable_means[name],
            temps, kb=KB_EV_PER_K,
        )

    # ---- route 2: direct Metropolis spot checks -------------------------
    spot_temps = [1000.0, 6000.0]
    direct = {name: {} for name in observables}
    for t in spot_temps:
        beta = 1.0 / (KB_EV_PER_K * t)
        sampler = MetropolisSampler(
            ham, SwapProposal(), beta,
            random_configuration(ham.n_sites, counts, rng=rngs.make("sro-direct", int(t))),
            rng=rngs.make("sro-chain", int(t)),
        )
        sampler.run((40 if quick else 200) * ham.n_sites)
        acc = {name: [] for name in observables}

        def measure(s, _k):
            alpha = warren_cowley(lat, s.config, 4, shell=0)
            for (a, b) in PAIRS:
                acc[f"{a}-{b}"].append(alpha[NBMOTAW.index(a), NBMOTAW.index(b)])

        sampler.run((150 if quick else 800) * ham.n_sites,
                    callback=measure, callback_every=2 * ham.n_sites)
        for name in observables:
            direct[name][t] = float(np.mean(acc[name]))

    rows = []
    for name in observables:
        row = [name] + [sro_reweighted[name][k] for k in range(len(temps))]
        rows.append(row)
    direct_rows = [
        [name] + [direct[name][t] for t in spot_temps] for name in observables
    ]

    mo_ta = sro_reweighted["Mo-Ta"]
    check_cross = abs(direct["Mo-Ta"][1000.0] - float(mo_ta[1]))

    result = ExperimentResult(
        experiment_id="E4",
        title="Warren-Cowley short-range order vs temperature (NbMoTaW)",
        paper_claim=(
            "strong Mo-Ta (B2-type) short-range order growing as T decreases; "
            "weak pairs near zero; one DoS run yields SRO at all temperatures"
        ),
        measured=(
            f"alpha(Mo-Ta) = {mo_ta[0]:+.3f} at 300 K -> {mo_ta[-1]:+.3f} at "
            f"{temps[-1]:.0f} K (reweighted); direct-vs-reweighted gap at "
            f"1000 K = {check_cross:.3f}"
        ),
        tables={
            "reweighted": format_table(
                ["pair"] + [f"{t:.0f}K" for t in temps], rows,
                title="Fig 4a: shell-1 Warren-Cowley SRO vs T (DoS reweighting)",
                floatfmt="+.3f",
            ),
            "direct": format_table(
                ["pair"] + [f"{t:.0f}K" for t in spot_temps], direct_rows,
                title="Fig 4b: direct canonical Metropolis cross-check",
                floatfmt="+.3f",
            ),
        },
        data={
            "temperatures": temps,
            "sro_reweighted": {k: v for k, v in sro_reweighted.items()},
            "sro_direct": direct,
            "cross_check_gap": check_cross,
        },
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
