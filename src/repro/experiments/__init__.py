"""Experiment harness (S11): one runner per paper table/figure.

Each module exposes ``run(quick=True, seed=0) -> ExperimentResult``; the
result carries the printed tables (the same rows/series the paper reports),
the raw data, and a paper-claim vs measured summary line that EXPERIMENTS.md
collects.  ``python -m repro.experiments.run_all`` regenerates everything
into ``results/``.

Experiment IDs (see DESIGN.md §3 for the full index):

====  ========================================================
E1    Wang-Landau validation vs exact Ising (Fig 1)
E2    HEA density of states over an astronomical range (Fig 2)
E3    Specific heat / order-disorder transition (Fig 3)
E4    Warren-Cowley short-range order vs T (Fig 4)
E5    Proposal quality: acceptance + decorrelation (Fig 5/Tab 2)
E6    Time-to-solution: DL-accelerated Wang-Landau (Fig 6)
E7    Strong scaling to 3,000 GPUs, V100 + MI250X (Fig 7)
E8    Weak scaling (Fig 8)
E9    Per-device throughput table (Tab 3)
E10   Training-cost / estimator ablation (Tab 4)
E11   REWL window-count ablation (Fig 9)
E12   Workload characterization table (Tab 1)
E13   Extension: WHAM cross-validation of the DoS
E14   Extension: SRO-targeted fast structure generation (ultra tier)
====  ========================================================
"""

from repro.experiments.common import ExperimentResult, EXPERIMENTS

__all__ = ["ExperimentResult", "EXPERIMENTS"]
