"""E7 (Fig 7): strong scaling to 3,000 GPUs on V100 and MI250X machines.

Hardware substitution (DESIGN.md §4): the distributed REWL algorithm is
exercised for real at laptop scale elsewhere (tests + E11); this experiment
extrapolates its per-round cost with the calibrated machine model and
reports the same speedup/efficiency curves the paper plots, for both the
Summit-class V100 machine and the Crusher/Frontier-class MI250X machine.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, timed
from repro.machine import WorkloadSpec, crusher_mi250x, strong_scaling, summit_v100
from repro.util.tables import format_table

__all__ = ["run", "GPU_COUNTS"]

GPU_COUNTS = [6, 12, 24, 48, 96, 192, 384, 768, 1536, 3000]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    workload = WorkloadSpec()  # paper-scale: 16^3 BCC, 8192 sites
    total_walkers = 3000

    rows = []
    data = {}
    for machine in [summit_v100(), crusher_mi250x()]:
        points = strong_scaling(machine, workload, total_walkers, GPU_COUNTS)
        data[machine.name] = [
            {"gpus": p.n_gpus, "time": p.round_time, "speedup": p.speedup,
             "efficiency": p.efficiency} for p in points
        ]
        for p in points:
            rows.append([machine.device.name, p.n_gpus, p.round_time,
                         p.speedup, p.efficiency])

    v_eff = data["Summit (V100)"][-1]["efficiency"]
    c_eff = data["Crusher (MI250X)"][-1]["efficiency"]

    result = ExperimentResult(
        experiment_id="E7",
        title="Strong scaling to 3,000 GPUs (performance model)",
        paper_claim=(
            "near-linear strong scaling of REWL+DL sampling up to 3,000 GPUs "
            "on both the V100 and the MI250X machine, with rolloff from "
            "synchronization at the largest counts"
        ),
        measured=(
            f"modeled efficiency at 3,000 GPUs: {v_eff:.2f} (V100) and "
            f"{c_eff:.2f} (MI250X); monotone speedup over the whole range"
        ),
        tables={
            "strong": format_table(
                ["device", "GPUs", "round time [s]", "speedup", "efficiency"],
                rows, title="Fig 7: strong scaling, fixed 3,000-walker REWL workload",
            ),
        },
        data=data,
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
