"""E11 (Fig 9): REWL window-count ablation — real parallel-algorithm runs.

The design choice behind the paper's parallel framework: more (narrower)
windows converge faster per walker because each walker equilibrates a
smaller energy range, at the cost of exchange overhead and stitching error.
These are *real* REWL runs (no performance model): we measure the maximum
per-walker step count (the wall-clock proxy under one-walker-per-GPU
mapping), the total work, exchange acceptance, and the stitched-DoS error
against exact enumeration.
"""

from __future__ import annotations

import numpy as np

from repro.dos import exact_ising_dos_bruteforce
from repro.experiments.common import ExperimentResult, experiment_telemetry, timed
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.obs import Instrumentation
from repro.parallel import REWLConfig, REWLDriver
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid
from repro.util.tables import format_table

__all__ = ["run"]


def _dos_error(stitched, levels, degens):
    exact = {float(e): float(np.log(d)) for e, d in zip(levels, degens)}
    pairs = [
        (v, exact[float(e)])
        for e, v in zip(stitched.energies(), stitched.values())
        if float(e) in exact
    ]
    est = np.array([p[0] for p in pairs])
    ex = np.array([p[1] for p in pairs])
    return float(np.abs((est - est[0]) - (ex - ex[0])).max())


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    levels, degens = exact_ising_dos_bruteforce(4)
    ln_f_final = 1e-3 if quick else 1e-5

    window_counts = [1, 2, 3] if quick else [1, 2, 3, 4, 5]
    rows = []
    data = {}
    base_max_steps = None
    tel = experiment_telemetry("E11")
    for n_windows in window_counts:
        driver = REWLDriver(
            hamiltonian=ham, proposal_factory=lambda: FlipProposal(),
            grid=grid, initial_config=np.zeros(16, dtype=np.int8),
            config=REWLConfig(
                n_windows=n_windows, walkers_per_window=2, overlap=0.6,
                exchange_interval=1_000, ln_f_final=ln_f_final, seed=seed,
            ),
            instrumentation=Instrumentation(telemetry=tel),
        )
        res = driver.run(max_rounds=5_000)
        max_walker_steps = max(s.n_steps for s in res.walkers)
        if base_max_steps is None:
            base_max_steps = max_walker_steps
        err = _dos_error(res.stitched(), levels, degens)
        exch = float(np.nanmean(res.exchange_rates)) if n_windows > 1 else float("nan")
        rows.append([
            n_windows, res.converged, max_walker_steps,
            base_max_steps / max_walker_steps, res.total_steps, exch, err,
        ])
        data[str(n_windows)] = {
            "converged": res.converged,
            "max_walker_steps": max_walker_steps,
            "speedup": base_max_steps / max_walker_steps,
            "total_steps": res.total_steps,
            "exchange_rate": exch,
            "dos_error": err,
        }

    best = max(window_counts, key=lambda w: data[str(w)]["speedup"])
    result = ExperimentResult(
        experiment_id="E11",
        title="REWL window-count ablation (real parallel runs)",
        paper_claim=(
            "splitting the energy range into more windows reduces the "
            "per-walker (wall-clock) cost of convergence while keeping the "
            "stitched DoS accurate; gains saturate with exchange overhead"
        ),
        measured=(
            f"per-walker steps-to-convergence speedup reaches "
            f"{data[str(best)]['speedup']:.1f}x at {best} windows; stitched "
            f"DoS error stays <= "
            f"{max(d['dos_error'] for d in data.values()):.2f} in ln g"
        ),
        tables={
            "windows": format_table(
                ["windows", "converged", "max walker steps", "speedup",
                 "total steps", "exchange rate", "max |ln g err|"],
                rows, title="Fig 9: REWL cost vs window count (4x4 Ising)",
            ),
        },
        data=data,
    )
    result.telemetry = tel.summary()
    tel.close()
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
