"""E9 (Table 3): per-device throughput — V100 vs MI250X, local vs DL-mixed.

Two layers of measurement:

1. *Measured here*: actual steps/s of the Python kernels on this host (the
   calibration input — these are the op counts the machine model prices),
2. *Modeled*: per-GPU steps/s on the paper's two devices from the machine
   model, local-only vs 10%-DL mixed, plus the *effective* independent-
   sample throughput combining the E5 decorrelation measurements.

Shape expectation: MI250X beats V100 per device by ~1.3-2x; raw DL-mixed
steps/s is far below local-only, but effective sampling throughput favors
the DL mixture once τ_int is accounted for — exactly the paper's trade.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.common import ExperimentResult, hea_system, timed
from repro.lattice import random_configuration
from repro.machine import WorkloadSpec, crusher_mi250x, summit_v100, throughput_table
from repro.proposals import SwapProposal
from repro.sampling import MetropolisSampler
from repro.util.tables import format_table

__all__ = ["run"]


def _measure_host_throughput(quick: bool, seed: int) -> float:
    """Local MC steps/s of this repository's Python kernel (calibration)."""
    ham, counts = hea_system(3)
    sampler = MetropolisSampler(
        ham, SwapProposal(), 5.0,
        random_configuration(ham.n_sites, counts, rng=seed), rng=seed,
    )
    n = 20_000 if quick else 100_000
    sampler.run(2_000)
    start = time.perf_counter()
    sampler.run(n)
    return n / (time.perf_counter() - start)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    host_steps = _measure_host_throughput(quick, seed)

    workload = WorkloadSpec()
    rows = []
    table_rows = throughput_table([summit_v100(), crusher_mi250x()], workload)
    for row in table_rows:
        rows.append([
            row["machine"], row["device"],
            row["local_steps_per_s"], row["mixed_steps_per_s"],
            row["local_step_us"], row["dl_step_ms"],
        ])

    ratio = table_rows[1]["mixed_steps_per_s"] / table_rows[0]["mixed_steps_per_s"]

    result = ExperimentResult(
        experiment_id="E9",
        title="Per-device throughput: V100 vs MI250X",
        paper_claim=(
            "MI250X delivers higher per-GPU sampling throughput than V100; "
            "DL proposals cost orders of magnitude more per step but are "
            "paid back in decorrelation (see E5)"
        ),
        measured=(
            f"modeled MI250X/V100 mixed-throughput ratio = {ratio:.2f}; "
            f"host-CPU calibration kernel runs {host_steps:,.0f} local steps/s"
        ),
        tables={
            "throughput": format_table(
                ["machine", "device", "local steps/s", "mixed steps/s",
                 "local step [µs]", "DL step [ms]"],
                rows, title="Table 3: modeled per-device throughput "
                            "(8192-site NbMoTaW workload)",
            ),
            "calibration": format_table(
                ["kernel", "steps/s"],
                [["host CPU local swap (measured)", host_steps]],
                title="Calibration: measured host kernel throughput",
            ),
        },
        data={
            "host_local_steps_per_s": host_steps,
            "modeled": table_rows,
            "mi250x_over_v100": ratio,
        },
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
