"""E1 (Fig 1): Wang-Landau validation against exact 2D Ising references.

Two independent checks of the flat-histogram pipeline the whole paper rests
on ("directly evaluate a density of states"):

1. ln g(E) from Wang-Landau vs exact enumeration on the 4×4 Ising torus —
   the direct DoS comparison,
2. U(T) and C(T) computed *from* the WL DoS on an 8×8 torus vs Kaufman's
   closed-form finite-lattice solution — validates the DoS → thermodynamics
   pipeline at a size beyond enumeration.
"""

from __future__ import annotations

import numpy as np

from repro.dos import (
    exact_ising_dos_bruteforce,
    exact_ising_internal_energy,
    exact_ising_specific_heat,
    thermodynamics,
)
from repro.experiments.common import ExperimentResult, timed
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid, WangLandauSampler
from repro.util.tables import format_table

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    large = 6 if quick else 8
    ln_f_final = 1e-5 if quick else 1e-7

    # --- part 1: direct ln g comparison at 4x4 -------------------------
    ham4 = IsingHamiltonian(square_lattice(4))
    grid4 = EnergyGrid.from_levels(ham4.energy_levels())
    wl4 = WangLandauSampler(
        hamiltonian=ham4, proposal=FlipProposal(), grid=grid4,
        initial_config=np.zeros(16, dtype=np.int8),
        rng=seed, ln_f_final=ln_f_final,
    )
    res4 = wl4.run()
    levels, degens = exact_ising_dos_bruteforce(4)
    exact = {float(e): float(np.log(d)) for e, d in zip(levels, degens)}
    rows = []
    errs = []
    mg = res4.masked_ln_g()
    for k in np.nonzero(res4.visited)[0]:
        e = float(grid4.centers[k])
        if e not in exact:
            continue
        est = mg[k] - mg[res4.visited][0]
        ex = exact[e] - exact[float(grid4.centers[res4.visited][0])]
        errs.append(abs(est - ex))
        rows.append([e, est, ex, est - ex])
    rms = float(np.sqrt(np.mean(np.square(errs))))

    # --- part 2: thermodynamics at LxL vs Kaufman ----------------------
    ham_l = IsingHamiltonian(square_lattice(large))
    grid_l = EnergyGrid.from_levels(ham_l.energy_levels())
    wl_l = WangLandauSampler(
        hamiltonian=ham_l, proposal=FlipProposal(), grid=grid_l,
        initial_config=np.zeros(large * large, dtype=np.int8),
        rng=seed + 1, ln_f_final=max(ln_f_final, 1e-5),
    )
    res_l = wl_l.run(max_steps=60_000_000)
    temps = np.linspace(1.6, 3.4, 13)
    tab = thermodynamics(
        grid_l.centers[res_l.visited], res_l.masked_ln_g()[res_l.visited], temps
    )
    thermo_rows = []
    u_errs, c_errs = [], []
    n = large * large
    for t, u, c in zip(temps, tab.internal_energy, tab.specific_heat):
        u_exact = exact_ising_internal_energy(large, large, t)
        c_exact = exact_ising_specific_heat(large, large, t)
        u_errs.append(abs(u - u_exact) / n)
        c_errs.append(abs(c - c_exact) / n)
        thermo_rows.append([t, u / n, u_exact / n, c / n, c_exact / n])

    result = ExperimentResult(
        experiment_id="E1",
        title="Wang-Landau validation vs exact 2D Ising",
        paper_claim=(
            "flat-histogram sampler converges to the true density of states "
            "(prerequisite for all DoS results)"
        ),
        measured=(
            f"4x4 ln g RMS error {rms:.3f} (max {max(errs):.3f}); "
            f"{large}x{large} U(T)/N max error {max(u_errs):.4f}, "
            f"C(T)/N max error {max(c_errs):.3f} vs Kaufman exact"
        ),
        tables={
            "lng_4x4": format_table(
                ["E", "ln g (WL, rel)", "ln g (exact, rel)", "error"],
                rows, title="Fig 1a: Wang-Landau vs exact DoS, 4x4 Ising",
            ),
            "thermo": format_table(
                ["T", "U/N (WL)", "U/N (exact)", "C/N (WL)", "C/N (exact)"],
                thermo_rows,
                title=f"Fig 1b: thermodynamics from WL DoS, {large}x{large} Ising",
            ),
        },
        data={
            "lng_rms_error": rms,
            "lng_max_error": float(max(errs)),
            "u_max_error_per_site": float(max(u_errs)),
            "c_max_error_per_site": float(max(c_errs)),
            "wl_steps_4x4": res4.n_steps,
            "wl_steps_large": res_l.n_steps,
            "large": large,
        },
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
