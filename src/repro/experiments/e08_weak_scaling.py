"""E8 (Fig 8): weak scaling — windows grow with the machine.

One REWL walker per GPU; adding GPUs adds energy windows/walkers (more DoS
resolution or replicas), so ideal weak scaling keeps the round time flat.
Same machine-model substitution as E7.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, timed
from repro.experiments.e07_strong_scaling import GPU_COUNTS
from repro.machine import WorkloadSpec, crusher_mi250x, summit_v100, weak_scaling
from repro.util.tables import format_table

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    workload = WorkloadSpec()
    rows = []
    data = {}
    for machine in [summit_v100(), crusher_mi250x()]:
        points = weak_scaling(machine, workload, GPU_COUNTS)
        data[machine.name] = [
            {"gpus": p.n_gpus, "time": p.round_time, "efficiency": p.efficiency,
             "total_steps_per_s": p.steps_per_second_total} for p in points
        ]
        for p in points:
            rows.append([machine.device.name, p.n_gpus, p.round_time,
                         p.efficiency, p.steps_per_second_total])

    v_eff = data["Summit (V100)"][-1]["efficiency"]
    c_eff = data["Crusher (MI250X)"][-1]["efficiency"]

    result = ExperimentResult(
        experiment_id="E8",
        title="Weak scaling to 3,000 GPUs (performance model)",
        paper_claim=(
            "near-ideal weak scaling: per-round time stays flat as windows "
            "grow with the machine; aggregate throughput grows ~linearly"
        ),
        measured=(
            f"modeled weak-scaling efficiency at 3,000 GPUs: {v_eff:.2f} "
            f"(V100), {c_eff:.2f} (MI250X); aggregate steps/s grows "
            f"{data['Crusher (MI250X)'][-1]['total_steps_per_s'] / data['Crusher (MI250X)'][0]['total_steps_per_s']:.0f}x "
            f"over a {GPU_COUNTS[-1] // GPU_COUNTS[0]}x GPU range (MI250X)"
        ),
        tables={
            "weak": format_table(
                ["device", "GPUs", "round time [s]", "efficiency", "total steps/s"],
                rows, title="Fig 8: weak scaling, one walker per GPU",
            ),
        },
        data=data,
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
