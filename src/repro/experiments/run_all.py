"""Regenerate every paper table/figure: ``python -m repro.experiments.run_all``.

Options
-------
--full        run at full (slow) fidelity instead of quick mode
--only E3,E7  run a subset of experiment ids
--seed N      root seed (default 0)
--resume      continue an interrupted campaign: skip experiments already
              recorded in ``results/campaign.json`` (same mode/seed; failed
              and degraded ones are retried), and let REWL-driving
              experiments restore their own mid-run checkpoints from the
              cache directory
--resilience SPEC
              enable campaign self-healing (guards / rollback / window
              quarantine / budgets) for every REWL-driving experiment;
              SPEC is a ``REPRO_RESILIENCE`` value, e.g. ``1`` or
              ``mode=quarantine,rollbacks=2,wall_s=3600``
--serve PORT  serve live campaign telemetry over HTTP while experiments
              run: ``/metrics`` (OpenMetrics), ``/healthz``, ``/campaign``
              (manifest + live per-window status), ``/events`` (trace
              tail).  Port 0 binds an ephemeral port (printed at startup).
              Equivalent to setting ``REPRO_OBS_PORT``; serving is
              read-only and never perturbs sampling (DESIGN.md §15)

Exit codes: 0 all requested experiments succeeded; 1 some failed;
3 all completed but at least one produced a *degraded* (partial) result —
its ids are listed under ``degraded`` in ``results/campaign.json``.

Each experiment prints its tables and writes ``results/<id>.json``; a
summary manifest lands in ``results/summary.json`` and the paper-vs-measured
lines are exactly what EXPERIMENTS.md records.  Both manifests are written
atomically (tmp + rename), and the campaign manifest is updated after every
experiment, so a killed campaign can always ``--resume`` from the last good
state.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import traceback

from repro.experiments.common import EXPERIMENTS, experiment_telemetry, results_dir
from repro.obs import ConsoleSink

__all__ = ["main"]


def _atomic_write_json(path, payload: dict) -> None:
    """Crash-consistent manifest write: tmp file + atomic rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as f:
        f.write(json.dumps(payload, indent=2))
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def _read_json(path) -> dict:
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return {}


def _telemetry_manifest() -> dict:
    """Where this campaign's traces land, recorded so post-hoc tooling
    (``obs report`` / ``obs export-trace``) can find them from the manifest
    alone."""
    return {
        "trace": os.environ.get("REPRO_TRACE") or None,
        "trace_dir": os.environ.get("REPRO_TRACE_DIR") or None,
        "convergence": os.environ.get("REPRO_CONVERGENCE") or None,
    }


def _load_campaign(path, mode: str, seed: int, resume: bool) -> dict:
    """The campaign manifest, or a fresh one when not resumable/compatible."""
    fresh = {"mode": mode, "seed": seed, "completed": [], "failed": [],
             "degraded": [], "telemetry": _telemetry_manifest()}
    if not resume:
        return fresh
    campaign = _read_json(path)
    if campaign.get("mode") != mode or campaign.get("seed") != seed:
        return fresh
    campaign.setdefault("completed", [])
    campaign.setdefault("failed", [])
    campaign.setdefault("degraded", [])
    campaign.setdefault("telemetry", _telemetry_manifest())
    return campaign


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all",
        description="Regenerate every DeepThermo table and figure.",
    )
    parser.add_argument("--full", action="store_true", help="full fidelity (slow)")
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids (e.g. E1,E7)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--resume", action="store_true",
                        help="skip experiments already completed by an "
                             "interrupted campaign with the same mode/seed")
    parser.add_argument("--resilience", type=str, default="", metavar="SPEC",
                        help="enable campaign self-healing for REWL-driving "
                             "experiments (a REPRO_RESILIENCE value, e.g. "
                             "'1' or 'mode=quarantine,wall_s=3600')")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        help="serve live telemetry over HTTP on PORT "
                             "(/metrics, /healthz, /campaign, /events; "
                             "0 = ephemeral port, printed at startup)")
    args = parser.parse_args(argv)

    server = None
    if args.serve is not None:
        from repro.obs.server import OBS_PORT_ENV_VAR, get_board, start_server

        server = start_server(port=args.serve)
        # Drivers constructed below see the knob and attach their recorders
        # to the (already running) singleton board.
        os.environ[OBS_PORT_ENV_VAR] = str(server.port)
        print(f"serving live telemetry on {server.url} "  # lint-api: allow
              f"(/metrics /healthz /campaign /events)")
        trace = os.environ.get("REPRO_TRACE", "").strip()
        if trace and trace not in ("stderr", "-"):
            get_board().publish_trace(trace)

    if args.resilience:
        from repro.resilience import RESILIENCE_ENV_VAR, parse_resilience

        try:
            parse_resilience(args.resilience)  # fail fast on a bad spec
        except ValueError as exc:
            parser.error(str(exc))
        os.environ[RESILIENCE_ENV_VAR] = args.resilience

    wanted = [e.strip().upper() for e in args.only.split(",") if e.strip()] or list(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}; known: {list(EXPERIMENTS)}")

    # Merge into any existing summary so partial (--only) runs refresh their
    # entries without dropping the others.
    summary_path = results_dir() / "summary.json"
    summary = _read_json(summary_path)
    mode = "full" if args.full else "quick"
    campaign_path = results_dir() / "campaign.json"
    campaign = _load_campaign(campaign_path, mode, args.seed, args.resume)

    def save_campaign() -> None:
        _atomic_write_json(campaign_path, campaign)
        if server is not None:
            # Mirror every manifest update onto the status board, so
            # /campaign always serves the same state the file records.
            from repro.obs.server import get_board

            get_board().publish_campaign(campaign)

    save_campaign()

    # Harness narration goes through the structured event logger (console
    # lines on stdout, plus a JSONL sink when REPRO_TRACE is set); the
    # human-readable ExperimentResult.print() tables stay the final render.
    console = ConsoleSink(sys.stdout)
    failures = []
    for exp_id in wanted:
        if (
            args.resume
            and exp_id in campaign["completed"]
            # Degraded results are retried on resume, like failures: a
            # partial harvest is not a completed experiment to build on.
            and exp_id not in campaign["degraded"]
            and (results_dir() / f"{exp_id.lower()}.json").exists()
        ):
            with experiment_telemetry(exp_id, extra_sinks=[console]) as tel:
                tel.emit("experiment_skipped", experiment=exp_id,
                         reason="already completed (campaign resume)")
            continue
        module = importlib.import_module(EXPERIMENTS[exp_id])
        with experiment_telemetry(exp_id, extra_sinks=[console]) as tel:
            tel.emit("experiment_start", experiment=exp_id,
                     module=EXPERIMENTS[exp_id], mode=mode, seed=args.seed)
            try:
                with tel.span(f"experiment.{exp_id}"):
                    result = module.run(quick=not args.full, seed=args.seed)
            except Exception as exc:  # noqa: BLE001 - report and continue
                traceback.print_exc()
                tel.emit("experiment_failed", experiment=exp_id,
                         error=f"{type(exc).__name__}: {exc}")
                failures.append(exp_id)
                if exp_id not in campaign["failed"]:
                    campaign["failed"].append(exp_id)
                save_campaign()
                continue
            # Merge rather than overwrite: experiments that created their own
            # telemetry handle (e.g. E11's REWL driver) already put span/
            # metric aggregates on the result, and the harness summary must
            # not clobber them.
            harness = tel.summary()
            if result.telemetry:
                harness["spans"] = {**harness["spans"],
                                    **result.telemetry.get("spans", {})}
                harness["metrics"] = {**harness["metrics"],
                                      **result.telemetry.get("metrics", {})}
            result.telemetry = harness
            result.print()
            path = result.save()
            tel.emit("experiment_end", experiment=exp_id,
                     elapsed_s=result.elapsed_s, file=str(path),
                     measured=result.measured,
                     degraded=bool(getattr(result, "degraded", False)))
        summary[exp_id] = {
            "title": result.title,
            "paper_claim": result.paper_claim,
            "measured": result.measured,
            "elapsed_s": result.elapsed_s,
            "file": str(path),
        }
        if exp_id not in campaign["completed"]:
            campaign["completed"].append(exp_id)
        if exp_id in campaign["failed"]:
            campaign["failed"].remove(exp_id)
        # A degraded (partial-harvest) result is *completed* but flagged, so
        # the campaign exit code and manifest can never report it as clean;
        # a clean rerun of the same experiment clears the flag.
        if getattr(result, "degraded", False):
            if exp_id not in campaign["degraded"]:
                campaign["degraded"].append(exp_id)
        elif exp_id in campaign["degraded"]:
            campaign["degraded"].remove(exp_id)
        save_campaign()
        ordered = {k: summary[k] for k in EXPERIMENTS if k in summary}
        _atomic_write_json(summary_path, ordered)

    ordered = {k: summary[k] for k in EXPERIMENTS if k in summary}
    _atomic_write_json(summary_path, ordered)
    with experiment_telemetry("run_all", extra_sinks=[console]) as tel:
        tel.emit("summary", file=str(summary_path), experiments=len(ordered),
                 failures=failures, degraded=list(campaign["degraded"]))
    if failures:
        return 1
    return 3 if campaign["degraded"] else 0


if __name__ == "__main__":
    sys.exit(main())
