"""E10 (Table 4): training-cost and estimator ablation for the DL proposal.

The knobs DeepThermo has to tune in practice, swept on a small HEA:

- training budget (gradient steps) → DL-move acceptance.  Over-training an
  independence proposal *sharpens* it past the target and acceptance
  degrades — the sweep exposes that trade-off, and
- decoder broadening τ (``logit_temperature``) → the standard control that
  recovers acceptance from an over-sharpened model,
- IWAE marginal samples S → acceptance stability vs per-proposal cost,
- composition handling (repair vs reject) → acceptance + empirical bias
  against a long local-swap reference mean.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.common import ExperimentResult, timed
from repro.hamiltonians import KB_EV_PER_K, NbMoTaWHamiltonian
from repro.lattice import bcc, equiatomic_counts, random_configuration
from repro.nn import CategoricalVAE, VAEConfig
from repro.proposals import SwapProposal, VAEProposal
from repro.sampling import MetropolisSampler
from repro.training import ProposalTrainer, ReplayBuffer, pretrain_from_chain
from repro.util.rng import RngFactory
from repro.util.tables import format_table

__all__ = ["run"]


def _fresh_trainer(ham, rngs, tag):
    model = CategoricalVAE(
        VAEConfig(ham.n_sites, 4, latent_dim=8, hidden=(96, 48)),
        rng=rngs.make(f"{tag}-init"),
    )
    buffer = ReplayBuffer(512, ham.n_sites, 4)
    trainer = ProposalTrainer(model, buffer, lr=1e-3, batch_size=64,
                              rng=rngs.make(f"{tag}-train"))
    return model, trainer


def _acceptance(ham, counts, proposal, beta, rngs, tag, n_steps):
    sampler = MetropolisSampler(
        ham, proposal, beta,
        random_configuration(ham.n_sites, counts, rng=rngs.make(f"{tag}-cfg")),
        rng=rngs.make(f"{tag}-chain"),
    )
    sampler.run(n_steps // 4)
    stats = sampler.run(n_steps, record_energy_every=1)
    return stats.acceptance_rate, float(stats.energies.mean())


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    ham = NbMoTaWHamiltonian(bcc(3), n_shells=1)
    counts = equiatomic_counts(ham.n_sites, 4)
    rngs = RngFactory(seed)
    t_k = 3000.0  # near the transition (see E5)
    beta = 1.0 / (KB_EV_PER_K * t_k)
    n_steps = 600 if quick else 4_000

    # Shared training setup: a *decorrelated* harvest (interval ~ 2 sweeps)
    # — correlated harvests are the classic cause of proposal mode collapse.
    model, trainer = _fresh_trainer(ham, rngs, "budget")
    pretrain_from_chain(
        ham, SwapProposal(), beta,
        random_configuration(ham.n_sites, counts, rng=rngs.make("budget-seed")),
        trainer, n_burn_in=5_000, n_harvest=400,
        harvest_interval=2 * ham.n_sites, train_steps=50,
        seed=rngs.seed_for("budget-pretrain"),
    )

    # --- sweep 1: training budget ---------------------------------------
    budget_rows = []
    budgets = [50, 200, 800] if quick else [50, 200, 800, 3200]
    trained = 50
    for budget in budgets:
        if budget > trained:
            trainer.train_steps(budget - trained)
            trained = budget
        acc, _ = _acceptance(
            ham, counts,
            VAEProposal(model, n_marginal_samples=32, composition="repair"),
            beta, rngs, f"budget{budget}", n_steps,
        )
        budget_rows.append([budget, trainer.loss_history[-1], acc])

    # --- sweep 2: decoder broadening τ -----------------------------------
    tau_rows = []
    for tau in [1.0, 1.5, 2.5, 4.0]:
        prop = VAEProposal(model, n_marginal_samples=32, composition="repair",
                           logit_temperature=tau)
        acc, _ = _acceptance(ham, counts, prop, beta, rngs, f"tau{tau}", n_steps)
        tau_rows.append([tau, acc])
    best_tau = float(max(tau_rows, key=lambda r: r[1])[0])

    # --- sweep 3: marginal samples (acceptance vs cost) ------------------
    sample_rows = []
    for s in [4, 16, 64]:
        prop = VAEProposal(model, n_marginal_samples=s, composition="repair",
                           logit_temperature=best_tau)
        start = time.perf_counter()
        acc, _ = _acceptance(ham, counts, prop, beta, rngs, f"s{s}", n_steps)
        per_step_ms = (time.perf_counter() - start) / (n_steps + n_steps // 4) * 1e3
        sample_rows.append([s, acc, per_step_ms])

    # --- sweep 4: composition handling bias -------------------------------
    _, ref_mean = _acceptance(
        ham, counts, SwapProposal(), beta, rngs, "ref", 30 * n_steps
    )
    comp_rows = [["swap reference", 1.0, ref_mean, 0.0]]
    for mode in ["repair", "reject"]:
        prop = VAEProposal(model, n_marginal_samples=32, composition=mode,
                           max_reject_tries=128, logit_temperature=best_tau)
        acc, mean_e = _acceptance(ham, counts, prop, beta, rngs, f"mode-{mode}",
                                  4 * n_steps)
        comp_rows.append([f"vae ({mode})", acc, mean_e, mean_e - ref_mean])

    result = ExperimentResult(
        experiment_id="E10",
        title="Training-cost and estimator ablation (VAE proposal)",
        paper_claim=(
            "DL-proposal acceptance depends on training budget and proposal "
            "sharpness; the practical composition projection introduces at "
            "most a small controlled bias"
        ),
        measured=(
            f"acceptance over the training sweep: "
            f"{' -> '.join(f'{r[2]:.3f}' for r in budget_rows)}; decoder "
            f"broadening recovers it to {max(r[1] for r in tau_rows):.3f} at "
            f"tau={best_tau}; repair-mode energy bias = {comp_rows[1][3]:+.3f} eV "
            f"vs a {abs(ref_mean):.1f} eV-scale mean"
        ),
        tables={
            "budget": format_table(
                ["train steps", "final loss", "DL acceptance"],
                budget_rows, title="Table 4a: acceptance vs training budget "
                                   "(sharpening trade-off)",
            ),
            "tau": format_table(
                ["logit temperature τ", "DL acceptance"],
                tau_rows, title="Table 4b: acceptance vs decoder broadening",
            ),
            "samples": format_table(
                ["marginal samples S", "DL acceptance", "ms/step (host)"],
                sample_rows, title="Table 4c: acceptance vs IWAE samples",
            ),
            "composition": format_table(
                ["kernel", "acceptance", "<E> [eV]", "bias vs reference"],
                comp_rows, title="Table 4d: composition handling bias",
            ),
        },
        data={
            "budget_sweep": budget_rows,
            "tau_sweep": tau_rows,
            "sample_sweep": sample_rows,
            "composition_sweep": comp_rows,
            "best_tau": best_tau,
        },
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
