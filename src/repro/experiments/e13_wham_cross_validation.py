"""E13 (extension): WHAM cross-validation of the flat-histogram DoS.

Not a paper figure — an extension experiment (DESIGN.md §4b).  The paper's
thesis is that *direct* DoS evaluation beats per-temperature sampling; the
classical per-temperature route is canonical runs + WHAM reweighting.  Here
both routes run on the same NbMoTaW system and must agree:

1. the cached REWL/Wang-Landau ln g (E2),
2. WHAM over K independent canonical Metropolis runs.

Agreement is checked on ln g shape (where the canonical runs overlap) and on
U(T); the table also shows WHAM's structural weakness — the canonical runs
only cover the energy band their temperatures visit, while the
flat-histogram run covers everything, which is exactly the paper's argument.
"""

from __future__ import annotations

import numpy as np

from repro.dos import thermodynamics, wham
from repro.experiments.common import ExperimentResult, hea_system, timed
from repro.experiments.e02_hea_dos import load_or_run_hea_dos
from repro.hamiltonians import KB_EV_PER_K
from repro.lattice import random_configuration
from repro.proposals import SwapProposal
from repro.sampling import MetropolisSampler
from repro.util.rng import RngFactory
from repro.util.tables import format_table

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    length = 3
    ham, counts = hea_system(length)
    rngs = RngFactory(seed)
    dos = load_or_run_hea_dos(length, seed=seed, quick=quick)
    grid = dos.grid

    # ---- per-temperature route: canonical runs + WHAM -------------------
    temps_k = [1500.0, 2500.0, 3500.0, 5000.0, 8000.0]
    betas = np.array([1.0 / (KB_EV_PER_K * t) for t in temps_k])
    n_steps = 60_000 if quick else 400_000
    hists = np.zeros((len(betas), grid.n_bins), dtype=np.int64)
    for k, beta in enumerate(betas):
        sampler = MetropolisSampler(
            ham, SwapProposal(), float(beta),
            random_configuration(ham.n_sites, counts, rng=rngs.make("wham-cfg", k)),
            rng=rngs.make("wham-chain", k),
        )
        sampler.run(5_000)
        for _ in range(n_steps):
            sampler.step()
            b = grid.index(sampler.energy)
            if b >= 0:
                hists[k, b] += 1
    wham_res = wham(grid.centers, hists, betas)

    # ---- agreement where both routes have support ------------------------
    both = dos.visited & wham_res.supported & (hists.sum(axis=0) > 200)
    wl_rel = dos.ln_g[both] - dos.ln_g[both][0]
    wh_rel = wham_res.ln_g[both] - wham_res.ln_g[both][0]
    lng_rms = float(np.sqrt(np.mean((wl_rel - wh_rel) ** 2)))

    check_t = np.array([2000.0, 3000.0, 4000.0])
    tab_wl = thermodynamics(dos.energies, dos.values, check_t, kb=KB_EV_PER_K)
    sup = wham_res.supported
    tab_wh = thermodynamics(
        grid.centers[sup], wham_res.ln_g[sup], check_t, kb=KB_EV_PER_K
    )
    u_gap = float(np.max(np.abs(tab_wl.internal_energy - tab_wh.internal_energy)))

    coverage_wl = int(dos.visited.sum())
    coverage_wh = int(wham_res.supported.sum())
    rows = [
        ["bins covered", coverage_wl, coverage_wh],
        ["ln g span", float(dos.span),
         float(np.ptp(wham_res.ln_g[wham_res.supported]))],
        ["ln g RMS gap (shared bins)", lng_rms, lng_rms],
        ["max |U_WL - U_WHAM| [eV]", u_gap, u_gap],
    ]

    result = ExperimentResult(
        experiment_id="E13",
        title="Extension: WHAM cross-validation of the REWL DoS",
        paper_claim=(
            "direct flat-histogram DoS evaluation matches per-temperature "
            "sampling where the latter has support, and covers the full "
            "range a fixed temperature ladder cannot"
        ),
        measured=(
            f"ln g RMS gap {lng_rms:.2f} on {int(both.sum())} shared bins; "
            f"max U(T) gap {u_gap:.3f} eV; coverage {coverage_wl} bins (REWL) "
            f"vs {coverage_wh} (WHAM ladder of {len(betas)} temperatures)"
        ),
        tables={
            "cross": format_table(
                ["quantity", "REWL/WL", "WHAM"],
                rows, title="E13: two independent routes to the NbMoTaW DoS",
            ),
        },
        data={
            "lng_rms_gap": lng_rms,
            "u_max_gap": u_gap,
            "coverage_wl": coverage_wl,
            "coverage_wham": coverage_wh,
            "wham_converged": wham_res.converged,
            "ladder_temps_k": temps_k,
        },
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
