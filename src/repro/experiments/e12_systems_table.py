"""E12 (Table 1): workload characterization — the "astronomical
configuration space" numbers.

The paper motivates DeepThermo with the size of the HEA configuration
space.  This table reproduces that characterization for a range of BCC
supercells: sites, total configurations (4^N), fixed-composition
configurations (multinomial), the ln g span the DoS must cover, and the
energy-grid sizing our REWL runs would use.
"""

from __future__ import annotations

import numpy as np

from repro.dos.thermo import log_multinomial, log_total_states
from repro.experiments.common import ExperimentResult, timed
from repro.hamiltonians import NbMoTaWHamiltonian
from repro.lattice import bcc, equiatomic_counts
from repro.util.tables import format_table

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    lengths = [3, 4, 6, 8, 12, 16]
    rows = []
    data = {}
    for length in lengths:
        lat = bcc(length)
        n = lat.n_sites
        counts = equiatomic_counts(n, 4)
        ln_total = log_total_states(n, 4)
        ln_multi = log_multinomial(counts)
        # Bond counts from geometry (z1=8, z2=6) without building tables
        # for the huge cells.
        n_bonds = n * (8 + 6) // 2
        rows.append([
            length, n, f"e^{ln_total:,.0f}", f"e^{ln_multi:,.0f}",
            n_bonds, ln_total >= 10_000,
        ])
        data[str(length)] = {
            "n_sites": n,
            "ln_total_states": ln_total,
            "ln_multinomial": ln_multi,
            "n_bonds_2shell": n_bonds,
        }

    n16 = data["16"]["n_sites"]
    span16 = data["16"]["ln_total_states"]

    result = ExperimentResult(
        experiment_id="E12",
        title="Workload characterization: HEA configuration spaces",
        paper_claim=(
            "HEAs have an astronomical configuration space; the evaluated "
            "density of states spans ~e^10,000 at production scale"
        ),
        measured=(
            f"a 16^3 BCC cell has N={n16} sites and 4^N = e^{span16:,.0f} "
            f"configurations — the e^10,000 scale appears at N >= "
            f"{int(np.ceil(10_000 / np.log(4)))} sites"
        ),
        tables={
            "systems": format_table(
                ["L", "N sites", "total configs", "equiatomic configs",
                 "bonds (2 shells)", ">= e^10,000"],
                rows, title="Table 1: NbMoTaW workload sizes (BCC L^3 cells)",
            ),
        },
        data=data,
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
