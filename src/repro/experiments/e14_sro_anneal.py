"""E14 (extension): SRO-targeted fast structure generation at scale.

The ultra-large-scale tier demonstrator (ROADMAP item 5; PyHEA-style).
Two generators produce an NbMoTaW configuration with prescribed Mo–Ta
first-shell Warren–Cowley order on the same BCC supercell:

1. **SRO-targeted anneal** (:func:`repro.lattice.generate.anneal_sro`):
   batched candidate swaps priced by O(z) integer pair-count deltas
   against the α target directly — no Hamiltonian energies anywhere.
2. **Full-energy anneal** (:func:`repro.lattice.generate.anneal_energy`):
   the conventional baseline — scalar Metropolis swaps priced through the
   NbMoTaW ΔE kernels with a β ramp (ordering emerges from the EPI signs
   rather than being targeted).

Shape expectations: the SRO-targeted route hits |α − target| ≤ 0.01 and
prices candidates at ≥10× the baseline's moves/s; the streaming
(:class:`~repro.kernels.chunked.ChunkedPairTables`) α measurement agrees
with the materialized one exactly.  The final structure is exported as a
LAMMPS ``.data`` file under ``results/``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.sro import warren_cowley_from_counts
from repro.experiments.common import ExperimentResult, results_dir, timed
from repro.hamiltonians import NbMoTaWHamiltonian
from repro.kernels import ChunkedPairTables
from repro.lattice import (
    NBMOTAW,
    anneal_energy,
    anneal_sro,
    bcc,
    equiatomic_counts,
    random_configuration,
    write_lammps_data,
)
from repro.util.tables import format_table

__all__ = ["run"]

ALPHA_TARGET = -0.08  # Mo–Ta first shell (B2-type ordering direction)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    length = 8 if quick else 24           # 1,024 vs 27,648 sites
    lat = bcc(length)
    n_species = 4
    counts = equiatomic_counts(lat.n_sites, n_species)
    rng = np.random.default_rng(seed)
    i_mo, i_ta = NBMOTAW.index("Mo"), NBMOTAW.index("Ta")

    targets = np.full((n_species, n_species), np.nan)
    targets[i_mo, i_ta] = targets[i_ta, i_mo] = ALPHA_TARGET

    # ---- route 1: SRO-targeted anneal (no energies) ---------------------
    start = random_configuration(lat.n_sites, counts, rng=rng)
    res = anneal_sro(
        lat, n_species, targets, config=start,
        batch=128, max_iters=4000 if quick else 20000, tol=0.01, rng=rng,
    )
    # Steady-state candidate throughput: convergence above is so fast that
    # table-build startup dominates its wall clock, so rate is measured on
    # a fixed-iteration probe (tol=0 never triggers the early exit).
    probe_iters = 200 if quick else 500
    t0 = time.perf_counter()
    probe = anneal_sro(
        lat, n_species, targets, config=start,
        batch=256, max_iters=probe_iters, tol=0.0, rng=rng,
    )
    sro_seconds = time.perf_counter() - t0
    sro_rate = probe.candidates_priced / max(sro_seconds, 1e-9)

    # ---- route 2: full-energy anneal baseline ---------------------------
    ham = NbMoTaWHamiltonian(lat, n_shells=2)
    base_steps = min(probe.candidates_priced, 20_000 if quick else 100_000)
    t0 = time.perf_counter()
    _, base_accepted = anneal_energy(
        ham, start, n_steps=base_steps, rng=rng,
    )
    base_seconds = time.perf_counter() - t0
    base_rate = base_steps / max(base_seconds, 1e-9)
    speedup = sro_rate / max(base_rate, 1e-9)

    # ---- streaming cross-check + memory model ---------------------------
    chunked = ChunkedPairTables(lat, [ham.shell_matrices[0], ham.shell_matrices[1]])
    counts_stream = chunked.pair_counts(res.config)
    alpha_stream = warren_cowley_from_counts(
        counts_stream[0], np.bincount(res.config, minlength=n_species)
    )
    stream_gap = float(abs(alpha_stream[i_mo, i_ta] - res.alpha[0][i_mo, i_ta]))

    out = results_dir() / "e14_sro_anneal.data"
    out.parent.mkdir(parents=True, exist_ok=True)
    write_lammps_data(
        out, lat, res.config,
        species_names=list(NBMOTAW.names),
        masses=[92.906, 95.95, 180.947, 183.84],
        lattice_constant=3.24,
    )

    alpha_mo_ta = float(res.alpha[0][i_mo, i_ta])
    rows = [
        ["SRO-targeted", probe.candidates_priced, f"{sro_seconds:.3f}",
         f"{sro_rate:,.0f}", f"{alpha_mo_ta:+.4f}"],
        ["full-energy", base_steps, f"{base_seconds:.3f}",
         f"{base_rate:,.0f}", "(untargeted)"],
    ]
    result = ExperimentResult(
        experiment_id="E14",
        title="SRO-targeted fast structure generation (ultra-large tier)",
        paper_claim=(
            "SRO-based structure generation reaches prescribed Warren-Cowley "
            "order orders of magnitude faster than full-energy annealing "
            "(PyHEA-style; DeepThermo's scale premise)"
        ),
        measured=(
            f"bcc({length}) = {lat.n_sites} sites: |alpha - target| = "
            f"{res.max_abs_error:.4f} (target {ALPHA_TARGET:+.2f}) in "
            f"{res.n_iters} iters; {sro_rate:,.0f} cand/s vs "
            f"{base_rate:,.0f} moves/s full-energy ({speedup:.1f}x)"
        ),
        tables={
            "throughput": format_table(
                ["route", "moves priced", "seconds", "moves/s", "alpha(Mo-Ta)"],
                rows,
                title="E14: SRO-targeted vs full-energy structure generation",
            ),
        },
        data={
            "n_sites": lat.n_sites,
            "alpha_target": ALPHA_TARGET,
            "alpha_mo_ta": alpha_mo_ta,
            "max_abs_error": res.max_abs_error,
            "converged": res.converged,
            "candidates_per_s": sro_rate,
            "baseline_moves_per_s": base_rate,
            "speedup": speedup,
            "streaming_alpha_gap": stream_gap,
            "chunk_plan": str(chunked.plan),
            "lammps_export": str(out),
        },
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
