"""E3 (Fig 3): order-disorder transition from the HEA density of states.

The abstract: "DeepThermo can effectively evaluate the phase transition
behaviors of high entropy alloys."  One REWL run yields C(T) at *every*
temperature; the specific-heat peak locates the order-disorder transition
(B2-type Mo/Ta ordering for the NbMoTaW EPI signs).  We also report entropy
per site, which must approach ln 4 (ideal mixing) at high temperature —
an absolute-normalization check unique to the DoS approach.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import peak_full_width_half_max, transition_temperature
from repro.dos import thermodynamics
from repro.experiments.common import ExperimentResult, hea_system, timed
from repro.experiments.e02_hea_dos import load_or_run_hea_dos
from repro.hamiltonians import KB_EV_PER_K
from repro.util.tables import format_table

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    length = 3
    dos = load_or_run_hea_dos(length, seed=seed, quick=quick)
    ham, counts = hea_system(length)
    n = ham.n_sites

    temps = np.linspace(150.0, 8000.0, 80 if quick else 200)
    tab = thermodynamics(dos.energies, dos.values, temps, kb=KB_EV_PER_K)
    c_per_site = tab.specific_heat / (n * KB_EV_PER_K)  # in units of k_B
    s_per_site = tab.entropy / (n * KB_EV_PER_K)

    tc, c_max = transition_temperature(temps, c_per_site)
    fwhm = peak_full_width_half_max(temps, c_per_site)
    s_high = float(s_per_site[-1])

    rows = [
        [t, u / n, c, s]
        for t, u, c, s in zip(temps[::4], tab.internal_energy[::4] / 1.0,
                              c_per_site[::4], s_per_site[::4])
    ]

    result = ExperimentResult(
        experiment_id="E3",
        title="Specific heat and order-disorder transition (NbMoTaW)",
        paper_claim=(
            "C(T) from the DoS shows the HEA order-disorder transition; "
            "high-T entropy approaches ideal mixing (ln 4 per site)"
        ),
        measured=(
            f"C/N peaks at T_c ≈ {tc:.0f} K (C_max/N = {c_max:.2f} k_B, "
            f"FWHM ≈ {fwhm:.0f} K); S/N at {temps[-1]:.0f} K = {s_high:.3f} "
            f"vs ln 4 = {np.log(4):.3f}"
        ),
        tables={
            "thermo": format_table(
                ["T [K]", "U [eV]", "C/N [k_B]", "S/N [k_B]"],
                rows, title=f"Fig 3: thermodynamics of NbMoTaW (N={n}) from REWL DoS",
            ),
        },
        data={
            "temperatures": temps,
            "c_per_site": c_per_site,
            "s_per_site": s_per_site,
            "u_total": tab.internal_energy,
            "t_c": tc,
            "c_max": c_max,
            "fwhm": fwhm,
            "s_high_t": s_high,
            "ln4": float(np.log(4.0)),
        },
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
