"""E5 (Fig 5 / Table 2): proposal quality — acceptance and decorrelation.

The paper's core mechanism claim: "deep learning-based MC proposals that can
globally update the system configurations."  We train a VAE and a MADE on
canonical configurations of a small HEA, then measure, per proposal kernel
and temperature:

- acceptance rate,
- integrated autocorrelation time τ_int of the energy (in *proposals*),
- effective independent samples per 1,000 proposals.

Shape expectations: the learned global proposals decorrelate in O(1)
accepted moves (τ_int orders of magnitude below local swaps at the
temperature they were trained for), at the price of a lower raw acceptance
than a local swap at high T.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import integrated_autocorrelation_time
from repro.experiments.common import ExperimentResult, timed
from repro.hamiltonians import KB_EV_PER_K, NbMoTaWHamiltonian
from repro.lattice import bcc, equiatomic_counts, random_configuration
from repro.nn import MADE, CategoricalVAE, MADEConfig, VAEConfig
from repro.proposals import MADEProposal, SwapProposal, VAEProposal
from repro.sampling import MetropolisSampler
from repro.training import ProposalTrainer, ReplayBuffer, pretrain_from_chain
from repro.util.rng import RngFactory
from repro.util.tables import format_table

__all__ = ["run", "trained_hea_models"]


def trained_hea_models(ham, counts, t_train_k: float, quick: bool, seed: int):
    """Pretrain a VAE and a MADE on a canonical chain at ``t_train_k``."""
    rngs = RngFactory(seed)
    beta = 1.0 / (KB_EV_PER_K * t_train_k)
    n_sites, n_species = ham.n_sites, ham.n_species

    vae = CategoricalVAE(
        VAEConfig(n_sites, n_species, latent_dim=8, hidden=(96, 48)),
        rng=rngs.make("vae-init"),
    )
    vae_buf = ReplayBuffer(512, n_sites, n_species)
    vae_tr = ProposalTrainer(vae, vae_buf, lr=2e-3, batch_size=64, rng=rngs.make("vae-train"))
    made = MADE(MADEConfig(n_sites, n_species, hidden=(128,)), rng=rngs.make("made-init"))
    made_buf = ReplayBuffer(512, n_sites, n_species)
    made_tr = ProposalTrainer(made, made_buf, lr=2e-3, batch_size=64, rng=rngs.make("made-train"))

    harvest = 600 if quick else 2_000
    train_steps = 1_500 if quick else 4_000
    for trainer, tag in [(vae_tr, "vae"), (made_tr, "made")]:
        pretrain_from_chain(
            ham, SwapProposal(), beta,
            random_configuration(n_sites, counts, rng=rngs.make(f"{tag}-cfg")),
            trainer, n_burn_in=5_000, n_harvest=harvest,
            harvest_interval=2 * n_sites,  # decorrelated harvest (2 sweeps)
            train_steps=train_steps, seed=rngs.seed_for(f"{tag}-pretrain"),
        )
    return vae, made


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    ham = NbMoTaWHamiltonian(bcc(3), n_shells=1)
    counts = equiatomic_counts(ham.n_sites, 4)
    rngs = RngFactory(seed)
    # Train near the order-disorder transition (T_c ~ 3,100 K for the
    # synthetic EPIs, see E3) — the regime the paper evaluates; deep in the
    # ordered phase an independence proposal cannot match the frozen target.
    t_train = 3000.0
    vae, made = trained_hea_models(ham, counts, t_train, quick, seed)

    proposals = {
        "swap (local)": lambda: SwapProposal(),
        "vae (global)": lambda: VAEProposal(
            vae, n_marginal_samples=16 if quick else 48, composition="repair",
            logit_temperature=1.5,
        ),
        "made (global)": lambda: MADEProposal(
            made, composition="repair", max_reject_tries=16
        ),
    }
    temps = [1500.0, 3000.0, 6000.0] if quick else [1000.0, 2000.0, 3000.0, 4500.0, 6000.0, 9000.0]
    n_steps = 1_200 if quick else 8_000

    rows = []
    data = {}
    for name, factory in proposals.items():
        for t in temps:
            beta = 1.0 / (KB_EV_PER_K * t)
            sampler = MetropolisSampler(
                ham, factory(), beta,
                random_configuration(ham.n_sites, counts, rng=rngs.make("e5-cfg", int(t))),
                rng=rngs.make("e5-chain", hash(name) % 1000 + int(t)),
            )
            burn = n_steps // 4
            sampler.run(burn)
            stats = sampler.run(n_steps, record_energy_every=1)
            if stats.acceptance_rate > 0.0:
                tau = integrated_autocorrelation_time(stats.energies)
                ess_per_1k = 1000.0 / (2.0 * tau)
            else:  # frozen chain: autocorrelation is undefined, not "0.5"
                tau = float("inf")
                ess_per_1k = 0.0
            rows.append([name, t, stats.acceptance_rate, tau, ess_per_1k])
            data[f"{name}|{t:.0f}"] = {
                "acceptance": stats.acceptance_rate,
                "tau_int": tau,
                "ess_per_1k": ess_per_1k,
            }

    swap_tau = data[f"swap (local)|{t_train:.0f}"]["tau_int"]
    # "Best global" only counts kernels that actually move (acceptance >1%);
    # an all-reject kernel has undefined autocorrelation.
    global_taus = [
        data[f"{name}|{t_train:.0f}"]["tau_int"]
        for name in ("vae (global)", "made (global)")
        if data[f"{name}|{t_train:.0f}"]["acceptance"] > 0.01
    ]
    best_global_tau = min(global_taus) if global_taus else float("inf")
    speedup = swap_tau / best_global_tau if np.isfinite(best_global_tau) else 0.0

    result = ExperimentResult(
        experiment_id="E5",
        title="Proposal quality: acceptance and decorrelation",
        paper_claim=(
            "learned global proposals decorrelate in O(1) moves where local "
            "swaps need many sweeps; acceptance stays practical near the "
            "training temperature"
        ),
        measured=(
            f"at the training temperature ({t_train:.0f} K): tau_int(swap) = "
            f"{swap_tau:.1f} proposals vs best global = {best_global_tau:.1f} "
            f"-> {speedup:.1f}x decorrelation speedup"
        ),
        tables={
            "quality": format_table(
                ["proposal", "T [K]", "acceptance", "tau_int", "ESS/1k proposals"],
                rows, title="Fig 5 / Table 2: proposal quality (NbMoTaW, N=54)",
            ),
        },
        data={"grid": data, "decorrelation_speedup": speedup, "t_train": t_train},
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
