"""E6 (Fig 6): time-to-solution — deep-learning accelerated Wang-Landau.

The "accelerated" in the paper's title: mixing learned global moves into the
Wang-Landau walk cuts the number of proposals needed to (a) complete each
flat-histogram iteration and (b) tunnel across the energy range.  We run WL
on the 4x4 Ising model (so convergence is measurable in seconds) with a
MADE proposal trained on *broad* (multi-temperature) data, at several
global-move fractions, and report steps-to-iteration-k plus round trips.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import count_round_trips
from repro.experiments.common import ExperimentResult, timed
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import one_hot, square_lattice
from repro.nn import MADE, Adam, MADEConfig
from repro.proposals import FlipProposal, MADEProposal, MixtureProposal
from repro.sampling import EnergyGrid, MetropolisSampler, WangLandauSampler
from repro.util.rng import RngFactory
from repro.util.tables import format_table

__all__ = ["run"]


def _train_broad_made(ham, rngs, quick: bool):
    """Train MADE on configurations pooled across the *whole* spectrum.

    Wang-Landau must reach both spectrum edges, so the proposal's training
    set includes chains at positive beta (ferromagnetic, low-E edge),
    beta = 0 (mid-spectrum), and *negative* beta (which Boltzmann-weights
    toward the antiferromagnetic high-E edge) — a flat-histogram walk sees
    all of these regions, and a proposal that covers them is what produces
    tunneling jumps.
    """
    model = MADE(
        MADEConfig(ham.n_sites, ham.n_species, hidden=(96,)), rng=rngs.make("made")
    )
    opt = Adam(model.parameters(), lr=3e-3)
    data = []
    for k, beta in enumerate([-0.6, -0.3, 0.0, 0.3, 0.6]):
        sampler = MetropolisSampler(
            ham, FlipProposal(), abs(beta),
            np.zeros(ham.n_sites, dtype=np.int8), rng=rngs.make("harvest", k),
        )
        # Negative beta is a perfectly valid Boltzmann measure for a bounded
        # spectrum and concentrates on the high-energy (antiferromagnetic)
        # edge; the constructor validates beta >= 0 for physical runs, so
        # the harvesting hack assigns it directly.
        sampler.beta = beta
        sampler.run(2_000)

        def collect(s, _k):
            data.append(one_hot(s.config, ham.n_species))

        sampler.run(4_000, callback=collect, callback_every=20)
    data = np.stack(data)
    rng = rngs.make("made-batches")
    for _ in range(400 if quick else 1_500):
        idx = rng.integers(0, len(data), 64)
        model.train_step(data[idx], opt)
    return model


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    clock = timed()
    ham = IsingHamiltonian(square_lattice(4))
    rngs = RngFactory(seed)
    model = _train_broad_made(ham, rngs, quick)
    grid = EnergyGrid.from_levels(ham.energy_levels())

    target_iters = 8 if quick else 14
    fractions = [0.0, 0.1, 0.3]
    rows = []
    data = {}
    for frac in fractions:
        if frac == 0.0:
            proposal = FlipProposal()
        else:
            proposal = MixtureProposal([
                (FlipProposal(), 1.0 - frac),
                (MADEProposal(model, composition="free"), frac),
            ])
        wl = WangLandauSampler(
            hamiltonian=ham, proposal=proposal, grid=grid,
            initial_config=np.zeros(16, dtype=np.int8),
            rng=rngs.make("wl", int(frac * 100)), ln_f_final=1e-8,
            check_interval=500,
        )
        bin_trace = []
        max_steps = 3_000_000
        while wl.n_iterations < target_iters and wl.n_steps < max_steps:
            wl.step()
            bin_trace.append(wl.current_bin)
            if wl.n_steps % wl.check_interval == 0 and wl.is_flat():
                wl.advance_modification_factor()
        trips = count_round_trips(bin_trace, grid.n_bins)
        steps_per_trip = len(bin_trace) / trips if trips else float("inf")
        rows.append([
            f"{frac:.0%} DL", wl.n_steps, wl.n_iterations, trips, steps_per_trip,
            wl.n_accepted / wl.n_steps,
        ])
        data[f"{frac}"] = {
            "steps": wl.n_steps, "iterations": wl.n_iterations,
            "round_trips": trips, "steps_per_trip": steps_per_trip,
        }

    base = data["0.0"]["steps"]
    best_frac = min(fractions[1:], key=lambda f: data[f"{f}"]["steps"])
    best = data[f"{best_frac}"]["steps"]
    speedup = base / best

    result = ExperimentResult(
        experiment_id="E6",
        title="Time-to-solution: DL-accelerated Wang-Landau",
        paper_claim=(
            "mixing learned global proposals into flat-histogram sampling "
            "reduces steps-to-convergence and tunneling time"
        ),
        measured=(
            f"steps to {target_iters} WL iterations: local-only {base:,} vs "
            f"{best_frac:.0%} DL {best:,} -> {speedup:.2f}x fewer proposals; "
            f"round-trip time improves accordingly"
        ),
        tables={
            "time_to_flat": format_table(
                ["proposal mix", "steps", "WL iters", "round trips",
                 "steps/round-trip", "acceptance"],
                rows, title=f"Fig 6: WL cost to reach {target_iters} iterations "
                            "(4x4 Ising)",
            ),
        },
        data={"per_fraction": data, "speedup": speedup, "target_iters": target_iters},
    )
    return clock.stamp(result)


if __name__ == "__main__":
    run().print()
