"""Parallel MC framework (S6).

The paper runs replica-exchange Wang-Landau (REWL) across thousands of GPUs
with MPI.  Here the same algorithm runs at laptop scale over two layers:

- :mod:`repro.parallel.comm` — an MPI-like communicator (mpi4py-shaped API:
  ``send/recv/sendrecv``, ``barrier``, ``bcast``, ``gather``, ``allgather``,
  ``allreduce``) behind a runtime-checkable protocol and a backend registry
  (``comm.get("serial"|"thread"|"shm")``): a serial single-rank backend, a
  threaded SPMD backend, and a zero-copy ``multiprocessing.shared_memory``
  backend whose ndarray messages move through shared segments instead of
  pickles.  The distributed parallel-tempering rank program
  (:mod:`repro.parallel.tempering`) is written against it and asserted
  bit-identical to the serial reference.
- :mod:`repro.parallel.executors` — bulk-synchronous walker executors
  (serial / thread / process).  Walker state travels with the task, so the
  serial and multiprocess REWL runs are bit-identical by construction.
  Every executor supervises its tasks: per-task timeout, bounded retry
  with backoff, broken-pool rebuild, and deterministic chaos via
  :mod:`repro.faults` — a run that survives injected faults is
  bit-identical to the fault-free run.
- :mod:`repro.parallel.checkpoint` — crash-consistent snapshots (atomic
  tmp+rename writes, SHA-256 integrity framing, ``.prev`` rotation with
  fallback) so interrupted campaigns auto-resume bit-identically.

On top sits the REWL driver:

- :func:`make_windows` — overlapping energy-window decomposition,
- :class:`REWLDriver` — windows × walkers, synchronized Wang-Landau
  iterations, inter-window configuration exchanges, within-window ln g
  merging; returns per-window pieces ready for DoS stitching
  (:mod:`repro.dos`).
"""

from repro.parallel.comm import (
    COMMUNICATORS,
    Communicator,
    SerialCommunicator,
    SharedMemoryCommunicator,
    ShmWorld,
    ThreadCommunicator,
    get as get_communicator,
    register_communicator,
    run_spmd,
)
from repro.parallel.executors import (
    EXECUTORS,
    SerialExecutor,
    ThreadExecutor,
    ProcessExecutor,
    make_executor,
)
from repro.parallel.windows import WindowSpec, make_windows, surviving_pairs
from repro.parallel.rewl import (
    BACKENDS,
    REWLDriver,
    REWLConfig,
    REWLResult,
    WalkerSnapshot,
)
from repro.parallel.fused import (
    FusedCampaignState,
    FusedEngine,
    FusedTeam,
    ShmEngine,
    fused_advance,
)
from repro.parallel.tempering import distributed_parallel_tempering
from repro.parallel.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    load_latest_checkpoint,
    maybe_resume,
    previous_checkpoint_path,
    save_checkpoint,
)

__all__ = [
    "COMMUNICATORS",
    "Communicator",
    "SerialCommunicator",
    "SharedMemoryCommunicator",
    "ShmWorld",
    "ThreadCommunicator",
    "get_communicator",
    "register_communicator",
    "run_spmd",
    "EXECUTORS",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "WindowSpec",
    "make_windows",
    "surviving_pairs",
    "BACKENDS",
    "REWLDriver",
    "REWLConfig",
    "REWLResult",
    "WalkerSnapshot",
    "FusedCampaignState",
    "FusedEngine",
    "FusedTeam",
    "ShmEngine",
    "fused_advance",
    "distributed_parallel_tempering",
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "load_latest_checkpoint",
    "maybe_resume",
    "previous_checkpoint_path",
]
