"""MPI-like communicator substrate.

API shape follows mpi4py's lowercase (pickle-object) methods — the idiom the
HPC Python ecosystem standardizes on — restricted to what the samplers need:
point-to-point ``send/recv/sendrecv`` and the collectives ``barrier``,
``bcast``, ``gather``, ``allgather``, ``reduce``, ``allreduce``,
``scatter``.

Backends:

- :class:`SerialCommunicator` — a size-1 world; every collective is an
  identity.  Lets rank programs run unmodified in a single process.
- :class:`ThreadCommunicator` — an N-rank world inside one process, built on
  per-pair queues and a shared barrier.  :func:`run_spmd` launches one
  thread per rank running the same function (SPMD), propagating the first
  exception.

The threaded backend is a *correctness* substrate, not a speed one (the
GIL serializes pure-Python sections); the REWL speed path uses the process
executors in :mod:`repro.parallel.executors`.  What the communicator buys is
the ability to express rank programs — like distributed parallel tempering —
exactly as they would be written for mpi4py.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry

__all__ = ["Communicator", "SerialCommunicator", "ThreadCommunicator", "run_spmd"]

_DEFAULT_TIMEOUT = 60.0  # deadlock guard for the threaded backend

#: Histogram bucket upper bounds for collective/point-to-point latencies.
_LATENCY_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


def _sum(a, b):
    return a + b


_REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": _sum,
    "max": max,
    "min": min,
}


class Communicator:
    """Abstract communicator (see module docstring for semantics).

    Every backend carries a per-rank :class:`~repro.obs.metrics.MetricsRegistry`
    under ``self.metrics`` recording ``comm.<op>.calls`` counters and
    ``comm.<op>.seconds`` latency histograms for each point-to-point and
    collective operation; :func:`run_spmd` reduces them across ranks when
    given a telemetry handle.
    """

    rank: int
    size: int
    metrics: MetricsRegistry

    def _record(self, op: str, t0: float) -> None:
        dt = time.perf_counter() - t0
        self.metrics.inc(f"comm.{op}.calls")
        self.metrics.observe(f"comm.{op}.seconds", dt, buckets=_LATENCY_BUCKETS)

    # -- point to point ----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        raise NotImplementedError

    def recv(self, source: int, tag: int = 0) -> Any:
        raise NotImplementedError

    def sendrecv(self, obj: Any, partner: int, tag: int = 0) -> Any:
        """Exchange objects with ``partner`` (deadlock-free pairwise swap)."""
        raise NotImplementedError

    # -- collectives --------------------------------------------------------

    def barrier(self) -> None:
        raise NotImplementedError

    def bcast(self, obj: Any, root: int = 0) -> Any:
        raise NotImplementedError

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        raise NotImplementedError

    def allgather(self, obj: Any) -> list[Any]:
        raise NotImplementedError

    def scatter(self, objs: list[Any] | None, root: int = 0) -> Any:
        raise NotImplementedError

    def reduce(self, obj: Any, op: str = "sum", root: int = 0) -> Any | None:
        raise NotImplementedError

    def allreduce(self, obj: Any, op: str = "sum") -> Any:
        raise NotImplementedError


class SerialCommunicator(Communicator):
    """The trivial single-rank world."""

    rank = 0
    size = 1

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def send(self, obj, dest, tag=0):
        raise RuntimeError("send in a size-1 world has no valid destination")

    def recv(self, source, tag=0):
        raise RuntimeError("recv in a size-1 world has no valid source")

    def sendrecv(self, obj, partner, tag=0):
        raise RuntimeError("sendrecv in a size-1 world has no valid partner")

    def barrier(self):
        self._record("barrier", time.perf_counter())
        return None

    def bcast(self, obj, root=0):
        self._record("bcast", time.perf_counter())
        return obj

    def gather(self, obj, root=0):
        self._record("gather", time.perf_counter())
        return [obj]

    def allgather(self, obj):
        self._record("allgather", time.perf_counter())
        return [obj]

    def scatter(self, objs, root=0):
        if objs is None or len(objs) != 1:
            raise ValueError("scatter in a size-1 world needs exactly one object")
        self._record("scatter", time.perf_counter())
        return objs[0]

    def reduce(self, obj, op="sum", root=0):
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}")
        self._record("reduce", time.perf_counter())
        return obj

    def allreduce(self, obj, op="sum"):
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}")
        self._record("allreduce", time.perf_counter())
        return obj


class _World:
    """Shared state for a ThreadCommunicator world."""

    def __init__(self, size: int, timeout: float):
        self.size = size
        self.timeout = timeout
        self.barrier = threading.Barrier(size)
        # One queue per (source, dest, tag-ish) — tags are matched by
        # embedding them in the message, which is enough for our traffic.
        self.queues: dict[tuple[int, int], queue.Queue] = {
            (src, dst): queue.Queue() for src in range(size) for dst in range(size)
        }
        self.bcast_box: list[Any] = [None]
        self.gather_box: list[Any] = [None] * size


class ThreadCommunicator(Communicator):
    """One rank of a threaded SPMD world (created by :func:`run_spmd`)."""

    def __init__(self, world: _World, rank: int,
                 metrics: MetricsRegistry | None = None):
        self._world = world
        self.rank = rank
        self.size = world.size
        # Per-rank registry: threads never share one (MetricsRegistry is
        # not locked); run_spmd merges them after the ranks join.
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def _check_peer(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"{what} rank {peer} out of range [0, {self.size})")
        if peer == self.rank:
            raise ValueError(f"{what} to self (rank {peer}) is not allowed")

    # -- point to point ----------------------------------------------------

    def send(self, obj, dest, tag=0):
        t0 = time.perf_counter()
        self._check_peer(dest, "send")
        self._world.queues[(self.rank, dest)].put((tag, obj))
        self._record("send", t0)

    def recv(self, source, tag=0):
        t0 = time.perf_counter()
        self._check_peer(source, "recv")
        got_tag, obj = self._world.queues[(source, self.rank)].get(
            timeout=self._world.timeout
        )
        if got_tag != tag:
            raise RuntimeError(
                f"rank {self.rank}: tag mismatch from {source}: "
                f"expected {tag}, got {got_tag}"
            )
        self._record("recv", t0)
        return obj

    def sendrecv(self, obj, partner, tag=0):
        t0 = time.perf_counter()
        self._check_peer(partner, "sendrecv")
        self.send(obj, partner, tag)
        out = self.recv(partner, tag)
        self._record("sendrecv", t0)
        return out

    # -- collectives --------------------------------------------------------

    def barrier(self):
        t0 = time.perf_counter()
        self._world.barrier.wait(timeout=self._world.timeout)
        self._record("barrier", t0)

    def bcast(self, obj, root=0):
        t0 = time.perf_counter()
        if self.rank == root:
            self._world.bcast_box[0] = obj
        self.barrier()
        out = self._world.bcast_box[0]
        self.barrier()
        self._record("bcast", t0)
        return out

    def gather(self, obj, root=0):
        t0 = time.perf_counter()
        self._world.gather_box[self.rank] = obj
        self.barrier()
        out = list(self._world.gather_box) if self.rank == root else None
        self.barrier()
        self._record("gather", t0)
        return out

    def allgather(self, obj):
        t0 = time.perf_counter()
        self._world.gather_box[self.rank] = obj
        self.barrier()
        out = list(self._world.gather_box)
        self.barrier()
        self._record("allgather", t0)
        return out

    def scatter(self, objs, root=0):
        t0 = time.perf_counter()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} objects at root")
            self._world.gather_box[:] = objs
        self.barrier()
        out = self._world.gather_box[self.rank]
        self.barrier()
        self._record("scatter", t0)
        return out

    def reduce(self, obj, op="sum", root=0):
        t0 = time.perf_counter()
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}")
        gathered = self.gather(obj, root=root)
        self._record("reduce", t0)
        if self.rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = _REDUCE_OPS[op](acc, item)
        return acc

    def allreduce(self, obj, op="sum"):
        t0 = time.perf_counter()
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}")
        gathered = self.allgather(obj)
        acc = gathered[0]
        for item in gathered[1:]:
            acc = _REDUCE_OPS[op](acc, item)
        self._record("allreduce", t0)
        return acc


def run_spmd(fn: Callable[[Communicator], Any], n_ranks: int,
             timeout: float = _DEFAULT_TIMEOUT, telemetry=None) -> list[Any]:
    """Run ``fn(comm)`` on ``n_ranks`` threads; return per-rank results.

    The first exception raised by any rank is re-raised in the caller (other
    ranks are abandoned — acceptable for a test/teaching substrate).

    When ``telemetry`` (a :class:`repro.obs.Telemetry`) is supplied, each
    rank's per-collective call counts and latency histograms are merged into
    ``telemetry.metrics`` after the ranks join, and one ``spmd`` event is
    emitted with the world size and wall time.  When ``REPRO_TRACE_DIR`` is
    set, each rank additionally emits one rank-tagged ``worker_span`` record
    to this process's worker JSONL file (see
    :func:`repro.obs.events.worker_log`), so SPMD rank programs appear as
    their own lanes in the ``repro obs export-trace`` campaign timeline.
    """
    from repro.obs.events import worker_log

    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    t0 = time.perf_counter()
    rank_durs: list[float | None] = [None] * n_ranks
    if n_ranks == 1:
        comm = SerialCommunicator()
        out = [fn(comm)]
        rank_durs[0] = time.perf_counter() - t0
        comms = [comm]
    else:
        world = _World(n_ranks, timeout)
        comms = [ThreadCommunicator(world, r) for r in range(n_ranks)]
        results: list[Any] = [None] * n_ranks
        errors: list[tuple[int, BaseException]] = []

        def target(rank: int) -> None:
            rank_t0 = time.perf_counter()
            try:
                results[rank] = fn(comms[rank])
                rank_durs[rank] = time.perf_counter() - rank_t0
            except BaseException as exc:  # noqa: BLE001 - propagated below
                errors.append((rank, exc))
                world.barrier.abort()

        threads = [threading.Thread(target=target, args=(r,), daemon=True)
                   for r in range(n_ranks)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout * 4)
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        alive = [t for t in threads if t.is_alive()]
        if alive:
            raise RuntimeError(f"{len(alive)} ranks did not finish (deadlock?)")
        out = results
    if telemetry is not None:
        for comm in comms:
            telemetry.metrics.merge(comm.metrics)
        telemetry.emit("spmd", n_ranks=n_ranks, dur_s=time.perf_counter() - t0)
    wlog = worker_log()
    if wlog.enabled:
        for rank, dur in enumerate(rank_durs):
            if dur is not None:
                wlog.emit("worker_span", name="spmd_rank", rank=rank,
                          dur_s=dur, n_ranks=n_ranks)
    return out
