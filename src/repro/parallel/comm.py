"""MPI-like communicator substrate.

API shape follows mpi4py's lowercase (pickle-object) methods — the idiom the
HPC Python ecosystem standardizes on — restricted to what the samplers need:
point-to-point ``send/recv/sendrecv`` and the collectives ``barrier``,
``bcast``, ``gather``, ``allgather``, ``reduce``, ``allreduce``,
``scatter``.

:class:`Communicator` is a runtime-checkable :class:`typing.Protocol`;
backends register themselves in the :data:`COMMUNICATORS` registry (the
same stable-name → class shape as ``repro.sampling.SAMPLERS``) and are
looked up with :func:`get`.  All backend constructors are keyword-only.

Backends:

- ``"serial"`` :class:`SerialCommunicator` — a size-1 world; every
  collective is an identity.  Lets rank programs run unmodified in a
  single process.
- ``"thread"`` :class:`ThreadCommunicator` — an N-rank world inside one
  process, built on per-pair queues and a shared barrier.
- ``"shm"`` :class:`SharedMemoryCommunicator` — an N-rank world across
  *processes* built on :mod:`multiprocessing.shared_memory`.  Control
  messages travel over per-rank queues, but ndarray payloads move through
  a double-buffered shared-memory mailbox: the bytes are written once by
  the sender and mapped directly by the receiver — no pickling.  A
  :class:`ShmWorld` also hands out named shared arrays
  (:meth:`ShmWorld.alloc_array`) that several ranks map simultaneously —
  the zero-copy substrate under the fused REWL campaign
  (:mod:`repro.parallel.fused`).

:func:`run_spmd` launches one rank per thread (``backend="thread"``) or
per spawned process (``backend="shm"``) running the same function (SPMD),
propagating the first exception.

The threaded backend is a *correctness* substrate, not a speed one (the
GIL serializes pure-Python sections); the shm backend is the speed path —
its array traffic never crosses a pickle.
"""

from __future__ import annotations

import queue
import threading
import time
import weakref
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "COMMUNICATORS",
    "Communicator",
    "SerialCommunicator",
    "SharedMemoryCommunicator",
    "ShmWorld",
    "ThreadCommunicator",
    "get",
    "register_communicator",
    "run_spmd",
]

_DEFAULT_TIMEOUT = 60.0  # deadlock guard for the multi-rank backends

#: Histogram bucket upper bounds for collective/point-to-point latencies.
_LATENCY_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


def _sum(a, b):
    return a + b


_REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": _sum,
    "max": max,
    "min": min,
}


@runtime_checkable
class Communicator(Protocol):
    """Communicator protocol (see module docstring for semantics).

    Every backend carries a per-rank :class:`~repro.obs.metrics.MetricsRegistry`
    under ``self.metrics`` recording ``comm.<op>.calls`` counters and
    ``comm.<op>.seconds`` latency histograms for each point-to-point and
    collective operation; :func:`run_spmd` reduces them across ranks when
    given a telemetry handle.
    """

    rank: int
    size: int
    metrics: MetricsRegistry

    # -- point to point ----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None: ...

    def recv(self, source: int, tag: int = 0) -> Any: ...

    def sendrecv(self, obj: Any, partner: int, tag: int = 0) -> Any:
        """Exchange objects with ``partner`` (deadlock-free pairwise swap)."""
        ...

    # -- collectives --------------------------------------------------------

    def barrier(self) -> None: ...

    def bcast(self, obj: Any, root: int = 0) -> Any: ...

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None: ...

    def allgather(self, obj: Any) -> list[Any]: ...

    def scatter(self, objs: list[Any] | None, root: int = 0) -> Any: ...

    def reduce(self, obj: Any, op: str = "sum", root: int = 0) -> Any | None: ...

    def allreduce(self, obj: Any, op: str = "sum") -> Any: ...


#: Stable-name → communicator-class registry (populated by
#: ``register_communicator``); mirrors ``repro.sampling.SAMPLERS``.
COMMUNICATORS: dict[str, type] = {}


def register_communicator(name: str):
    """Class decorator adding a backend to :data:`COMMUNICATORS`."""

    def deco(cls: type) -> type:
        existing = COMMUNICATORS.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"communicator name {name!r} already registered")
        COMMUNICATORS[name] = cls
        cls.backend_name = name
        return cls

    return deco


def get(name: str) -> type:
    """Resolve a registered communicator class by stable name."""
    try:
        return COMMUNICATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown communicator {name!r}; registered: {sorted(COMMUNICATORS)}"
        ) from None


class _CommBase:
    """Shared latency-recording and peer validation for all backends."""

    rank: int
    size: int
    metrics: MetricsRegistry

    def _record(self, op: str, t0: float) -> None:
        dt = time.perf_counter() - t0
        self.metrics.inc(f"comm.{op}.calls")
        self.metrics.observe(f"comm.{op}.seconds", dt, buckets=_LATENCY_BUCKETS)

    def _check_peer(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"{what} rank {peer} out of range [0, {self.size})")
        if peer == self.rank:
            raise ValueError(f"{what} to self (rank {peer}) is not allowed")


@register_communicator("serial")
class SerialCommunicator(_CommBase):
    """The trivial single-rank world."""

    rank = 0
    size = 1

    def __init__(self, *, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def send(self, obj, dest, tag=0):
        raise RuntimeError("send in a size-1 world has no valid destination")

    def recv(self, source, tag=0):
        raise RuntimeError("recv in a size-1 world has no valid source")

    def sendrecv(self, obj, partner, tag=0):
        raise RuntimeError("sendrecv in a size-1 world has no valid partner")

    def barrier(self):
        self._record("barrier", time.perf_counter())
        return None

    def bcast(self, obj, root=0):
        self._record("bcast", time.perf_counter())
        return obj

    def gather(self, obj, root=0):
        self._record("gather", time.perf_counter())
        return [obj]

    def allgather(self, obj):
        self._record("allgather", time.perf_counter())
        return [obj]

    def scatter(self, objs, root=0):
        if objs is None or len(objs) != 1:
            raise ValueError("scatter in a size-1 world needs exactly one object")
        self._record("scatter", time.perf_counter())
        return objs[0]

    def reduce(self, obj, op="sum", root=0):
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}")
        self._record("reduce", time.perf_counter())
        return obj

    def allreduce(self, obj, op="sum"):
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}")
        self._record("allreduce", time.perf_counter())
        return obj


class _World:
    """Shared state for a ThreadCommunicator world."""

    def __init__(self, size: int, timeout: float):
        self.size = size
        self.timeout = timeout
        self.barrier = threading.Barrier(size)
        # One queue per (source, dest, tag-ish) — tags are matched by
        # embedding them in the message, which is enough for our traffic.
        self.queues: dict[tuple[int, int], queue.Queue] = {
            (src, dst): queue.Queue() for src in range(size) for dst in range(size)
        }
        self.bcast_box: list[Any] = [None]
        self.gather_box: list[Any] = [None] * size


@register_communicator("thread")
class ThreadCommunicator(_CommBase):
    """One rank of a threaded SPMD world (created by :func:`run_spmd`)."""

    def __init__(self, *, world: _World, rank: int,
                 metrics: MetricsRegistry | None = None):
        self._world = world
        self.rank = rank
        self.size = world.size
        # Per-rank registry: threads never share one (MetricsRegistry is
        # not locked); run_spmd merges them after the ranks join.
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- point to point ----------------------------------------------------

    def send(self, obj, dest, tag=0):
        t0 = time.perf_counter()
        self._check_peer(dest, "send")
        self._world.queues[(self.rank, dest)].put((tag, obj))
        self._record("send", t0)

    def recv(self, source, tag=0):
        t0 = time.perf_counter()
        self._check_peer(source, "recv")
        got_tag, obj = self._world.queues[(source, self.rank)].get(
            timeout=self._world.timeout
        )
        if got_tag != tag:
            raise RuntimeError(
                f"rank {self.rank}: tag mismatch from {source}: "
                f"expected {tag}, got {got_tag}"
            )
        self._record("recv", t0)
        return obj

    def sendrecv(self, obj, partner, tag=0):
        t0 = time.perf_counter()
        self._check_peer(partner, "sendrecv")
        self.send(obj, partner, tag)
        out = self.recv(partner, tag)
        self._record("sendrecv", t0)
        return out

    # -- collectives --------------------------------------------------------

    def barrier(self):
        t0 = time.perf_counter()
        self._world.barrier.wait(timeout=self._world.timeout)
        self._record("barrier", t0)

    def bcast(self, obj, root=0):
        t0 = time.perf_counter()
        if self.rank == root:
            self._world.bcast_box[0] = obj
        self.barrier()
        out = self._world.bcast_box[0]
        self.barrier()
        self._record("bcast", t0)
        return out

    def gather(self, obj, root=0):
        t0 = time.perf_counter()
        self._world.gather_box[self.rank] = obj
        self.barrier()
        out = list(self._world.gather_box) if self.rank == root else None
        self.barrier()
        self._record("gather", t0)
        return out

    def allgather(self, obj):
        t0 = time.perf_counter()
        self._world.gather_box[self.rank] = obj
        self.barrier()
        out = list(self._world.gather_box)
        self.barrier()
        self._record("allgather", t0)
        return out

    def scatter(self, objs, root=0):
        t0 = time.perf_counter()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} objects at root")
            self._world.gather_box[:] = objs
        self.barrier()
        out = self._world.gather_box[self.rank]
        self.barrier()
        self._record("scatter", t0)
        return out

    def reduce(self, obj, op="sum", root=0):
        t0 = time.perf_counter()
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}")
        gathered = self.gather(obj, root=root)
        self._record("reduce", t0)
        if self.rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = _REDUCE_OPS[op](acc, item)
        return acc

    def allreduce(self, obj, op="sum"):
        t0 = time.perf_counter()
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}")
        gathered = self.allgather(obj)
        acc = gathered[0]
        for item in gathered[1:]:
            acc = _REDUCE_OPS[op](acc, item)
        self._record("allreduce", t0)
        return acc


# --------------------------------------------------------------------------
# Shared-memory (multi-process) world
# --------------------------------------------------------------------------


def _unlink_segments(names: list[str]) -> None:
    """Best-effort unlink of named segments (finalizer — must not raise)."""
    from multiprocessing import shared_memory

    for name in list(names):
        try:
            seg = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            continue
        try:
            seg.close()
            seg.unlink()
        except (FileNotFoundError, OSError):
            pass
    names.clear()


def _attach_segment(name: str):
    """Attach an existing segment without adopting unlink responsibility.

    Python ≤3.11 registers *attached* segments with the resource tracker,
    which would then unlink them when the attaching process exits — pulling
    live segments out from under the other ranks.  Suppressing the
    registration during attach restores the create-side-owns-unlink
    discipline (what 3.13 spells ``track=False``).
    """
    from multiprocessing import resource_tracker, shared_memory

    orig_register = resource_tracker.register

    def _no_shm_register(name_, rtype):
        if rtype != "shared_memory":
            orig_register(name_, rtype)

    resource_tracker.register = _no_shm_register
    try:
        seg = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register
    return seg


class _ShmWorldHandle:
    """Picklable-through-``Process`` descriptor of a :class:`ShmWorld`.

    Carries the queues/barrier (inherited through process spawn) plus the
    *names* of every shared segment; child ranks attach by name.
    """

    def __init__(self, size, timeout, slot_bytes, inboxes, barrier,
                 mailbox_name, arrays):
        self.size = size
        self.timeout = timeout
        self.slot_bytes = slot_bytes
        self.inboxes = inboxes
        self.barrier = barrier
        self.mailbox_name = mailbox_name
        self.arrays = arrays  # name → (segment name, shape, dtype str)


class ShmWorld:
    """Host-owned lifecycle of a process-based shared-memory world.

    Owns every segment: the point-to-point mailbox plus any named arrays
    allocated with :meth:`alloc_array`.  :meth:`close` terminates
    still-running child ranks and unlinks all segments; a ``weakref``
    finalizer does the same at interpreter exit, so a crashed campaign
    cannot leak ``/dev/shm`` entries (asserted in
    ``tests/test_shm_lifecycle.py``).
    """

    def __init__(self, size: int, *, slot_bytes: int = 1 << 20,
                 timeout: float = _DEFAULT_TIMEOUT):
        import multiprocessing as mp
        from multiprocessing import shared_memory

        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = size
        self.timeout = timeout
        self.slot_bytes = int(slot_bytes)
        self.ctx = mp.get_context("spawn")
        self.inboxes = [self.ctx.Queue() for _ in range(size)]
        self.barrier = self.ctx.Barrier(size)
        n_slots = 2 * size * size
        self._mailbox = shared_memory.SharedMemory(
            create=True, size=max(1, n_slots * self.slot_bytes)
        )
        self._segments = [self._mailbox]
        self._segment_names = [self._mailbox.name]
        self._arrays: dict[str, tuple[str, tuple, str]] = {}
        self.procs: list = []
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._segment_names
        )

    # ------------------------------------------------------------- arrays

    def alloc_array(self, name: str, shape, dtype) -> np.ndarray:
        """Create a named shared array; returns the host's zero-copy view.

        Child ranks map the same bytes via
        :meth:`SharedMemoryCommunicator.shared_array`.
        """
        from multiprocessing import shared_memory

        if name in self._arrays:
            raise ValueError(f"shared array {name!r} already allocated")
        shape = tuple(int(s) for s in shape)
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dt.itemsize)
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        self._segments.append(seg)
        self._segment_names.append(seg.name)
        self._arrays[name] = (seg.name, shape, dt.str)
        return np.ndarray(shape, dtype=dt, buffer=seg.buf)

    @property
    def segment_names(self) -> list[str]:
        return list(self._segment_names)

    def handle(self) -> _ShmWorldHandle:
        return _ShmWorldHandle(
            self.size, self.timeout, self.slot_bytes, self.inboxes,
            self.barrier, self._mailbox.name, dict(self._arrays),
        )

    # ---------------------------------------------------------- lifecycle

    def spawn(self, target, args_per_rank: list[tuple]) -> None:
        """Start one daemon process per args tuple (appended to ``procs``)."""
        for args in args_per_rank:
            p = self.ctx.Process(target=target, args=args, daemon=True)
            p.start()
            self.procs.append(p)

    def close(self) -> None:
        """Terminate child ranks, then close + unlink every segment."""
        if self._closed:
            return
        self._closed = True
        for p in self.procs:
            if p.is_alive():
                p.terminate()
            p.join(timeout=5.0)
        for q in self.inboxes:
            try:
                q.close()
            except Exception:
                pass
        for seg in self._segments:
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._segment_names.clear()
        self._finalizer.detach()


@register_communicator("shm")
class SharedMemoryCommunicator(_CommBase):
    """One rank of a shared-memory SPMD world.

    Control messages (pickled objects, collectives, acks) travel over the
    rank's inbox queue; ndarray point-to-point payloads take the zero-copy
    path — written into a double-buffered per-(src, dst) mailbox slot and
    mapped directly by the receiver.  ``recv`` returns a **read-only view**
    of the slot, valid until the sender's next-but-one send to this rank;
    copy it (``np.array(view)``) to retain the data longer.  Arrays larger
    than ``slot_bytes`` fall back to the pickle path transparently.
    """

    def __init__(self, *, world, rank: int,
                 metrics: MetricsRegistry | None = None):
        self._world = world
        self.rank = rank
        self.size = world.size
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._mail = None
        self._attached: dict[str, Any] = {}
        self._stash: list[tuple] = []
        self._send_seq: dict[int, int] = {}
        self._acked: dict[int, int] = {}

    # ---------------------------------------------------------- segments

    def _mailbox(self):
        if self._mail is None:
            self._mail = self._attach(self._world.mailbox_name)
        return self._mail

    def _attach(self, name: str):
        seg = self._attached.get(name)
        if seg is None:
            seg = _attach_segment(name)
            self._attached[name] = seg
        return seg

    def shared_array(self, name: str) -> np.ndarray:
        """Map a named world array (see :meth:`ShmWorld.alloc_array`)."""
        try:
            seg_name, shape, dtype = self._world.arrays[name]
        except KeyError:
            raise KeyError(
                f"unknown shared array {name!r}; "
                f"allocated: {sorted(self._world.arrays)}"
            ) from None
        seg = self._attach(seg_name)
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)

    def close(self) -> None:
        """Detach this rank's segment mappings (never unlinks)."""
        for seg in self._attached.values():
            try:
                seg.close()
            except Exception:
                pass
        self._attached.clear()
        self._mail = None

    # ----------------------------------------------------------- inbox

    def _slot(self, src: int, dst: int, seq: int) -> int:
        pair = src * self.size + dst
        return (2 * pair + seq % 2) * self._world.slot_bytes

    def _pump(self, match, timeout: float | None = None):
        """Return the first stashed/arriving message satisfying ``match``.

        Ack messages are folded into the sender-side bookkeeping instead of
        being stashed, so a pure producer still drains its acks while
        blocked in a send.
        """
        for i, msg in enumerate(self._stash):
            if match(msg):
                return self._stash.pop(i)
        deadline = time.monotonic() + (
            self._world.timeout if timeout is None else timeout
        )
        inbox = self._world.inboxes[self.rank]
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self.rank}: timed out waiting for a message"
                )
            try:
                msg = inbox.get(timeout=remaining)
            except queue.Empty:
                continue  # deadline check above raises the TimeoutError
            if msg[0] == "ack":
                _, src, seq = msg
                self._acked[src] = max(self._acked.get(src, -1), seq)
                continue
            if match(msg):
                return msg
            self._stash.append(msg)

    def _await_ack(self, dest: int, seq: int) -> None:
        if self._acked.get(dest, -1) >= seq:
            return
        # Drain the inbox (stashing real messages) until the ack arrives.
        deadline = time.monotonic() + self._world.timeout
        inbox = self._world.inboxes[self.rank]
        while self._acked.get(dest, -1) < seq:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self.rank}: timed out waiting for ack from {dest}"
                )
            try:
                msg = inbox.get(timeout=remaining)
            except queue.Empty:
                continue
            if msg[0] == "ack":
                _, src, got = msg
                self._acked[src] = max(self._acked.get(src, -1), got)
            else:
                self._stash.append(msg)

    # -- point to point ----------------------------------------------------

    def send(self, obj, dest, tag=0):
        t0 = time.perf_counter()
        self._check_peer(dest, "send")
        if (
            isinstance(obj, np.ndarray)
            and obj.dtype != object
            and obj.nbytes <= self._world.slot_bytes
        ):
            seq = self._send_seq.get(dest, 0)
            if seq >= 2:
                # Double buffer: slot seq reuses slot seq-2's bytes.
                self._await_ack(dest, seq - 2)
            off = self._slot(self.rank, dest, seq)
            view = np.ndarray(obj.shape, dtype=obj.dtype,
                              buffer=self._mailbox().buf, offset=off)
            view[...] = obj
            self._world.inboxes[dest].put(
                ("shm", self.rank, tag, obj.shape, obj.dtype.str, seq)
            )
            self._send_seq[dest] = seq + 1
            self.metrics.inc("comm.send.zero_copy")
        else:
            self._world.inboxes[dest].put(("obj", self.rank, tag, obj))
        self._record("send", t0)

    def recv(self, source, tag=0):
        t0 = time.perf_counter()
        self._check_peer(source, "recv")
        msg = self._pump(
            lambda m: m[0] in ("obj", "shm") and m[1] == source and m[2] == tag
        )
        if msg[0] == "obj":
            out = msg[3]
        else:
            _, src, _, shape, dtype, seq = msg
            off = self._slot(src, self.rank, seq)
            out = np.ndarray(shape, dtype=np.dtype(dtype),
                             buffer=self._mailbox().buf, offset=off)
            out.flags.writeable = False
            self._world.inboxes[src].put(("ack", self.rank, seq))
        self._record("recv", t0)
        return out

    def sendrecv(self, obj, partner, tag=0):
        t0 = time.perf_counter()
        self._check_peer(partner, "sendrecv")
        self.send(obj, partner, tag)
        out = self.recv(partner, tag)
        self._record("sendrecv", t0)
        return out

    def recv_any(self, tag: int = 0,
                 timeout: float | None = None) -> tuple[int, Any]:
        """Receive from whichever rank sends next → ``(source, obj)``.

        The wildcard receive the non-blocking REWL drain loop is built on
        (windows finish their super-steps in whatever order the workers
        do); not part of the :class:`Communicator` protocol.  ``timeout``
        overrides the world default so drain loops can poll for worker
        liveness between waits.
        """
        t0 = time.perf_counter()
        msg = self._pump(
            lambda m: m[0] in ("obj", "shm") and m[2] == tag, timeout=timeout
        )
        src = msg[1]
        if msg[0] == "obj":
            out = msg[3]
        else:
            _, _, _, shape, dtype, seq = msg
            off = self._slot(src, self.rank, seq)
            out = np.ndarray(shape, dtype=np.dtype(dtype),
                             buffer=self._mailbox().buf, offset=off)
            out.flags.writeable = False
            self._world.inboxes[src].put(("ack", self.rank, seq))
        self._record("recv", t0)
        return src, out

    # -- collectives --------------------------------------------------------
    #
    # Collectives move pickled objects over the queues (they are control
    # plane, not bulk data; the bulk path is shared_array / the mailbox).

    def barrier(self):
        t0 = time.perf_counter()
        self._world.barrier.wait(timeout=self._world.timeout)
        self._record("barrier", t0)

    def bcast(self, obj, root=0):
        t0 = time.perf_counter()
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self._world.inboxes[r].put(("coll", root, "bcast", obj))
            out = obj
        else:
            msg = self._pump(
                lambda m: m[0] == "coll" and m[1] == root and m[2] == "bcast"
            )
            out = msg[3]
        self._record("bcast", t0)
        return out

    def gather(self, obj, root=0):
        t0 = time.perf_counter()
        if self.rank == root:
            out = []
            for r in range(self.size):
                if r == root:
                    out.append(obj)
                    continue
                msg = self._pump(
                    lambda m, r=r: m[0] == "coll" and m[1] == r
                    and m[2] == "gather"
                )
                out.append(msg[3])
        else:
            self._world.inboxes[root].put(("coll", self.rank, "gather", obj))
            out = None
        self._record("gather", t0)
        return out

    def allgather(self, obj):
        t0 = time.perf_counter()
        gathered = self.gather(obj, root=0)
        out = self.bcast(gathered, root=0)
        self._record("allgather", t0)
        return out

    def scatter(self, objs, root=0):
        t0 = time.perf_counter()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} objects at root")
            for r in range(self.size):
                if r != root:
                    self._world.inboxes[r].put(
                        ("coll", root, "scatter", objs[r])
                    )
            out = objs[root]
        else:
            msg = self._pump(
                lambda m: m[0] == "coll" and m[1] == root and m[2] == "scatter"
            )
            out = msg[3]
        self._record("scatter", t0)
        return out

    def reduce(self, obj, op="sum", root=0):
        t0 = time.perf_counter()
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}")
        gathered = self.gather(obj, root=root)
        self._record("reduce", t0)
        if self.rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = _REDUCE_OPS[op](acc, item)
        return acc

    def allreduce(self, obj, op="sum"):
        t0 = time.perf_counter()
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}")
        gathered = self.allgather(obj)
        acc = gathered[0]
        for item in gathered[1:]:
            acc = _REDUCE_OPS[op](acc, item)
        self._record("allreduce", t0)
        return acc


def _shm_spmd_main(handle, rank, fn, result_q):
    """Child-process entry of a ``backend="shm"`` SPMD world."""
    t0 = time.perf_counter()
    comm = SharedMemoryCommunicator(world=handle, rank=rank)
    try:
        out = fn(comm)
        result_q.put(
            (rank, True, out, comm.metrics, time.perf_counter() - t0)
        )
    except BaseException as exc:  # noqa: BLE001 - reported to the host
        result_q.put(
            (rank, False, repr(exc), comm.metrics, time.perf_counter() - t0)
        )
    finally:
        comm.close()


def run_spmd(fn: Callable[[Communicator], Any], n_ranks: int,
             timeout: float = _DEFAULT_TIMEOUT, telemetry=None,
             backend: str = "thread") -> list[Any]:
    """Run ``fn(comm)`` on ``n_ranks`` ranks; return per-rank results.

    ``backend="thread"`` runs one thread per rank in-process;
    ``backend="shm"`` spawns one process per rank over a :class:`ShmWorld`
    (``fn`` must then be picklable — a module-level function).  A single
    rank always gets the :class:`SerialCommunicator`.

    The first exception raised by any rank is re-raised in the caller (other
    ranks are abandoned — acceptable for a test/teaching substrate).

    When ``telemetry`` (a :class:`repro.obs.Telemetry`) is supplied, each
    rank's per-collective call counts and latency histograms are merged into
    ``telemetry.metrics`` after the ranks join, and one ``spmd`` event is
    emitted with the world size and wall time.  When ``REPRO_TRACE_DIR`` is
    set, each rank additionally emits one rank-tagged ``worker_span`` record
    to this process's worker JSONL file (see
    :func:`repro.obs.events.worker_log`), so SPMD rank programs appear as
    their own lanes in the ``repro obs export-trace`` campaign timeline.
    """
    from repro.obs.events import worker_log

    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    if backend not in ("thread", "shm"):
        raise ValueError(f"unknown spmd backend {backend!r}")
    t0 = time.perf_counter()
    rank_durs: list[float | None] = [None] * n_ranks
    rank_metrics: list[MetricsRegistry] = []
    if n_ranks == 1:
        comm = SerialCommunicator()
        out = [fn(comm)]
        rank_durs[0] = time.perf_counter() - t0
        rank_metrics = [comm.metrics]
    elif backend == "shm":
        world = ShmWorld(n_ranks, timeout=timeout)
        try:
            result_q = world.ctx.Queue()
            world.spawn(
                _shm_spmd_main,
                [(world.handle(), r, fn, result_q) for r in range(n_ranks)],
            )
            out = [None] * n_ranks
            deadline = time.monotonic() + timeout * 4
            for _ in range(n_ranks):
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    rank, ok, payload, metrics, dur = result_q.get(
                        timeout=remaining
                    )
                except queue.Empty:
                    raise RuntimeError(
                        "shm spmd ranks did not finish (deadlock or crash?)"
                    ) from None
                if not ok:
                    raise RuntimeError(f"rank {rank} failed: {payload}")
                out[rank] = payload
                rank_durs[rank] = dur
                rank_metrics.append(metrics)
            for p in world.procs:
                p.join(timeout=timeout)
        finally:
            world.close()
    else:
        world = _World(n_ranks, timeout)
        comms = [ThreadCommunicator(world=world, rank=r) for r in range(n_ranks)]
        results: list[Any] = [None] * n_ranks
        errors: list[tuple[int, BaseException]] = []

        def target(rank: int) -> None:
            rank_t0 = time.perf_counter()
            try:
                results[rank] = fn(comms[rank])
                rank_durs[rank] = time.perf_counter() - rank_t0
            except BaseException as exc:  # noqa: BLE001 - propagated below
                errors.append((rank, exc))
                world.barrier.abort()

        threads = [threading.Thread(target=target, args=(r,), daemon=True)
                   for r in range(n_ranks)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout * 4)
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        alive = [t for t in threads if t.is_alive()]
        if alive:
            raise RuntimeError(f"{len(alive)} ranks did not finish (deadlock?)")
        out = results
        rank_metrics = [c.metrics for c in comms]
    if telemetry is not None:
        for metrics in rank_metrics:
            telemetry.metrics.merge(metrics)
        telemetry.emit("spmd", n_ranks=n_ranks, dur_s=time.perf_counter() - t0)
    wlog = worker_log()
    if wlog.enabled:
        for rank, dur in enumerate(rank_durs):
            if dur is not None:
                wlog.emit("worker_span", name="spmd_rank", rank=rank,
                          dur_s=dur, n_ranks=n_ranks)
    return out
