"""Distributed parallel tempering — a rank program on the communicator.

One replica per rank; exchanges between adjacent ranks use ``sendrecv``
exactly as an mpi4py program would.  The exchange decision must be
*symmetric*: both partners draw the same uniform variate, which is arranged
by deriving the per-pair RNG stream from (round, lower rank) — no extra
message needed.

``tests/test_parallel_comm.py`` asserts this program is trace-identical to
the serial :class:`repro.sampling.tempering.ParallelTempering` reference
when fed the same seeds.
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.parallel.comm import Communicator, run_spmd
from repro.sampling.metropolis import MetropolisSampler
from repro.util.rng import RngFactory

__all__ = ["distributed_parallel_tempering"]


def distributed_parallel_tempering(
    hamiltonian: Hamiltonian,
    proposal_factory,
    betas,
    configs,
    n_rounds: int,
    steps_per_round: int,
    seed: int = 0,
):
    """Run replica-exchange Metropolis with one thread-rank per β.

    Parameters mirror :class:`repro.sampling.tempering.ParallelTempering`;
    the return value is a dict with per-rank energy traces (shape
    ``(n_rounds, n_replicas)``), exchange statistics, and acceptance rates,
    matching the serial ``TemperingResult`` fields.
    """
    betas = np.asarray(betas, dtype=np.float64)
    configs = np.asarray(configs)
    n = len(betas)
    if configs.shape != (n, hamiltonian.n_sites):
        raise ValueError(
            f"configs must have shape ({n}, {hamiltonian.n_sites}), got {configs.shape}"
        )

    def rank_program(comm: Communicator):
        rank = comm.rank
        factory = RngFactory(seed)
        chain = MetropolisSampler(
            hamiltonian,
            proposal_factory(rank),
            float(betas[rank]),
            configs[rank],
            rng=factory.make("pt-chain", rank),
        )
        trace = []
        attempts = 0
        accepts = 0
        for round_k in range(n_rounds):
            chain.run(steps_per_round)
            start = round_k % 2
            # Pair (left, left+1) for left = start, start+2, ...
            if (rank - start) % 2 == 0 and rank + 1 < comm.size:
                partner, is_left = rank + 1, True
            elif (rank - start) % 2 == 1 and rank - 1 >= 0:
                partner, is_left = rank - 1, False
            else:
                partner, is_left = -1, False
            if partner >= 0:
                other_energy = comm.sendrecv(chain.energy, partner, tag=round_k)
                low = min(rank, partner)
                pair_rng = factory.make("pt-pair", round_k * 1_000_003 + low)
                u = pair_rng.random()
                if is_left:
                    log_alpha = (chain.beta - betas[partner]) * (chain.energy - other_energy)
                    attempts += 1
                else:
                    log_alpha = (betas[partner] - chain.beta) * (other_energy - chain.energy)
                if log_alpha >= 0.0 or np.log(u) < log_alpha:
                    other_config = comm.sendrecv(chain.config, partner, tag=round_k)
                    chain.config = np.array(other_config, copy=True)
                    chain.energy = other_energy
                    if is_left:
                        accepts += 1
            trace.append(chain.energy)
            comm.barrier()
        return {
            "trace": np.asarray(trace),
            "attempts": attempts,
            "accepts": accepts,
            "acceptance_rate": chain.acceptance_rate,
        }

    per_rank = run_spmd(rank_program, n)
    return {
        "betas": betas,
        "energies": np.stack([r["trace"] for r in per_rank], axis=1),
        "exchange_attempts": np.array([per_rank[k]["attempts"] for k in range(n - 1)]),
        "exchange_accepts": np.array([per_rank[k]["accepts"] for k in range(n - 1)]),
        "acceptance_rates": np.array([r["acceptance_rate"] for r in per_rank]),
    }
